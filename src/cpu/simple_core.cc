#include "cpu/simple_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace smartref {

SimpleCore::SimpleCore(const CoreParams &params,
                       const WorkloadParams &pattern,
                       std::uint64_t rowBytes, MemPort port,
                       EventQueue &eq, StatGroup *parent)
    : StatGroup("cpu." + params.name, parent),
      params_(params),
      pattern_(pattern, rowBytes),
      port_(std::move(port)),
      eq_(eq),
      instructions_(this, "instructions", "instructions retired"),
      accesses_(this, "memAccesses", "memory accesses issued"),
      loads_(this, "loads", "blocking loads"),
      stores_(this, "stores", "posted stores"),
      stallTicks_(this, "stallTicks", "time stalled on loads (ticks)")
{
    SMARTREF_ASSERT(params.frequencyGHz > 0.0 && params.baseIpc > 0.0,
                    "core must make progress");
    SMARTREF_ASSERT(params.accessesPerKiloInstr > 0.0,
                    "core must access memory");
    instrsPerQuantum_ = 1000.0 / params.accessesPerKiloInstr;
    // Time to retire one quantum of instructions at the base IPC:
    // instrs / (IPC * freq[GHz]) nanoseconds.
    const double ns =
        instrsPerQuantum_ / (params.baseIpc * params.frequencyGHz);
    computeGap_ = std::max<Tick>(
        1, static_cast<Tick>(ns * static_cast<double>(kNanosecond)));
}

void
SimpleCore::start()
{
    running_ = true;
    startedAt_ = eq_.now();
    eq_.scheduleAfter(computeGap_, [this] { executeQuantum(); });
}

double
SimpleCore::effectiveIpc(Tick now) const
{
    const double cycles = static_cast<double>(now - startedAt_) /
                          static_cast<double>(kNanosecond) *
                          params_.frequencyGHz;
    return cycles > 0.0 ? instructions_.value() / cycles : 0.0;
}

void
SimpleCore::executeQuantum()
{
    if (!running_)
        return;
    instructions_ += instrsPerQuantum_;

    const AddressPattern::Access access = pattern_.next();
    ++accesses_;
    if (access.write) {
        // Stores post into an ideal store buffer: no stall.
        ++stores_;
        port_(access.addr, true, [](Tick) {});
        eq_.scheduleAfter(computeGap_, [this] { executeQuantum(); });
        return;
    }

    ++loads_;
    const Tick issued = eq_.now();
    port_(access.addr, false, [this, issued](Tick done) {
        stallTicks_ += static_cast<double>(done - issued);
        // Resume computing after the data arrives.
        const Tick resumeAt = std::max(done, eq_.now());
        eq_.schedule(resumeAt + computeGap_,
                     [this] { executeQuantum(); });
    });
}

} // namespace smartref

/**
 * @file
 * A simple in-order core model — the CPU side the paper drove with
 * Simics. Instructions retire at a base IPC until a memory access is
 * due; loads block the core until the data returns, stores post and
 * retire immediately (an ideal store buffer). This closes the loop
 * between memory latency and execution time, so refresh interference
 * shows up as lost IPC rather than only as queueing delay.
 */

#pragma once

#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "trace/address_pattern.hh"

namespace smartref {

/** Core execution parameters. */
struct CoreParams
{
    std::string name = "core0";
    double frequencyGHz = 2.0;   ///< core clock
    double baseIpc = 1.0;        ///< IPC with a perfect memory system
    /** Memory accesses per 1000 retired instructions (post-L1-filter
     *  traffic is shaped by the cache hierarchy behind the port). */
    double accessesPerKiloInstr = 20.0;
};

/** A blocking in-order core driving a memory port. */
class SimpleCore : public StatGroup
{
  public:
    /**
     * The memory port: issue an access; the callback fires at data
     * completion (loads gate execution on it, stores ignore it).
     */
    using MemPort = std::function<void(Addr addr, bool write,
                                       std::function<void(Tick)> done)>;

    SimpleCore(const CoreParams &params, const WorkloadParams &pattern,
               std::uint64_t rowBytes, MemPort port, EventQueue &eq,
               StatGroup *parent);

    /** Begin executing. */
    void start();

    /** Stop issuing new work (in-flight loads still complete). */
    void stop() { running_ = false; }

    /** @name Progress metrics. */
    ///@{
    std::uint64_t
    instructionsRetired() const
    {
        return static_cast<std::uint64_t>(instructions_.value());
    }

    std::uint64_t
    memoryAccesses() const
    {
        return static_cast<std::uint64_t>(accesses_.value());
    }

    /** Effective IPC over the core's lifetime so far. */
    double effectiveIpc(Tick now) const;

    /** Total time spent stalled on loads (ticks). */
    double stallTicks() const { return stallTicks_.value(); }
    ///@}

  private:
    void executeQuantum();

    CoreParams params_;
    AddressPattern pattern_;
    MemPort port_;
    EventQueue &eq_;
    bool running_ = false;
    Tick startedAt_ = 0;
    Tick computeGap_ = 0;         ///< execution time between accesses
    double instrsPerQuantum_ = 0.0;

    Scalar instructions_;
    Scalar accesses_;
    Scalar loads_;
    Scalar stores_;
    Scalar stallTicks_;
};

} // namespace smartref

#include "dram/refresh_parallelism.hh"

#include "sim/logging.hh"

namespace smartref {

const char *
toString(RefreshParallelism p)
{
    switch (p) {
      case RefreshParallelism::None: return "none";
      case RefreshParallelism::PerBank: return "refpb";
      case RefreshParallelism::Darp: return "darp";
      case RefreshParallelism::Sarp: return "sarp";
      case RefreshParallelism::DSarp: return "all";
    }
    return "?";
}

RefreshParallelism
parallelismFromString(const std::string &name)
{
    if (name == "none")
        return RefreshParallelism::None;
    if (name == "refpb")
        return RefreshParallelism::PerBank;
    if (name == "darp")
        return RefreshParallelism::Darp;
    if (name == "sarp")
        return RefreshParallelism::Sarp;
    if (name == "all")
        return RefreshParallelism::DSarp;
    SMARTREF_FATAL("unknown parallelism mode '", name,
                   "' (none, refpb, darp, sarp, all)");
}

} // namespace smartref

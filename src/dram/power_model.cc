#include "dram/power_model.hh"

#include "sim/logging.hh"

namespace smartref {

namespace {

/** Convert ticks to seconds. */
double
seconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

} // namespace

DramPowerModel::DramPowerModel(const DramConfig &cfg, StatGroup *parent)
    : StatGroup("power", parent),
      actEnergy_(this, "actEnergy", "activate/precharge energy (J)"),
      readEnergy_(this, "readEnergy", "read burst energy (J)"),
      writeEnergy_(this, "writeEnergy", "write burst energy (J)"),
      refreshEnergy_(this, "refreshEnergy", "refresh energy (J)"),
      backgroundEnergy_(this, "backgroundEnergy", "standby energy (J)"),
      overheadEnergy_(this, "overheadEnergy",
                      "controller overhead energy: bus + counter SRAM (J)"),
      refreshOpsClosed_(this, "refreshOpsClosed",
                        "row refreshes into a precharged bank"),
      refreshOpsOpen_(this, "refreshOpsOpen",
                      "row refreshes that had to close an open page")
{
    const auto &p = cfg.power;
    const auto &t = cfg.timing;
    const double devices = cfg.org.devicesPerRank();

    // Micron power methodology: the activate/precharge pair consumes
    // IDD0 over tRC minus the standby currents that would have flowed
    // anyway (IDD3N while the row is open, IDD2N while precharged).
    eAct_ = (p.idd0 * seconds(t.tRC) - p.idd3n * seconds(t.tRAS) -
             p.idd2n * seconds(t.tRC - t.tRAS)) *
            p.vdd * devices;
    eRead_ = (p.idd4r - p.idd3n) * p.vdd * seconds(t.tBurst) * devices;
    eWrite_ = (p.idd4w - p.idd3n) * p.vdd * seconds(t.tBurst) * devices;
    eRefresh_ =
        (p.idd5r - p.idd2n) * p.vdd * seconds(t.tRFCrow) * devices;
    // Closing an open page before refreshing costs roughly one extra
    // restore+precharge, modelled as the IDD0 delta over tRP.
    eRefreshOpenPenalty_ =
        (p.idd0 - p.idd3n) * p.vdd * seconds(t.tRP) * devices;

    pPowerDown_ = p.idd2p * p.vdd * devices;
    pStandby_ = p.idd2n * p.vdd * devices;
    pActive_ = p.idd3n * p.vdd * devices;

    SMARTREF_ASSERT(eAct_ > 0 && eRefresh_ > 0,
                    "power parameters produce non-positive energies");
}

void
DramPowerModel::onActivatePair()
{
    actEnergy_ += eAct_;
}

void
DramPowerModel::onRead()
{
    readEnergy_ += eRead_;
}

void
DramPowerModel::onWrite()
{
    writeEnergy_ += eWrite_;
}

void
DramPowerModel::onRowRefresh(bool bankWasOpen)
{
    refreshEnergy_ += eRefresh_;
    if (bankWasOpen) {
        refreshEnergy_ += eRefreshOpenPenalty_;
        ++refreshOpsOpen_;
    } else {
        ++refreshOpsClosed_;
    }
}

void
DramPowerModel::accountBackground(RankPowerState state, Tick duration)
{
    backgroundEnergy_ += backgroundPower(state) * seconds(duration);
}

void
DramPowerModel::addOverhead(double joules)
{
    overheadEnergy_ += joules;
}

double
DramPowerModel::backgroundPower(RankPowerState state) const
{
    switch (state) {
      case RankPowerState::PowerDown: return pPowerDown_;
      case RankPowerState::PrechargeStandby: return pStandby_;
      case RankPowerState::ActiveStandby: return pActive_;
    }
    return 0.0;
}

} // namespace smartref

#include "dram/dram_config.hh"

#include "sim/logging.hh"

namespace smartref {

void
DramConfig::validate() const
{
    if (org.ranks == 0 || org.banks == 0 || org.rows == 0 ||
        org.columns == 0) {
        SMARTREF_FATAL("config '", name, "': zero-sized organization");
    }
    if (org.dataWidthBits % org.deviceWidthBits != 0)
        SMARTREF_FATAL("config '", name, "': width not a device multiple");
    if ((org.rows & (org.rows - 1)) != 0)
        SMARTREF_FATAL("config '", name, "': rows must be a power of two");
    if ((org.columns & (org.columns - 1)) != 0)
        SMARTREF_FATAL("config '", name,
                       "': columns must be a power of two");
    if (timing.tRAS + timing.tRP > timing.tRC)
        SMARTREF_FATAL("config '", name, "': tRAS + tRP exceeds tRC");
    if (timing.retention == 0)
        SMARTREF_FATAL("config '", name, "': zero retention interval");
    if (timing.retention / org.totalRows() == 0) {
        SMARTREF_FATAL("config '", name,
                       "': too many rows for retention interval");
    }
    if (org.subarraysPerBank == 0)
        SMARTREF_FATAL("config '", name, "': zero subarrays per bank");
    if (org.rows % org.subarraysPerBank != 0) {
        SMARTREF_FATAL("config '", name,
                       "': subarraysPerBank must divide rows");
    }
    if (channels == 0)
        SMARTREF_FATAL("config '", name, "': need at least one channel");
}

DramConfig
ddr2_2GB()
{
    DramConfig c;
    c.name = "ddr2-2GB";
    c.org.ranks = 2;
    c.org.banks = 4;
    c.org.rows = 16384;
    c.org.columns = 2048;
    c.org.dataWidthBits = 72;
    c.org.deviceWidthBits = 8;
    c.timing.retention = 64 * kMillisecond;
    c.allowPowerDown = true;
    return c;
}

DramConfig
ddr2_4GB()
{
    DramConfig c = ddr2_2GB();
    c.name = "ddr2-4GB";
    c.org.banks = 8; // the paper doubles banks, doubling refresh targets
    // Twice the capacity comes from twice the devices (x4-width chips,
    // 18 per rank), so every per-rank energy component doubles — the
    // paper's "increase the base DRAM energy consumption" effect that
    // shrinks the 4 GB module's relative savings.
    c.org.deviceWidthBits = 4;
    return c;
}

DramConfig
dram3d_64MB()
{
    DramConfig c;
    c.name = "3d-64MB-64ms";
    c.org.ranks = 1;
    c.org.banks = 4;
    c.org.rows = 16384;
    c.org.columns = 128;
    c.org.dataWidthBits = 72;
    c.org.deviceWidthBits = 72; // single stacked die, full-width interface
    c.timing.retention = 64 * kMillisecond;
    // Die-to-die vias make the array faster than a DIMM hop.
    c.timing.tRCD = 9 * kNanosecond;
    c.timing.tRP = 9 * kNanosecond;
    c.timing.tCL = 9 * kNanosecond;
    c.timing.tRAS = 27 * kNanosecond;
    c.timing.tRC = 36 * kNanosecond;
    c.timing.tRFCrow = 42 * kNanosecond;
    c.allowPowerDown = false; // sits on the processor's access path
    // One wide device instead of nine narrow ones: per-op currents are
    // scaled up to cover the full-width interface, while standby
    // currents are low — a single small stacked die, not 18 DIMM
    // devices. This is what makes refresh a large share of 3D DRAM
    // energy (the premise of Section 4.5).
    c.power.idd0 = 0.35;
    c.power.idd2n = 0.025;
    c.power.idd3n = 0.040;
    c.power.idd4r = 0.50;
    c.power.idd4w = 0.54;
    // Retention current is the dominant cost of a hot stacked die;
    // refresh is ~40-50 % of 3D DRAM energy here, which is exactly the
    // regime the paper motivates in Sections 1 and 4.5.
    c.power.idd5r = 0.70;
    return c;
}

DramConfig
dram3d_64MB_32ms()
{
    DramConfig c = dram3d_64MB();
    c.name = "3d-64MB-32ms";
    c.timing.retention = 32 * kMillisecond; // >85C operation doubles rate
    return c;
}

DramConfig
dram3d_32MB()
{
    DramConfig c = dram3d_64MB();
    c.name = "3d-32MB-64ms";
    c.org.rows = 8192;
    return c;
}

DramConfig
edram_16MB()
{
    DramConfig c;
    c.name = "edram-16MB-4ms";
    c.org.ranks = 1;
    c.org.banks = 4;
    c.org.rows = 4096;
    c.org.columns = 128;
    c.org.dataWidthBits = 72;
    c.org.deviceWidthBits = 72;
    // Logic-process eDRAM: fast array, leaky cells.
    c.timing.tRCD = 4 * kNanosecond;
    c.timing.tRP = 4 * kNanosecond;
    c.timing.tCL = 4 * kNanosecond;
    c.timing.tRAS = 12 * kNanosecond;
    c.timing.tRC = 16 * kNanosecond;
    c.timing.tRFCrow = 20 * kNanosecond;
    c.timing.tRTP = 3 * kNanosecond;
    c.timing.tRRD = 3 * kNanosecond;
    c.timing.tBurst = 3 * kNanosecond;
    c.timing.tWR = 4 * kNanosecond;
    c.timing.retention = 4 * kMillisecond; // NEC eDRAM figure [2]
    c.allowPowerDown = false;
    c.power.idd0 = 0.20;
    c.power.idd2n = 0.020;
    c.power.idd3n = 0.035;
    c.power.idd4r = 0.30;
    c.power.idd4w = 0.33;
    c.power.idd5r = 0.40;
    return c;
}

DramConfig
server_128GB()
{
    // One channel is a 16 GB DDR2-style registered module: the 4 GB
    // paper module's 8-bank organisation with four times the rows and
    // x4 devices. The DDR2-667 timings/currents are kept so energy
    // numbers stay comparable with the paper's Table 1 modules; the
    // point of the preset is scale (1 Mi refresh targets per channel),
    // not a new device generation.
    DramConfig c = ddr2_4GB();
    c.name = "server-128GB";
    c.org.rows = 65536;
    c.channels = 8;
    return c;
}

DramConfig
server_256GB()
{
    DramConfig c = server_128GB();
    c.name = "server-256GB";
    c.org.rows = 131072; // 32 GB per channel
    return c;
}

DramConfig
server_512GB()
{
    DramConfig c = server_256GB();
    c.name = "server-512GB";
    c.channels = 16;
    return c;
}

DramConfig
dramConfigByName(const std::string &name)
{
    if (name == "2gb")
        return ddr2_2GB();
    if (name == "4gb")
        return ddr2_4GB();
    if (name == "3d64")
        return dram3d_64MB();
    if (name == "3d64-32ms")
        return dram3d_64MB_32ms();
    if (name == "3d32")
        return dram3d_32MB();
    if (name == "edram")
        return edram_16MB();
    if (name == "128gb")
        return server_128GB();
    if (name == "256gb")
        return server_256GB();
    if (name == "512gb")
        return server_512GB();
    SMARTREF_FATAL("unknown config '", name,
                   "' (2gb, 4gb, 3d64, 3d64-32ms, 3d32, edram, 128gb, "
                   "256gb, 512gb)");
}

bool
isThreeDConfigName(const std::string &name)
{
    return name == "3d64" || name == "3d64-32ms" || name == "3d32";
}

} // namespace smartref

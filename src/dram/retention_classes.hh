/**
 * @file
 * Per-row retention classes, RAPID-style (Venkatesan et al., HPCA'06,
 * the paper's reference [32]).
 *
 * Real DRAM cells retain charge for wildly different times; only a
 * small fraction need the worst-case 64 ms. RAPID profiles rows and
 * refreshes strong rows less often. The paper's Section 8 claims Smart
 * Refresh is *orthogonal* and can be applied on top — this module makes
 * that claim executable: a RetentionClassMap assigns each (rank, bank,
 * row) a retention multiplier (1x = weak/worst-case, 2x/4x = stronger),
 * consumable both by a RAPID-only baseline policy and by
 * SmartRefreshPolicy's multi-rate counters.
 *
 * The class assignment models a profiling result: pseudo-random per row
 * from a seed, with population fractions following the retention-time
 * distributions RAPID reports (weak rows are rare).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace smartref {

/** Population mix of retention classes. */
struct RetentionClassParams
{
    /**
     * (multiplier, fraction) pairs; fractions must sum to 1 and
     * multipliers must be powers of two in ascending order. Defaults
     * follow RAPID's observation that almost all cells retain far
     * longer than the worst case.
     */
    std::vector<std::pair<std::uint32_t, double>> classes = {
        {1, 0.02}, {2, 0.28}, {4, 0.70}};
    std::uint64_t seed = 7;
};

/** Immutable per-row retention multipliers for one module. */
class RetentionClassMap
{
  public:
    RetentionClassMap(std::uint64_t totalRows,
                      const RetentionClassParams &params = {});

    std::uint64_t totalRows() const { return multipliers_.size(); }

    /** Retention multiplier of one row (by flat counter index). */
    std::uint32_t
    multiplier(std::uint64_t row) const
    {
        return multipliers_[row];
    }

    /** The largest multiplier present. */
    std::uint32_t maxMultiplier() const { return maxMultiplier_; }

    /** Number of rows in the given class. */
    std::uint64_t population(std::uint32_t multiplier) const;

    /**
     * The ideal refresh rate (rows/second) if every row were refreshed
     * exactly at its class deadline — RAPID's best case.
     */
    double idealRefreshRate(Tick nominalRetention) const;

    const RetentionClassParams &params() const { return params_; }

  private:
    RetentionClassParams params_;
    std::vector<std::uint8_t> multipliers_;
    std::uint32_t maxMultiplier_ = 1;
};

} // namespace smartref

/**
 * @file
 * Energy attribution ledger: per-(rank,bank) x component x interval
 * accounting alongside the DRAM power model, with a hard conservation
 * invariant against the power model's energy statistics.
 *
 * The ledger is a pure observer: DramModule calls one hook per power
 * event, mirroring the exact accumulation the power model performs, so
 * attaching a ledger never changes simulated behaviour or any
 * deterministic output.
 *
 * Two kinds of state are kept:
 *
 *  - **Shadow component totals** (act/read/write/refresh/background),
 *    accumulated with the identical sequence of IEEE operations the
 *    power model's Scalars see. `reconcile()` checks them against the
 *    power stats to <= 1 ulp (they are bit-identical in practice) and
 *    cross-checks the integer event counts exactly — the conservation
 *    invariant `sum(ledger) == total energy stat`.
 *
 *  - **Per-(rank,bank), per-interval event counts** plus per-rank
 *    background residency ticks, from which the exported JSON/CSV
 *    derives per-cell component energies (count x per-op energy,
 *    ticks x state power).
 *
 * `writeConservationCheckJson()` emits the shadow totals keyed by the
 * power model's dotted stat paths in the stats-JSON shape, so
 * `smartref_statdiff --subset` can gate conservation against a
 * `--stats-json` artifact of the same run in CI.
 */

#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dram/power_model.hh"
#include "sim/types.hh"

namespace smartref {

/** Result of checking the ledger against the power model. */
struct ConservationReport
{
    bool pass = true;
    std::string detail; ///< description of the first mismatch
};

/** Distance in representable doubles (0 = bit-identical). */
std::uint64_t ulpDistance(double a, double b);

/** Per-(rank,bank) x component x interval energy attribution. */
class EnergyLedger
{
  public:
    struct Shape
    {
        std::uint32_t ranks = 0;
        std::uint32_t banks = 0;
    };

    /** Event counts for one (rank,bank) cell in one interval. */
    struct Cell
    {
        std::uint64_t acts = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t refreshesClosed = 0;
        std::uint64_t refreshesOpen = 0;
    };

    /** Background residency of one rank in one interval, by state. */
    struct RankBackground
    {
        std::array<Tick, 3> ticks{}; ///< indexed by RankPowerState
    };

    struct Interval
    {
        std::vector<Cell> cells;               ///< ranks * banks
        std::vector<RankBackground> background; ///< ranks
    };

    /** Shadow component totals (joules). */
    struct Totals
    {
        double act = 0;
        double read = 0;
        double write = 0;
        double refresh = 0;
        double background = 0;
        double overhead = 0;

        /** Summed in the power model's association order. */
        double
        total() const
        {
            return ((act + read + write) + background) + refresh +
                   overhead;
        }
    };

    explicit EnergyLedger(Shape shape, Tick interval = 4 * kMillisecond);

    /** @name Hooks, one per DramPowerModel accounting event. */
    ///@{
    void onActivate(Tick now, std::uint32_t rank, std::uint32_t bank,
                    double joules);
    void onRead(Tick now, std::uint32_t rank, std::uint32_t bank,
                double joules);
    void onWrite(Tick now, std::uint32_t rank, std::uint32_t bank,
                 double joules);
    void onRefresh(Tick now, std::uint32_t rank, std::uint32_t bank,
                   bool bankWasOpen, double joules,
                   double openPenaltyJoules);
    void onBackground(Tick from, Tick upTo, std::uint32_t rank,
                      RankPowerState state, double watts);
    ///@}

    /**
     * Controller overhead (bus + counter SRAM) as one finalize-time
     * lump: overhead is computed analytically per run, not per event,
     * so it has no per-interval attribution. Idempotent (set, not +=).
     */
    void setOverhead(double joules);

    /**
     * Declare this ledger a merged multi-channel view: the rank axis is
     * channel-major (rank r belongs to channel r / (ranks/channels)).
     * Exports then label every cell with its channel. Must divide the
     * rank count.
     */
    void setChannels(std::uint32_t channels);
    std::uint32_t channels() const { return channels_; }

    /**
     * Fold one channel's ledger into this merged view at the given rank
     * offset: per-interval cell counts and background residency add
     * element-wise, shadow totals sum, and the per-op energies / state
     * powers learned from hooks are adopted (they are identical across
     * channels of one config). Deterministic — called in fixed channel
     * order by the sharded runner. Interval lengths must match.
     */
    void absorbChannel(const EnergyLedger &src, std::uint32_t rankOffset);

    Shape shape() const { return shape_; }
    Tick intervalLength() const { return interval_; }
    const std::vector<Interval> &intervals() const { return intervals_; }
    Totals totals() const { return totals_; }

    /** Event counts summed over all cells and intervals. */
    Cell cellTotals() const;

    /**
     * The conservation invariant: shadow totals within 1 ulp of the
     * power stats (bit-identical in practice) and event counts equal
     * exactly. @p acts/@p reads/@p writes come from the owning
     * DramModule's command counters.
     */
    ConservationReport reconcile(const DramPowerModel &power,
                                 std::uint64_t acts, std::uint64_t reads,
                                 std::uint64_t writes) const;

    /** @name Export. */
    ///@{
    void writeJson(std::ostream &os, const std::string &metaJson) const;
    void writeJson(const std::string &path,
                   const std::string &metaJson) const;

    /** Per-cell per-interval grid, one row per non-empty cell. */
    void writeCsv(const std::string &path) const;

    /**
     * Shadow totals in the stats-JSON shape keyed by
     * `<powerPrefix>.<stat>` (e.g. "system.dram.2gb.power.actEnergy"),
     * for the `smartref_statdiff --subset` conservation gate.
     */
    void writeConservationCheckJson(const std::string &path,
                                    const std::string &powerPrefix,
                                    const std::string &metaJson) const;
    ///@}

  private:
    Interval &intervalAt(Tick t);
    Cell &cellAt(Tick t, std::uint32_t rank, std::uint32_t bank);

    Shape shape_;
    Tick interval_;
    std::uint32_t channels_ = 1;
    std::vector<Interval> intervals_;
    Totals totals_;

    /** Per-op energies / state powers learned from the hooks. */
    double eAct_ = 0, eRead_ = 0, eWrite_ = 0, eRefresh_ = 0,
           ePenalty_ = 0;
    std::array<double, 3> watts_{};
};

} // namespace smartref

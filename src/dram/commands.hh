/**
 * @file
 * DRAM command vocabulary shared by the device model and the controller.
 */

#pragma once

#include <cstdint>
#include <string>

namespace smartref {

/** The command set a DDR2-style device accepts. */
enum class DramCommandType : std::uint8_t {
    Activate,       ///< open a row into the sense amplifiers (RAS low)
    Precharge,      ///< close the open row, writing it back
    Read,           ///< column read burst from the open row
    Write,          ///< column write burst into the open row
    RefreshCbr,     ///< CAS-before-RAS refresh; row chosen by the device's
                    ///< internal counter, no address on the bus
    RefreshRasOnly, ///< RAS-only refresh; controller posts the row address
};

/** A single command addressed to one module. */
struct DramCommand
{
    DramCommandType type = DramCommandType::Activate;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0;
};

/** Human-readable command name (for traces and error messages). */
inline const char *
toString(DramCommandType t)
{
    switch (t) {
      case DramCommandType::Activate: return "ACT";
      case DramCommandType::Precharge: return "PRE";
      case DramCommandType::Read: return "RD";
      case DramCommandType::Write: return "WR";
      case DramCommandType::RefreshCbr: return "REF-CBR";
      case DramCommandType::RefreshRasOnly: return "REF-RAS";
    }
    return "?";
}

} // namespace smartref

/**
 * @file
 * DRAM module configuration: organization, timing and power parameters.
 *
 * Presets reproduce the paper's Table 1 (2 GB / 4 GB DDR2-667 main-memory
 * modules) and Table 2 (64 MB 3D die-stacked DRAM cache), plus a 32 MB 3D
 * variant used in the paper's discussion.
 */

#pragma once

#include <cstdint>
#include <string>

#include "dram/refresh_parallelism.hh"
#include "sim/types.hh"

namespace smartref {

/** Physical organization of one DRAM module. */
struct DramOrganization
{
    std::uint32_t ranks = 2;        ///< independent ranks on the module
    std::uint32_t banks = 4;        ///< banks per rank
    std::uint32_t rows = 16384;     ///< rows per bank
    std::uint32_t columns = 2048;   ///< columns per row
    std::uint32_t dataWidthBits = 72;   ///< module data width (64+8 ECC)
    std::uint32_t deviceWidthBits = 8;  ///< width of one DRAM device
    std::uint32_t burstLength = 4;      ///< transfers per access burst
    std::uint32_t subarraysPerBank = 8; ///< subarrays per bank (SARP)

    /** Rows per subarray (contiguous row ranges map to subarrays). */
    std::uint32_t
    rowsPerSubarray() const
    {
        return rows / subarraysPerBank;
    }

    /** Subarray index a row belongs to. */
    std::uint32_t
    subarrayOf(std::uint32_t row) const
    {
        return row / rowsPerSubarray();
    }

    /** Payload bytes transferred per column access (excludes ECC bits). */
    std::uint32_t
    bytesPerColumn() const
    {
        return (dataWidthBits >= 72 ? dataWidthBits - 8 : dataWidthBits) / 8;
    }

    /** Devices ganged per rank to form the module width. */
    std::uint32_t
    devicesPerRank() const
    {
        return dataWidthBits / deviceWidthBits;
    }

    /** Usable capacity in bytes (ECC excluded). */
    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t(ranks) * banks * rows * columns *
               bytesPerColumn();
    }

    /** Row span in bytes (one row across the module width). */
    std::uint64_t
    rowBytes() const
    {
        return std::uint64_t(columns) * bytesPerColumn();
    }

    /** Total number of (rank, bank, row) refresh targets. */
    std::uint64_t
    totalRows() const
    {
        return std::uint64_t(ranks) * banks * rows;
    }
};

/** DRAM timing parameters, all in ticks (picoseconds). */
struct DramTiming
{
    Tick tCK = 1500 * kPicosecond;      ///< clock period (DDR2-667)
    Tick tRCD = 15 * kNanosecond;       ///< activate to read/write
    Tick tRP = 15 * kNanosecond;        ///< precharge duration
    Tick tCL = 15 * kNanosecond;        ///< CAS latency
    Tick tRAS = 45 * kNanosecond;       ///< activate to precharge (min)
    Tick tRC = 60 * kNanosecond;        ///< activate to activate, same bank
    Tick tWR = 15 * kNanosecond;        ///< write recovery before precharge
    Tick tRTP = 7500 * kPicosecond;     ///< read to precharge
    Tick tRRD = 7500 * kPicosecond;     ///< activate to activate, same rank
    Tick tBurst = 6 * kNanosecond;      ///< data-bus occupancy per burst
    Tick tRFCrow = 70 * kNanosecond;    ///< single-row refresh duration [10]
    Tick tXP = 6 * kNanosecond;         ///< power-down exit latency
    Tick retention = 64 * kMillisecond; ///< data retention / refresh interval
    Tick powerDownDelay = 120 * kNanosecond; ///< idle time before power-down
};

/**
 * Micron-style IDD power parameters for one DRAM device.
 *
 * Energies are computed per command from the current deltas over the
 * relevant interval, times VDD, times the number of ganged devices, as in
 * the Micron power calculator methodology that DRAMsim also follows.
 * Defaults approximate a 1 Gb DDR2-667 device datasheet.
 */
struct DramPowerParams
{
    double vdd = 1.8;        ///< supply voltage (V)
    double idd0 = 0.085;     ///< one-bank activate-precharge current (A)
    double idd2p = 0.015;    ///< precharge power-down standby current (A)
    double idd2n = 0.030;    ///< precharge standby current (A)
    double idd3n = 0.045;    ///< active standby current (A)
    double idd4r = 0.125;    ///< burst read current (A)
    double idd4w = 0.135;    ///< burst write current (A)
    double idd5r = 0.125;    ///< single-row refresh current (A)
};

/** A complete module configuration with a human-readable name. */
struct DramConfig
{
    std::string name = "ddr2-2GB";
    DramOrganization org;
    DramTiming timing;
    DramPowerParams power;

    /**
     * Independent memory channels. `org` describes ONE channel's
     * module; a config with `channels > 1` is simulated as that many
     * isolated per-channel systems (own event queue, controller, DRAM
     * and refresh policy) advanced in epoch lock-step and merged
     * deterministically — see harness/sharded.hh and docs/scaling.md.
     * The historical single-channel behaviour is channels == 1.
     */
    std::uint32_t channels = 1;

    /**
     * Whether ranks may enter precharge power-down when idle. Main-memory
     * DIMMs do (the ITSY-style low-power baseline); the 3D DRAM cache is
     * kept in standby because it is on the processor's access path.
     */
    bool allowPowerDown = true;

    /**
     * How refreshes overlap with demand accesses. PerBank is the
     * historical (and default) behaviour: a refresh occupies only its
     * own bank. See refresh_parallelism.hh for the full family.
     */
    RefreshParallelism parallelism = RefreshParallelism::PerBank;

    /**
     * HiRA-style concurrent activation: in SARP modes, allow an
     * ACTIVATE to a different subarray while a refresh is in flight in
     * the same bank without the cross-subarray serialization penalty.
     */
    bool hiraConcurrentActivation = false;

    /**
     * Whether a refresh of `refreshRow` implicitly closes an open page
     * on `openRow` of the same bank. Without subarrays every refresh
     * closes the bank's page; with the SARP subarray model only a
     * refresh landing in the open row's own subarray does. Shared by
     * the device model (power/ledger accounting) and the controller
     * (policy row-closed notifications) so the two cannot diverge.
     */
    bool
    refreshClosesPage(std::uint32_t openRow, std::uint32_t refreshRow) const
    {
        if (!parallelismUsesSubarrays(parallelism))
            return true;
        return org.subarrayOf(openRow) == org.subarrayOf(refreshRow);
    }

    /** Baseline distributed-refresh commands per second (all rows). */
    double
    baselineRefreshesPerSecond() const
    {
        return static_cast<double>(org.totalRows()) /
               (static_cast<double>(timing.retention) /
                static_cast<double>(kSecond));
    }

    /** Tick gap between successive baseline distributed refreshes. */
    Tick
    refreshSpacing() const
    {
        return timing.retention / org.totalRows();
    }

    /** Usable capacity across all channels (ECC excluded). */
    std::uint64_t
    totalCapacityBytes() const
    {
        return std::uint64_t(channels) * org.capacityBytes();
    }

    /** Refresh targets across all channels. */
    std::uint64_t
    totalRowsAllChannels() const
    {
        return std::uint64_t(channels) * org.totalRows();
    }

    /** Validate internal consistency; fatals on error. */
    void validate() const;
};

/** @name Paper configurations. */
///@{

/** Table 1: 2 GB DDR2-667 module (2 ranks x 4 banks x 16384 rows). */
DramConfig ddr2_2GB();

/** Table 1 (4 GB variant): 8 banks, doubling the refresh targets. */
DramConfig ddr2_4GB();

/** Table 2: 64 MB 3D die-stacked DRAM cache, 64 ms retention. */
DramConfig dram3d_64MB();

/** 64 MB 3D DRAM at the hot-die 32 ms retention rate. */
DramConfig dram3d_64MB_32ms();

/** 32 MB 3D DRAM variant mentioned in Section 6. */
DramConfig dram3d_32MB();

/**
 * A 16 MB embedded DRAM macro with the order-of-magnitude shorter
 * retention the paper's introduction cites (4 ms, NEC eDRAM [2]).
 * Refresh pressure is extreme here, which is exactly where
 * access-driven skipping pays off most per access.
 */
DramConfig edram_16MB();

/** @name Server-scale multi-channel configurations (docs/scaling.md). */
///@{

/** 128 GB server machine: 8 channels x 16 GB DDR2-style modules. */
DramConfig server_128GB();

/** 256 GB server machine: 8 channels x 32 GB. */
DramConfig server_256GB();

/** 512 GB server machine: 16 channels x 32 GB. */
DramConfig server_512GB();

///@}

///@}

/**
 * Look up a preset by its CLI name: "2gb", "4gb", "3d64", "3d64-32ms",
 * "3d32", "edram", "128gb", "256gb" or "512gb". Fatal on an unknown
 * name.
 */
DramConfig dramConfigByName(const std::string &name);

/**
 * True when the named preset is a 3D die-stacked cache, i.e. must be
 * driven through the DRAM-cache system assembly rather than as main
 * memory.
 */
bool isThreeDConfigName(const std::string &name);

} // namespace smartref

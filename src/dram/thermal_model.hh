/**
 * @file
 * Steady-state thermal model for die-stacked DRAM (paper Section 4.5).
 *
 * The paper's 32 ms experiments rest on a thermal argument: a DRAM die
 * bonded on top of a processor absorbs the processor's heat, Annavaram
 * et al. [14] report 90.27 C for a 64 MB stacked die, and the Micron
 * datasheet [23] requires the refresh rate to double above 85 C. This
 * model closes that loop: given the DRAM's own power and the heat
 * conducted from the die below, it produces a junction temperature and
 * the retention interval the datasheet rule then mandates. Defaults are
 * calibrated so a 64 MB stacked die at its typical simulated power
 * lands at the paper's 90.27 C anchor.
 *
 * T = ambient + theta_JA * (P_dram + P_conducted)
 */

#pragma once

#include "sim/types.hh"

namespace smartref {

/** Package thermal parameters. */
struct ThermalParams
{
    double ambientC = 45.0;        ///< in-package ambient under load
    double thetaJA = 30.0;         ///< junction-to-ambient (C/W)
    double conductedPowerW = 1.4;  ///< heat arriving from the CPU die;
                                   ///< 0 for a DIMM on the board
    double hotThresholdC = 85.0;   ///< Micron: double refresh above this
};

/** Maps DRAM power to temperature and required retention. */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalParams &params = {})
        : params_(params)
    {
    }

    /** Junction temperature at the given DRAM power draw (W). */
    double
    temperatureC(double dramPowerW) const
    {
        return params_.ambientC +
               params_.thetaJA * (dramPowerW + params_.conductedPowerW);
    }

    /** Whether the datasheet's doubled-refresh rule applies. */
    bool
    requiresFastRefresh(double dramPowerW) const
    {
        return temperatureC(dramPowerW) > params_.hotThresholdC;
    }

    /** The retention interval mandated at this power level. */
    Tick
    requiredRetention(double dramPowerW, Tick nominalRetention) const
    {
        return requiresFastRefresh(dramPowerW) ? nominalRetention / 2
                                               : nominalRetention;
    }

    const ThermalParams &params() const { return params_; }

    /** Thermal parameters for a conventional on-board DIMM. */
    static ThermalParams
    dimmParams()
    {
        ThermalParams p;
        p.ambientC = 40.0;
        p.thetaJA = 12.0;       // spread across 18 packages + airflow
        p.conductedPowerW = 0.0; // no die stacked underneath
        return p;
    }

  private:
    ThermalParams params_;
};

} // namespace smartref

/**
 * @file
 * Per-rank state: the bank array, the CBR internal refresh counter, and
 * the bookkeeping needed to integrate background (standby) power lazily.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "dram/bank.hh"
#include "dram/dram_config.hh"
#include "sim/types.hh"

namespace smartref {

/** One rank of a DRAM module. */
class Rank
{
  public:
    explicit Rank(const DramOrganization &org)
        : banks_(org.banks), banksPerRank_(org.banks), rows_(org.rows)
    {
        for (Bank &b : banks_)
            b.configureSubarrays(org.subarraysPerBank);
    }

    Bank &bank(std::uint32_t b) { return banks_.at(b); }
    const Bank &bank(std::uint32_t b) const { return banks_.at(b); }
    std::uint32_t numBanks() const { return banksPerRank_; }

    /** True when any bank has an open row. */
    bool
    anyBankOpen() const
    {
        for (const Bank &b : banks_)
            if (b.isOpen())
                return true;
        return false;
    }

    /** Earliest tick an ACTIVATE may issue rank-wide (tRRD). */
    Tick nextActAllowed() const { return nextActAllowed_; }

    void
    noteActivate(Tick now, const DramTiming &t)
    {
        nextActAllowed_ = now + t.tRRD;
        noteBusy(now + t.tRC);
    }

    /** Record the completion tick of the latest operation on this rank. */
    void
    noteBusy(Tick doneAt)
    {
        if (doneAt > lastBusyEnd_)
            lastBusyEnd_ = doneAt;
    }

    /** When the rank last finished doing anything (for power-down). */
    Tick lastBusyEnd() const { return lastBusyEnd_; }

    /**
     * Stall every bank of the rank until `until` — the REFab all-bank
     * refresh semantics where one refresh blocks the whole rank.
     */
    void
    stallAllBanks(Tick until)
    {
        for (Bank &b : banks_)
            b.stallForRefresh(until);
    }

    /** Last tick background power was integrated up to. */
    Tick powerIntegratedTo() const { return powerIntegratedTo_; }
    void setPowerIntegratedTo(Tick t) { powerIntegratedTo_ = t; }

    /**
     * Advance the CBR internal refresh counter and return the
     * (bank, row) it selects. Consecutive refreshes walk banks first so
     * that back-to-back CBR refreshes land in different banks.
     */
    std::pair<std::uint32_t, std::uint32_t>
    nextCbrTarget()
    {
        auto target = peekCbrTarget();
        ++cbrCounter_;
        return target;
    }

    /**
     * The (bank, row) the CBR refresh `lookahead` commands from now would
     * target. lookahead 0 is the next one.
     */
    std::pair<std::uint32_t, std::uint32_t>
    peekCbrTarget(std::uint64_t lookahead = 0) const
    {
        const std::uint64_t idx = cbrCounter_ + lookahead;
        const std::uint32_t bank =
            static_cast<std::uint32_t>(idx % banksPerRank_);
        const std::uint32_t row =
            static_cast<std::uint32_t>((idx / banksPerRank_) % rows_);
        return {bank, row};
    }

    std::uint64_t cbrCounter() const { return cbrCounter_; }

  private:
    std::vector<Bank> banks_;
    std::uint32_t banksPerRank_;
    std::uint32_t rows_;
    Tick nextActAllowed_ = 0;
    Tick lastBusyEnd_ = 0;
    Tick powerIntegratedTo_ = 0;
    std::uint64_t cbrCounter_ = 0;
};

} // namespace smartref

/**
 * @file
 * Micron-methodology DRAM energy model (the approach DRAMsim follows).
 *
 * Per-command energies are derived from datasheet IDD current deltas times
 * VDD times the number of ganged devices; background energy is integrated
 * over time according to each rank's standby state. All energies are in
 * joules (double).
 */

#pragma once

#include "dram/dram_config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace smartref {

/** Standby condition of a rank for background-power purposes. */
enum class RankPowerState {
    PowerDown,        ///< all banks precharged, CKE low (IDD2P)
    PrechargeStandby, ///< all banks precharged, CKE high (IDD2N)
    ActiveStandby,    ///< at least one bank open (IDD3N)
};

/** Accumulates per-component DRAM energy for one module. */
class DramPowerModel : public StatGroup
{
  public:
    DramPowerModel(const DramConfig &cfg, StatGroup *parent);

    /** @name Per-event accounting (called by the device model). */
    ///@{
    void onActivatePair();                  ///< one ACT + eventual PRE
    void onRead();                          ///< one read burst
    void onWrite();                         ///< one write burst
    /**
     * One row refresh.
     * @param bankWasOpen the refresh had to close an open page first,
     *                    which costs an extra precharge-like energy
     *                    (the non-linearity the paper describes in §7.1)
     */
    void onRowRefresh(bool bankWasOpen);
    ///@}

    /** Integrate background energy for one rank over a time span. */
    void accountBackground(RankPowerState state, Tick duration);

    /** Add externally-computed overhead energy (bus, counter SRAM). */
    void addOverhead(double joules);

    /** @name Energy read-out (joules). */
    ///@{
    double activateEnergy() const { return actEnergy_.value(); }
    double readEnergy() const { return readEnergy_.value(); }
    double writeEnergy() const { return writeEnergy_.value(); }
    double refreshEnergy() const { return refreshEnergy_.value(); }
    double backgroundEnergy() const { return backgroundEnergy_.value(); }
    double overheadEnergy() const { return overheadEnergy_.value(); }

    /** Everything except refresh and overhead. */
    double
    nonRefreshEnergy() const
    {
        return activateEnergy() + readEnergy() + writeEnergy() +
               backgroundEnergy();
    }

    /** Total module energy including refresh and overheads. */
    double
    totalEnergy() const
    {
        return nonRefreshEnergy() + refreshEnergy() + overheadEnergy();
    }
    ///@}

    /** @name Refresh operation counts (for the energy ledger). */
    ///@{
    std::uint64_t
    refreshOpsClosed() const
    {
        return static_cast<std::uint64_t>(refreshOpsClosed_.value());
    }

    std::uint64_t
    refreshOpsOpen() const
    {
        return static_cast<std::uint64_t>(refreshOpsOpen_.value());
    }
    ///@}

    /** @name Per-command energy constants (joules), for tests. */
    ///@{
    double energyPerActivatePair() const { return eAct_; }
    double energyPerRead() const { return eRead_; }
    double energyPerWrite() const { return eWrite_; }
    double energyPerRowRefresh() const { return eRefresh_; }
    double energyOpenPagePenalty() const { return eRefreshOpenPenalty_; }
    double backgroundPower(RankPowerState state) const;
    ///@}

  private:
    double eAct_;
    double eRead_;
    double eWrite_;
    double eRefresh_;
    double eRefreshOpenPenalty_;
    double pPowerDown_;
    double pStandby_;
    double pActive_;

    Scalar actEnergy_;
    Scalar readEnergy_;
    Scalar writeEnergy_;
    Scalar refreshEnergy_;
    Scalar backgroundEnergy_;
    Scalar overheadEnergy_;
    Scalar refreshOpsClosed_;
    Scalar refreshOpsOpen_;
};

} // namespace smartref

/**
 * @file
 * The DRAM module (device) model: command legality, timing enforcement,
 * energy accounting and retention tracking for one DDR2-style module.
 *
 * The module is the timing *oracle*: the controller asks
 * earliestIssue(cmd) and only calls issue() at or after that tick. issue()
 * asserts legality, so scheduling bugs in a controller surface as panics
 * rather than silently wrong results.
 */

#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "dram/commands.hh"
#include "dram/dram_config.hh"
#include "dram/power_model.hh"
#include "dram/rank.hh"
#include "dram/retention_tracker.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace smartref {

class EnergyLedger;

/** One DRAM module with its ranks, banks, power and retention models. */
class DramModule : public StatGroup
{
  public:
    /**
     * @param cfg    validated module configuration
     * @param eq     event queue providing the time base
     * @param parent stat parent (may be null for standalone use)
     */
    DramModule(const DramConfig &cfg, EventQueue &eq,
               StatGroup *parent = nullptr);

    const DramConfig &config() const { return cfg_; }

    /** Earliest tick at which `cmd` may legally issue. */
    Tick earliestIssue(const DramCommand &cmd) const;

    /**
     * Issue a command at the current tick.
     * @return the completion tick (data available for reads; operation
     *         fully done for activate/precharge/refresh)
     */
    Tick issue(const DramCommand &cmd);

    /** @name Bank state inspection. */
    ///@{
    bool
    isBankOpen(std::uint32_t rank, std::uint32_t bank) const
    {
        return ranks_[rank].bank(bank).isOpen();
    }

    std::uint32_t
    openRow(std::uint32_t rank, std::uint32_t bank) const
    {
        return ranks_[rank].bank(bank).openRow();
    }
    ///@}

    /** Shared data bus availability. */
    Tick dataBusFreeAt() const { return dataBusFreeAt_; }

    /**
     * Tick until which an in-flight refresh blocks a demand access to
     * (rank, bank, row): the bank-level refresh busy window, any
     * all-bank (REFab) rank stall, and — in subarray modes — the
     * target row's subarray busy window. Controllers use this to
     * attribute demand-blocked-by-refresh ticks.
     */
    Tick
    refreshBlockedUntil(std::uint32_t rank, std::uint32_t bank,
                        std::uint32_t row) const
    {
        const Bank &b = ranks_[rank].bank(bank);
        Tick t = std::max(b.busyUntil(), b.refreshStall());
        if (parallelismUsesSubarrays(cfg_.parallelism))
            t = std::max(t, b.subarrayBusyUntil(cfg_.org.subarrayOf(row)));
        return t;
    }

    /**
     * Tick until which the target row's own subarray is busy with a
     * refresh (always 0 outside subarray modes). Used to count
     * subarray conflicts separately from bank-level blocking.
     */
    Tick
    subarrayBlockedUntil(std::uint32_t rank, std::uint32_t bank,
                         std::uint32_t row) const
    {
        if (!parallelismUsesSubarrays(cfg_.parallelism))
            return 0;
        const Bank &b = ranks_[rank].bank(bank);
        return b.subarrayBusyUntil(cfg_.org.subarrayOf(row));
    }

    /**
     * The (bank, row) a rank's CBR counter will select `lookahead`
     * refreshes from now. Controllers use this to route queued CBR
     * refreshes to the right bank before issue.
     */
    std::pair<std::uint32_t, std::uint32_t>
    peekCbrTarget(std::uint32_t rank, std::uint64_t lookahead = 0) const
    {
        return ranks_[rank].peekCbrTarget(lookahead);
    }

    DramPowerModel &power() { return power_; }
    const DramPowerModel &power() const { return power_; }

    RetentionTracker &retention() { return retention_; }
    const RetentionTracker &retention() const { return retention_; }

    /** @name Command counts. */
    ///@{
    std::uint64_t activates() const { return asU64(acts_); }
    std::uint64_t precharges() const { return asU64(pres_); }
    std::uint64_t reads() const { return asU64(reads_); }
    std::uint64_t writes() const { return asU64(writes_); }
    std::uint64_t cbrRefreshes() const { return asU64(cbrRefs_); }
    std::uint64_t rasOnlyRefreshes() const { return asU64(rasRefs_); }
    std::uint64_t
    totalRefreshes() const
    {
        return cbrRefreshes() + rasOnlyRefreshes();
    }
    ///@}

    /**
     * Attach an energy attribution ledger (pure observation; not
     * owned, must outlive the module). The ledger only sees events
     * from the point of attachment, so attach it before any traffic
     * or its conservation check will fail.
     */
    void setLedger(EnergyLedger *ledger) { ledger_ = ledger; }

    const EnergyLedger *ledger() const { return ledger_; }

    /**
     * Check the attached ledger against the power model's statistics
     * (no-op without a ledger). @return true when conserved; fatal
     * instead of returning false when @p fatalOnMismatch.
     */
    bool verifyLedger(bool fatalOnMismatch) const;

    /**
     * Integrate background power up to the current tick. Must be called
     * once at the end of a simulation before reading energies.
     */
    void finalize();

  private:
    static std::uint64_t
    asU64(const Scalar &s)
    {
        return static_cast<std::uint64_t>(s.value());
    }

    void checkAddress(const DramCommand &cmd) const;
    void integrateBackground(Rank &rank, Tick upTo);
    Tick issueRefresh(std::uint32_t rankIdx, std::uint32_t bankIdx,
                      std::uint32_t row, bool ras);
    Tick earliestRefresh(const Rank &rank, std::uint32_t bankIdx,
                         std::uint32_t row) const;

    DramConfig cfg_;
    EventQueue &eq_;
    std::vector<Rank> ranks_;
    Tick dataBusFreeAt_ = 0;
    EnergyLedger *ledger_ = nullptr;

    DramPowerModel power_;
    RetentionTracker retention_;

    Scalar acts_;
    Scalar pres_;
    Scalar reads_;
    Scalar writes_;
    Scalar cbrRefs_;
    Scalar rasRefs_;
    VectorStat refreshesPerBank_;

  public:
    /** Refreshes issued to one (rank, bank). */
    std::uint64_t
    refreshesToBank(std::uint32_t rank, std::uint32_t bank) const
    {
        return static_cast<std::uint64_t>(refreshesPerBank_.at(
            std::size_t(rank) * cfg_.org.banks + bank));
    }
};

} // namespace smartref

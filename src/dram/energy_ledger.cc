#include "dram/energy_ledger.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace smartref {

namespace {

/** Mirror of the power model's tick-to-seconds conversion. */
double
seconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

const char *kStateNames[3] = {"powerDown", "prechargeStandby",
                              "activeStandby"};

} // namespace

std::uint64_t
ulpDistance(double a, double b)
{
    if (a == b)
        return 0;
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<std::uint64_t>::max();
    // Map the bit patterns onto a monotonic integer line so adjacent
    // doubles (of either sign) differ by exactly 1.
    auto key = [](double x) {
        std::int64_t i;
        std::memcpy(&i, &x, sizeof(i));
        return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
    };
    const std::int64_t ia = key(a);
    const std::int64_t ib = key(b);
    return ia > ib ? static_cast<std::uint64_t>(ia) -
                         static_cast<std::uint64_t>(ib)
                   : static_cast<std::uint64_t>(ib) -
                         static_cast<std::uint64_t>(ia);
}

EnergyLedger::EnergyLedger(Shape shape, Tick interval)
    : shape_(shape), interval_(interval)
{
    SMARTREF_ASSERT(shape_.ranks > 0 && shape_.banks > 0,
                    "ledger shape must be non-empty");
    SMARTREF_ASSERT(interval_ > 0, "ledger interval must be positive");
}

EnergyLedger::Interval &
EnergyLedger::intervalAt(Tick t)
{
    const std::size_t idx = static_cast<std::size_t>(t / interval_);
    while (intervals_.size() <= idx) {
        Interval iv;
        iv.cells.resize(std::size_t(shape_.ranks) * shape_.banks);
        iv.background.resize(shape_.ranks);
        intervals_.push_back(std::move(iv));
    }
    return intervals_[idx];
}

EnergyLedger::Cell &
EnergyLedger::cellAt(Tick t, std::uint32_t rank, std::uint32_t bank)
{
    SMARTREF_ASSERT(rank < shape_.ranks && bank < shape_.banks,
                    "ledger cell (", rank, ",", bank, ") out of shape");
    return intervalAt(t).cells[std::size_t(rank) * shape_.banks + bank];
}

void
EnergyLedger::onActivate(Tick now, std::uint32_t rank,
                         std::uint32_t bank, double joules)
{
    eAct_ = joules;
    totals_.act += joules;
    ++cellAt(now, rank, bank).acts;
}

void
EnergyLedger::onRead(Tick now, std::uint32_t rank, std::uint32_t bank,
                     double joules)
{
    eRead_ = joules;
    totals_.read += joules;
    ++cellAt(now, rank, bank).reads;
}

void
EnergyLedger::onWrite(Tick now, std::uint32_t rank, std::uint32_t bank,
                      double joules)
{
    eWrite_ = joules;
    totals_.write += joules;
    ++cellAt(now, rank, bank).writes;
}

void
EnergyLedger::onRefresh(Tick now, std::uint32_t rank, std::uint32_t bank,
                        bool bankWasOpen, double joules,
                        double openPenaltyJoules)
{
    eRefresh_ = joules;
    ePenalty_ = openPenaltyJoules;
    // Two separate additions, exactly as DramPowerModel::onRowRefresh
    // performs them, so the shadow total stays bit-identical.
    totals_.refresh += joules;
    Cell &cell = cellAt(now, rank, bank);
    if (bankWasOpen) {
        totals_.refresh += openPenaltyJoules;
        ++cell.refreshesOpen;
    } else {
        ++cell.refreshesClosed;
    }
}

void
EnergyLedger::onBackground(Tick from, Tick upTo, std::uint32_t rank,
                           RankPowerState state, double watts)
{
    SMARTREF_ASSERT(rank < shape_.ranks, "ledger rank out of shape");
    if (upTo <= from)
        return;
    watts_[static_cast<std::size_t>(state)] = watts;
    // One multiply-then-add per hook, mirroring accountBackground().
    totals_.background += watts * seconds(upTo - from);

    // Split the residency exactly across interval buckets.
    Tick cur = from;
    while (cur < upTo) {
        const Tick bucketEnd = (cur / interval_ + 1) * interval_;
        const Tick end = upTo < bucketEnd ? upTo : bucketEnd;
        intervalAt(cur)
            .background[rank]
            .ticks[static_cast<std::size_t>(state)] += end - cur;
        cur = end;
    }
}

void
EnergyLedger::setOverhead(double joules)
{
    totals_.overhead = joules;
}

void
EnergyLedger::setChannels(std::uint32_t channels)
{
    SMARTREF_ASSERT(channels > 0 && shape_.ranks % channels == 0,
                    "channel count must divide the merged rank axis");
    channels_ = channels;
}

void
EnergyLedger::absorbChannel(const EnergyLedger &src,
                            std::uint32_t rankOffset)
{
    SMARTREF_ASSERT(src.shape_.banks == shape_.banks,
                    "absorbing a ledger with a different bank count");
    SMARTREF_ASSERT(rankOffset + src.shape_.ranks <= shape_.ranks,
                    "channel rank window out of the merged shape");
    SMARTREF_ASSERT(src.interval_ == interval_,
                    "absorbing a ledger with a different interval");

    for (std::size_t idx = 0; idx < src.intervals_.size(); ++idx) {
        const Interval &from = src.intervals_[idx];
        // Materialize the destination interval (and everything before
        // it) through the same lazy-growth path the hooks use.
        Interval &to = intervalAt(Tick(idx) * interval_);
        for (std::uint32_t r = 0; r < src.shape_.ranks; ++r) {
            for (std::uint32_t b = 0; b < shape_.banks; ++b) {
                const Cell &c =
                    from.cells[std::size_t(r) * shape_.banks + b];
                Cell &d = to.cells[std::size_t(rankOffset + r) *
                                       shape_.banks +
                                   b];
                d.acts += c.acts;
                d.reads += c.reads;
                d.writes += c.writes;
                d.refreshesClosed += c.refreshesClosed;
                d.refreshesOpen += c.refreshesOpen;
            }
            for (std::size_t s = 0; s < 3; ++s) {
                to.background[rankOffset + r].ticks[s] +=
                    from.background[r].ticks[s];
            }
        }
    }

    totals_.act += src.totals_.act;
    totals_.read += src.totals_.read;
    totals_.write += src.totals_.write;
    totals_.refresh += src.totals_.refresh;
    totals_.background += src.totals_.background;
    totals_.overhead += src.totals_.overhead;

    // Per-op energies and state powers are properties of the config,
    // identical across channels; adopt whatever the source learned.
    if (src.eAct_ != 0) eAct_ = src.eAct_;
    if (src.eRead_ != 0) eRead_ = src.eRead_;
    if (src.eWrite_ != 0) eWrite_ = src.eWrite_;
    if (src.eRefresh_ != 0) eRefresh_ = src.eRefresh_;
    if (src.ePenalty_ != 0) ePenalty_ = src.ePenalty_;
    for (std::size_t s = 0; s < 3; ++s)
        if (src.watts_[s] != 0) watts_[s] = src.watts_[s];
}

EnergyLedger::Cell
EnergyLedger::cellTotals() const
{
    Cell sum;
    for (const Interval &iv : intervals_) {
        for (const Cell &c : iv.cells) {
            sum.acts += c.acts;
            sum.reads += c.reads;
            sum.writes += c.writes;
            sum.refreshesClosed += c.refreshesClosed;
            sum.refreshesOpen += c.refreshesOpen;
        }
    }
    return sum;
}

ConservationReport
EnergyLedger::reconcile(const DramPowerModel &power, std::uint64_t acts,
                        std::uint64_t reads, std::uint64_t writes) const
{
    ConservationReport rep;
    auto fail = [&rep](std::string detail) {
        if (rep.pass) {
            rep.pass = false;
            rep.detail = std::move(detail);
        }
    };
    auto checkEnergy = [&](const char *name, double ledger,
                           double stat) {
        if (ulpDistance(ledger, stat) > 1) {
            std::ostringstream oss;
            oss.precision(std::numeric_limits<double>::max_digits10);
            oss << name << ": ledger " << ledger << " vs stat " << stat
                << " (" << ulpDistance(ledger, stat) << " ulp)";
            fail(oss.str());
        }
    };
    checkEnergy("actEnergy", totals_.act, power.activateEnergy());
    checkEnergy("readEnergy", totals_.read, power.readEnergy());
    checkEnergy("writeEnergy", totals_.write, power.writeEnergy());
    checkEnergy("refreshEnergy", totals_.refresh, power.refreshEnergy());
    checkEnergy("backgroundEnergy", totals_.background,
                power.backgroundEnergy());

    const Cell counts = cellTotals();
    auto checkCount = [&](const char *name, std::uint64_t ledger,
                          std::uint64_t stat) {
        if (ledger != stat) {
            std::ostringstream oss;
            oss << name << ": ledger " << ledger << " vs stat " << stat;
            fail(oss.str());
        }
    };
    checkCount("acts", counts.acts, acts);
    checkCount("reads", counts.reads, reads);
    checkCount("writes", counts.writes, writes);
    checkCount("refreshOpsClosed", counts.refreshesClosed,
               power.refreshOpsClosed());
    checkCount("refreshOpsOpen", counts.refreshesOpen,
               power.refreshOpsOpen());
    return rep;
}

void
EnergyLedger::writeJson(std::ostream &os,
                        const std::string &metaJson) const
{
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"schema\":\"smartref-ledger-v1\"";
    if (!metaJson.empty())
        os << ",\n \"meta\":" << metaJson;
    // Single-channel artifacts keep the historical byte-exact shape;
    // merged multi-channel views additionally carry the channel axis.
    os << ",\n \"shape\":{\"ranks\":" << shape_.ranks
       << ",\"banks\":" << shape_.banks;
    if (channels_ > 1)
        os << ",\"channels\":" << channels_;
    os << "}"
       << ",\n \"interval_ps\":" << interval_
       << ",\n \"energyPerOp\":{\"act\":" << eAct_
       << ",\"read\":" << eRead_ << ",\"write\":" << eWrite_
       << ",\"refresh\":" << eRefresh_ << ",\"openPenalty\":" << ePenalty_
       << "}";
    os << ",\n \"backgroundWatts\":{";
    for (std::size_t s = 0; s < 3; ++s)
        os << (s ? "," : "") << "\"" << kStateNames[s]
           << "\":" << watts_[s];
    os << "}";
    const Totals &t = totals_;
    os << ",\n \"totals\":{\"actEnergy\":" << t.act
       << ",\"readEnergy\":" << t.read << ",\"writeEnergy\":" << t.write
       << ",\"refreshEnergy\":" << t.refresh
       << ",\"backgroundEnergy\":" << t.background
       << ",\"overheadEnergy\":" << t.overhead
       << ",\"totalEnergy\":" << t.total() << "}";
    const Cell counts = cellTotals();
    os << ",\n \"counts\":{\"acts\":" << counts.acts
       << ",\"reads\":" << counts.reads << ",\"writes\":" << counts.writes
       << ",\"refreshesClosed\":" << counts.refreshesClosed
       << ",\"refreshesOpen\":" << counts.refreshesOpen << "}";

    os << ",\n \"intervals\":[";
    bool firstIv = true;
    for (std::size_t idx = 0; idx < intervals_.size(); ++idx) {
        const Interval &iv = intervals_[idx];
        os << (firstIv ? "" : ",") << "\n  {\"index\":" << idx
           << ",\"t0_ps\":" << Tick(idx) * interval_
           << ",\"t1_ps\":" << Tick(idx + 1) * interval_
           << ",\"cells\":[";
        firstIv = false;
        bool firstCell = true;
        for (std::uint32_t r = 0; r < shape_.ranks; ++r) {
            for (std::uint32_t b = 0; b < shape_.banks; ++b) {
                const Cell &c =
                    iv.cells[std::size_t(r) * shape_.banks + b];
                const std::uint64_t refreshes =
                    c.refreshesClosed + c.refreshesOpen;
                if (c.acts + c.reads + c.writes + refreshes == 0)
                    continue; // keep the artifact compact
                os << (firstCell ? "" : ",") << "{";
                if (channels_ > 1) {
                    const std::uint32_t per = shape_.ranks / channels_;
                    os << "\"channel\":" << r / per << ",\"rank\":"
                       << r % per;
                } else {
                    os << "\"rank\":" << r;
                }
                os << ",\"bank\":" << b << ",\"acts\":" << c.acts
                   << ",\"reads\":" << c.reads
                   << ",\"writes\":" << c.writes
                   << ",\"refreshesClosed\":" << c.refreshesClosed
                   << ",\"refreshesOpen\":" << c.refreshesOpen
                   << ",\"energy\":{\"act\":"
                   << static_cast<double>(c.acts) * eAct_
                   << ",\"read\":" << static_cast<double>(c.reads) * eRead_
                   << ",\"write\":"
                   << static_cast<double>(c.writes) * eWrite_
                   << ",\"refresh\":"
                   << (static_cast<double>(refreshes) * eRefresh_ +
                       static_cast<double>(c.refreshesOpen) * ePenalty_)
                   << "}}";
                firstCell = false;
            }
        }
        os << "],\"background\":[";
        for (std::uint32_t r = 0; r < shape_.ranks; ++r) {
            const RankBackground &bg = iv.background[r];
            double joules = 0;
            os << (r ? "," : "") << "{";
            if (channels_ > 1) {
                const std::uint32_t per = shape_.ranks / channels_;
                os << "\"channel\":" << r / per << ",\"rank\":" << r % per;
            } else {
                os << "\"rank\":" << r;
            }
            os << ",\"ticks\":{";
            for (std::size_t s = 0; s < 3; ++s) {
                os << (s ? "," : "") << "\"" << kStateNames[s]
                   << "\":" << bg.ticks[s];
                joules += watts_[s] * seconds(bg.ticks[s]);
            }
            os << "},\"energy\":" << joules << "}";
        }
        os << "]}";
    }
    os << "\n]}\n";
}

void
EnergyLedger::writeJson(const std::string &path,
                        const std::string &metaJson) const
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write ledger JSON '", path, "'");
    writeJson(out, metaJson);
}

void
EnergyLedger::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write ledger CSV '", path, "'");
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "interval,t0_ms,rank,bank,acts,reads,writes,"
           "refreshes_closed,refreshes_open,act_j,read_j,write_j,"
           "refresh_j\n";
    for (std::size_t idx = 0; idx < intervals_.size(); ++idx) {
        const Interval &iv = intervals_[idx];
        for (std::uint32_t r = 0; r < shape_.ranks; ++r) {
            for (std::uint32_t b = 0; b < shape_.banks; ++b) {
                const Cell &c =
                    iv.cells[std::size_t(r) * shape_.banks + b];
                const std::uint64_t refreshes =
                    c.refreshesClosed + c.refreshesOpen;
                if (c.acts + c.reads + c.writes + refreshes == 0)
                    continue;
                out << idx << ','
                    << static_cast<double>(Tick(idx) * interval_) /
                           static_cast<double>(kMillisecond)
                    << ',' << r << ',' << b << ',' << c.acts << ','
                    << c.reads << ',' << c.writes << ','
                    << c.refreshesClosed << ',' << c.refreshesOpen << ','
                    << static_cast<double>(c.acts) * eAct_ << ','
                    << static_cast<double>(c.reads) * eRead_ << ','
                    << static_cast<double>(c.writes) * eWrite_ << ','
                    << (static_cast<double>(refreshes) * eRefresh_ +
                        static_cast<double>(c.refreshesOpen) * ePenalty_)
                    << '\n';
            }
        }
    }
}

void
EnergyLedger::writeConservationCheckJson(
    const std::string &path, const std::string &powerPrefix,
    const std::string &metaJson) const
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write conservation check JSON '", path,
                       "'");
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "{\"schema\":\"smartref-ledger-check-v1\"";
    if (!metaJson.empty())
        out << ",\n \"meta\":" << metaJson;
    out << ",\n \"stats\":{";
    const Cell counts = cellTotals();
    bool first = true;
    auto stat = [&](const char *name, double v) {
        out << (first ? "" : ",") << "\n  \"" << powerPrefix << "."
            << name << "\":{\"value\":" << v << "}";
        first = false;
    };
    stat("actEnergy", totals_.act);
    stat("readEnergy", totals_.read);
    stat("writeEnergy", totals_.write);
    stat("refreshEnergy", totals_.refresh);
    stat("backgroundEnergy", totals_.background);
    stat("refreshOpsClosed",
         static_cast<double>(counts.refreshesClosed));
    stat("refreshOpsOpen", static_cast<double>(counts.refreshesOpen));
    out << "\n}}\n";
}

} // namespace smartref

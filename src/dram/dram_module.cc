#include "dram/dram_module.hh"

#include <algorithm>

#include "dram/energy_ledger.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

DramModule::DramModule(const DramConfig &cfg, EventQueue &eq,
                       StatGroup *parent)
    : StatGroup("dram." + cfg.name, parent),
      cfg_(cfg),
      eq_(eq),
      power_(cfg, this),
      retention_(cfg.org.ranks, cfg.org.banks, cfg.org.rows,
                 cfg.timing.retention, 20 * kMicrosecond, this),
      acts_(this, "activates", "ACTIVATE commands issued"),
      pres_(this, "precharges", "PRECHARGE commands issued"),
      reads_(this, "reads", "READ bursts issued"),
      writes_(this, "writes", "WRITE bursts issued"),
      cbrRefs_(this, "cbrRefreshes", "CBR refresh commands issued"),
      rasRefs_(this, "rasOnlyRefreshes",
               "RAS-only refresh commands issued"),
      refreshesPerBank_(this, "refreshesPerBank",
                        "refresh commands per (rank, bank)",
                        [&cfg] {
                            std::vector<std::string> labels;
                            for (std::uint32_t r = 0; r < cfg.org.ranks;
                                 ++r) {
                                for (std::uint32_t b = 0;
                                     b < cfg.org.banks; ++b) {
                                    labels.push_back(
                                        "r" + std::to_string(r) + "b" +
                                        std::to_string(b));
                                }
                            }
                            return labels;
                        }())
{
    cfg_.validate();
    ranks_.reserve(cfg_.org.ranks);
    for (std::uint32_t r = 0; r < cfg_.org.ranks; ++r)
        ranks_.emplace_back(cfg_.org);
}

void
DramModule::checkAddress(const DramCommand &cmd) const
{
    SMARTREF_ASSERT(cmd.rank < cfg_.org.ranks, "rank ", cmd.rank,
                    " out of range");
    SMARTREF_ASSERT(cmd.bank < cfg_.org.banks, "bank ", cmd.bank,
                    " out of range");
    SMARTREF_ASSERT(cmd.row < cfg_.org.rows, "row ", cmd.row,
                    " out of range");
    SMARTREF_ASSERT(cmd.column < cfg_.org.columns, "column ", cmd.column,
                    " out of range");
}

Tick
DramModule::earliestRefresh(const Rank &rank, std::uint32_t bankIdx,
                            std::uint32_t row) const
{
    const Bank &bank = rank.bank(bankIdx);
    if (parallelismUsesSubarrays(cfg_.parallelism)) {
        // SARP: the refresh only needs its target subarray free (plus
        // a precharge window when it lands in the open row's own
        // subarray); demand in other subarrays keeps flowing.
        Tick earliest = std::max(
            {bank.refreshStall(), bank.busyUntil(),
             bank.subarrayBusyUntil(cfg_.org.subarrayOf(row))});
        if (bank.isOpen() && cfg_.refreshClosesPage(bank.openRow(), row))
            earliest = std::max(earliest, bank.preAllowedAt());
        return earliest;
    }
    Tick earliest = std::max({bank.actAllowedAt(), bank.busyUntil(),
                              bank.refreshStall()});
    if (bank.isOpen())
        earliest = std::max(earliest, bank.preAllowedAt());
    return earliest;
}

Tick
DramModule::earliestIssue(const DramCommand &cmd) const
{
    const Rank &rank = ranks_[cmd.rank];
    const Bank &bank = rank.bank(cmd.bank);

    switch (cmd.type) {
      case DramCommandType::Activate: {
        Tick earliest = std::max({bank.actAllowedAt(), bank.busyUntil(),
                                  rank.nextActAllowed(),
                                  bank.refreshStall()});
        if (parallelismUsesSubarrays(cfg_.parallelism)) {
            const std::uint32_t sub = cfg_.org.subarrayOf(cmd.row);
            earliest = std::max(earliest, bank.subarrayBusyUntil(sub));
            if (!cfg_.hiraConcurrentActivation) {
                // Without HiRA's isolated local bitlines, an ACT may
                // not start in the same tRRD window as an in-flight
                // refresh of another subarray (shared peripherals),
                // but need not wait for the whole refresh.
                const Tick anyBusy = bank.maxSubarrayBusyUntil();
                if (anyBusy > earliest) {
                    earliest = std::max(
                        earliest,
                        std::min(anyBusy, bank.lastRefreshStart() +
                                              cfg_.timing.tRRD));
                }
            }
        }
        return earliest;
      }
      case DramCommandType::Precharge:
        return std::max(bank.preAllowedAt(), bank.refreshStall());
      case DramCommandType::Read:
      case DramCommandType::Write: {
        // The data bus is busy [issue + tCL, issue + tCL + tBurst); the
        // next burst may not start before the bus frees up.
        const Tick busConstraint = dataBusFreeAt_ > cfg_.timing.tCL
                                       ? dataBusFreeAt_ - cfg_.timing.tCL
                                       : Tick(0);
        return std::max({bank.rdWrAllowedAt(), busConstraint,
                         bank.refreshStall()});
      }
      case DramCommandType::RefreshCbr: {
        const auto [b, row] = rank.peekCbrTarget();
        return earliestRefresh(rank, b, row);
      }
      case DramCommandType::RefreshRasOnly:
        return earliestRefresh(rank, cmd.bank, cmd.row);
    }
    SMARTREF_PANIC("unknown command type");
}

Tick
DramModule::issue(const DramCommand &cmd)
{
    const Tick now = eq_.now();
    Rank &rank = ranks_[cmd.rank];
    const Tick earliest = earliestIssue(cmd);
    SMARTREF_ASSERT(now >= earliest, toString(cmd.type),
                    " issued at ", now, " before earliest ", earliest);

    integrateBackground(rank, now);

    switch (cmd.type) {
      case DramCommandType::Activate: {
        checkAddress(cmd);
        Bank &bank = rank.bank(cmd.bank);
        SMARTREF_ASSERT(!bank.isOpen(), "ACT into open bank");
        retention_.onActivate(cmd.rank, cmd.bank, cmd.row, now);
        bank.activate(cmd.row, now, cfg_.timing);
        rank.noteActivate(now, cfg_.timing);
        power_.onActivatePair();
        if (ledger_) {
            ledger_->onActivate(now, cmd.rank, cmd.bank,
                                power_.energyPerActivatePair());
        }
        ++acts_;
        SMARTREF_TRACE(TraceCategory::Dram, now, "ACT", cmd.rank,
                       cmd.bank, cmd.row, 0.0, cfg_.timing.tRCD);
        return now + cfg_.timing.tRCD;
      }
      case DramCommandType::Precharge: {
        Bank &bank = rank.bank(cmd.bank);
        SMARTREF_ASSERT(bank.isOpen(), "PRE into precharged bank");
        const Tick done = now + cfg_.timing.tRP;
        retention_.onRestore(cmd.rank, cmd.bank, bank.openRow(), done);
        SMARTREF_TRACE(TraceCategory::Dram, now, "PRE", cmd.rank,
                       cmd.bank, bank.openRow(), 0.0, cfg_.timing.tRP);
        bank.precharge(now, cfg_.timing);
        rank.noteBusy(done);
        ++pres_;
        return done;
      }
      case DramCommandType::Read:
      case DramCommandType::Write: {
        checkAddress(cmd);
        Bank &bank = rank.bank(cmd.bank);
        SMARTREF_ASSERT(bank.isOpen() && bank.openRow() == cmd.row,
                        "column access to row ", cmd.row,
                        " but open row is ",
                        bank.isOpen() ? bank.openRow() : ~0u);
        const Tick done = now + cfg_.timing.tCL + cfg_.timing.tBurst;
        dataBusFreeAt_ = done;
        SMARTREF_TRACE(TraceCategory::Dram, now,
                       cmd.type == DramCommandType::Read ? "RD" : "WR",
                       cmd.rank, cmd.bank, cmd.row, cmd.column,
                       done - now);
        if (cmd.type == DramCommandType::Read) {
            bank.read(now, cfg_.timing);
            power_.onRead();
            if (ledger_) {
                ledger_->onRead(now, cmd.rank, cmd.bank,
                                power_.energyPerRead());
            }
            ++reads_;
            rank.noteBusy(done);
        } else {
            bank.write(now, cfg_.timing);
            power_.onWrite();
            if (ledger_) {
                ledger_->onWrite(now, cmd.rank, cmd.bank,
                                 power_.energyPerWrite());
            }
            ++writes_;
            rank.noteBusy(done + cfg_.timing.tWR);
        }
        return done;
      }
      case DramCommandType::RefreshCbr: {
        const auto [b, row] = rank.nextCbrTarget();
        ++cbrRefs_;
        return issueRefresh(cmd.rank, b, row, false);
      }
      case DramCommandType::RefreshRasOnly: {
        checkAddress(cmd);
        ++rasRefs_;
        return issueRefresh(cmd.rank, cmd.bank, cmd.row, true);
      }
    }
    SMARTREF_PANIC("unknown command type");
}

Tick
DramModule::issueRefresh(std::uint32_t rankIdx, std::uint32_t bankIdx,
                         std::uint32_t row, bool ras)
{
    (void)ras; // only read when tracing is compiled in
    const Tick now = eq_.now();
    Rank &rank = ranks_[rankIdx];
    Bank &bank = rank.bank(bankIdx);

    // In subarray modes only a refresh landing in the open row's own
    // subarray implicitly precharges the page; otherwise the page
    // survives and the refresh carries no open-page penalty. The same
    // predicate drives the controller's row-closed notifications.
    const bool closesPage =
        bank.isOpen() && cfg_.refreshClosesPage(bank.openRow(), row);
    if (closesPage) {
        // Closing the page restores the displaced row's charge.
        retention_.onRestore(rankIdx, bankIdx, bank.openRow(),
                             now + cfg_.timing.tRP);
    }
    const Tick done =
        parallelismUsesSubarrays(cfg_.parallelism)
            ? bank.refreshSubarray(cfg_.org.subarrayOf(row), now,
                                   cfg_.timing, closesPage)
            : bank.refresh(now, cfg_.timing, closesPage);
    retention_.onRefresh(rankIdx, bankIdx, row, done);
    power_.onRowRefresh(closesPage);
    if (ledger_) {
        ledger_->onRefresh(now, rankIdx, bankIdx, closesPage,
                           power_.energyPerRowRefresh(),
                           power_.energyOpenPagePenalty());
    }
    SMARTREF_TRACE(TraceCategory::Dram, now,
                   ras ? "REF.ras" : "REF.cbr", rankIdx, bankIdx, row,
                   closesPage ? 1.0 : 0.0, done - now);
    refreshesPerBank_[std::size_t(rankIdx) * cfg_.org.banks + bankIdx] +=
        1.0;
    if (cfg_.parallelism == RefreshParallelism::None)
        rank.stallAllBanks(done); // REFab: the whole rank stalls
    rank.noteBusy(done);
    return done;
}

void
DramModule::integrateBackground(Rank &rank, Tick upTo)
{
    const Tick from = rank.powerIntegratedTo();
    if (upTo <= from)
        return;
    rank.setPowerIntegratedTo(upTo);

    const auto rankIdx =
        static_cast<std::uint32_t>(&rank - ranks_.data());
    auto account = [&](RankPowerState state, Tick begin, Tick end) {
        power_.accountBackground(state, end - begin);
        if (ledger_) {
            ledger_->onBackground(begin, end, rankIdx, state,
                                  power_.backgroundPower(state));
        }
    };

    if (rank.anyBankOpen()) {
        account(RankPowerState::ActiveStandby, from, upTo);
        return;
    }
    if (!cfg_.allowPowerDown) {
        account(RankPowerState::PrechargeStandby, from, upTo);
        return;
    }
    // All banks precharged: the rank idles in standby for powerDownDelay
    // after its last activity, then drops into power-down.
    const Tick pdStart = rank.lastBusyEnd() + cfg_.timing.powerDownDelay;
    const Tick standbyEnd = std::clamp(pdStart, from, upTo);
    if (standbyEnd > from)
        account(RankPowerState::PrechargeStandby, from, standbyEnd);
    if (upTo > standbyEnd)
        account(RankPowerState::PowerDown, standbyEnd, upTo);
}

bool
DramModule::verifyLedger(bool fatalOnMismatch) const
{
    if (!ledger_)
        return true;
    const ConservationReport rep = ledger_->reconcile(
        power_, activates(), reads(), writes());
    if (!rep.pass && fatalOnMismatch) {
        SMARTREF_FATAL("energy ledger conservation violated on '",
                       statName(), "': ", rep.detail);
    }
    return rep.pass;
}

void
DramModule::finalize()
{
    for (Rank &rank : ranks_)
        integrateBackground(rank, eq_.now());
#ifndef NDEBUG
    // SMARTREF_ASSERT is always compiled in, so the debug-only
    // conservation invariant is gated explicitly.
    if (!verifyLedger(true))
        SMARTREF_PANIC("energy ledger conservation violated");
#endif
}

} // namespace smartref

/**
 * @file
 * Shadow model of DRAM cell charge age, used to *prove* refresh-policy
 * correctness (paper Section 4.3) rather than assume it.
 *
 * Semantics follow the physical device:
 *  - An ACTIVATE destructively reads a row into the sense amplifiers; the
 *    data is only valid if the charge age at that instant is within the
 *    retention limit. While the row is open, the amplifiers (static) hold
 *    the data, so age does not advance for data-validity purposes.
 *  - A PRECHARGE writes the open row back, restoring full charge.
 *  - A REFRESH is an activate-restore of one row: it both checks the age
 *    and restores the charge.
 *
 * A small configurable slack absorbs the bounded dispatch latency of the
 * pending-refresh queue (at most queue-depth row-refresh times plus one
 * in-flight data burst, i.e. well under the default 20 us).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace smartref {

/** Tracks last-restore time of every (rank, bank, row) in a module. */
class RetentionTracker : public StatGroup
{
  public:
    /**
     * @param ranks/banks/rows module organization
     * @param retention       the retention deadline in ticks
     * @param slack           dispatch-latency allowance added to the limit
     * @param parent          stat group parent (may be null)
     */
    RetentionTracker(std::uint32_t ranks, std::uint32_t banks,
                     std::uint32_t rows, Tick retention,
                     Tick slack = 20 * kMicrosecond,
                     StatGroup *parent = nullptr);

    /** Row is being activated (demand access): validate its charge age. */
    void onActivate(std::uint32_t rank, std::uint32_t bank,
                    std::uint32_t row, Tick now);

    /** Row charge has been fully restored (precharge writeback). */
    void onRestore(std::uint32_t rank, std::uint32_t bank,
                   std::uint32_t row, Tick now);

    /** Row is refreshed: validate then restore; records refresh age. */
    void onRefresh(std::uint32_t rank, std::uint32_t bank,
                   std::uint32_t row, Tick now);

    /**
     * Validate that every row would still be refreshable at `now`,
     * i.e. no row's age exceeds the limit. Call at end of simulation.
     * @return number of stale rows found (also accumulated in stats)
     */
    std::uint64_t finalCheck(Tick now);

    /**
     * Apply per-row retention multipliers (RAPID-style classes): row
     * `idx`'s deadline becomes multipliers[idx] x the nominal limit.
     * The vector is indexed by flat (rank, bank, row) order and must
     * cover every row.
     */
    void applyClassMultipliers(const std::vector<std::uint8_t> &m);

    /** The retention limit of one specific row. */
    Tick
    rowLimit(std::uint32_t rank, std::uint32_t bank,
             std::uint32_t row) const
    {
        return limitOf(index(rank, bank, row));
    }

    /** Number of retention violations observed (must stay 0). */
    std::uint64_t violations() const;

    /** Largest charge age ever observed at a check (ticks). */
    Tick maxObservedAge() const { return maxAge_; }

    /** Smallest age observed at a *refresh* (ticks); 0 if none yet. */
    Tick minRefreshAge() const { return minRefreshAge_; }

    /** Mean age at refresh operations (ticks). */
    double meanRefreshAge() const;

    /**
     * Measured refresh optimality: mean refresh age / retention limit.
     * The paper's analytic bound is 1 - 1/2^bits for the worst case.
     */
    double measuredOptimality() const;

    Tick retentionLimit() const { return retention_; }

  private:
    std::uint64_t
    index(std::uint32_t rank, std::uint32_t bank, std::uint32_t row) const
    {
        return (std::uint64_t(rank) * banks_ + bank) * rows_ + row;
    }

    void check(std::uint64_t idx, Tick now, bool isRefresh);

    Tick
    limitOf(std::uint64_t idx) const
    {
        return multipliers_.empty() ? retention_
                                    : retention_ * multipliers_[idx];
    }

    std::uint32_t ranks_, banks_, rows_;
    Tick retention_;
    Tick slack_;
    std::vector<Tick> lastRestore_;
    std::vector<std::uint8_t> multipliers_; ///< empty = uniform 1x

    Tick maxAge_ = 0;
    Tick minRefreshAge_ = 0;
    bool anyRefresh_ = false;
    double refreshAgeSum_ = 0.0;
    std::uint64_t refreshAgeCount_ = 0;

    Scalar violationCount_;
    Scalar checksPerformed_;
};

} // namespace smartref

/**
 * @file
 * Refresh-access parallelism modes (REFab/REFpb/DARP/SARP/DSARP).
 *
 * The mode decides how much of the device a refresh blocks and how the
 * controller may reorder refreshes around demand traffic, following
 * Chang et al., "Improving DRAM Performance by Parallelizing Refreshes
 * with Accesses" (HPCA 2014) and HiRA (MICRO 2022):
 *
 *  - None  (REFab): an all-bank refresh stalls every bank of the rank
 *    for the duration of the row refresh. The pessimistic baseline.
 *  - PerBank (REFpb): a refresh occupies only its own bank; other
 *    banks keep serving demand. This matches the repo's historical
 *    behaviour and is therefore the default.
 *  - Darp: REFpb plus out-of-order per-bank scheduling — the
 *    controller pulls refreshes into demand-idle banks and piggybacks
 *    them behind write drains, holding them briefly otherwise.
 *  - Sarp: REFpb plus a subarray model — demand accesses proceed in
 *    subarrays of the bank that are not being refreshed.
 *  - DSarp: DARP and SARP combined (the paper's DSARP; CLI name
 *    "all").
 */

#pragma once

#include <string>

namespace smartref {

enum class RefreshParallelism
{
    None,    ///< all-bank refresh: the whole rank stalls ("none")
    PerBank, ///< per-bank refresh, in-order ("refpb", default)
    Darp,    ///< per-bank + demand-aware reordering ("darp")
    Sarp,    ///< per-bank + subarray-level parallelism ("sarp")
    DSarp,   ///< DARP + SARP combined ("all")
};

const char *toString(RefreshParallelism p);

/** Parse a CLI/grid name; fatal on unknown names (lists valid ones). */
RefreshParallelism parallelismFromString(const std::string &name);

/** True when the mode reorders refreshes around demand (DARP layer). */
inline bool
parallelismUsesDarp(RefreshParallelism p)
{
    return p == RefreshParallelism::Darp || p == RefreshParallelism::DSarp;
}

/** True when the mode models subarrays under each bank (SARP layer). */
inline bool
parallelismUsesSubarrays(RefreshParallelism p)
{
    return p == RefreshParallelism::Sarp || p == RefreshParallelism::DSarp;
}

} // namespace smartref

#include "dram/retention_classes.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace smartref {

RetentionClassMap::RetentionClassMap(std::uint64_t totalRows,
                                     const RetentionClassParams &params)
    : params_(params), multipliers_(totalRows, 1)
{
    SMARTREF_ASSERT(!params.classes.empty(), "no retention classes");
    double fracSum = 0.0;
    std::uint32_t prev = 0;
    for (const auto &[mult, frac] : params.classes) {
        SMARTREF_ASSERT(mult > prev, "multipliers must ascend");
        SMARTREF_ASSERT((mult & (mult - 1)) == 0,
                        "multiplier ", mult, " must be a power of two");
        SMARTREF_ASSERT(mult <= 255, "multiplier too large");
        SMARTREF_ASSERT(frac >= 0.0, "negative class fraction");
        fracSum += frac;
        prev = mult;
        maxMultiplier_ = mult;
    }
    SMARTREF_ASSERT(std::abs(fracSum - 1.0) < 1e-9,
                    "class fractions must sum to 1, got ", fracSum);

    Rng rng(params.seed);
    for (auto &m : multipliers_) {
        double pick = rng.nextDouble();
        for (const auto &[mult, frac] : params.classes) {
            if (pick < frac) {
                m = static_cast<std::uint8_t>(mult);
                break;
            }
            pick -= frac;
            m = static_cast<std::uint8_t>(mult); // numeric tail safety
        }
    }
}

std::uint64_t
RetentionClassMap::population(std::uint32_t multiplier) const
{
    std::uint64_t n = 0;
    for (std::uint8_t m : multipliers_)
        n += (m == multiplier);
    return n;
}

double
RetentionClassMap::idealRefreshRate(Tick nominalRetention) const
{
    const double nominalSec = static_cast<double>(nominalRetention) /
                              static_cast<double>(kSecond);
    double rate = 0.0;
    for (const auto &[mult, frac] : params_.classes) {
        rate += frac * static_cast<double>(multipliers_.size()) /
                (nominalSec * mult);
    }
    return rate;
}

} // namespace smartref

#include "dram/retention_tracker.hh"

#include "sim/logging.hh"

namespace smartref {

RetentionTracker::RetentionTracker(std::uint32_t ranks, std::uint32_t banks,
                                   std::uint32_t rows, Tick retention,
                                   Tick slack, StatGroup *parent)
    : StatGroup("retention", parent),
      ranks_(ranks), banks_(banks), rows_(rows),
      retention_(retention), slack_(slack),
      lastRestore_(std::uint64_t(ranks) * banks * rows, 0),
      violationCount_(this, "violations",
                      "charge-age checks that exceeded the retention limit"),
      checksPerformed_(this, "checks", "charge-age checks performed")
{
    SMARTREF_ASSERT(retention_ > 0, "zero retention limit");
}

void
RetentionTracker::applyClassMultipliers(
    const std::vector<std::uint8_t> &m)
{
    SMARTREF_ASSERT(m.size() == lastRestore_.size(),
                    "class map covers ", m.size(), " rows, module has ",
                    lastRestore_.size());
    multipliers_ = m;
}

void
RetentionTracker::check(std::uint64_t idx, Tick now, bool isRefresh)
{
    const Tick age = now - lastRestore_[idx];
    ++checksPerformed_;
    if (age > maxAge_)
        maxAge_ = age;
    if (isRefresh) {
        if (!anyRefresh_ || age < minRefreshAge_)
            minRefreshAge_ = age;
        anyRefresh_ = true;
        refreshAgeSum_ += static_cast<double>(age);
        ++refreshAgeCount_;
    }
    if (age > limitOf(idx) + slack_)
        ++violationCount_;
}

void
RetentionTracker::onActivate(std::uint32_t rank, std::uint32_t bank,
                             std::uint32_t row, Tick now)
{
    check(index(rank, bank, row), now, false);
}

void
RetentionTracker::onRestore(std::uint32_t rank, std::uint32_t bank,
                            std::uint32_t row, Tick now)
{
    lastRestore_[index(rank, bank, row)] = now;
}

void
RetentionTracker::onRefresh(std::uint32_t rank, std::uint32_t bank,
                            std::uint32_t row, Tick now)
{
    const std::uint64_t idx = index(rank, bank, row);
    check(idx, now, true);
    lastRestore_[idx] = now;
}

std::uint64_t
RetentionTracker::finalCheck(Tick now)
{
    std::uint64_t stale = 0;
    for (std::uint64_t idx = 0; idx < lastRestore_.size(); ++idx) {
        // Restores are recorded at operation *completion* ticks, which
        // may land just past the simulation horizon; those rows are
        // fresh by construction.
        const Tick t = lastRestore_[idx];
        const Tick age = t >= now ? 0 : now - t;
        if (age > maxAge_)
            maxAge_ = age;
        if (age > limitOf(idx) + slack_)
            ++stale;
    }
    violationCount_ += static_cast<double>(stale);
    return stale;
}

std::uint64_t
RetentionTracker::violations() const
{
    return static_cast<std::uint64_t>(violationCount_.value());
}

double
RetentionTracker::meanRefreshAge() const
{
    return refreshAgeCount_
               ? refreshAgeSum_ / static_cast<double>(refreshAgeCount_)
               : 0.0;
}

double
RetentionTracker::measuredOptimality() const
{
    return meanRefreshAge() / static_cast<double>(retention_);
}

} // namespace smartref

/**
 * @file
 * Per-bank state machine and timing window bookkeeping.
 *
 * A bank is either precharged (no open row) or active (one open row in the
 * sense amplifiers). The bank records the earliest tick at which each
 * command class may legally be issued; the device model consults these to
 * answer earliest-issue queries and updates them on every issue.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "dram/dram_config.hh"
#include "sim/types.hh"

namespace smartref {

/** Timing and row state of a single DRAM bank. */
class Bank
{
  public:
    bool isOpen() const { return open_; }
    std::uint32_t openRow() const { return openRow_; }

    /** Earliest tick an ACTIVATE may issue. */
    Tick actAllowedAt() const { return actAllowedAt_; }
    /** Earliest tick a READ/WRITE to the open row may issue. */
    Tick rdWrAllowedAt() const { return rdWrAllowedAt_; }
    /** Earliest tick a PRECHARGE may issue. */
    Tick preAllowedAt() const { return preAllowedAt_; }
    /** Tick until which the bank is busy with a refresh. */
    Tick busyUntil() const { return busyUntil_; }

    /**
     * Tick until which an all-bank (REFab) refresh elsewhere in the
     * rank stalls this bank. Kept separate from the per-command
     * windows so refresh-blocked ticks stay attributable.
     */
    Tick refreshStall() const { return refreshStall_; }

    void
    stallForRefresh(Tick until)
    {
        refreshStall_ = maxTick(refreshStall_, until);
    }

    /** Size the per-subarray busy table (SARP modes only). */
    void configureSubarrays(std::uint32_t n) { subarrayBusyUntil_.assign(n, 0); }

    /** Tick until which subarray `sub` is busy with a refresh. */
    Tick
    subarrayBusyUntil(std::uint32_t sub) const
    {
        return sub < subarrayBusyUntil_.size() ? subarrayBusyUntil_[sub]
                                               : Tick(0);
    }

    /** Latest busy-until across all subarrays. */
    Tick
    maxSubarrayBusyUntil() const
    {
        Tick m = 0;
        for (Tick t : subarrayBusyUntil_)
            m = maxTick(m, t);
        return m;
    }

    /** Issue tick of the most recent subarray refresh. */
    Tick lastRefreshStart() const { return lastRefreshStart_; }

    /** Apply an ACTIVATE issued at `now`. */
    void
    activate(std::uint32_t row, Tick now, const DramTiming &t)
    {
        open_ = true;
        openRow_ = row;
        rdWrAllowedAt_ = now + t.tRCD;
        preAllowedAt_ = now + t.tRAS;
        actAllowedAt_ = now + t.tRC;
    }

    /** Apply a PRECHARGE issued at `now`. */
    void
    precharge(Tick now, const DramTiming &t)
    {
        open_ = false;
        actAllowedAt_ = maxTick(actAllowedAt_, now + t.tRP);
    }

    /** Apply a READ burst issued at `now`. */
    void
    read(Tick now, const DramTiming &t)
    {
        preAllowedAt_ = maxTick(preAllowedAt_, now + t.tRTP);
    }

    /** Apply a WRITE burst issued at `now`. */
    void
    write(Tick now, const DramTiming &t)
    {
        preAllowedAt_ =
            maxTick(preAllowedAt_, now + t.tCL + t.tBurst + t.tWR);
    }

    /**
     * Apply a row refresh issued at `now`.
     * @param closedOpenPage the refresh implicitly closed an open page,
     *        adding a precharge before the refresh proper
     * @return completion tick of the refresh
     */
    Tick
    refresh(Tick now, const DramTiming &t, bool closedOpenPage)
    {
        open_ = false;
        const Tick done =
            now + (closedOpenPage ? t.tRP : Tick(0)) + t.tRFCrow;
        busyUntil_ = done;
        actAllowedAt_ = maxTick(actAllowedAt_, done);
        return done;
    }

    /**
     * Apply a SARP subarray refresh issued at `now`: only the target
     * subarray becomes busy; the bank-level windows are left alone so
     * demand can proceed in other subarrays.
     * @param closesOwnPage the open page lives in the refreshed
     *        subarray, so the refresh implicitly precharges it
     * @return completion tick of the refresh
     */
    Tick
    refreshSubarray(std::uint32_t sub, Tick now, const DramTiming &t,
                    bool closesOwnPage)
    {
        const Tick done =
            now + (closesOwnPage ? t.tRP : Tick(0)) + t.tRFCrow;
        if (closesOwnPage)
            open_ = false;
        if (sub < subarrayBusyUntil_.size())
            subarrayBusyUntil_[sub] = maxTick(subarrayBusyUntil_[sub], done);
        lastRefreshStart_ = now;
        return done;
    }

  private:
    static Tick maxTick(Tick a, Tick b) { return a > b ? a : b; }

    bool open_ = false;
    std::uint32_t openRow_ = 0;
    Tick actAllowedAt_ = 0;
    Tick rdWrAllowedAt_ = 0;
    Tick preAllowedAt_ = 0;
    Tick busyUntil_ = 0;
    Tick refreshStall_ = 0;
    Tick lastRefreshStart_ = 0;
    std::vector<Tick> subarrayBusyUntil_;
};

} // namespace smartref

/**
 * @file
 * Content-addressed sweep result store — the storage layer of the
 * sweep subsystem (spec: harness/sweep_spec.hh, execution:
 * harness/sweep.hh).
 *
 * Every expanded grid point has a canonical simulation-semantic
 * identity string (jobCacheCanonical: build fingerprint + pointKey +
 * seed + the run options that change simulated results). Its FNV-1a
 * hash, as 16 lowercase hex digits, is the cache key; the finished
 * ComparisonResult lands under `<dir>/<hex[0:2]>/<hex>.json` as one
 * JSON blob. Because sweep aggregates are byte-identical for any
 * -j/-shard-jobs, a stored result is *the* result of that point — the
 * same memoization contract the paper applies in silicon (a refresh
 * whose work was already done by an access is skipped) lifted to the
 * experiment-serving layer: never re-simulate a (config, seed, build)
 * point whose result already exists.
 *
 * Robustness contract:
 *  - writes go to a per-process temp file and are atomically renamed
 *    into place, so concurrent writers (parallel sweeps, several
 *    sweepd workers) can race on the same key and readers still only
 *    ever see complete entries;
 *  - a truncated, corrupt, schema-mismatched or key-mismatched entry
 *    is a miss (counted in stats().corrupt) and is overwritten by the
 *    recompute — never a crash;
 *  - eviction (pruneToBytes) drops least-recently-used entries first;
 *    lookups bump an entry's mtime so hot grid points survive.
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace smartref {

/** A cache key: the canonical identity string and its hex64 hash. */
struct ResultCacheKey
{
    std::string canonical; ///< jobCacheCanonical(job, opts)
    std::string hex;       ///< hex64(fnv1a64(canonical))
};

/** Key of one job under the given run options. */
ResultCacheKey resultCacheKey(const SweepJob &job,
                              const SweepRunOptions &opts);

/** Hit/miss/store accounting of one ResultCache instance. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    ///< absent entries
    std::uint64_t corrupt = 0;   ///< present but unusable (also a miss)
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t verified = 0;  ///< hits re-simulated by --cache-verify
};

/**
 * One cache directory. All methods are thread-safe: the sweep runner
 * probes on the calling thread but stores from pool workers.
 */
class ResultCache
{
  public:
    /** Opens (and creates, if needed) the cache root directory. */
    explicit ResultCache(const std::string &dir);

    const std::string &dir() const { return dir_; }

    /**
     * Probe one key. On a valid entry: fills `out` (the caller must
     * re-stamp out.job with the grid-local job — the entry stores the
     * point/seed, not a grid index), bumps the entry's mtime, counts a
     * hit, returns true. Anything else — absent, truncated, corrupt,
     * wrong schema, wrong key — counts a miss and returns false.
     */
    bool lookup(const ResultCacheKey &key, SweepJobResult &out);

    /**
     * Store one finished job result under `key` via write-to-temp +
     * atomic rename. Heatmaps and profile JSON are not stored (both
     * are per-run observations, not the deterministic result).
     */
    void store(const ResultCacheKey &key, const SweepJob &job,
               const SweepJobResult &result);

    /**
     * Evict least-recently-used entries until the cache holds at most
     * `maxBytes` of entry blobs. Returns the number evicted.
     */
    std::uint64_t pruneToBytes(std::uint64_t maxBytes);

    /** Count a --cache-verify recompute (runSweep bookkeeping). */
    void countVerified();

    ResultCacheStats stats() const;

    /** Entry blob path of a full 16-hex key. */
    std::string entryPath(const std::string &hex) const;

    /**
     * All stored keys starting with `prefix` (lowercase hex), sorted.
     * The resolution primitive behind `smartref_statdiff cache:<key>`.
     */
    std::vector<std::string> matchPrefix(const std::string &prefix) const;

    /**
     * Default cache root: $SMARTREF_CACHE_DIR, else
     * $XDG_CACHE_HOME/smartref, else $HOME/.cache/smartref, else
     * ./.smartref-cache.
     */
    static std::string defaultDir();

    /**
     * Deterministic JSON of a comparison (both RunResults, full
     * precision) — the entry payload, and the equality witness
     * --cache-verify compares a hit against a fresh recompute with.
     */
    static std::string comparisonJson(const ComparisonResult &c);

  private:
    std::string dir_;
    mutable std::mutex mu_;
    ResultCacheStats stats_;
};

} // namespace smartref

/**
 * @file
 * Per-channel event-engine sharding for server-scale configurations.
 *
 * A DramConfig with `channels > 1` describes that many *isolated*
 * per-channel memory systems: each channel owns its own event queue,
 * memory controller, DRAM module and refresh policy, exactly as if it
 * were a standalone single-channel simulation. ShardedSystem builds one
 * System per channel and advances all of them in epoch lock-step —
 * every channel runs to the same epoch boundary before any channel
 * starts the next epoch — optionally fanning the per-epoch channel
 * steps out over a work-stealing thread pool.
 *
 * Determinism contract (the sweep's byte-identity gate extends here):
 *
 *  - Channels never interact, so each channel's simulation is the same
 *    regardless of which worker thread advances it or how epochs are
 *    sliced (an EventQueue run to T in slices equals one run to T).
 *  - Every merge is performed on the calling thread in fixed channel
 *    order (0, 1, ..., N-1): snapshot sums, heatmap cell sums, ledger
 *    absorption, latency-histogram sums, and the audit k-way merge
 *    ordered by (tick, channel).
 *
 * Together these make every aggregate byte-identical for any
 * `shardJobs`, including 1. Host-dependent quantities (wall time, RSS)
 * never enter the merged artifacts.
 *
 * Workload seeding: each channel derives its own stream seed via
 * shardChannelSeed(), so channels see decorrelated traffic while the
 * whole run stays a pure function of the base seed.
 */

#pragma once

#include <memory>
#include <vector>

#include "harness/experiment.hh"
#include "harness/system.hh"

namespace smartref {

class ThreadPool;

/**
 * Epoch length for the lock-step barrier. Short enough to bound how
 * far channels drift apart in memory footprint, long enough that the
 * barrier cost is noise; purely an execution detail (any epoch length
 * yields identical results).
 */
constexpr Tick kDefaultShardEpoch = 4 * kMillisecond;

/** Deterministic per-channel workload seed derived from the base seed. */
std::uint64_t shardChannelSeed(std::uint64_t baseSeed,
                               std::uint32_t channel);

/** N isolated per-channel Systems advanced in epoch lock-step. */
class ShardedSystem
{
  public:
    /**
     * @param cfg       system template; `cfg.dram.channels` (> 1
     *        allowed) selects the shard count, and each shard is built
     *        from this config with channels forced to 1. The observer
     *        pointers are the *merged* sinks: when non-null, each shard
     *        gets a private same-shaped observer and mergeObservers()
     *        folds them in. A merged ledger must be shaped
     *        {channels * ranks, banks}; heatmap and audit keep the
     *        per-channel shape (heatmap cells sum across channels, the
     *        audit trail carries a channel id per record). The phase
     *        profiler is attached to channel 0 only (host-timing
     *        telemetry; never deterministic output).
     * @param shardJobs worker threads for the per-epoch channel fan-out
     *        (1 = serial; results are identical either way)
     * @param epoch     lock-step epoch length
     */
    explicit ShardedSystem(const SystemConfig &cfg, unsigned shardJobs = 1,
                           Tick epoch = kDefaultShardEpoch);
    ~ShardedSystem();

    std::uint32_t channels() const { return channels_; }
    System &channel(std::size_t c) { return *shards_[c].sys; }

    /** Advance every channel by `duration` in epoch lock-step. */
    void run(Tick duration);

    /** Common simulated time of all channels. */
    Tick now() const;

    /** Events executed across all channels (telemetry only). */
    std::uint64_t eventsExecuted() const;

    /** Largest refresh backlog observed on any channel. */
    std::size_t maxRefreshBacklog() const;

    /** Retention final check summed over channels (stale-row count). */
    std::uint64_t finalCheck();

    /** Verify each channel's energy-conservation invariant. */
    void verifyLedgers(bool fatalOnError);

    /**
     * Channel-order sum of per-channel snapshots. All channels sit at
     * the same simulated tick (asserted); the merged snapshot keeps
     * that tick and sums every other field.
     */
    EnergySnapshot captureMergedSnapshot();

    /** Merge per-channel demand-latency histograms into `into`. */
    void mergeLatency(Histogram &into) const;

    /**
     * Fold the per-shard observers into the merged sinks passed via
     * the config, in fixed channel order. Call once, after the last
     * run() window.
     */
    void mergeObservers();

    /** Resident counter-storage bytes summed over channels (Smart). */
    std::uint64_t residentCounterBytes();

    const SystemConfig &config() const { return cfg_; }

  private:
    struct Shard
    {
        std::unique_ptr<RefreshHeatmap> heatmap;
        std::unique_ptr<RefreshAudit> audit;
        std::unique_ptr<EnergyLedger> ledger;
        std::unique_ptr<System> sys;
    };

    template <typename Body>
    void forEachChannel(const Body &body);

    SystemConfig cfg_;
    std::uint32_t channels_;
    Tick epoch_;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<Shard> shards_;
    bool merged_ = false;
};

} // namespace smartref

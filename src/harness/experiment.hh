/**
 * @file
 * Experiment runner: builds matched baseline/Smart systems for a
 * benchmark profile, runs warmup + measurement windows, and reduces the
 * results to the metrics the paper's figures report.
 *
 * Measurement uses snapshot deltas rather than statistic resets: a
 * snapshot of all accumulating quantities is taken at the end of warmup
 * and subtracted from the end-of-run snapshot, so transients (staggered
 * counter initialisation, cold row buffers, cache warmup) are excluded.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "harness/threed_system.hh"
#include "sim/logging.hh"
#include "trace/benchmark_profiles.hh"

namespace minijson {
class Value;
}

namespace smartref {

/** Point-in-time capture of every accumulating quantity we report. */
struct EnergySnapshot
{
    Tick tick = 0;
    std::uint64_t refreshes = 0;
    double refreshEnergy = 0.0;
    double actEnergy = 0.0;
    double readEnergy = 0.0;
    double writeEnergy = 0.0;
    double backgroundEnergy = 0.0;
    double overheadEnergy = 0.0; ///< policy overhead: bus + counter SRAM
    std::uint64_t demandAccesses = 0;
    double latencySumTicks = 0.0;
    std::uint64_t violations = 0;
    /** Ticks demand spent blocked behind in-flight refresh state. */
    double demandBlockedTicks = 0.0;
    /** Refreshes DARP slipped into idle banks / behind write drains. */
    std::uint64_t refreshStallsAvoided = 0;
    /** Demand arrivals that hit a subarray mid-refresh (SARP). */
    std::uint64_t subarrayConflicts = 0;

    double
    totalEnergy() const
    {
        return refreshEnergy + actEnergy + readEnergy + writeEnergy +
               backgroundEnergy + overheadEnergy;
    }
};

/** Component-wise difference b - a. */
EnergySnapshot operator-(const EnergySnapshot &b, const EnergySnapshot &a);

/** Capture a conventional system's totals (finalises energies first). */
EnergySnapshot captureSnapshot(System &sys);

/** Capture the 3D module + cache-path totals of a 3D system. */
EnergySnapshot captureSnapshot(ThreeDSystem &sys);

/** Metrics of one (benchmark, policy) run over the measurement window. */
struct RunResult
{
    std::string benchmark;
    std::string suite;
    std::string policy;
    double simSeconds = 0.0;
    double refreshesPerSec = 0.0;
    double refreshEnergyJ = 0.0;
    double totalEnergyJ = 0.0;
    double overheadJ = 0.0;
    double avgLatencyNs = 0.0;
    double latencySumSec = 0.0;
    /**
     * Whole-run demand read-latency percentiles in ns (percentiles do
     * not difference across snapshots, so these cover warmup +
     * measurement; 0 when no demand was sampled).
     */
    double latencyP50Ns = 0.0;
    double latencyP95Ns = 0.0;
    double latencyP99Ns = 0.0;
    /** Demand-blocked-by-refresh time over the measurement window. */
    double demandBlockedByRefreshTicks = 0.0;
    std::uint64_t refreshStallsAvoided = 0;
    std::uint64_t subarrayConflicts = 0;
    std::uint64_t demandAccesses = 0;
    std::uint64_t violations = 0;
    std::size_t maxRefreshBacklog = 0;
    /**
     * Total events the simulation executed (whole run, including
     * warmup). Telemetry-only: feeds the events/s figure in the sweep's
     * NDJSON stream and never appears in deterministic aggregates.
     */
    std::uint64_t eventsExecuted = 0;
};

/** Baseline-vs-Smart pairing with the figure metrics. */
struct ComparisonResult
{
    std::string benchmark;
    std::string suite;
    RunResult baseline;
    RunResult smart;

    /** Fractional reduction in refresh operations (Figs. 6/9/12/15). */
    double
    refreshReduction() const
    {
        return baseline.refreshesPerSec > 0.0
                   ? 1.0 - smart.refreshesPerSec / baseline.refreshesPerSec
                   : 0.0;
    }

    /** Relative refresh-energy saving (Figs. 7/10/13/16); the Smart side
     *  is charged its bus + counter overheads. */
    double
    refreshEnergySaving() const
    {
        const double base = baseline.refreshEnergyJ;
        return base > 0.0
                   ? 1.0 - (smart.refreshEnergyJ + smart.overheadJ) / base
                   : 0.0;
    }

    /** Relative total DRAM energy saving (Figs. 8/11/14/17). */
    double
    totalEnergySaving() const
    {
        const double base = baseline.totalEnergyJ;
        return base > 0.0 ? 1.0 - smart.totalEnergyJ / base : 0.0;
    }

    /** Performance improvement (Fig. 18): demand-stall time saved as a
     *  fraction of execution time. */
    double
    perfImprovement() const
    {
        return baseline.simSeconds > 0.0
                   ? (baseline.latencySumSec - smart.latencySumSec) /
                         baseline.simSeconds
                   : 0.0;
    }
};

/**
 * Complete JSON form of a RunResult — every field, including the ones
 * the sweep aggregates omit (latencySumSec, eventsExecuted), with
 * shortest-round-trip double formatting. This is the storage schema of
 * the content-addressed result cache: parsing it back through
 * runResultFromJson() reproduces the struct bit-for-bit, so aggregates
 * built from cached results are byte-identical to fresh ones.
 */
void writeRunResultJson(std::ostream &os, const RunResult &r);

/**
 * Inverse of writeRunResultJson(). Throws std::runtime_error on any
 * missing or mistyped member — the result cache treats that as a
 * corrupt entry (miss), never as a partial result.
 */
RunResult runResultFromJson(const minijson::Value &v);

/** Shared knobs for experiment runs. */
struct ExperimentOptions
{
    Tick warmup = 64 * kMillisecond;
    Tick measure = 128 * kMillisecond;
    std::uint32_t counterBits = 3;  ///< the paper's simulated width
    std::uint32_t segments = 8;
    bool autoReconfigure = true;
    std::uint64_t seed = 42;
    /**
     * Worker threads for the per-channel fan-out when the config has
     * channels > 1 (see harness/sharded.hh). Execution-only: results
     * are byte-identical for any value, so this never enters seeds,
     * keys or hashes.
     */
    unsigned shardJobs = 1;
    /**
     * Smart Refresh hierarchical sparse counter storage (see
     * core/counter_array.hh). Changes the modeled SRAM billing, so
     * callers must key/hash it when set; off by default keeps golden
     * outputs byte-identical.
     */
    bool sparseCounters = false;
    bool verbose = false;           ///< progress on stderr
    LogLevel logLevel = LogLevel::Warn; ///< runtime log verbosity
    /**
     * Optional spatial heatmap (not owned) attached to the system under
     * test for the whole run (warmup included — the heatmap is a spatial
     * census, not a windowed metric). Callers comparing policies attach
     * it only to the run they want observed.
     */
    RefreshHeatmap *heatmap = nullptr;
    /**
     * Optional refresh decision audit trail and energy ledger (not
     * owned), attached like the heatmap: to the run under test only
     * (the baseline run of a comparison is not observed).
     */
    RefreshAudit *audit = nullptr;
    EnergyLedger *ledger = nullptr;
    /**
     * Optional phase profiler (not owned), attached to *both* runs of a
     * comparison — each run executes under its own "baseline"/"policy"
     * stage scope, so its walk/issue/drain children stay separable.
     * Host wall times feed telemetry only, never deterministic output.
     */
    PhaseProfiler *profiler = nullptr;
    /**
     * Verify the energy-conservation invariant at the end of every run:
     * when no ledger is attached, a throwaway one is wired up for the
     * check. Fatal (std::runtime_error) on a violation.
     */
    bool checkConservation = false;
    /**
     * Optional per-row retention-class map (shared, immutable).
     * Required by the retention-aware policy; callers comparing
     * policies attach it to the run under test only so the CBR
     * baseline keeps the uniform worst-case retention model.
     */
    std::shared_ptr<const RetentionClassMap> retentionClasses;
};

/**
 * Run one benchmark on a conventional module with one policy. Configs
 * with channels > 1 are delegated to runShardedConventional().
 */
RunResult runConventional(const BenchmarkProfile &profile,
                          const DramConfig &dram, PolicyKind policy,
                          const ExperimentOptions &opts,
                          double absRowScale = 1.0);

/**
 * Run one benchmark across every channel of a multi-channel config in
 * epoch lock-step (harness/sharded.hh) and reduce the merged totals to
 * the same RunResult a single-channel run reports. Each channel gets
 * its own workload stream seeded by shardChannelSeed(); the merged
 * metrics are byte-identical for any opts.shardJobs.
 */
RunResult runShardedConventional(const BenchmarkProfile &profile,
                                 const DramConfig &dram, PolicyKind policy,
                                 const ExperimentOptions &opts,
                                 double absRowScale = 1.0);

/** CBR baseline vs Smart Refresh on a conventional module. */
ComparisonResult compareConventional(const BenchmarkProfile &profile,
                                     const DramConfig &dram,
                                     const ExperimentOptions &opts,
                                     double absRowScale = 1.0);

/** Run one benchmark through the 3D DRAM cache with one policy. */
RunResult runThreeD(const BenchmarkProfile &profile,
                    const DramConfig &threeD, PolicyKind policy,
                    const ExperimentOptions &opts);

/** CBR baseline vs Smart Refresh on the 3D DRAM cache. */
ComparisonResult compareThreeD(const BenchmarkProfile &profile,
                               const DramConfig &threeD,
                               const ExperimentOptions &opts);

/**
 * Per-comparison completion callback for suite runs. Invoked under an
 * internal mutex (callbacks never overlap) in *completion* order, which
 * depends on scheduling when jobs > 1; the returned result vector is
 * always in profile order regardless.
 */
using SuiteProgress = std::function<void(const ComparisonResult &)>;

/**
 * All 32 profiles on a conventional module. With jobs > 1 the
 * benchmarks are fanned out over a work-stealing thread pool; each
 * comparison is an independent simulation, so the results are
 * identical to the serial run (see docs/sweep.md for the contract).
 */
std::vector<ComparisonResult>
runConventionalSuite(const DramConfig &dram, const ExperimentOptions &opts,
                     double absRowScale = 1.0, unsigned jobs = 1,
                     const SuiteProgress &progress = {});

/** All 32 profiles through the 3D DRAM cache (jobs as above). */
std::vector<ComparisonResult>
runThreeDSuite(const DramConfig &threeD, const ExperimentOptions &opts,
               unsigned jobs = 1, const SuiteProgress &progress = {});

/** Geometric mean (values must be positive; non-positive are clamped). */
double geometricMean(const std::vector<double> &values);

} // namespace smartref

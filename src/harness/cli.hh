/**
 * @file
 * Minimal command-line flag parsing shared by bench and example
 * binaries: "--key value" and "--flag" forms.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "harness/experiment.hh"

namespace smartref {

/** Parsed "--key value" / "--flag" arguments. */
class CliArgs
{
  public:
    CliArgs(int argc, char **argv);

    bool has(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;

    /**
     * Build ExperimentOptions from the standard flags:
     * --warmup-ms N, --measure-ms N, --bits B, --segments N, --seed S,
     * --no-auto (disable reconfiguration), --verbose.
     */
    ExperimentOptions experimentOptions() const;

    /** Value of --csv (empty when absent). */
    std::string csvPath() const { return getString("csv"); }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace smartref

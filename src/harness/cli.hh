/**
 * @file
 * Minimal command-line flag parsing shared by bench and example
 * binaries: "--key value" and "--flag" forms.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "harness/experiment.hh"

namespace smartref {

/** Parsed "--key value" / "--flag" arguments. */
class CliArgs
{
  public:
    CliArgs(int argc, char **argv);

    bool has(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;

    /**
     * Build ExperimentOptions from the standard flags:
     * --warmup-ms N, --measure-ms N, --bits B, --segments N, --seed S,
     * --no-auto (disable reconfiguration), --sparse-counters,
     * -j N (shard workers for multi-channel configs),
     * --log-level {silent,warn,info,debug}, --verbose (alias for
     * --log-level debug).
     */
    ExperimentOptions experimentOptions() const;

    /**
     * Worker-thread count from "-j N" / "-jN" / "--jobs N". A bare
     * "-j" (no count) means one worker per hardware thread; absent
     * flags mean serial execution.
     */
    unsigned jobs() const;

    /** Value of --csv (empty when absent). */
    std::string csvPath() const { return getString("csv"); }

    /** Value of --trace-out: Chrome trace_event JSON path. */
    std::string traceOutPath() const { return getString("trace-out"); }

    /** Value of --trace-csv: compact CSV timeline path. */
    std::string traceCsvPath() const { return getString("trace-csv"); }

    /** Value of --trace-categories (comma-separated; default "all"). */
    std::string
    traceCategories() const
    {
        return getString("trace-categories", "all");
    }

    /** Value of --stats-json: machine-readable statistics dump path. */
    std::string statsJsonPath() const { return getString("stats-json"); }

    /** Value of --stats-interval-ms (0 disables interval sampling). */
    std::uint64_t
    statsIntervalMs() const
    {
        return getU64("stats-interval-ms", 0);
    }

    /** Value of --stats-interval-out (per-interval CSV path). */
    std::string
    statsIntervalPath() const
    {
        return getString("stats-interval-out");
    }

    /** Value of --heatmap-out: spatial refresh heatmap JSON path. */
    std::string heatmapOutPath() const { return getString("heatmap-out"); }

    /** Value of --telemetry-out: live NDJSON telemetry stream path. */
    std::string
    telemetryOutPath() const
    {
        return getString("telemetry-out");
    }

    /** @name Audit / ledger / profiler output flags. */
    ///@{
    /** Value of --audit-out: binary refresh-audit trail path. */
    std::string auditOutPath() const { return getString("audit-out"); }

    /** Value of --audit-json: NDJSON refresh-audit trail path. */
    std::string auditJsonPath() const { return getString("audit-json"); }

    /** Value of --ledger-out: energy attribution ledger JSON path. */
    std::string ledgerOutPath() const { return getString("ledger-out"); }

    /** Value of --ledger-csv: per-interval ledger grid CSV path. */
    std::string ledgerCsvPath() const { return getString("ledger-csv"); }

    /**
     * Value of --ledger-check: conservation-check JSON path (shadow
     * totals in the stats-JSON shape, for smartref_statdiff --subset).
     */
    std::string
    ledgerCheckPath() const
    {
        return getString("ledger-check");
    }

    /** Value of --profile-out: standalone phase-profile JSON path. */
    std::string
    profileOutPath() const
    {
        return getString("profile-out");
    }
    ///@}

  private:
    std::map<std::string, std::string> values_;
};

} // namespace smartref

#include "harness/cli.hh"

#include <cstdlib>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace smartref {

CliArgs::CliArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // make(1)-style worker count: "-j8", or "-j 8".
        if (arg.rfind("-j", 0) == 0 && arg.rfind("--", 0) != 0) {
            std::string count = arg.substr(2);
            if (count.empty() && i + 1 < argc &&
                std::string(argv[i + 1]).rfind("-", 0) != 0)
                count = argv[++i];
            values_["jobs"] = count;
            continue;
        }
        if (arg.rfind("--", 0) != 0)
            SMARTREF_FATAL("unexpected argument '", arg,
                           "' (flags are --key [value])");
        arg = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "";
        }
    }
}

bool
CliArgs::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
CliArgs::getString(const std::string &key,
                   const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::uint64_t
CliArgs::getU64(const std::string &key, std::uint64_t fallback) const
{
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 0);
}

double
CliArgs::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
}

unsigned
CliArgs::jobs() const
{
    if (!has("jobs"))
        return 1;
    const std::string v = getString("jobs");
    if (v.empty())
        return ThreadPool::hardwareThreads();
    const unsigned n = static_cast<unsigned>(
        std::strtoul(v.c_str(), nullptr, 10));
    return n == 0 ? 1 : n;
}

ExperimentOptions
CliArgs::experimentOptions() const
{
    ExperimentOptions opts;
    opts.warmup = getU64("warmup-ms", 64) * kMillisecond;
    opts.measure = getU64("measure-ms", 128) * kMillisecond;
    opts.counterBits = static_cast<std::uint32_t>(getU64("bits", 3));
    opts.segments = static_cast<std::uint32_t>(getU64("segments", 8));
    opts.autoReconfigure = !has("no-auto");
    opts.seed = getU64("seed", 42);
    opts.shardJobs = jobs();
    opts.sparseCounters = has("sparse-counters");
    opts.verbose = has("verbose");
    opts.logLevel = parseLogLevel(getString("log-level", "warn"));
    // --verbose predates --log-level and stays as an alias for debug;
    // an explicit --log-level wins when both appear.
    if (opts.verbose && !has("log-level"))
        opts.logLevel = LogLevel::Debug;
    return opts;
}

} // namespace smartref

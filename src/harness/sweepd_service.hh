/**
 * @file
 * The sweepd daemon core, extracted from tools/smartref_sweepd.cpp so
 * the queue protocol is unit-testable: request parsing, atomic claims,
 * end-to-end request processing, and the operational surface
 * (`<queue>/daemon/health.json`, the NDJSON access log, Prometheus
 * exposition, request-scoped trace IDs).
 *
 * Failure-path contract (pinned by tests/test_sweepd_service.cpp):
 * every artifact of a request is staged in `work/<stem>.out/` and the
 * whole directory is renamed into `done/<stem>/` or `failed/<stem>/`
 * as the final act, so neither terminal directory ever holds partial
 * output, and `status.json` is always complete — status, error,
 * elapsed wall, per-request cache-stats delta and trace ID — on both
 * paths.
 *
 * Trace IDs: a request may carry `"traceId"` in request.json;
 * otherwise the service derives one (stem + sequence + clock + pid —
 * deliberately non-deterministic, like everything else it stamps).
 * The ID is threaded through every telemetry line (SweepTelemetry::
 * setTraceId), every access-log event and the status.json `meta`
 * block, and never touches sweep.json/sweep.csv: those stay under the
 * byte-identity contract and must remain `cmp`-equal to the one-shot
 * CLI's output for the same grid.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>

#include "harness/result_cache.hh"
#include "harness/sweep.hh"

namespace smartref {

/** One parsed queue request: grid, run-option overrides, trace ID. */
struct SweepdRequest
{
    SweepGrid grid;
    SweepRunOptions opts;
    std::string traceId; ///< optional "traceId" member; empty = derive
};

/**
 * Parse a request JSON (gridName-or-inline-grid plus option
 * overrides). Unknown members are fatal with a did-you-mean, as are
 * requests without a grid. Throws (std::runtime_error via
 * SMARTREF_FATAL) rather than returning an error: the caller owns the
 * failed/ bookkeeping.
 */
SweepdRequest parseSweepdRequest(const std::string &text,
                                 const SweepRunOptions &defaults);

/** Daemon configuration (one service instance per queue). */
struct SweepdConfig
{
    std::string queueDir;            ///< required
    std::string cacheDir;            ///< empty = ResultCache::defaultDir()
    std::uint64_t cacheMaxMb = 0;    ///< 0 = never prune
    SweepRunOptions defaults;        ///< per-request option baseline
};

/**
 * The daemon engine: claims requests from `<queue>/incoming/`,
 * processes them against the shared result cache, maintains
 * `<queue>/daemon/{health.json,access.ndjson,metrics.prom}`.
 * Not thread-safe: one service instance is one worker loop (scale out
 * by running several daemons against the same queue — claims are
 * atomic renames).
 */
class SweepdService
{
  public:
    explicit SweepdService(const SweepdConfig &cfg);

    /**
     * Claim the alphabetically first request in incoming/ by renaming
     * it into work/. Atomic, so several daemons can share one queue;
     * losing a race just means trying the next file.
     */
    bool claimNext(std::filesystem::path &claimed);

    /**
     * Process one claimed request end to end. Returns true when the
     * request succeeded with zero retention violations; parse errors
     * and mid-run failures land in failed/ with a complete status.
     */
    bool processOne(const std::filesystem::path &workFile);

    /** Stamp the last-poll time and rewrite the health surface. */
    void notePoll();

    /**
     * Atomically rewrite `daemon/health.json` (uptime, queue depths,
     * in-flight count, last poll, cumulative metrics snapshot) and
     * `daemon/metrics.prom`.
     */
    void writeHealth();

    /** LRU-prune the cache to cfg.cacheMaxMb (no-op when 0). */
    void pruneCache();

    ResultCache &cache() { return cache_; }
    std::uint64_t processed() const { return processed_; }
    std::uint64_t failures() const { return failures_; }

    const std::filesystem::path &incomingDir() const { return incoming_; }
    const std::filesystem::path &workDir() const { return work_; }
    const std::filesystem::path &doneDir() const { return done_; }
    const std::filesystem::path &failedDir() const { return failed_; }
    const std::filesystem::path &daemonDir() const { return daemon_; }

  private:
    std::string deriveTraceId(const std::string &stem);
    /** Append one event line to daemon/access.ndjson. */
    void logAccess(const std::string &line);

    SweepdConfig cfg_;
    ResultCache cache_;
    std::filesystem::path incoming_;
    std::filesystem::path work_;
    std::filesystem::path done_;
    std::filesystem::path failed_;
    std::filesystem::path daemon_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t processed_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t inFlight_ = 0;
    std::uint64_t traceSeq_ = 0;
    std::int64_t lastPollUnixMs_ = 0;
};

} // namespace smartref

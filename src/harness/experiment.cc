#include "harness/experiment.hh"

#include <charconv>
#include <cmath>
#include <iostream>
#include <mutex>
#include <stdexcept>

#include "dram/energy_ledger.hh"
#include "harness/sharded.hh"
#include "sim/logging.hh"
#include "sim/mini_json.hh"
#include "sim/phase_profiler.hh"
#include "sim/thread_pool.hh"

namespace smartref {

EnergySnapshot
operator-(const EnergySnapshot &b, const EnergySnapshot &a)
{
    EnergySnapshot d;
    d.tick = b.tick - a.tick;
    d.refreshes = b.refreshes - a.refreshes;
    d.refreshEnergy = b.refreshEnergy - a.refreshEnergy;
    d.actEnergy = b.actEnergy - a.actEnergy;
    d.readEnergy = b.readEnergy - a.readEnergy;
    d.writeEnergy = b.writeEnergy - a.writeEnergy;
    d.backgroundEnergy = b.backgroundEnergy - a.backgroundEnergy;
    d.overheadEnergy = b.overheadEnergy - a.overheadEnergy;
    d.demandAccesses = b.demandAccesses - a.demandAccesses;
    d.latencySumTicks = b.latencySumTicks - a.latencySumTicks;
    d.violations = b.violations - a.violations;
    d.demandBlockedTicks = b.demandBlockedTicks - a.demandBlockedTicks;
    d.refreshStallsAvoided =
        b.refreshStallsAvoided - a.refreshStallsAvoided;
    d.subarrayConflicts = b.subarrayConflicts - a.subarrayConflicts;
    return d;
}

EnergySnapshot
captureSnapshot(System &sys)
{
    sys.dram().finalize();
    EnergySnapshot s;
    s.tick = sys.eventQueue().now();
    s.refreshes = sys.dram().totalRefreshes();
    const auto &p = sys.dram().power();
    s.refreshEnergy = p.refreshEnergy();
    s.actEnergy = p.activateEnergy();
    s.readEnergy = p.readEnergy();
    s.writeEnergy = p.writeEnergy();
    s.backgroundEnergy = p.backgroundEnergy();
    s.overheadEnergy = sys.refreshPolicy().overheadEnergy();
    s.demandAccesses =
        sys.controller().demandReads() + sys.controller().demandWrites();
    s.latencySumTicks = sys.controller().latencySumTicks();
    s.violations = sys.dram().retention().violations();
    s.demandBlockedTicks = sys.controller().demandBlockedTicks();
    s.refreshStallsAvoided = sys.controller().refreshStallsAvoided();
    s.subarrayConflicts = sys.controller().subarrayConflicts();
    return s;
}

EnergySnapshot
captureSnapshot(ThreeDSystem &sys)
{
    sys.threeDDram().finalize();
    EnergySnapshot s;
    s.tick = sys.eventQueue().now();
    s.refreshes = sys.threeDDram().totalRefreshes();
    const auto &p = sys.threeDDram().power();
    s.refreshEnergy = p.refreshEnergy();
    s.actEnergy = p.activateEnergy();
    s.readEnergy = p.readEnergy();
    s.writeEnergy = p.writeEnergy();
    s.backgroundEnergy = p.backgroundEnergy();
    s.overheadEnergy = sys.threeDPolicy().overheadEnergy();
    s.demandAccesses = sys.cache().demandAccesses();
    s.latencySumTicks = sys.cache().latencySum();
    s.violations = sys.threeDDram().retention().violations() +
                   sys.mainDram().retention().violations();
    s.demandBlockedTicks = sys.threeDController().demandBlockedTicks();
    s.refreshStallsAvoided =
        sys.threeDController().refreshStallsAvoided();
    s.subarrayConflicts = sys.threeDController().subarrayConflicts();
    return s;
}

namespace {

/** NaN-safe percentile in ns (empty histograms report 0, not NaN,
 *  because NaN would render as invalid JSON via jsonNumber). */
double
percentileNs(const Histogram &h, double p)
{
    const double v = h.percentile(p);
    return std::isnan(v) ? 0.0 : v / static_cast<double>(kNanosecond);
}

RunResult
reduce(const std::string &benchmark, const std::string &suite,
       const std::string &policy, const EnergySnapshot &delta,
       std::size_t maxBacklog, const Histogram *latency)
{
    RunResult r;
    r.benchmark = benchmark;
    r.suite = suite;
    r.policy = policy;
    r.simSeconds = static_cast<double>(delta.tick) /
                   static_cast<double>(kSecond);
    r.refreshesPerSec =
        r.simSeconds > 0.0
            ? static_cast<double>(delta.refreshes) / r.simSeconds
            : 0.0;
    r.refreshEnergyJ = delta.refreshEnergy;
    r.totalEnergyJ = delta.totalEnergy();
    r.overheadJ = delta.overheadEnergy;
    r.latencySumSec = delta.latencySumTicks / static_cast<double>(kSecond);
    r.demandAccesses = delta.demandAccesses;
    r.avgLatencyNs =
        delta.demandAccesses > 0
            ? delta.latencySumTicks /
                  static_cast<double>(delta.demandAccesses) /
                  static_cast<double>(kNanosecond)
            : 0.0;
    r.violations = delta.violations;
    r.maxRefreshBacklog = maxBacklog;
    r.demandBlockedByRefreshTicks = delta.demandBlockedTicks;
    r.refreshStallsAvoided = delta.refreshStallsAvoided;
    r.subarrayConflicts = delta.subarrayConflicts;
    if (latency) {
        r.latencyP50Ns = percentileNs(*latency, 0.50);
        r.latencyP95Ns = percentileNs(*latency, 0.95);
        r.latencyP99Ns = percentileNs(*latency, 0.99);
    }
    return r;
}

SmartRefreshConfig
smartConfig(const ExperimentOptions &opts)
{
    SmartRefreshConfig sc;
    sc.counterBits = opts.counterBits;
    sc.segments = opts.segments;
    sc.queueCapacity = opts.segments;
    sc.autoReconfigure = opts.autoReconfigure;
    sc.sparseCounters = opts.sparseCounters;
    return sc;
}

} // namespace

RunResult
runConventional(const BenchmarkProfile &profile, const DramConfig &dram,
                PolicyKind policy, const ExperimentOptions &opts,
                double absRowScale)
{
    if (dram.channels > 1)
        return runShardedConventional(profile, dram, policy, opts,
                                      absRowScale);
    if (opts.verbose) {
        std::cerr << "  [" << dram.name << "/" << toString(policy) << "] "
                  << profile.name << "..." << std::endl;
    }
    SystemConfig cfg;
    cfg.dram = dram;
    cfg.policy = policy;
    cfg.smart = smartConfig(opts);
    cfg.heatmap = opts.heatmap;
    cfg.audit = opts.audit;
    cfg.ledger = opts.ledger;
    cfg.profiler = opts.profiler;
    cfg.retentionClasses = opts.retentionClasses;
    std::unique_ptr<EnergyLedger> checkLedger;
    if (opts.checkConservation && !cfg.ledger) {
        checkLedger = std::make_unique<EnergyLedger>(
            EnergyLedger::Shape{dram.org.ranks, dram.org.banks});
        cfg.ledger = checkLedger.get();
    }
    System sys(cfg);
    for (const auto &wp :
         conventionalParams(profile, dram, absRowScale, opts.seed)) {
        sys.addWorkload(wp);
    }

    sys.run(opts.warmup);
    const EnergySnapshot atWarm = captureSnapshot(sys);
    sys.run(opts.measure);
    const EnergySnapshot atEnd = captureSnapshot(sys);

    const std::uint64_t stale =
        sys.dram().retention().finalCheck(sys.eventQueue().now());
    EnergySnapshot delta = atEnd - atWarm;
    delta.violations += stale;

    if (opts.checkConservation)
        sys.dram().verifyLedger(true);

    RunResult r = reduce(profile.name, profile.suite, toString(policy),
                         delta, sys.controller().maxRefreshBacklog(),
                         &sys.controller().latencyHistogram());
    r.eventsExecuted = sys.eventQueue().executed();
    return r;
}

RunResult
runShardedConventional(const BenchmarkProfile &profile,
                       const DramConfig &dram, PolicyKind policy,
                       const ExperimentOptions &opts, double absRowScale)
{
    if (opts.verbose) {
        std::cerr << "  [" << dram.name << "/" << toString(policy) << "/"
                  << dram.channels << "ch] " << profile.name << "..."
                  << std::endl;
    }
    SystemConfig cfg;
    cfg.dram = dram;
    cfg.policy = policy;
    cfg.smart = smartConfig(opts);
    cfg.heatmap = opts.heatmap;
    cfg.audit = opts.audit;
    cfg.ledger = opts.ledger;
    cfg.profiler = opts.profiler;
    cfg.retentionClasses = opts.retentionClasses;
    std::unique_ptr<EnergyLedger> checkLedger;
    if (opts.checkConservation && !cfg.ledger) {
        checkLedger = std::make_unique<EnergyLedger>(EnergyLedger::Shape{
            dram.channels * dram.org.ranks, dram.org.banks});
        cfg.ledger = checkLedger.get();
    }
    ShardedSystem sys(cfg, opts.shardJobs);

    DramConfig chDram = dram;
    chDram.channels = 1;
    for (std::uint32_t c = 0; c < dram.channels; ++c) {
        for (const auto &wp :
             conventionalParams(profile, chDram, absRowScale,
                                shardChannelSeed(opts.seed, c))) {
            sys.channel(c).addWorkload(wp);
        }
    }

    sys.run(opts.warmup);
    const EnergySnapshot atWarm = sys.captureMergedSnapshot();
    sys.run(opts.measure);
    const EnergySnapshot atEnd = sys.captureMergedSnapshot();

    const std::uint64_t stale = sys.finalCheck();
    EnergySnapshot delta = atEnd - atWarm;
    delta.violations += stale;

    if (opts.checkConservation)
        sys.verifyLedgers(true);
    sys.mergeObservers();

    // Whole-run latency percentiles over all channels' demand traffic.
    StatGroup scratch("sharded");
    const Histogram &shape = sys.channel(0).controller().latencyHistogram();
    Histogram latency(&scratch, "latency", "merged demand latency",
                      shape.bucketLo(), shape.bucketHi(),
                      shape.numBuckets());
    sys.mergeLatency(latency);

    RunResult r = reduce(profile.name, profile.suite, toString(policy),
                         delta, sys.maxRefreshBacklog(), &latency);
    r.eventsExecuted = sys.eventsExecuted();
    return r;
}

ComparisonResult
compareConventional(const BenchmarkProfile &profile, const DramConfig &dram,
                    const ExperimentOptions &opts, double absRowScale)
{
    ComparisonResult c;
    c.benchmark = profile.name;
    c.suite = profile.suite;
    // The heatmap, audit trail and ledger observe the policy under test
    // only; the baseline run would otherwise double every counter. The
    // profiler covers both runs under separate stage scopes.
    ExperimentOptions baseOpts = opts;
    baseOpts.heatmap = nullptr;
    baseOpts.audit = nullptr;
    baseOpts.ledger = nullptr;
    {
        PhaseScope stage(opts.profiler, "baseline");
        c.baseline = runConventional(profile, dram, PolicyKind::Cbr,
                                     baseOpts, absRowScale);
    }
    {
        PhaseScope stage(opts.profiler, "policy");
        c.smart = runConventional(profile, dram, PolicyKind::Smart, opts,
                                  absRowScale);
    }
    return c;
}

RunResult
runThreeD(const BenchmarkProfile &profile, const DramConfig &threeD,
          PolicyKind policy, const ExperimentOptions &opts)
{
    if (opts.verbose) {
        std::cerr << "  [" << threeD.name << "/" << toString(policy)
                  << "] " << profile.name << "..." << std::endl;
    }
    ThreeDSystemConfig cfg;
    cfg.threeD = threeD;
    cfg.threeDPolicy = policy;
    cfg.smart = smartConfig(opts);
    cfg.heatmap = opts.heatmap;
    cfg.audit = opts.audit;
    cfg.ledger = opts.ledger;
    cfg.profiler = opts.profiler;
    cfg.retentionClasses = opts.retentionClasses;
    std::unique_ptr<EnergyLedger> checkLedger;
    if (opts.checkConservation && !cfg.ledger) {
        checkLedger = std::make_unique<EnergyLedger>(
            EnergyLedger::Shape{threeD.org.ranks, threeD.org.banks});
        cfg.ledger = checkLedger.get();
    }
    ThreeDSystem sys(cfg);
    for (const auto &wp : threeDParams(profile, threeD, opts.seed))
        sys.addWorkload(wp);

    sys.run(opts.warmup);
    const EnergySnapshot atWarm = captureSnapshot(sys);
    sys.run(opts.measure);
    const EnergySnapshot atEnd = captureSnapshot(sys);

    const std::uint64_t stale =
        sys.threeDDram().retention().finalCheck(sys.eventQueue().now());
    EnergySnapshot delta = atEnd - atWarm;
    delta.violations += stale;

    if (opts.checkConservation)
        sys.threeDDram().verifyLedger(true);

    RunResult r =
        reduce(profile.name, profile.suite, toString(policy), delta,
               sys.threeDController().maxRefreshBacklog(),
               &sys.threeDController().latencyHistogram());
    r.eventsExecuted = sys.eventQueue().executed();
    return r;
}

ComparisonResult
compareThreeD(const BenchmarkProfile &profile, const DramConfig &threeD,
              const ExperimentOptions &opts)
{
    ComparisonResult c;
    c.benchmark = profile.name;
    c.suite = profile.suite;
    ExperimentOptions baseOpts = opts;
    baseOpts.heatmap = nullptr;
    baseOpts.audit = nullptr;
    baseOpts.ledger = nullptr;
    {
        PhaseScope stage(opts.profiler, "baseline");
        c.baseline = runThreeD(profile, threeD, PolicyKind::Cbr, baseOpts);
    }
    {
        PhaseScope stage(opts.profiler, "policy");
        c.smart = runThreeD(profile, threeD, PolicyKind::Smart, opts);
    }
    return c;
}

namespace {

/**
 * Shared suite driver: one comparison per profile, fanned out over
 * `jobs` workers, results stored by profile index so the output order
 * (and content — every run is an isolated simulation) matches the
 * serial loop exactly.
 */
std::vector<ComparisonResult>
runSuite(unsigned jobs, const SuiteProgress &progress,
         const std::function<ComparisonResult(const BenchmarkProfile &)>
             &compare)
{
    const auto &profiles = allProfiles();
    std::vector<ComparisonResult> results(profiles.size());
    std::mutex progressMu;
    parallelFor(jobs, profiles.size(), [&](std::size_t i) {
        results[i] = compare(profiles[i]);
        if (progress) {
            std::lock_guard<std::mutex> lk(progressMu);
            progress(results[i]);
        }
    });
    return results;
}

} // namespace

std::vector<ComparisonResult>
runConventionalSuite(const DramConfig &dram, const ExperimentOptions &opts,
                     double absRowScale, unsigned jobs,
                     const SuiteProgress &progress)
{
    return runSuite(jobs, progress,
                    [&](const BenchmarkProfile &profile) {
                        return compareConventional(profile, dram, opts,
                                                   absRowScale);
                    });
}

std::vector<ComparisonResult>
runThreeDSuite(const DramConfig &threeD, const ExperimentOptions &opts,
               unsigned jobs, const SuiteProgress &progress)
{
    return runSuite(jobs, progress,
                    [&](const BenchmarkProfile &profile) {
                        return compareThreeD(profile, threeD, opts);
                    });
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(std::max(v, 1e-12));
    return std::exp(logSum / static_cast<double>(values.size()));
}

namespace {

/** Shortest round-trip decimal form (exact, locale-independent). */
std::string
cacheNumber(double v)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    SMARTREF_ASSERT(res.ec == std::errc(), "to_chars failed");
    return std::string(buf, res.ptr);
}

std::string
cacheQuoted(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

double
requiredNumber(const minijson::Value &v, const char *name)
{
    const minijson::Value &m = v.at(name);
    if (!m.isNumber())
        throw std::runtime_error(std::string("member '") + name +
                                 "' is not a number");
    return m.number;
}

} // namespace

void
writeRunResultJson(std::ostream &os, const RunResult &r)
{
    os << "{\"benchmark\":" << cacheQuoted(r.benchmark)
       << ",\"suite\":" << cacheQuoted(r.suite)
       << ",\"policy\":" << cacheQuoted(r.policy)
       << ",\"simSeconds\":" << cacheNumber(r.simSeconds)
       << ",\"refreshesPerSec\":" << cacheNumber(r.refreshesPerSec)
       << ",\"refreshEnergyJ\":" << cacheNumber(r.refreshEnergyJ)
       << ",\"totalEnergyJ\":" << cacheNumber(r.totalEnergyJ)
       << ",\"overheadJ\":" << cacheNumber(r.overheadJ)
       << ",\"avgLatencyNs\":" << cacheNumber(r.avgLatencyNs)
       << ",\"latencySumSec\":" << cacheNumber(r.latencySumSec)
       << ",\"latencyP50Ns\":" << cacheNumber(r.latencyP50Ns)
       << ",\"latencyP95Ns\":" << cacheNumber(r.latencyP95Ns)
       << ",\"latencyP99Ns\":" << cacheNumber(r.latencyP99Ns)
       << ",\"demandBlockedByRefreshTicks\":"
       << cacheNumber(r.demandBlockedByRefreshTicks)
       << ",\"refreshStallsAvoided\":" << r.refreshStallsAvoided
       << ",\"subarrayConflicts\":" << r.subarrayConflicts
       << ",\"demandAccesses\":" << r.demandAccesses
       << ",\"violations\":" << r.violations
       << ",\"maxRefreshBacklog\":" << r.maxRefreshBacklog
       << ",\"eventsExecuted\":" << r.eventsExecuted << "}";
}

RunResult
runResultFromJson(const minijson::Value &v)
{
    RunResult r;
    r.benchmark = v.at("benchmark").str;
    r.suite = v.at("suite").str;
    r.policy = v.at("policy").str;
    r.simSeconds = requiredNumber(v, "simSeconds");
    r.refreshesPerSec = requiredNumber(v, "refreshesPerSec");
    r.refreshEnergyJ = requiredNumber(v, "refreshEnergyJ");
    r.totalEnergyJ = requiredNumber(v, "totalEnergyJ");
    r.overheadJ = requiredNumber(v, "overheadJ");
    r.avgLatencyNs = requiredNumber(v, "avgLatencyNs");
    r.latencySumSec = requiredNumber(v, "latencySumSec");
    r.latencyP50Ns = requiredNumber(v, "latencyP50Ns");
    r.latencyP95Ns = requiredNumber(v, "latencyP95Ns");
    r.latencyP99Ns = requiredNumber(v, "latencyP99Ns");
    r.demandBlockedByRefreshTicks =
        requiredNumber(v, "demandBlockedByRefreshTicks");
    r.refreshStallsAvoided = static_cast<std::uint64_t>(
        requiredNumber(v, "refreshStallsAvoided"));
    r.subarrayConflicts = static_cast<std::uint64_t>(
        requiredNumber(v, "subarrayConflicts"));
    r.demandAccesses =
        static_cast<std::uint64_t>(requiredNumber(v, "demandAccesses"));
    r.violations =
        static_cast<std::uint64_t>(requiredNumber(v, "violations"));
    r.maxRefreshBacklog =
        static_cast<std::size_t>(requiredNumber(v, "maxRefreshBacklog"));
    r.eventsExecuted =
        static_cast<std::uint64_t>(requiredNumber(v, "eventsExecuted"));
    return r;
}

} // namespace smartref

#include "harness/sharded.hh"

#include <algorithm>
#include <chrono>

#include "dram/energy_ledger.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/provenance.hh"
#include "sim/thread_pool.hh"

namespace smartref {

namespace {

/** splitmix64 finaliser (same mixer the sweep's job seeds use). */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
shardChannelSeed(std::uint64_t baseSeed, std::uint32_t channel)
{
    return splitmix64(baseSeed ^
                      fnv1a64("channel=" + std::to_string(channel)));
}

ShardedSystem::ShardedSystem(const SystemConfig &cfg, unsigned shardJobs,
                             Tick epoch)
    : cfg_(cfg), channels_(cfg.dram.channels), epoch_(epoch)
{
    SMARTREF_ASSERT(channels_ >= 1, "sharded system needs a channel");
    SMARTREF_ASSERT(epoch_ > 0, "shard epoch must be positive");

    if (shardJobs > 1 && channels_ > 1) {
        pool_ = std::make_unique<ThreadPool>(
            std::min<unsigned>(shardJobs, channels_));
    }

    shards_.resize(channels_);
    for (std::uint32_t c = 0; c < channels_; ++c) {
        Shard &shard = shards_[c];
        SystemConfig chCfg = cfg_;
        chCfg.dram.channels = 1;
        if (cfg_.heatmap) {
            shard.heatmap = std::make_unique<RefreshHeatmap>(
                cfg_.heatmap->ranks(), cfg_.heatmap->banks(),
                cfg_.heatmap->segments(), cfg_.heatmap->counterMax());
            chCfg.heatmap = shard.heatmap.get();
        }
        if (cfg_.audit) {
            shard.audit =
                std::make_unique<RefreshAudit>(cfg_.audit->shape());
            shard.audit->setChannel(c);
            chCfg.audit = shard.audit.get();
        }
        if (cfg_.ledger) {
            shard.ledger = std::make_unique<EnergyLedger>(
                EnergyLedger::Shape{chCfg.dram.org.ranks,
                                    chCfg.dram.org.banks},
                cfg_.ledger->intervalLength());
            chCfg.ledger = shard.ledger.get();
        }
        // Host-timing telemetry only; one channel is representative and
        // a single collector must not be hit from several workers.
        if (c != 0)
            chCfg.profiler = nullptr;
        shard.sys = std::make_unique<System>(chCfg);
    }
}

ShardedSystem::~ShardedSystem() = default;

template <typename Body>
void
ShardedSystem::forEachChannel(const Body &body)
{
    if (pool_) {
        parallelFor(*pool_, channels_, body);
    } else {
        for (std::size_t c = 0; c < channels_; ++c)
            body(c);
    }
}

void
ShardedSystem::run(Tick duration)
{
    using clock = std::chrono::steady_clock;
    const bool timed = kMetricsCompiledIn && metricsEnabled();
    std::vector<std::int64_t> channelNs(timed ? channels_ : 0);
    Tick advanced = 0;
    while (advanced < duration) {
        const Tick step = std::min<Tick>(epoch_, duration - advanced);
        if (!timed) {
            forEachChannel(
                [this, step](std::size_t c) { shards_[c].sys->run(step); });
        } else {
            // Per-channel wall per epoch: each worker writes its own
            // slot, so the timing adds no synchronisation. A channel's
            // "lag" is how long it idled at the epoch barrier waiting
            // for the slowest sibling — large sustained lag means the
            // channel shards are imbalanced.
            const auto epochStart = clock::now();
            forEachChannel([this, step, &channelNs](std::size_t c) {
                const auto t0 = clock::now();
                shards_[c].sys->run(step);
                channelNs[c] =
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - t0)
                        .count();
            });
            const std::int64_t epochNs =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - epochStart)
                    .count();
            SMARTREF_METRIC_INC("sharded.epochs");
            for (std::size_t c = 0; c < channels_; ++c) {
                [[maybe_unused]] const std::int64_t lag =
                    epochNs - channelNs[c];
                SMARTREF_METRIC_OBSERVE("sharded.epoch_lag_ns",
                                        lag > 0 ? lag : 0);
            }
        }
        advanced += step;
    }
}

Tick
ShardedSystem::now() const
{
    return shards_[0].sys->eventQueue().now();
}

std::uint64_t
ShardedSystem::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const Shard &s : shards_)
        n += s.sys->eventQueue().executed();
    return n;
}

std::size_t
ShardedSystem::maxRefreshBacklog() const
{
    std::size_t m = 0;
    for (const Shard &s : shards_)
        m = std::max(m, s.sys->controller().maxRefreshBacklog());
    return m;
}

std::uint64_t
ShardedSystem::finalCheck()
{
    std::uint64_t stale = 0;
    for (Shard &s : shards_) {
        stale += s.sys->dram().retention().finalCheck(
            s.sys->eventQueue().now());
    }
    return stale;
}

void
ShardedSystem::verifyLedgers(bool fatalOnError)
{
    for (Shard &s : shards_)
        s.sys->dram().verifyLedger(fatalOnError);
}

EnergySnapshot
ShardedSystem::captureMergedSnapshot()
{
    EnergySnapshot merged = captureSnapshot(*shards_[0].sys);
    for (std::size_t c = 1; c < shards_.size(); ++c) {
        const EnergySnapshot s = captureSnapshot(*shards_[c].sys);
        SMARTREF_ASSERT(s.tick == merged.tick,
                        "channels drifted out of lock-step");
        merged.refreshes += s.refreshes;
        merged.refreshEnergy += s.refreshEnergy;
        merged.actEnergy += s.actEnergy;
        merged.readEnergy += s.readEnergy;
        merged.writeEnergy += s.writeEnergy;
        merged.backgroundEnergy += s.backgroundEnergy;
        merged.overheadEnergy += s.overheadEnergy;
        merged.demandAccesses += s.demandAccesses;
        merged.latencySumTicks += s.latencySumTicks;
        merged.violations += s.violations;
        merged.demandBlockedTicks += s.demandBlockedTicks;
        merged.refreshStallsAvoided += s.refreshStallsAvoided;
        merged.subarrayConflicts += s.subarrayConflicts;
    }
    return merged;
}

void
ShardedSystem::mergeLatency(Histogram &into) const
{
    for (const Shard &s : shards_)
        into.merge(s.sys->controller().latencyHistogram());
}

void
ShardedSystem::mergeObservers()
{
    SMARTREF_ASSERT(!merged_, "observers already merged");
    merged_ = true;
    const auto mergeStart = std::chrono::steady_clock::now();
    struct MergeTimer
    {
        std::chrono::steady_clock::time_point start;
        ~MergeTimer()
        {
            SMARTREF_METRIC_OBSERVE(
                "sharded.merge_ns",
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count());
        }
    } mergeTimer{mergeStart};

    if (cfg_.heatmap) {
        for (const Shard &s : shards_)
            cfg_.heatmap->merge(*s.heatmap);
    }
    if (cfg_.ledger) {
        cfg_.ledger->setChannels(channels_);
        for (std::uint32_t c = 0; c < channels_; ++c) {
            cfg_.ledger->absorbChannel(*shards_[c].ledger,
                                       c * cfg_.dram.org.ranks);
        }
    }
    if (cfg_.audit) {
        cfg_.audit->setChannels(channels_);
        // K-way merge by (tick, channel); within a channel the trail is
        // already in simulated-time order, so the result is globally
        // time-ordered and independent of shardJobs.
        std::vector<std::vector<AuditRecord>> recs(channels_);
        std::vector<std::size_t> pos(channels_, 0);
        for (std::uint32_t c = 0; c < channels_; ++c)
            recs[c] = shards_[c].audit->collect();
        for (;;) {
            std::size_t best = channels_;
            for (std::size_t c = 0; c < channels_; ++c) {
                if (pos[c] >= recs[c].size())
                    continue;
                if (best == channels_ ||
                    recs[c][pos[c]].tick < recs[best][pos[best]].tick)
                    best = c;
            }
            if (best == channels_)
                break;
            cfg_.audit->append(recs[best][pos[best]++]);
        }
    }
}

std::uint64_t
ShardedSystem::residentCounterBytes()
{
    std::uint64_t bytes = 0;
    for (Shard &s : shards_) {
        if (SmartRefreshPolicy *p = s.sys->smartPolicy())
            bytes += p->counters().residentCounterBytes();
    }
    return bytes;
}

} // namespace smartref

#include "harness/cpu_system.hh"

#include "sim/logging.hh"

namespace smartref {

CpuSystem::CpuSystem(const CpuSystemConfig &cfg)
    : StatGroup("cpusystem"), cfg_(cfg)
{
    cfg_.dram.validate();
    dram_ = std::make_unique<DramModule>(cfg_.dram, eq_, this);
    ctrl_ = std::make_unique<MemoryController>(*dram_, eq_, cfg_.ctrl,
                                               this);

    switch (cfg_.policy) {
      case PolicyKind::Cbr:
        policy_ = std::make_unique<CbrRefreshPolicy>(eq_, this);
        break;
      case PolicyKind::Burst:
        policy_ = std::make_unique<BurstRefreshPolicy>(eq_, this);
        break;
      case PolicyKind::RasOnly:
        policy_ = std::make_unique<RasOnlyRefreshPolicy>(
            eq_, deriveBusParams(BusEnergyParams{}, cfg_.dram.org), this);
        break;
      case PolicyKind::PerBank:
        policy_ = std::make_unique<PerBankRefreshPolicy>(
            eq_, deriveBusParams(BusEnergyParams{}, cfg_.dram.org), this);
        break;
      case PolicyKind::Smart: {
        SmartRefreshConfig sc = cfg_.smart;
        sc.bus = deriveBusParams(sc.bus, cfg_.dram.org);
        if (!sc.retentionClasses)
            sc.retentionClasses = cfg_.retentionClasses;
        policy_ = std::make_unique<SmartRefreshPolicy>(cfg_.dram, sc, eq_,
                                                       this);
        break;
      }
      case PolicyKind::RetentionAware:
        SMARTREF_ASSERT(cfg_.retentionClasses != nullptr,
                        "RetentionAware policy needs retentionClasses");
        policy_ = std::make_unique<RetentionAwarePolicy>(
            eq_, cfg_.retentionClasses,
            deriveBusParams(BusEnergyParams{}, cfg_.dram.org), this);
        break;
    }
    if (cfg_.retentionClasses) {
        std::vector<std::uint8_t> m(cfg_.retentionClasses->totalRows());
        for (std::uint64_t i = 0; i < m.size(); ++i) {
            m[i] = static_cast<std::uint8_t>(
                cfg_.retentionClasses->multiplier(i));
        }
        dram_->retention().applyClassMultipliers(m);
    }
    ctrl_->setRefreshPolicy(policy_.get());

    hierarchy_ = std::make_unique<CmpHierarchy>(cfg_.numCores, cfg_.l1,
                                                cfg_.l2, this);
}

SimpleCore &
CpuSystem::addCore(const CoreParams &core, const WorkloadParams &pattern)
{
    SMARTREF_ASSERT(!started_, "cannot add cores after run()");
    SMARTREF_ASSERT(cores_.size() < cfg_.numCores,
                    "hierarchy sized for ", cfg_.numCores, " cores");
    const auto coreId = static_cast<std::uint32_t>(cores_.size());

    SimpleCore::MemPort port = [this, coreId](
                                   Addr addr, bool write,
                                   std::function<void(Tick)> done) {
        const HierarchyResult r = hierarchy_->access(coreId, addr, write);
        if (r.hitLevel > 0) {
            done(eq_.now() + r.cacheLatency);
            return;
        }
        // Miss: the demand fill gates the load; writebacks are posted.
        const Tick issueAt = eq_.now() + r.cacheLatency;
        for (std::size_t i = 1; i < r.memOps.size(); ++i) {
            const auto op = r.memOps[i];
            eq_.schedule(issueAt, [this, op] {
                ctrl_->access(op.addr, op.write);
            });
        }
        const Addr demandAddr = r.memOps.front().addr;
        eq_.schedule(issueAt,
                     [this, demandAddr, done = std::move(done)] {
            ctrl_->access(demandAddr, false,
                          [done](const MemRequest &, Tick completion) {
                done(completion);
            });
        });
    };

    cores_.push_back(std::make_unique<SimpleCore>(
        core, pattern, cfg_.dram.org.rowBytes(), std::move(port), eq_,
        this));
    return *cores_.back();
}

void
CpuSystem::run(Tick duration)
{
    if (!started_) {
        started_ = true;
        for (auto &core : cores_)
            core->start();
    }
    eq_.runUntil(eq_.now() + duration);
    dram_->finalize();
}

std::uint64_t
CpuSystem::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instructionsRetired();
    return total;
}

} // namespace smartref

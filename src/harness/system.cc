#include "harness/system.hh"

#include <bit>

#include "sim/logging.hh"

namespace smartref {

const char *
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Cbr: return "cbr";
      case PolicyKind::Burst: return "burst";
      case PolicyKind::RasOnly: return "ras-only";
      case PolicyKind::PerBank: return "per-bank";
      case PolicyKind::Smart: return "smart";
      case PolicyKind::RetentionAware: return "retention-aware";
    }
    return "?";
}

PolicyKind
policyFromString(const std::string &name)
{
    if (name == "cbr")
        return PolicyKind::Cbr;
    if (name == "burst")
        return PolicyKind::Burst;
    if (name == "ras-only")
        return PolicyKind::RasOnly;
    if (name == "per-bank")
        return PolicyKind::PerBank;
    if (name == "smart")
        return PolicyKind::Smart;
    if (name == "retention-aware")
        return PolicyKind::RetentionAware;
    SMARTREF_FATAL("unknown policy '", name,
                   "' (cbr, burst, ras-only, per-bank, smart,"
                   " retention-aware)");
}

BusEnergyParams
deriveBusParams(const BusEnergyParams &base, const DramOrganization &org)
{
    BusEnergyParams p = base;
    p.numModules = org.ranks;
    p.busWidthBits =
        static_cast<std::uint32_t>(std::bit_width(org.rows - 1) +
                                   std::bit_width(org.banks - 1));
    return p;
}

System::System(const SystemConfig &cfg)
    : StatGroup("system"), cfg_(cfg)
{
    cfg_.dram.validate();
    // A System models exactly one channel; multi-channel configs go
    // through the sharded runner (harness/sharded.hh), which builds one
    // System per channel and merges.
    SMARTREF_ASSERT(cfg_.dram.channels == 1,
                    "System models one channel; use runShardedConventional"
                    " for configs with channels > 1");
    dram_ = std::make_unique<DramModule>(cfg_.dram, eq_, this);
    ctrl_ = std::make_unique<MemoryController>(*dram_, eq_, cfg_.ctrl,
                                               this);

    switch (cfg_.policy) {
      case PolicyKind::Cbr:
        policy_ = std::make_unique<CbrRefreshPolicy>(eq_, this);
        break;
      case PolicyKind::Burst:
        policy_ = std::make_unique<BurstRefreshPolicy>(eq_, this);
        break;
      case PolicyKind::RasOnly:
        policy_ = std::make_unique<RasOnlyRefreshPolicy>(
            eq_, deriveBusParams(cfg_.bus, cfg_.dram.org), this);
        break;
      case PolicyKind::PerBank:
        policy_ = std::make_unique<PerBankRefreshPolicy>(
            eq_, deriveBusParams(cfg_.bus, cfg_.dram.org), this);
        break;
      case PolicyKind::Smart: {
        SmartRefreshConfig sc = cfg_.smart;
        sc.bus = deriveBusParams(sc.bus, cfg_.dram.org);
        if (!sc.retentionClasses)
            sc.retentionClasses = cfg_.retentionClasses;
        auto smart = std::make_unique<SmartRefreshPolicy>(cfg_.dram, sc,
                                                          eq_, this);
        smartPolicy_ = smart.get();
        policy_ = std::move(smart);
        break;
      }
      case PolicyKind::RetentionAware:
        SMARTREF_ASSERT(cfg_.retentionClasses != nullptr,
                        "RetentionAware policy needs retentionClasses");
        policy_ = std::make_unique<RetentionAwarePolicy>(
            eq_, cfg_.retentionClasses,
            deriveBusParams(cfg_.bus, cfg_.dram.org), this);
        break;
    }
    if (cfg_.retentionClasses) {
        std::vector<std::uint8_t> m(cfg_.retentionClasses->totalRows());
        for (std::uint64_t i = 0; i < m.size(); ++i) {
            m[i] = static_cast<std::uint8_t>(
                cfg_.retentionClasses->multiplier(i));
        }
        dram_->retention().applyClassMultipliers(m);
    }
    ctrl_->setRefreshPolicy(policy_.get());
    if (cfg_.heatmap) {
        ctrl_->setHeatmap(cfg_.heatmap);
        if (smartPolicy_)
            smartPolicy_->setHeatmap(cfg_.heatmap);
    }
    if (cfg_.audit) {
        ctrl_->setAudit(cfg_.audit);
        policy_->setAudit(cfg_.audit);
    }
    if (cfg_.ledger)
        dram_->setLedger(cfg_.ledger);
    if (cfg_.profiler) {
        ctrl_->setProfiler(cfg_.profiler);
        if (smartPolicy_)
            smartPolicy_->setProfiler(cfg_.profiler);
    }
}

WorkloadModel &
System::addWorkload(const WorkloadParams &params)
{
    SMARTREF_ASSERT(!started_, "cannot add workloads after run()");
    auto sink = [this](Addr addr, bool write) {
        ctrl_->access(addr, write);
    };
    workloads_.push_back(std::make_unique<WorkloadModel>(
        params, cfg_.dram.org.rowBytes(), sink, eq_, this));
    return *workloads_.back();
}

void
System::run(Tick duration)
{
    if (!started_) {
        started_ = true;
        for (auto &w : workloads_)
            w->start();
    }
    eq_.runUntil(eq_.now() + duration);
    dram_->finalize();
    if (smartPolicy_)
        smartPolicy_->syncEnergyStats();
}

} // namespace smartref

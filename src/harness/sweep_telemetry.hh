/**
 * @file
 * Live sweep telemetry: an NDJSON event stream (one JSON object per
 * line) describing how a sweep *executed* — per-job start/finish, wall
 * time, simulation events per second, peak RSS, thread-pool scheduling
 * counters.
 *
 * Telemetry is the explicitly non-deterministic side of the sweep
 * subsystem. Everything here (wall clocks, RSS, steal counts) varies
 * run to run, so none of it may ever leak into the deterministic
 * aggregates (sweep JSON/CSV, heatmaps); tests assert the aggregates
 * are byte-identical with and without a telemetry sink attached. The
 * stream is flushed line-by-line so `tail -f` of a running sweep works.
 */

#pragma once

#include <chrono>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>

#include "harness/sweep.hh"
#include "sim/thread_pool.hh"

namespace smartref {

struct ResultCacheStats;

/** Thread-safe NDJSON telemetry sink for one sweep run. */
class SweepTelemetry
{
  public:
    /** Stream to a file (fatal when unwritable). */
    explicit SweepTelemetry(const std::string &path);

    /** Stream to an existing ostream (tests; not owned). */
    explicit SweepTelemetry(std::ostream &os);

    SweepTelemetry(const SweepTelemetry &) = delete;
    SweepTelemetry &operator=(const SweepTelemetry &) = delete;

    /**
     * Attach a request-scoped trace ID: every subsequent event line
     * carries a `"traceId"` member, joining the stream to the sweepd
     * request (status.json, access log) that produced it. Call before
     * the first event; empty clears it.
     */
    void setTraceId(const std::string &traceId);

    /**
     * Emit the sweep_start event. `metaJson`, when non-empty, is a
     * complete JSON value (smartref::metaJson()) embedded verbatim so
     * the stream is attributable to a build.
     */
    void sweepStart(const std::string &gridName, std::size_t jobCount,
                    unsigned workers, const std::string &metaJson = "");

    /** Emit a job_start event (called from worker threads). */
    void jobStart(const SweepJob &job);

    /**
     * Emit a job_finish event with wall time, events/s, peak RSS, a
     * linear completion estimate (`eta_s`, JSON null until a finite
     * positive rate is observable — never inf/NaN), whether the result
     * was served from the result cache and, when the job carried one,
     * its phase profile.
     */
    void jobFinish(const SweepJobResult &result);

    /**
     * Emit the sweep_finish event. `pool` may be null (serial run);
     * when present its scheduling counters are included. `cache` may be
     * null (no result cache attached); when present its hit/miss/
     * corrupt/store/eviction/verified counters are included.
     */
    void sweepFinish(double wallSeconds, const ThreadPool::Stats *pool,
                     const ResultCacheStats *cache = nullptr);

    /**
     * Peak resident-set size of this process in KB (getrusage), or 0
     * where unsupported.
     */
    static long peakRssKb();

  private:
    void emitLine(const std::string &line);
    /** Seconds since construction (the stream's time base). */
    double elapsed() const;
    /** Copy of the pre-rendered trace member (takes the lock). */
    std::string traceSuffix();

    std::chrono::steady_clock::time_point start_;
    std::ofstream file_;
    std::ostream *os_;
    std::mutex mu_;
    /** From sweepStart; 0 until then (keeps eta_s null). */
    std::size_t jobCount_ = 0;
    std::size_t finished_ = 0;
    /** Pre-rendered `,"traceId":"..."` (empty when unset); under mu_. */
    std::string traceJson_;
};

} // namespace smartref

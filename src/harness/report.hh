/**
 * @file
 * Figure/table formatting for the bench binaries: aligned console
 * tables, per-suite grouping, geometric-mean footers and CSV export —
 * one call per paper figure.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace smartref {

/** A simple aligned-column console table. */
class ReportTable
{
  public:
    explicit ReportTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);
    void addSeparator();

    /** Print with column alignment to stdout. */
    void print(std::ostream &os) const;

    /** Write as RFC 4180 CSV (separators skipped). */
    void writeCsv(const std::string &path) const;

    /** Write the CSV to a caller-owned stream. */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row = separator
};

/**
 * Quote a CSV field per RFC 4180: fields containing commas, double
 * quotes or line breaks are wrapped in double quotes, with embedded
 * quotes doubled. Other fields pass through unchanged.
 */
std::string csvEscape(const std::string &field);

/** @name Formatting helpers. */
///@{
std::string fmtPercent(double fraction, int decimals = 1);
std::string fmtMillions(double value, int decimals = 3);
std::string fmtDouble(double value, int decimals = 3);
///@}

/** Extracts a per-benchmark metric from a comparison. */
using MetricFn = std::function<double(const ComparisonResult &)>;

/**
 * Print one paper figure: a banner with the paper's reference values, a
 * table of per-benchmark rows grouped by suite, and a GMEAN footer.
 *
 * @param csvPath when non-empty, the table is also written as CSV
 * @return the geometric mean of the metric over all benchmarks
 */
double printFigure(std::ostream &os, const std::string &title,
                   const std::string &paperNote,
                   const std::vector<ComparisonResult> &results,
                   const std::string &metricName, const MetricFn &metric,
                   bool metricIsPercent, const std::string &csvPath = "",
                   int decimals = 1);

/**
 * Print a refresh-rate figure (Figs. 6/9/12/15): baseline and Smart
 * refreshes per second plus the reduction, with the baseline anchor.
 */
double printRefreshRateFigure(std::ostream &os, const std::string &title,
                              const std::string &paperNote,
                              double baselinePerSec,
                              const std::vector<ComparisonResult> &results,
                              const std::string &csvPath = "");

/** Assert that no run saw a retention violation; aborts loudly if so. */
void checkNoViolations(const std::vector<ComparisonResult> &results);

} // namespace smartref

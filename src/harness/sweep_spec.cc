#include "harness/sweep_spec.hh"

#include <fstream>
#include <sstream>

#include "dram/refresh_parallelism.hh"
#include "harness/system.hh"
#include "sim/logging.hh"
#include "sim/mini_json.hh"
#include "sim/provenance.hh"
#include "sim/suggest.hh"
#include "trace/benchmark_profiles.hh"

namespace smartref {

namespace {

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

const char *
seedModeName(SeedMode mode)
{
    return mode == SeedMode::Derived ? "derived" : "fixed";
}

std::string
pointKey(const SweepPoint &point)
{
    std::ostringstream oss;
    oss << "config=" << point.config << ";bench=" << point.benchmark
        << ";policy=" << point.policy << ";bits=" << point.counterBits
        << ";retentionMs=" << point.retentionMs;
    // The historical default mode is omitted so pre-parallelism seeds
    // (and the goldens derived from them) are unchanged.
    if (point.parallelism != "refpb")
        oss << ";par=" << point.parallelism;
    return oss.str();
}

std::uint64_t
deriveJobSeed(std::uint64_t baseSeed, const SweepPoint &point)
{
    return splitmix64(baseSeed ^ fnv1a64(pointKey(point)));
}

SweepGrid
parseSweepGrid(const std::string &jsonText)
{
    return sweepGridFromJson(minijson::parse(jsonText));
}

SweepGrid
sweepGridFromJson(const minijson::Value &root)
{
    if (!root.isObject())
        SMARTREF_FATAL("sweep grid JSON must be an object");

    SweepGrid grid;
    auto strings = [](const minijson::Value &v) {
        std::vector<std::string> out;
        for (const auto &e : v.array)
            out.push_back(e.str);
        return out;
    };
    for (const auto &[key, value] : root.object) {
        if (key == "name") {
            grid.name = value.str;
        } else if (key == "configs") {
            grid.configs = strings(value);
        } else if (key == "benchmarks") {
            grid.benchmarks = strings(value);
        } else if (key == "policies") {
            grid.policies = strings(value);
        } else if (key == "counterBits") {
            grid.counterBits.clear();
            for (const auto &e : value.array)
                grid.counterBits.push_back(
                    static_cast<std::uint32_t>(e.number));
        } else if (key == "retentionMs") {
            grid.retentionMs.clear();
            for (const auto &e : value.array)
                grid.retentionMs.push_back(
                    static_cast<std::uint64_t>(e.number));
        } else if (key == "parallelism") {
            grid.parallelism = strings(value);
        } else {
            SMARTREF_FATAL("unknown sweep grid member '", key, "'",
                           didYouMean(key,
                                      {"name", "configs", "benchmarks",
                                       "policies", "counterBits",
                                       "retentionMs", "parallelism"}));
        }
    }
    return grid;
}

SweepGrid
loadSweepGrid(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SMARTREF_FATAL("cannot read sweep grid '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return parseSweepGrid(oss.str());
}

std::vector<SweepJob>
expandGrid(const SweepGrid &grid, std::uint64_t baseSeed, SeedMode mode)
{
    // Validate every axis value up front so a typo fails before hours
    // of simulation, not in the middle of a parallel run.
    std::vector<std::string> benchmarks;
    if (grid.benchmarks.size() == 1 && grid.benchmarks[0] == "all") {
        for (const auto &p : allProfiles())
            benchmarks.push_back(p.name);
    } else {
        for (const auto &name : grid.benchmarks) {
            findProfile(name); // fatal on unknown
            benchmarks.push_back(name);
        }
    }
    for (const auto &config : grid.configs)
        dramConfigByName(config).validate();
    for (const auto &policy : grid.policies)
        policyFromString(policy);
    for (std::uint32_t bits : grid.counterBits) {
        if (bits < 1 || bits > 16)
            SMARTREF_FATAL("counterBits ", bits, " out of range [1,16]");
    }
    for (const auto &par : grid.parallelism)
        parallelismFromString(par); // fatal on unknown

    std::vector<SweepJob> jobs;
    jobs.reserve(grid.configs.size() * grid.retentionMs.size() *
                 grid.counterBits.size() * grid.policies.size() *
                 grid.parallelism.size() * benchmarks.size());
    for (const auto &config : grid.configs) {
        for (std::uint64_t retention : grid.retentionMs) {
            for (std::uint32_t bits : grid.counterBits) {
                for (const auto &policy : grid.policies) {
                    for (const auto &par : grid.parallelism) {
                        for (const auto &benchmark : benchmarks) {
                            SweepJob job;
                            job.index = jobs.size();
                            job.point = {config, benchmark, policy,
                                         bits, retention, par};
                            job.seed = mode == SeedMode::Fixed
                                           ? baseSeed
                                           : deriveJobSeed(baseSeed,
                                                           job.point);
                            jobs.push_back(std::move(job));
                        }
                    }
                }
            }
        }
    }
    return jobs;
}

const std::vector<NamedGrid> &
predefinedGrids()
{
    static const std::vector<NamedGrid> grids = [] {
        std::vector<NamedGrid> g;
        g.push_back({"smoke",
                     "reduced CI grid: 2 configs x 3 benchmarks",
                     {"smoke",
                      {"2gb", "3d64"},
                      {"mummer", "gcc", "radix"},
                      {"smart"},
                      {3},
                      {0}}});
        g.push_back({"2gb", "full suite on the 2 GB module (Figs. 6-8)",
                     {"2gb", {"2gb"}, {"all"}, {"smart"}, {3}, {0}}});
        g.push_back({"4gb", "full suite on the 4 GB module (Figs. 9-11)",
                     {"4gb", {"4gb"}, {"all"}, {"smart"}, {3}, {0}}});
        g.push_back(
            {"3d64", "full suite, 3D 64 MB cache at 64 ms (Figs. 12-14)",
             {"3d64", {"3d64"}, {"all"}, {"smart"}, {3}, {0}}});
        g.push_back(
            {"3d64-32ms", "full suite, 3D 64 MB at 32 ms (Figs. 15-18)",
             {"3d64-32ms", {"3d64-32ms"}, {"all"}, {"smart"}, {3}, {0}}});
        g.push_back({"3d32", "full suite on the 3D 32 MB cache",
                     {"3d32", {"3d32"}, {"all"}, {"smart"}, {3}, {0}}});
        g.push_back(
            {"figures",
             "every paper-figure config in one run (Figs. 6-18)",
             {"figures",
              {"2gb", "4gb", "3d64", "3d64-32ms"},
              {"all"},
              {"smart"},
              {3},
              {0}}});
        g.push_back({"bits",
                     "counter-width ablation on the 2 GB module",
                     {"bits",
                      {"2gb"},
                      {"all"},
                      {"smart"},
                      {1, 2, 3, 4, 8},
                      {0}}});
        g.push_back({"policies",
                     "policy comparison on the 2 GB module",
                     {"policies",
                      {"2gb"},
                      {"all"},
                      {"burst", "ras-only", "per-bank", "smart",
                       "retention-aware"},
                      {3},
                      {0}}});
        g.push_back({"policy-grid",
                     "refresh-parallelism x policy smoke grid (CI gate)",
                     {"policy-grid",
                      {"2gb"},
                      {"mummer", "radix"},
                      {"cbr", "smart"},
                      {3},
                      {0},
                      {"none", "refpb", "darp", "sarp", "all"}}});
        g.push_back({"server",
                     "multi-channel server modules, 128-512 GB",
                     {"server",
                      {"128gb", "256gb", "512gb"},
                      {"mummer", "radix"},
                      {"smart"},
                      {3},
                      {0}}});
        return g;
    }();
    return grids;
}

SweepGrid
predefinedGridByName(const std::string &name)
{
    std::vector<std::string> names;
    for (const auto &g : predefinedGrids()) {
        if (name == g.name)
            return g.grid;
        names.push_back(g.name);
    }
    SMARTREF_FATAL("unknown grid '", name, "'", didYouMean(name, names),
                   " (see --list-grids, or use --grid-file)");
}

} // namespace smartref

/**
 * @file
 * Stats/sweep JSON diffing with per-metric tolerances — the library
 * behind tools/smartref_statdiff.
 *
 * The old CI golden gate was a hand-rolled Python one-liner asserting a
 * few magic numbers. This module replaces it with a structural diff:
 * both JSON documents are flattened into dotted metric paths
 * ("summary[0].gmeanRefreshReduction"), each numeric leaf is compared
 * under a tolerance looked up by exact path or glob pattern, and the
 * verdict is reported as a human table and a machine JSON object.
 *
 * The top-level "meta" member (run provenance: git SHA, compiler,
 * build type — see sim/provenance.hh) is skipped: two runs of the same
 * experiment from different checkouts must still compare clean.
 */

#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace minijson {
class Value;
}

namespace smartref {

/** How far one metric may drift before the diff fails. */
struct MetricTolerance
{
    /** Max |a - b| accepted. */
    double abs = 0.0;
    /** Max |a - b| / max(|a|, |b|) accepted. */
    double rel = 0.0;
    /** Skip this metric entirely (timing, host-dependent values). */
    bool ignore = false;
};

/**
 * Tolerance table: a fallback for unmatched metrics plus entries keyed
 * by metric path. Lookup order: exact path match first, then the first
 * matching glob pattern ('*' matches any run of characters) in sorted
 * key order — deterministic regardless of file order.
 */
struct DiffTolerances
{
    MetricTolerance fallback;
    std::map<std::string, MetricTolerance> metrics;

    /** Tolerance in effect for one flattened metric path. */
    const MetricTolerance &lookup(const std::string &path) const;
};

/**
 * Parse a tolerance table:
 *
 *   { "default": {"abs": 0, "rel": 0},
 *     "metrics": {
 *       "anchors.*.busNanojoulesPerAddress": {"abs": 0.001},
 *       "jobs[*].seed": {"ignore": true} } }
 *
 * Both top-level members are optional; unknown members or non-numeric
 * tolerance fields are fatal. Throws std::runtime_error on malformed
 * JSON.
 */
DiffTolerances parseTolerances(const std::string &jsonText);

/** parseTolerances over a file's contents (fatal when unreadable). */
DiffTolerances loadTolerances(const std::string &path);

/** '*'-wildcard match of `path` against `pattern` (exposed for tests). */
bool globMatch(const std::string &pattern, const std::string &path);

/**
 * Flatten a parsed JSON tree into (dotted path -> numeric value) rows.
 * Objects nest with '.', arrays with "[i]"; booleans map to 0/1;
 * strings and nulls are skipped (identity lives in the paths); a
 * top-level "meta" object is skipped per the module contract.
 */
std::map<std::string, double> flattenMetrics(const minijson::Value &root);

/** Parse + flatten one stats/sweep JSON file (fatal when unreadable). */
std::map<std::string, double> loadMetrics(const std::string &path);

/** One compared metric that exceeded its tolerance. */
struct DiffEntry
{
    std::string metric;
    double a = 0.0;
    double b = 0.0;
    double absDiff = 0.0;
    double relDiff = 0.0;
    MetricTolerance tolerance;
};

/** Outcome of diffMetrics(). */
struct DiffResult
{
    /** Metrics present on both sides but outside tolerance. */
    std::vector<DiffEntry> failures;
    /** Metrics in B only (empty in subset mode). */
    std::vector<std::string> missingInA;
    /** Metrics in A only. */
    std::vector<std::string> missingInB;
    /** Metrics compared and within tolerance. */
    std::size_t passed = 0;
    /** Metrics skipped by an `ignore` tolerance. */
    std::size_t ignored = 0;

    bool pass() const
    {
        return failures.empty() && missingInA.empty() &&
               missingInB.empty();
    }
};

/**
 * Compare flattened metric sets A (reference) and B (candidate). A
 * metric passes when |a-b| <= tol.abs OR |a-b|/max(|a|,|b|) <= tol.rel.
 * With `subset` set, metrics present only in B are accepted — the mode
 * CI uses, so goldens pin a stable subset while the schema can grow.
 */
DiffResult diffMetrics(const std::map<std::string, double> &a,
                       const std::map<std::string, double> &b,
                       const DiffTolerances &tolerances,
                       bool subset = false);

/** Human-readable verdict: aligned failure table plus a summary line. */
void writeDiffReport(std::ostream &os, const DiffResult &result);

/** Machine verdict: {"pass":…,"failures":[…],…} on one line. */
void writeDiffJson(std::ostream &os, const DiffResult &result);

} // namespace smartref

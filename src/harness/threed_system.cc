#include "harness/threed_system.hh"

#include "sim/logging.hh"

namespace smartref {

ThreeDSystem::ThreeDSystem(const ThreeDSystemConfig &cfg)
    : StatGroup("system3d"), cfg_(cfg)
{
    cfg_.threeD.validate();
    cfg_.mainMem.validate();

    threeDDram_ = std::make_unique<DramModule>(cfg_.threeD, eq_, this);
    mainDram_ = std::make_unique<DramModule>(cfg_.mainMem, eq_, this);
    threeDCtrl_ = std::make_unique<MemoryController>(*threeDDram_, eq_,
                                                     cfg_.ctrl, this);
    mainCtrl_ = std::make_unique<MemoryController>(*mainDram_, eq_,
                                                   cfg_.ctrl, this);

    switch (cfg_.threeDPolicy) {
      case PolicyKind::Cbr:
        policy_ = std::make_unique<CbrRefreshPolicy>(eq_, this);
        break;
      case PolicyKind::Burst:
        policy_ = std::make_unique<BurstRefreshPolicy>(eq_, this);
        break;
      case PolicyKind::RasOnly:
        policy_ = std::make_unique<RasOnlyRefreshPolicy>(
            eq_, deriveBusParams(cfg_.bus, cfg_.threeD.org), this);
        break;
      case PolicyKind::PerBank:
        policy_ = std::make_unique<PerBankRefreshPolicy>(
            eq_, deriveBusParams(cfg_.bus, cfg_.threeD.org), this);
        break;
      case PolicyKind::Smart: {
        SmartRefreshConfig sc = cfg_.smart;
        sc.bus = deriveBusParams(sc.bus, cfg_.threeD.org);
        // The stacked die hangs off die-to-die vias, not a board bus:
        // no off-chip trace, single module load.
        sc.bus.offChipLengthMm = 0.0;
        sc.bus.onChipLengthMm = 12.0;
        if (!sc.retentionClasses)
            sc.retentionClasses = cfg_.retentionClasses;
        auto smart = std::make_unique<SmartRefreshPolicy>(cfg_.threeD, sc,
                                                          eq_, this);
        smartPolicy_ = smart.get();
        policy_ = std::move(smart);
        break;
      }
      case PolicyKind::RetentionAware:
        SMARTREF_ASSERT(cfg_.retentionClasses != nullptr,
                        "RetentionAware policy needs retentionClasses");
        policy_ = std::make_unique<RetentionAwarePolicy>(
            eq_, cfg_.retentionClasses,
            deriveBusParams(cfg_.bus, cfg_.threeD.org), this);
        break;
    }
    if (cfg_.retentionClasses) {
        std::vector<std::uint8_t> m(cfg_.retentionClasses->totalRows());
        for (std::uint64_t i = 0; i < m.size(); ++i) {
            m[i] = static_cast<std::uint8_t>(
                cfg_.retentionClasses->multiplier(i));
        }
        threeDDram_->retention().applyClassMultipliers(m);
    }
    threeDCtrl_->setRefreshPolicy(policy_.get());
    if (cfg_.heatmap) {
        // The heatmap observes the stacked die under the policy being
        // studied; main memory always runs plain CBR and stays out.
        threeDCtrl_->setHeatmap(cfg_.heatmap);
        if (smartPolicy_)
            smartPolicy_->setHeatmap(cfg_.heatmap);
    }
    if (cfg_.audit) {
        threeDCtrl_->setAudit(cfg_.audit);
        policy_->setAudit(cfg_.audit);
    }
    if (cfg_.ledger)
        threeDDram_->setLedger(cfg_.ledger);
    if (cfg_.profiler) {
        threeDCtrl_->setProfiler(cfg_.profiler);
        if (smartPolicy_)
            smartPolicy_->setProfiler(cfg_.profiler);
    }

    mainPolicy_ = std::make_unique<CbrRefreshPolicy>(eq_, this);
    mainCtrl_->setRefreshPolicy(mainPolicy_.get());

    cache_ = std::make_unique<DramCache>(*threeDCtrl_, *mainCtrl_,
                                         cfg_.cache, eq_, this);
}

WorkloadModel &
ThreeDSystem::addWorkload(const WorkloadParams &params)
{
    SMARTREF_ASSERT(!started_, "cannot add workloads after run()");
    auto sink = [this](Addr addr, bool write) {
        cache_->access(addr, write);
    };
    workloads_.push_back(std::make_unique<WorkloadModel>(
        params, cfg_.threeD.org.rowBytes(), sink, eq_, this));
    return *workloads_.back();
}

void
ThreeDSystem::run(Tick duration)
{
    if (!started_) {
        started_ = true;
        for (auto &w : workloads_)
            w->start();
    }
    eq_.runUntil(eq_.now() + duration);
    threeDDram_->finalize();
    mainDram_->finalize();
    if (smartPolicy_)
        smartPolicy_->syncEnergyStats();
}

} // namespace smartref

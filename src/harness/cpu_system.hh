/**
 * @file
 * Closed-loop CPU system assembly: in-order cores -> private L1s ->
 * shared L2 -> memory controller -> DRAM, matching the paper's
 * execution-driven setup (Simics + Ruby in front of DRAMsim). Refresh
 * interference here costs *instructions*, so policy comparisons yield a
 * genuine speedup metric instead of only latency deltas.
 */

#pragma once

#include <memory>
#include <vector>

#include "cache/cmp_hierarchy.hh"
#include "cpu/simple_core.hh"
#include "harness/system.hh"

namespace smartref {

/** Configuration of a closed-loop CPU system. */
struct CpuSystemConfig
{
    DramConfig dram = ddr2_2GB();
    ControllerConfig ctrl{};
    PolicyKind policy = PolicyKind::Cbr;
    SmartRefreshConfig smart{};
    std::shared_ptr<const RetentionClassMap> retentionClasses;
    std::uint32_t numCores = 2; ///< hierarchy is sized at construction
    CacheConfig l1 = defaultL1();
    CacheConfig l2 = defaultL2();

    static CacheConfig
    defaultL1()
    {
        CacheConfig cfg;
        cfg.name = "L1.";
        cfg.sizeBytes = 32 * kKiB;
        cfg.assoc = 4;
        cfg.hitLatency = 1 * kNanosecond;
        return cfg;
    }

    /** Table 1's L2: 1 MB, 8-way. */
    static CacheConfig
    defaultL2()
    {
        CacheConfig cfg;
        cfg.name = "L2";
        cfg.sizeBytes = 1 * kMiB;
        cfg.assoc = 8;
        cfg.hitLatency = 6 * kNanosecond;
        return cfg;
    }
};

/** A CMP with a cache hierarchy in front of one DRAM module. */
class CpuSystem : public StatGroup
{
  public:
    explicit CpuSystem(const CpuSystemConfig &cfg);

    /**
     * Add one core executing the given access pattern (addresses are
     * CPU-side; the hierarchy filters them before DRAM).
     */
    SimpleCore &addCore(const CoreParams &core,
                        const WorkloadParams &pattern);

    /** Advance simulated time; cores start on the first call. */
    void run(Tick duration);

    EventQueue &eventQueue() { return eq_; }
    DramModule &dram() { return *dram_; }
    MemoryController &controller() { return *ctrl_; }
    CmpHierarchy &hierarchy() { return *hierarchy_; }
    SimpleCore &core(std::uint32_t i) { return *cores_.at(i); }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    /** Aggregate instructions retired across cores. */
    std::uint64_t totalInstructions() const;

    const CpuSystemConfig &config() const { return cfg_; }

  private:
    CpuSystemConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<DramModule> dram_;
    std::unique_ptr<MemoryController> ctrl_;
    std::unique_ptr<RefreshPolicy> policy_;
    std::unique_ptr<CmpHierarchy> hierarchy_;
    std::vector<std::unique_ptr<SimpleCore>> cores_;
    bool started_ = false;
};

} // namespace smartref

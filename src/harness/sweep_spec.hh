/**
 * @file
 * Sweep job-spec layer: the declarative grid, its canonical expansion
 * into jobs, and coordinate-derived seeding.
 *
 * This is the pure "what to run" half of the sweep subsystem — no
 * execution, no storage. The execution layer (harness/sweep.hh) fans
 * the expanded jobs out over the thread pool; the storage layer
 * (harness/result_cache.hh) keys finished results by the canonical
 * coordinates defined here. Keeping the spec separate means a cache
 * key or a queued sweepd request can be formed without ever
 * constructing a simulator.
 *
 * Determinism contract (shared with the execution layer):
 *  - every job's seed derives from its grid coordinates
 *    (deriveJobSeed), never from submission or completion order, so
 *    adding an axis value or changing -j N never perturbs another
 *    job's stream;
 *  - pointKey() is the canonical coordinate string: two grids
 *    containing the same point agree on its key, its seed, and (via
 *    the result cache) its stored result.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace minijson {
class Value;
}

namespace smartref {

/** Coordinates of one job in a sweep grid. */
struct SweepPoint
{
    std::string config = "2gb";     ///< preset name (dramConfigByName)
    std::string benchmark = "mummer"; ///< profile name
    std::string policy = "smart";   ///< compared against the CBR baseline
    std::uint32_t counterBits = 3;
    std::uint64_t retentionMs = 0;  ///< 0 = the preset's own retention
    /**
     * Refresh-access parallelism mode ("none", "refpb", "darp",
     * "sarp", "all" = DSARP). Applied to both runs of the comparison,
     * so baseline and policy see the same device semantics. The
     * default "refpb" is the historical behaviour and is omitted from
     * pointKey() to keep existing seeds/goldens stable.
     */
    std::string parallelism = "refpb";
};

/**
 * A declarative sweep grid. Axes expand in canonical nesting order —
 * config (outermost), retentionMs, counterBits, policy, parallelism,
 * benchmark (innermost) — so job indices are stable properties of the
 * grid, not of the execution.
 */
struct SweepGrid
{
    std::string name = "sweep";     ///< used for output file names
    std::vector<std::string> configs = {"2gb"};
    /** Profile names; the single entry "all" expands to all 32. */
    std::vector<std::string> benchmarks = {"all"};
    std::vector<std::string> policies = {"smart"};
    std::vector<std::uint32_t> counterBits = {3};
    std::vector<std::uint64_t> retentionMs = {0};
    /** Parallelism modes (refresh_parallelism.hh names). */
    std::vector<std::string> parallelism = {"refpb"};
};

/**
 * Parse a grid from its JSON description:
 *
 *   { "name": "fig06", "configs": ["2gb"], "benchmarks": ["all"],
 *     "policies": ["smart"], "counterBits": [3], "retentionMs": [0] }
 *
 * Missing members keep the SweepGrid defaults; unknown members are
 * fatal (bad user configuration) with a did-you-mean suggestion over
 * the known axis names. Throws std::runtime_error on malformed JSON.
 */
SweepGrid parseSweepGrid(const std::string &jsonText);

/**
 * parseSweepGrid over an already-parsed JSON object — the form sweepd
 * requests use to embed a grid inline.
 */
SweepGrid sweepGridFromJson(const minijson::Value &root);

/** parseSweepGrid over a file's contents (fatal when unreadable). */
SweepGrid loadSweepGrid(const std::string &path);

/** How job seeds are chosen during grid expansion. */
enum class SeedMode {
    Derived, ///< deriveJobSeed(base, point): the determinism contract
    Fixed,   ///< every job uses the base seed (bench-binary parity)
};

/** "derived" / "fixed"; the spelling used in JSON artifacts. */
const char *seedModeName(SeedMode mode);

/** Canonical coordinate key of a point, the input to seed derivation. */
std::string pointKey(const SweepPoint &point);

/**
 * Seed of the job at `point`: splitmix64-finalised mix of the base
 * seed with an FNV-1a hash of pointKey(). Depends only on the
 * coordinates — two grids containing the same point give its job the
 * same seed. Pinned by tests/test_sweep.cpp.
 */
std::uint64_t deriveJobSeed(std::uint64_t baseSeed, const SweepPoint &point);

/** One expanded job: a grid index, coordinates and the derived seed. */
struct SweepJob
{
    std::size_t index = 0;
    SweepPoint point;
    std::uint64_t seed = 0;
};

/** Expand a grid into jobs in canonical order (validates all names). */
std::vector<SweepJob> expandGrid(const SweepGrid &grid,
                                 std::uint64_t baseSeed,
                                 SeedMode mode = SeedMode::Derived);

/** A predefined grid with its one-line description (--list-grids). */
struct NamedGrid
{
    std::string name;
    std::string description;
    SweepGrid grid;
};

/**
 * The predefined grids every frontend (smartref_sweep, smartref_sweepd
 * requests) resolves by name: "smoke" (the CI gate), one per paper
 * config, "figures", "bits", "policies", "policy-grid", "server".
 */
const std::vector<NamedGrid> &predefinedGrids();

/**
 * Resolve a predefined grid by name; fatal on an unknown name with a
 * did-you-mean suggestion over the known grid names.
 */
SweepGrid predefinedGridByName(const std::string &name);

} // namespace smartref

#include "harness/report.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "sim/logging.hh"

namespace smartref {

ReportTable::ReportTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    SMARTREF_ASSERT(cells.size() == header_.size(),
                    "row width ", cells.size(), " != header width ",
                    header_.size());
    rows_.push_back(std::move(cells));
}

void
ReportTable::addSeparator()
{
    rows_.emplace_back();
}

void
ReportTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << '\n';
    };

    printRow(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        if (row.empty())
            os << '\n';
        else
            printRow(row);
    }
}

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (char ch : field) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
ReportTable::writeCsv(std::ostream &os) const
{
    auto writeRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << csvEscape(row[c]);
        os << '\n';
    };
    writeRow(header_);
    for (const auto &row : rows_)
        if (!row.empty())
            writeRow(row);
}

void
ReportTable::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write CSV '", path, "'");
    writeCsv(out);
}

std::string
fmtPercent(double fraction, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << fraction * 100.0
        << "%";
    return oss.str();
}

std::string
fmtMillions(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value / 1e6;
    return oss.str();
}

std::string
fmtDouble(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return oss.str();
}

namespace {

/** Iterate results grouped by suite, inserting separators. */
template <typename RowFn>
void
groupBySuite(ReportTable &table,
             const std::vector<ComparisonResult> &results, RowFn addRow)
{
    std::string lastSuite;
    for (const auto &r : results) {
        if (!lastSuite.empty() && r.suite != lastSuite)
            table.addSeparator();
        lastSuite = r.suite;
        addRow(r);
    }
}

} // namespace

double
printFigure(std::ostream &os, const std::string &title,
            const std::string &paperNote,
            const std::vector<ComparisonResult> &results,
            const std::string &metricName, const MetricFn &metric,
            bool metricIsPercent, const std::string &csvPath,
            int decimals)
{
    os << "\n=== " << title << " ===\n";
    if (!paperNote.empty())
        os << "paper: " << paperNote << "\n\n";

    ReportTable table({"benchmark", "suite", metricName});
    groupBySuite(table, results, [&](const ComparisonResult &r) {
        const double v = metric(r);
        table.addRow({r.benchmark, r.suite,
                      metricIsPercent ? fmtPercent(v, decimals)
                                      : fmtDouble(v, decimals)});
    });

    std::vector<double> values;
    values.reserve(results.size());
    for (const auto &r : results)
        values.push_back(metric(r));
    const double gmean = geometricMean(values);

    table.addSeparator();
    table.addRow({"GMEAN", "",
                  metricIsPercent ? fmtPercent(gmean, decimals)
                                  : fmtDouble(gmean, decimals)});
    table.print(os);
    if (!csvPath.empty())
        table.writeCsv(csvPath);
    return gmean;
}

double
printRefreshRateFigure(std::ostream &os, const std::string &title,
                       const std::string &paperNote, double baselinePerSec,
                       const std::vector<ComparisonResult> &results,
                       const std::string &csvPath)
{
    os << "\n=== " << title << " ===\n";
    if (!paperNote.empty())
        os << "paper: " << paperNote << "\n";
    os << "baseline (all policies): " << fmtMillions(baselinePerSec)
       << " M refreshes/s\n\n";

    ReportTable table({"benchmark", "suite", "baseline (M/s)",
                       "smart (M/s)", "reduction"});
    groupBySuite(table, results, [&](const ComparisonResult &r) {
        table.addRow({r.benchmark, r.suite,
                      fmtMillions(r.baseline.refreshesPerSec),
                      fmtMillions(r.smart.refreshesPerSec),
                      fmtPercent(r.refreshReduction())});
    });

    std::vector<double> smartRates;
    smartRates.reserve(results.size());
    for (const auto &r : results)
        smartRates.push_back(r.smart.refreshesPerSec);
    const double gmean = geometricMean(smartRates);

    table.addSeparator();
    table.addRow({"GMEAN", "", fmtMillions(baselinePerSec),
                  fmtMillions(gmean),
                  fmtPercent(1.0 - gmean / baselinePerSec)});
    table.print(os);
    if (!csvPath.empty())
        table.writeCsv(csvPath);
    return gmean;
}

void
checkNoViolations(const std::vector<ComparisonResult> &results)
{
    for (const auto &r : results) {
        if (r.baseline.violations != 0 || r.smart.violations != 0) {
            SMARTREF_PANIC("retention violation in benchmark '",
                           r.benchmark, "': baseline=",
                           r.baseline.violations,
                           " smart=", r.smart.violations);
        }
    }
}

} // namespace smartref

#include "harness/sweepd_service.hh"

#include <algorithm>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>
#include <vector>

#include "harness/sweep_telemetry.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/mini_json.hh"
#include "sim/provenance.hh"
#include "sim/suggest.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace fs = std::filesystem;

namespace smartref {

namespace {

long
processId()
{
#if defined(__unix__) || defined(__APPLE__)
    return static_cast<long>(::getpid());
#else
    return 0;
#endif
}

std::int64_t
unixMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
seedValue(const minijson::Value &v)
{
    // Seeds are 64-bit; JSON numbers are doubles, so large seeds must
    // be strings ("17388960893229350514"). Accept both spellings.
    if (v.isString())
        return std::stoull(v.str);
    return static_cast<std::uint64_t>(v.number);
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SMARTREF_FATAL("cannot read '", path.string(), "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

/** Cache counters attributable to one request: after minus before. */
ResultCacheStats
statsDelta(const ResultCacheStats &after, const ResultCacheStats &before)
{
    ResultCacheStats d;
    d.hits = after.hits - before.hits;
    d.misses = after.misses - before.misses;
    d.corrupt = after.corrupt - before.corrupt;
    d.stores = after.stores - before.stores;
    d.evictions = after.evictions - before.evictions;
    d.verified = after.verified - before.verified;
    return d;
}

std::string
cacheJson(const ResultCacheStats &c)
{
    std::ostringstream oss;
    oss << "{\"hits\":" << c.hits << ",\"misses\":" << c.misses
        << ",\"corrupt\":" << c.corrupt << ",\"stores\":" << c.stores
        << ",\"evictions\":" << c.evictions
        << ",\"verified\":" << c.verified << "}";
    return oss.str();
}

void
writeStatus(const fs::path &dir, const std::string &status,
            const std::string &error, double wallSeconds,
            std::size_t jobCount, std::uint64_t violations,
            const ResultCacheStats *cache, const std::string &traceId)
{
    std::ofstream out(dir / "status.json");
    RunMeta meta;
    meta.schema = "smartref-sweepd-status-v1";
    meta.traceId = traceId;
    out << "{\"schema\":\"smartref-sweepd-status-v1\""
        << ",\"meta\":" << metaJson(meta) << ",\"status\":\"" << status
        << "\"";
    if (!error.empty())
        out << ",\"error\":\"" << jsonEscape(error) << "\"";
    if (!traceId.empty())
        out << ",\"traceId\":\"" << jsonEscape(traceId) << "\"";
    out << ",\"wallSeconds\":" << wallSeconds
        << ",\"jobCount\":" << jobCount
        << ",\"violations\":" << violations;
    if (cache)
        out << ",\"cache\":" << cacheJson(*cache);
    out << "}\n";
}

/** Number of entries in `dir` satisfying `pred` (0 when unreadable). */
template <typename Pred>
std::size_t
countEntries(const fs::path &dir, const Pred &pred)
{
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        if (pred(entry))
            ++n;
    return n;
}

} // namespace

SweepdRequest
parseSweepdRequest(const std::string &text,
                   const SweepRunOptions &defaults)
{
    const minijson::Value root = minijson::parse(text);
    if (!root.isObject())
        SMARTREF_FATAL("request must be a JSON object");

    SweepdRequest req;
    req.opts = defaults;
    bool haveGrid = false;
    for (const auto &[key, value] : root.object) {
        if (key == "grid") {
            req.grid = sweepGridFromJson(value);
            haveGrid = true;
        } else if (key == "gridName") {
            req.grid = predefinedGridByName(value.str);
            haveGrid = true;
        } else if (key == "warmupMs") {
            req.opts.warmup =
                static_cast<Tick>(value.number) * kMillisecond;
        } else if (key == "measureMs") {
            req.opts.measure =
                static_cast<Tick>(value.number) * kMillisecond;
        } else if (key == "segments") {
            req.opts.segments = static_cast<std::uint32_t>(value.number);
        } else if (key == "seed") {
            req.opts.baseSeed = seedValue(value);
        } else if (key == "seedMode") {
            if (value.str == "fixed")
                req.opts.seedMode = SeedMode::Fixed;
            else if (value.str == "derived")
                req.opts.seedMode = SeedMode::Derived;
            else
                SMARTREF_FATAL("unknown seedMode '", value.str,
                               "' (derived, fixed)");
        } else if (key == "autoReconfigure") {
            req.opts.autoReconfigure = value.boolean;
        } else if (key == "sparseCounters") {
            req.opts.sparseCounters = value.boolean;
        } else if (key == "traceId") {
            req.traceId = value.str;
        } else {
            SMARTREF_FATAL(
                "unknown request member '", key, "'",
                didYouMean(key,
                           {"grid", "gridName", "warmupMs", "measureMs",
                            "segments", "seed", "seedMode",
                            "autoReconfigure", "sparseCounters",
                            "traceId"}));
        }
    }
    if (!haveGrid)
        SMARTREF_FATAL("request needs a 'grid' or 'gridName' member");
    return req;
}

SweepdService::SweepdService(const SweepdConfig &cfg)
    : cfg_(cfg),
      cache_(cfg.cacheDir.empty() ? ResultCache::defaultDir()
                                  : cfg.cacheDir),
      incoming_(fs::path(cfg.queueDir) / "incoming"),
      work_(fs::path(cfg.queueDir) / "work"),
      done_(fs::path(cfg.queueDir) / "done"),
      failed_(fs::path(cfg.queueDir) / "failed"),
      daemon_(fs::path(cfg.queueDir) / "daemon"),
      start_(std::chrono::steady_clock::now()),
      lastPollUnixMs_(unixMs())
{
    if (cfg.queueDir.empty())
        SMARTREF_FATAL("sweepd needs a queue directory");
    for (const fs::path &d : {incoming_, work_, done_, failed_, daemon_})
        fs::create_directories(d);
    writeHealth();
}

bool
SweepdService::claimNext(fs::path &claimed)
{
    std::vector<fs::path> candidates;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(incoming_, ec)) {
        if (entry.path().extension() == ".json")
            candidates.push_back(entry.path());
    }
    std::sort(candidates.begin(), candidates.end());
    for (const fs::path &c : candidates) {
        const fs::path target = work_ / c.filename();
        fs::rename(c, target, ec);
        if (!ec) {
            claimed = target;
            return true;
        }
    }
    return false;
}

std::string
SweepdService::deriveTraceId(const std::string &stem)
{
    // Request-scoped, collision-resistant, deliberately
    // non-deterministic: every carrier of a trace ID is already
    // outside the byte-identity contract.
    return hex64(fnv1a64(stem + ";" + std::to_string(++traceSeq_) + ";" +
                         std::to_string(unixMs()) + ";" +
                         std::to_string(processId())));
}

void
SweepdService::logAccess(const std::string &line)
{
    std::ofstream out(daemon_ / "access.ndjson",
                      std::ios::binary | std::ios::app);
    if (out) {
        out << line << "\n";
        out.flush();
    }
}

bool
SweepdService::processOne(const fs::path &workFile)
{
    const std::string stem = workFile.stem().string();
    const ResultCacheStats before = cache_.stats();
    const auto start = std::chrono::steady_clock::now();
    const auto wall = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    ++inFlight_;
    writeHealth();

    // Stage every artifact next to the claimed request; the finished
    // directory is renamed into done/ or failed/ as the final act, so
    // a mid-run failure never leaves partials in a terminal state dir.
    const fs::path staging = work_ / (stem + ".out");
    std::error_code ec;
    fs::remove_all(staging, ec);
    fs::create_directories(staging);

    std::string traceId = deriveTraceId(stem);
    std::string error;
    std::size_t jobCount = 0;
    std::uint64_t violations = 0;

    SweepdRequest req;
    bool parsed = false;
    try {
        req = parseSweepdRequest(readFile(workFile), cfg_.defaults);
        if (!req.traceId.empty())
            traceId = req.traceId;
        parsed = true;
    } catch (const std::exception &e) {
        error = e.what();
    }

    const std::string idFields = "\"request\":\"" + jsonEscape(stem) +
                                 "\",\"traceId\":\"" +
                                 jsonEscape(traceId) + "\"";
    logAccess("{\"event\":\"received\",\"unixMs\":" +
              std::to_string(unixMs()) + "," + idFields + ",\"file\":\"" +
              jsonEscape(workFile.string()) + "\"}");
    logAccess("{\"event\":\"claimed\",\"unixMs\":" +
              std::to_string(unixMs()) + "," + idFields + "}");

    if (parsed) {
        try {
            req.opts.cache = &cache_;
            SweepTelemetry telemetry(
                (staging / "telemetry.ndjson").string());
            telemetry.setTraceId(traceId);
            req.opts.telemetry = &telemetry;
            jobCount = expandGrid(req.grid, req.opts.baseSeed,
                                  req.opts.seedMode)
                           .size();
            RunMeta meta;
            meta.schema = "smartref-sweep-telemetry-v1";
            meta.configHash = sweepConfigHash(req.grid, req.opts);
            meta.seedMode = seedModeName(req.opts.seedMode);
            meta.traceId = traceId;
            telemetry.sweepStart(req.grid.name, jobCount, req.opts.jobs,
                                 metaJson(meta));
            logAccess("{\"event\":\"started\",\"unixMs\":" +
                      std::to_string(unixMs()) + "," + idFields +
                      ",\"grid\":\"" + jsonEscape(req.grid.name) +
                      "\",\"jobs\":" + std::to_string(jobCount) + "}");

            std::cerr << "sweepd: request '" << stem << "' grid '"
                      << req.grid.name << "': " << jobCount << " job(s)"
                      << std::endl;
            const std::vector<SweepJobResult> results =
                runSweep(req.grid, req.opts);

            // The deterministic aggregates carry no trace ID: they
            // must stay cmp-equal to the one-shot CLI's bytes.
            writeSweepJson(req.grid, req.opts, results,
                           (staging / "sweep.json").string());
            writeSweepCsv(results, (staging / "sweep.csv").string());
            violations = totalViolations(results);
        } catch (const std::exception &e) {
            error = e.what();
        }
    }

    const ResultCacheStats delta = statsDelta(cache_.stats(), before);
    const double elapsed = wall();
    const std::string status =
        !error.empty() ? "failed"
                       : (violations ? "retention-violations" : "ok");
    writeStatus(staging, status, error, elapsed, jobCount, violations,
                &delta, traceId);
    fs::rename(workFile, staging / "request.json", ec);

    const fs::path target =
        (error.empty() ? done_ : failed_) / stem;
    fs::remove_all(target, ec); // a stale same-named result loses
    fs::rename(staging, target, ec);
    if (ec)
        SMARTREF_WARN("cannot publish request '", stem, "' to '",
                      target.string(), "': ", ec.message());

    std::ostringstream fin;
    fin << "{\"event\":\"" << (error.empty() ? "finished" : "failed")
        << "\",\"unixMs\":" << unixMs() << "," << idFields
        << ",\"status\":\"" << status << "\""
        << ",\"wallSeconds\":" << elapsed
        << ",\"jobCount\":" << jobCount << ",\"cache\":"
        << cacheJson(delta);
    if (!error.empty())
        fin << ",\"error\":\"" << jsonEscape(error) << "\"";
    fin << "}";
    logAccess(fin.str());

    if (error.empty()) {
        SMARTREF_METRIC_INC("sweepd.requests_ok");
        std::cerr << "sweepd: request '" << stem << "' done in "
                  << elapsed << "s (" << delta.hits << " hit(s), "
                  << delta.misses << " miss(es))" << std::endl;
    } else {
        SMARTREF_METRIC_INC("sweepd.requests_failed");
        std::cerr << "sweepd: request '" << stem << "' failed: " << error
                  << std::endl;
    }
    SMARTREF_METRIC_OBSERVE("sweepd.request_wall_us", elapsed * 1e6);

    ++processed_;
    const bool ok = error.empty() && violations == 0;
    if (!ok)
        ++failures_;
    --inFlight_;
    writeHealth();
    return ok;
}

void
SweepdService::notePoll()
{
    lastPollUnixMs_ = unixMs();
    writeHealth();
}

void
SweepdService::writeHealth()
{
    const auto isJson = [](const fs::directory_entry &e) {
        return e.path().extension() == ".json";
    };
    const auto isDir = [](const fs::directory_entry &e) {
        return e.is_directory();
    };
    RunMeta meta;
    meta.schema = "smartref-sweepd-health-v1";

    std::ostringstream body;
    body << "{\"schema\":\"smartref-sweepd-health-v1\""
         << ",\"meta\":" << metaJson(meta) << ",\"pid\":" << processId()
         << ",\"uptimeSeconds\":"
         << std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count()
         << ",\"queue\":{\"incoming\":" << countEntries(incoming_, isJson)
         << ",\"work\":" << countEntries(work_, isJson)
         << ",\"done\":" << countEntries(done_, isDir)
         << ",\"failed\":" << countEntries(failed_, isDir) << "}"
         << ",\"requestsInFlight\":" << inFlight_
         << ",\"processed\":" << processed_
         << ",\"failures\":" << failures_
         << ",\"lastPollUnixMs\":" << lastPollUnixMs_
         << ",\"metrics\":" << globalMetrics().snapshotJson() << "}\n";

    // tmp + rename so a concurrent reader never sees a partial file.
    const fs::path path = daemon_ / "health.json";
    const fs::path tmp =
        daemon_ / ("health.json.tmp." + std::to_string(processId()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out << body.str();
        if (!out.flush())
            return;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);

    std::ofstream prom(daemon_ / "metrics.prom",
                       std::ios::binary | std::ios::trunc);
    if (prom)
        globalMetrics().writePrometheus(prom);
}

void
SweepdService::pruneCache()
{
    if (cfg_.cacheMaxMb)
        cache_.pruneToBytes(cfg_.cacheMaxMb * 1024 * 1024);
}

} // namespace smartref

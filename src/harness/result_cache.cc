#include "harness/result_cache.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/mini_json.hh"
#include "sim/provenance.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace fs = std::filesystem;

namespace smartref {

namespace {

constexpr const char *kEntrySchema = "smartref-result-cache-v1";

bool
isHex(const std::string &s)
{
    return !s.empty() &&
           s.find_first_not_of("0123456789abcdef") == std::string::npos;
}

long
processId()
{
#if defined(__unix__) || defined(__APPLE__)
    return static_cast<long>(::getpid());
#else
    return 0;
#endif
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace

std::string
jobCacheCanonical(const SweepJob &job, const SweepRunOptions &opts)
{
    // Canonical textual identity of everything that shapes this job's
    // deterministic result. Execution-only knobs (jobs, shardJobs,
    // telemetry/profile/heatmap sinks, progress, logLevel, the cache
    // itself) never change the result, so they must not appear here.
    std::ostringstream oss;
    oss << kEntrySchema << ";build{" << buildFingerprint() << "}"
        << ";" << pointKey(job.point) << ";seed=" << job.seed
        << ";warmupMs=" << opts.warmup / kMillisecond
        << ";measureMs=" << opts.measure / kMillisecond
        << ";segments=" << opts.segments
        << ";autoReconfigure=" << (opts.autoReconfigure ? 1 : 0);
    // Mirror sweepConfigHash's asymmetry: the sparse counter array is a
    // semantic axis, but only contributes once switched on, so every
    // historical (dense) key stays stable.
    if (opts.sparseCounters)
        oss << ";sparse=1";
    return oss.str();
}

ResultCacheKey
resultCacheKey(const SweepJob &job, const SweepRunOptions &opts)
{
    ResultCacheKey key;
    key.canonical = jobCacheCanonical(job, opts);
    key.hex = hex64(fnv1a64(key.canonical));
    return key;
}

ResultCache::ResultCache(const std::string &dir) : dir_(dir)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        SMARTREF_FATAL("cannot create cache directory '", dir_, "': ",
                       ec.message());
}

std::string
ResultCache::entryPath(const std::string &hex) const
{
    SMARTREF_ASSERT(hex.size() == 16, "bad cache key '", hex, "'");
    return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".json";
}

std::string
ResultCache::comparisonJson(const ComparisonResult &c)
{
    std::ostringstream oss;
    oss << "{\"benchmark\":" << quoted(c.benchmark)
        << ",\"suite\":" << quoted(c.suite) << ",\"baseline\":";
    writeRunResultJson(oss, c.baseline);
    oss << ",\"smart\":";
    writeRunResultJson(oss, c.smart);
    oss << "}";
    return oss.str();
}

bool
ResultCache::lookup(const ResultCacheKey &key, SweepJobResult &out)
{
    const std::string path = entryPath(key.hex);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            SMARTREF_METRIC_INC("result_cache.miss_absent");
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.misses;
            return false;
        }
        std::ostringstream oss;
        oss << in.rdbuf();
        text = oss.str();
    }
    // Any defect — truncation, garbage, wrong schema, a key collision
    // on the file name — downgrades to a miss; the recompute will
    // overwrite the bad entry.
    // Both defect classes land in the `corrupt` stat (that field's
    // contract predates the metrics layer); only the metrics counters
    // tell schema drift apart from truncation/garbage.
    const char *missCause = "result_cache.miss_corrupt";
    try {
        const minijson::Value root = minijson::parse(text);
        if (root.at("schema").str != kEntrySchema) {
            missCause = "result_cache.miss_schema";
            throw std::runtime_error("schema mismatch");
        }
        if (root.at("key").str != key.hex ||
            root.at("canonical").str != key.canonical)
            throw std::runtime_error("key mismatch");
        SweepJobResult r;
        const minijson::Value &cmp = root.at("comparison");
        r.comparison.benchmark = cmp.at("benchmark").str;
        r.comparison.suite = cmp.at("suite").str;
        r.comparison.baseline = runResultFromJson(cmp.at("baseline"));
        r.comparison.smart = runResultFromJson(cmp.at("smart"));
        r.cached = true;
        out = std::move(r);
    } catch (const std::exception &) {
        // missCause is a variable, so resolve the handle explicitly
        // rather than through the literal-name macro.
        if (kMetricsCompiledIn && metricsEnabled())
            globalMetrics().counter(missCause).add(1);
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.misses;
        ++stats_.corrupt;
        return false;
    }
    // Approximate LRU for pruneToBytes: a hit refreshes the mtime.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    SMARTREF_METRIC_INC("result_cache.hits");
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.hits;
    return true;
}

void
ResultCache::store(const ResultCacheKey &key, const SweepJob &job,
                   const SweepJobResult &result)
{
    const std::string path = entryPath(key.hex);
    const fs::path dir = fs::path(path).parent_path();
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        SMARTREF_FATAL("cannot create cache directory '", dir.string(),
                       "': ", ec.message());

    std::ostringstream body;
    RunMeta meta;
    meta.schema = kEntrySchema;
    meta.configHash = key.hex;
    const auto &p = job.point;
    body << "{\"schema\":\"" << kEntrySchema << "\""
         << ",\"key\":\"" << key.hex << "\""
         << ",\"canonical\":" << quoted(key.canonical)
         << ",\"meta\":" << metaJson(meta)
         << ",\"point\":{\"config\":" << quoted(p.config)
         << ",\"benchmark\":" << quoted(p.benchmark)
         << ",\"policy\":" << quoted(p.policy)
         << ",\"counterBits\":" << p.counterBits
         << ",\"retentionMs\":" << p.retentionMs
         << ",\"parallelism\":" << quoted(p.parallelism) << "}"
         << ",\"seed\":\"" << job.seed << "\""
         << ",\"comparison\":" << comparisonJson(result.comparison)
         << "}\n";

    // Unique temp name per process + store: concurrent writers of the
    // same key each rename a complete blob; whichever lands last wins,
    // and both blobs are identical by the determinism contract anyway.
    std::uint64_t serial;
    {
        std::lock_guard<std::mutex> lk(mu_);
        serial = ++stats_.stores;
    }
    SMARTREF_METRIC_INC("result_cache.stores");
    SMARTREF_METRIC_ADD("result_cache.store_bytes", body.str().size());
    const std::string tmp = path + ".tmp." +
                            std::to_string(processId()) + "." +
                            std::to_string(serial);
    {
        std::ofstream outFile(tmp, std::ios::binary | std::ios::trunc);
        if (!outFile) {
            SMARTREF_WARN("cannot write cache entry '", tmp,
                          "'; result not cached");
            return;
        }
        outFile << body.str();
        if (!outFile.flush()) {
            SMARTREF_WARN("short write on cache entry '", tmp,
                          "'; result not cached");
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        SMARTREF_WARN("cannot publish cache entry '", path, "': ",
                      ec.message());
        fs::remove(tmp, ec);
    }
}

std::uint64_t
ResultCache::pruneToBytes(std::uint64_t maxBytes)
{
    struct Entry
    {
        fs::path path;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &shard : fs::directory_iterator(dir_, ec)) {
        if (!shard.is_directory())
            continue;
        for (const auto &file : fs::directory_iterator(shard.path(), ec)) {
            if (file.path().extension() != ".json")
                continue;
            std::error_code fec;
            const std::uint64_t bytes = file.file_size(fec);
            const auto mtime = fs::last_write_time(file.path(), fec);
            if (fec)
                continue; // racing writer/evictor; skip
            entries.push_back({file.path(), bytes, mtime});
            total += bytes;
        }
    }
    // Oldest mtime first = least recently used first (lookups bump).
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    std::uint64_t evicted = 0;
    for (const Entry &e : entries) {
        if (total <= maxBytes)
            break;
        if (fs::remove(e.path, ec)) {
            total -= e.bytes;
            ++evicted;
        }
    }
    SMARTREF_METRIC_ADD("result_cache.evictions", evicted);
    std::lock_guard<std::mutex> lk(mu_);
    stats_.evictions += evicted;
    return evicted;
}

void
ResultCache::countVerified()
{
    SMARTREF_METRIC_INC("result_cache.verified");
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.verified;
}

ResultCacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::vector<std::string>
ResultCache::matchPrefix(const std::string &prefix) const
{
    std::vector<std::string> matches;
    if (!isHex(prefix) || prefix.size() > 16)
        return matches;
    std::error_code ec;
    for (const auto &shard : fs::directory_iterator(dir_, ec)) {
        if (!shard.is_directory())
            continue;
        const std::string shardName = shard.path().filename().string();
        // A shard can only hold matches when its two-hex name is
        // consistent with the prefix.
        const std::string head = prefix.substr(0, 2);
        if (shardName.compare(0, std::min<std::size_t>(head.size(), 2),
                              head, 0, head.size()) != 0)
            continue;
        for (const auto &file : fs::directory_iterator(shard.path(), ec)) {
            if (file.path().extension() != ".json")
                continue;
            const std::string stem = file.path().stem().string();
            if (stem.size() == 16 && isHex(stem) &&
                stem.compare(0, prefix.size(), prefix) == 0)
                matches.push_back(stem);
        }
    }
    std::sort(matches.begin(), matches.end());
    return matches;
}

std::string
ResultCache::defaultDir()
{
    if (const char *dir = std::getenv("SMARTREF_CACHE_DIR");
        dir && *dir)
        return dir;
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        return std::string(xdg) + "/smartref";
    if (const char *home = std::getenv("HOME"); home && *home)
        return std::string(home) + "/.cache/smartref";
    return ".smartref-cache";
}

} // namespace smartref

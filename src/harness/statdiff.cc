#include "harness/statdiff.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "harness/report.hh"
#include "sim/logging.hh"
#include "sim/mini_json.hh"

namespace smartref {

namespace {

std::string
num(double v)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    SMARTREF_ASSERT(res.ec == std::errc(), "to_chars failed");
    return std::string(buf, res.ptr);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

std::string
readFile(const std::string &path, const char *what)
{
    std::ifstream in(path);
    if (!in)
        SMARTREF_FATAL("cannot read ", what, " '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

MetricTolerance
parseOneTolerance(const minijson::Value &v, const std::string &where)
{
    if (!v.isObject())
        SMARTREF_FATAL("tolerance '", where, "' must be an object");
    MetricTolerance tol;
    for (const auto &[key, field] : v.object) {
        if (key == "abs" || key == "rel") {
            if (!field.isNumber() || field.number < 0.0)
                SMARTREF_FATAL("tolerance '", where, "': '", key,
                               "' must be a non-negative number");
            (key == "abs" ? tol.abs : tol.rel) = field.number;
        } else if (key == "ignore") {
            if (field.kind != minijson::Value::Kind::Bool)
                SMARTREF_FATAL("tolerance '", where,
                               "': 'ignore' must be a boolean");
            tol.ignore = field.boolean;
        } else {
            SMARTREF_FATAL("tolerance '", where, "': unknown field '",
                           key, "'");
        }
    }
    return tol;
}

void
flattenInto(const minijson::Value &v, const std::string &path,
            std::map<std::string, double> &out)
{
    switch (v.kind) {
      case minijson::Value::Kind::Number:
        out[path] = v.number;
        break;
      case minijson::Value::Kind::Bool:
        out[path] = v.boolean ? 1.0 : 0.0;
        break;
      case minijson::Value::Kind::Object:
        for (const auto &[key, member] : v.object)
            flattenInto(member, path.empty() ? key : path + "." + key,
                        out);
        break;
      case minijson::Value::Kind::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i)
            flattenInto(v.array[i],
                        path + "[" + std::to_string(i) + "]", out);
        break;
      case minijson::Value::Kind::String:
      case minijson::Value::Kind::Null:
        // Identity lives in the paths; free-text carries no metric.
        break;
    }
}

} // namespace

const MetricTolerance &
DiffTolerances::lookup(const std::string &path) const
{
    auto exact = metrics.find(path);
    if (exact != metrics.end())
        return exact->second;
    // std::map iterates in sorted key order, making "first matching
    // glob" deterministic however the file listed them.
    for (const auto &[pattern, tol] : metrics)
        if (pattern.find('*') != std::string::npos &&
            globMatch(pattern, path))
            return tol;
    return fallback;
}

bool
globMatch(const std::string &pattern, const std::string &path)
{
    // Classic two-pointer wildcard match; '*' matches any run of
    // characters (including '.', '[' and ']' — patterns span levels).
    std::size_t p = 0, s = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (s < path.size()) {
        if (p < pattern.size() &&
            (pattern[p] == path[s] || pattern[p] == '?')) {
            ++p;
            ++s;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

DiffTolerances
parseTolerances(const std::string &jsonText)
{
    const minijson::Value root = minijson::parse(jsonText);
    if (!root.isObject())
        SMARTREF_FATAL("tolerances JSON must be an object");
    DiffTolerances tol;
    for (const auto &[key, value] : root.object) {
        if (key == "default") {
            tol.fallback = parseOneTolerance(value, "default");
        } else if (key == "metrics") {
            if (!value.isObject())
                SMARTREF_FATAL("'metrics' must be an object");
            for (const auto &[metric, entry] : value.object)
                tol.metrics[metric] = parseOneTolerance(entry, metric);
        } else {
            SMARTREF_FATAL("unknown tolerances member '", key, "'");
        }
    }
    return tol;
}

DiffTolerances
loadTolerances(const std::string &path)
{
    return parseTolerances(readFile(path, "tolerances JSON"));
}

std::map<std::string, double>
flattenMetrics(const minijson::Value &root)
{
    std::map<std::string, double> out;
    if (root.isObject()) {
        for (const auto &[key, member] : root.object) {
            if (key == "meta")
                continue; // provenance, not a metric
            flattenInto(member, key, out);
        }
    } else {
        flattenInto(root, "", out);
    }
    return out;
}

std::map<std::string, double>
loadMetrics(const std::string &path)
{
    return flattenMetrics(minijson::parse(readFile(path, "stats JSON")));
}

DiffResult
diffMetrics(const std::map<std::string, double> &a,
            const std::map<std::string, double> &b,
            const DiffTolerances &tolerances, bool subset)
{
    DiffResult result;
    for (const auto &[metric, va] : a) {
        const MetricTolerance &tol = tolerances.lookup(metric);
        if (tol.ignore) {
            ++result.ignored;
            continue;
        }
        auto it = b.find(metric);
        if (it == b.end()) {
            result.missingInB.push_back(metric);
            continue;
        }
        const double vb = it->second;
        const double absDiff = std::fabs(va - vb);
        const double mag = std::max(std::fabs(va), std::fabs(vb));
        const double relDiff = mag > 0.0 ? absDiff / mag : 0.0;
        if (absDiff <= tol.abs || relDiff <= tol.rel) {
            ++result.passed;
        } else {
            result.failures.push_back(
                {metric, va, vb, absDiff, relDiff, tol});
        }
    }
    if (!subset) {
        for (const auto &[metric, vb] : b) {
            (void)vb;
            if (a.count(metric))
                continue;
            if (tolerances.lookup(metric).ignore) {
                ++result.ignored;
                continue;
            }
            result.missingInA.push_back(metric);
        }
    }
    return result;
}

void
writeDiffReport(std::ostream &os, const DiffResult &result)
{
    if (!result.failures.empty()) {
        ReportTable table(
            {"metric", "a", "b", "absDiff", "relDiff", "tol"});
        for (const auto &f : result.failures) {
            std::string tolDesc = "abs<=" + num(f.tolerance.abs) +
                                  " rel<=" + num(f.tolerance.rel);
            table.addRow({f.metric, num(f.a), num(f.b), num(f.absDiff),
                          num(f.relDiff), tolDesc});
        }
        table.print(os);
    }
    for (const auto &m : result.missingInB)
        os << "only in A: " << m << "\n";
    for (const auto &m : result.missingInA)
        os << "only in B: " << m << "\n";
    os << (result.pass() ? "PASS" : "FAIL") << ": " << result.passed
       << " within tolerance, " << result.failures.size() << " outside, "
       << result.missingInA.size() + result.missingInB.size()
       << " missing, " << result.ignored << " ignored\n";
}

void
writeDiffJson(std::ostream &os, const DiffResult &result)
{
    os << "{\"pass\":" << (result.pass() ? "true" : "false")
       << ",\"passed\":" << result.passed
       << ",\"ignored\":" << result.ignored << ",\"failures\":[";
    for (std::size_t i = 0; i < result.failures.size(); ++i) {
        const auto &f = result.failures[i];
        os << (i ? "," : "") << "{\"metric\":" << jsonQuote(f.metric)
           << ",\"a\":" << num(f.a) << ",\"b\":" << num(f.b)
           << ",\"absDiff\":" << num(f.absDiff)
           << ",\"relDiff\":" << num(f.relDiff)
           << ",\"tolAbs\":" << num(f.tolerance.abs)
           << ",\"tolRel\":" << num(f.tolerance.rel) << "}";
    }
    os << "],\"missingInA\":[";
    for (std::size_t i = 0; i < result.missingInA.size(); ++i)
        os << (i ? "," : "") << jsonQuote(result.missingInA[i]);
    os << "],\"missingInB\":[";
    for (std::size_t i = 0; i < result.missingInB.size(); ++i)
        os << (i ? "," : "") << jsonQuote(result.missingInB[i]);
    os << "]}\n";
}

} // namespace smartref

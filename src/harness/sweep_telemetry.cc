#include "harness/sweep_telemetry.hh"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "harness/result_cache.hh"
#include "sim/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace smartref {

namespace {

/** to_chars double formatting (telemetry needs no locale surprises). */
std::string
num(double v)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    SMARTREF_ASSERT(res.ec == std::errc(), "to_chars failed");
    return std::string(buf, res.ptr);
}

std::string
escaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += ch;
        }
    }
    return out;
}

} // namespace

SweepTelemetry::SweepTelemetry(const std::string &path)
    : start_(std::chrono::steady_clock::now()), file_(path), os_(&file_)
{
    if (!file_)
        SMARTREF_FATAL("cannot write telemetry stream '", path, "'");
}

SweepTelemetry::SweepTelemetry(std::ostream &os)
    : start_(std::chrono::steady_clock::now()), os_(&os)
{
}

double
SweepTelemetry::elapsed() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
SweepTelemetry::setTraceId(const std::string &traceId)
{
    std::lock_guard<std::mutex> lk(mu_);
    traceJson_ = traceId.empty()
                     ? std::string()
                     : ",\"traceId\":\"" + escaped(traceId) + "\"";
}

std::string
SweepTelemetry::traceSuffix()
{
    std::lock_guard<std::mutex> lk(mu_);
    return traceJson_;
}

void
SweepTelemetry::emitLine(const std::string &line)
{
    std::lock_guard<std::mutex> lk(mu_);
    *os_ << line << '\n';
    os_->flush(); // line-by-line so `tail -f` follows a live sweep
}

void
SweepTelemetry::sweepStart(const std::string &gridName,
                           std::size_t jobCount, unsigned workers,
                           const std::string &metaJson)
{
    std::ostringstream line;
    line << "{\"event\":\"sweep_start\",\"t\":" << num(elapsed())
         << ",\"grid\":\"" << escaped(gridName) << "\""
         << ",\"jobs\":" << jobCount << ",\"workers\":" << workers;
    if (!metaJson.empty())
        line << ",\"meta\":" << metaJson;
    line << traceSuffix() << "}";
    {
        std::lock_guard<std::mutex> lk(mu_);
        jobCount_ = jobCount;
        finished_ = 0;
    }
    emitLine(line.str());
}

void
SweepTelemetry::jobStart(const SweepJob &job)
{
    std::ostringstream line;
    line << "{\"event\":\"job_start\",\"t\":" << num(elapsed())
         << ",\"index\":" << job.index << ",\"point\":\""
         << escaped(pointKey(job.point)) << "\"" << traceSuffix() << "}";
    emitLine(line.str());
}

void
SweepTelemetry::jobFinish(const SweepJobResult &result)
{
    const std::uint64_t events =
        result.comparison.baseline.eventsExecuted +
        result.comparison.smart.eventsExecuted;
    const double perSec = result.wallSeconds > 0.0
                              ? static_cast<double>(events) /
                                    result.wallSeconds
                              : 0.0;
    // The ETA derives from this sink's own completion count; the stream
    // time base and count update under the same lock as the write so
    // concurrent finishers see monotone (done, t) pairs.
    std::lock_guard<std::mutex> lk(mu_);
    ++finished_;
    const double t = elapsed();
    // First sample lands at t == 0 on coarse clocks and a full sweep
    // can outrun the job count bookkeeping in tests; both would make
    // the naive remaining/rate estimate inf or NaN — emit null instead.
    std::string eta = "null";
    if (t > 0.0 && jobCount_ >= finished_) {
        const double rate = static_cast<double>(finished_) / t;
        const double remaining =
            static_cast<double>(jobCount_ - finished_) / rate;
        if (std::isfinite(remaining))
            eta = num(remaining);
    }
    std::ostringstream line;
    line << "{\"event\":\"job_finish\",\"t\":" << num(t)
         << ",\"index\":" << result.job.index << ",\"point\":\""
         << escaped(pointKey(result.job.point)) << "\""
         << ",\"wallSeconds\":" << num(result.wallSeconds)
         << ",\"events\":" << events
         << ",\"eventsPerSec\":" << num(perSec)
         << ",\"eta_s\":" << eta
         << ",\"cached\":" << (result.cached ? "true" : "false")
         << ",\"peakRssKb\":" << peakRssKb();
    if (!result.profileJson.empty())
        line << ",\"phases\":" << result.profileJson;
    line << traceJson_ << "}"; // mu_ already held
    *os_ << line.str() << '\n';
    os_->flush(); // line-by-line so `tail -f` follows a live sweep
}

void
SweepTelemetry::sweepFinish(double wallSeconds,
                            const ThreadPool::Stats *pool,
                            const ResultCacheStats *cache)
{
    std::ostringstream line;
    line << "{\"event\":\"sweep_finish\",\"t\":" << num(elapsed())
         << ",\"wallSeconds\":" << num(wallSeconds)
         << ",\"peakRssKb\":" << peakRssKb();
    if (pool) {
        line << ",\"pool\":{\"localPops\":" << pool->localPops
             << ",\"externalPops\":" << pool->externalPops
             << ",\"steals\":" << pool->steals
             << ",\"idleWaits\":" << pool->idleWaits << "}";
    }
    if (cache) {
        line << ",\"cache\":{\"hits\":" << cache->hits
             << ",\"misses\":" << cache->misses
             << ",\"corrupt\":" << cache->corrupt
             << ",\"stores\":" << cache->stores
             << ",\"evictions\":" << cache->evictions
             << ",\"verified\":" << cache->verified << "}";
    }
    line << traceSuffix() << "}";
    emitLine(line.str());
}

long
SweepTelemetry::peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<long>(ru.ru_maxrss / 1024); // bytes on macOS
#else
    return ru.ru_maxrss; // kilobytes on Linux
#endif
#else
    return 0;
#endif
}

} // namespace smartref

/**
 * @file
 * Sweep execution + reduction layer.
 *
 * The sweep subsystem is split into three layers:
 *
 *  - job spec (harness/sweep_spec.hh): the declarative grid, canonical
 *    expansion into jobs, coordinate-derived seeding;
 *  - execution (this file): fan the expanded jobs out over a
 *    work-stealing thread pool (sim/thread_pool.hh) and reduce the
 *    results *in grid order*;
 *  - storage (harness/result_cache.hh): a content-addressed store of
 *    finished job results, keyed by the provenance FNV-1a canonical
 *    string, which the runner consults so only cache misses are ever
 *    scheduled.
 *
 * Determinism contract:
 *  - every job's seed derives from its grid coordinates (deriveJobSeed),
 *    never from submission or completion order, so adding an axis value
 *    or changing -j N never perturbs another job's stream;
 *  - each job runs an isolated simulation (own event queue, own stats);
 *  - aggregate outputs (JSON/CSV) are written from the grid-ordered
 *    result vector with fixed number formatting;
 *  - a cached result is byte-for-byte the result the simulation would
 *    produce, so aggregates are identical whether a sweep was served
 *    cold, warm, or mixed.
 * Consequently `-j 1` and `-j N` produce byte-identical aggregates; CI
 * re-verifies this on every PR (the sweep-smoke job), and the
 * sweep-cache job re-verifies cold-vs-warm identity.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/refresh_heatmap.hh"
#include "harness/experiment.hh"
#include "harness/sweep_spec.hh"

namespace smartref {

class SweepTelemetry;
class ResultCache;

/** Result of one job plus its (non-deterministic) wall-clock cost. */
struct SweepJobResult
{
    SweepJob job;
    ComparisonResult comparison;
    /** Wall seconds this job took; excluded from aggregate outputs.
     *  For a cache hit this is the lookup time, not simulation time. */
    double wallSeconds = 0.0;
    /**
     * Spatial heatmap of the policy-under-test run; non-null only when
     * SweepRunOptions::collectHeatmaps was set. Integer counters, so
     * the merged export is deterministic at any -j N.
     */
    std::shared_ptr<RefreshHeatmap> heatmap;
    /**
     * Phase-profile JSON of this job (host wall time per stage);
     * non-empty only with SweepRunOptions::profile. Telemetry-only —
     * emitted in the job_finish NDJSON event, never in aggregates.
     */
    std::string profileJson;
    /** Served from the result cache (telemetry/progress only). */
    bool cached = false;
};

/** Execution knobs of a sweep run. */
struct SweepRunOptions
{
    unsigned jobs = 1;              ///< worker threads (-j N)
    Tick warmup = 64 * kMillisecond;
    Tick measure = 128 * kMillisecond;
    std::uint32_t segments = 8;
    bool autoReconfigure = true;
    std::uint64_t baseSeed = 42;
    SeedMode seedMode = SeedMode::Derived;
    LogLevel logLevel = LogLevel::Warn;
    /** Print one completion line per job (with ETA) to stderr. */
    bool progress = false;
    /** Collect a per-job RefreshHeatmap (SweepJobResult::heatmap). */
    bool collectHeatmaps = false;
    /**
     * Optional NDJSON telemetry sink (not owned). Receives job_start /
     * job_finish / sweep_finish events; never touches the deterministic
     * aggregates.
     */
    SweepTelemetry *telemetry = nullptr;
    /**
     * Verify the energy-conservation invariant after every run of every
     * job (fatal on violation). Execution-only: excluded from
     * sweepConfigHash and invisible in aggregates.
     */
    bool checkConservation = false;
    /**
     * Collect a per-job phase profile (SweepJobResult::profileJson).
     * Execution-only, like checkConservation.
     */
    bool profile = false;
    /**
     * Worker threads *inside* each multi-channel job (the sharded
     * per-channel engine, harness/sharded.hh). Execution-only, like
     * `jobs`: aggregates are byte-identical for any value, so it never
     * enters seeds or sweepConfigHash.
     */
    unsigned shardJobs = 1;
    /**
     * Run every job with the hierarchical sparse CounterArray. This
     * changes the modeled SRAM traffic (skipped pristine segments bill
     * no reads), so it joins sweepConfigHash — but only when set,
     * keeping historical hashes stable.
     */
    bool sparseCounters = false;
    /**
     * Optional content-addressed result store (not owned). When set,
     * the runner probes it before scheduling: hits are stitched into
     * the result vector in grid order without touching the thread
     * pool, misses are simulated and stored back. Execution-only —
     * a cached result is bit-equal to a fresh one, so the cache never
     * enters seeds or sweepConfigHash. Probing is skipped (stores
     * still happen) when collectHeatmaps is set, because entries do
     * not carry heatmaps.
     */
    ResultCache *cache = nullptr;
    /**
     * Recompute every cache hit and fail fatally unless the stored
     * result is identical to the fresh one — the paranoia mode that
     * distinguishes a stale/foreign cache from nondeterminism.
     */
    bool cacheVerify = false;
};

/**
 * Canonical simulation-semantic identity of one job under these run
 * options: the exact string the result cache hashes into a key.
 * Includes the build fingerprint, pointKey(), the job seed, and every
 * option that changes simulated results (warmup/measure/segments/
 * autoReconfigure; sparseCounters only when set, mirroring
 * sweepConfigHash's asymmetry). Excludes execution-only knobs: jobs,
 * shardJobs, telemetry/profile/heatmap sinks, progress, logLevel.
 */
std::string jobCacheCanonical(const SweepJob &job,
                              const SweepRunOptions &opts);

/** Run one already-expanded job (exposed for tests). */
SweepJobResult runSweepJob(const SweepJob &job, const SweepRunOptions &opts);

/**
 * Expand and execute the grid with opts.jobs workers, serving from
 * opts.cache when attached. The returned vector is in grid order
 * regardless of completion order or hit/miss mix.
 */
std::vector<SweepJobResult> runSweep(const SweepGrid &grid,
                                     const SweepRunOptions &opts);

/**
 * Write the deterministic aggregate JSON: the grid, per-config anchors
 * (geometry baseline refreshes/s, Table 3 bus nJ/address), every job's
 * metrics in grid order, and per-(config, retention, bits, policy)
 * geometric-mean summaries. Contains no timing or host information.
 */
void writeSweepJson(const SweepGrid &grid, const SweepRunOptions &opts,
                    const std::vector<SweepJobResult> &results,
                    std::ostream &os);
void writeSweepJson(const SweepGrid &grid, const SweepRunOptions &opts,
                    const std::vector<SweepJobResult> &results,
                    const std::string &path);

/** Flat per-job CSV (grid order; same determinism as the JSON). */
void writeSweepCsv(const std::vector<SweepJobResult> &results,
                   std::ostream &os);
void writeSweepCsv(const std::vector<SweepJobResult> &results,
                   const std::string &path);

/**
 * Provenance hash of a sweep's full configuration (grid axes + run
 * options), embedded as `configHash` in the meta blocks of every
 * artifact the sweep writes.
 */
std::string sweepConfigHash(const SweepGrid &grid,
                            const SweepRunOptions &opts);

/**
 * Write the merged spatial heatmaps: one RefreshHeatmap per summary
 * group (config, retentionMs, counterBits, policy), produced by
 * merging the group's per-job heatmaps in grid order. Deterministic:
 * integer counters summed in a fixed order make the bytes identical
 * for any -j N. Requires the sweep to have run with
 * `collectHeatmaps = true` (fatal otherwise).
 */
void writeSweepHeatmapJson(const SweepGrid &grid,
                           const SweepRunOptions &opts,
                           const std::vector<SweepJobResult> &results,
                           std::ostream &os);
void writeSweepHeatmapJson(const SweepGrid &grid,
                           const SweepRunOptions &opts,
                           const std::vector<SweepJobResult> &results,
                           const std::string &path);

/** Long-form CSV of the same merged heatmaps (one row per counter). */
void writeSweepHeatmapCsv(const std::vector<SweepJobResult> &results,
                          std::ostream &os);
void writeSweepHeatmapCsv(const std::vector<SweepJobResult> &results,
                          const std::string &path);

/** Total retention violations across all runs (0 on a correct sweep). */
std::uint64_t totalViolations(const std::vector<SweepJobResult> &results);

/**
 * The paper figures a full-suite run over one config reproduces.
 * `configName` is the preset name; figure ids follow the bench
 * binaries (fig06..fig18).
 */
struct FigureSpec
{
    std::string id;
    std::string title;
    std::string paperNote;
    enum class Metric { RefreshRate, RefreshEnergy, TotalEnergy,
                        Performance } metric;
    int decimals = 1;
};

/** Figure specs for a config; empty for configs with no paper figure. */
std::vector<FigureSpec> figuresForConfig(const std::string &configName);

/**
 * Print the paper-figure tables for one config's full-suite results
 * (comparisons must be in profile order) and, when outDir is
 * non-empty, write one CSV per figure as `<outDir>/<id>.csv` —
 * byte-compatible with the corresponding bench binary's --csv output.
 */
void writeFigures(std::ostream &os, const std::string &configName,
                  const std::vector<ComparisonResult> &comparisons,
                  const std::string &outDir);

} // namespace smartref

/**
 * @file
 * Parallel experiment-sweep subsystem.
 *
 * A sweep is a declarative grid over (module config, retention, counter
 * bits, policy, benchmark). The grid expands — in a fixed canonical
 * order — into independent jobs, each a full baseline-vs-policy
 * comparison; the runner fans the jobs out over a work-stealing thread
 * pool (sim/thread_pool.hh) and reduces the results *in grid order*.
 *
 * Determinism contract:
 *  - every job's seed derives from its grid coordinates (deriveJobSeed),
 *    never from submission or completion order, so adding an axis value
 *    or changing -j N never perturbs another job's stream;
 *  - each job runs an isolated simulation (own event queue, own stats);
 *  - aggregate outputs (JSON/CSV) are written from the grid-ordered
 *    result vector with fixed number formatting.
 * Consequently `-j 1` and `-j N` produce byte-identical aggregates; CI
 * re-verifies this on every PR (the sweep-smoke job).
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/refresh_heatmap.hh"
#include "harness/experiment.hh"

namespace smartref {

class SweepTelemetry;

/** Coordinates of one job in a sweep grid. */
struct SweepPoint
{
    std::string config = "2gb";     ///< preset name (dramConfigByName)
    std::string benchmark = "mummer"; ///< profile name
    std::string policy = "smart";   ///< compared against the CBR baseline
    std::uint32_t counterBits = 3;
    std::uint64_t retentionMs = 0;  ///< 0 = the preset's own retention
    /**
     * Refresh-access parallelism mode ("none", "refpb", "darp",
     * "sarp", "all" = DSARP). Applied to both runs of the comparison,
     * so baseline and policy see the same device semantics. The
     * default "refpb" is the historical behaviour and is omitted from
     * pointKey() to keep existing seeds/goldens stable.
     */
    std::string parallelism = "refpb";
};

/**
 * A declarative sweep grid. Axes expand in canonical nesting order —
 * config (outermost), retentionMs, counterBits, policy, parallelism,
 * benchmark (innermost) — so job indices are stable properties of the
 * grid, not of the execution.
 */
struct SweepGrid
{
    std::string name = "sweep";     ///< used for output file names
    std::vector<std::string> configs = {"2gb"};
    /** Profile names; the single entry "all" expands to all 32. */
    std::vector<std::string> benchmarks = {"all"};
    std::vector<std::string> policies = {"smart"};
    std::vector<std::uint32_t> counterBits = {3};
    std::vector<std::uint64_t> retentionMs = {0};
    /** Parallelism modes (refresh_parallelism.hh names). */
    std::vector<std::string> parallelism = {"refpb"};
};

/**
 * Parse a grid from its JSON description:
 *
 *   { "name": "fig06", "configs": ["2gb"], "benchmarks": ["all"],
 *     "policies": ["smart"], "counterBits": [3], "retentionMs": [0] }
 *
 * Missing members keep the SweepGrid defaults; unknown members are
 * fatal (bad user configuration). Throws std::runtime_error on
 * malformed JSON.
 */
SweepGrid parseSweepGrid(const std::string &jsonText);

/** parseSweepGrid over a file's contents (fatal when unreadable). */
SweepGrid loadSweepGrid(const std::string &path);

/** How job seeds are chosen during grid expansion. */
enum class SeedMode {
    Derived, ///< deriveJobSeed(base, point): the determinism contract
    Fixed,   ///< every job uses the base seed (bench-binary parity)
};

/** Canonical coordinate key of a point, the input to seed derivation. */
std::string pointKey(const SweepPoint &point);

/**
 * Seed of the job at `point`: splitmix64-finalised mix of the base
 * seed with an FNV-1a hash of pointKey(). Depends only on the
 * coordinates — two grids containing the same point give its job the
 * same seed. Pinned by tests/test_sweep.cpp.
 */
std::uint64_t deriveJobSeed(std::uint64_t baseSeed, const SweepPoint &point);

/** One expanded job: a grid index, coordinates and the derived seed. */
struct SweepJob
{
    std::size_t index = 0;
    SweepPoint point;
    std::uint64_t seed = 0;
};

/** Expand a grid into jobs in canonical order (validates all names). */
std::vector<SweepJob> expandGrid(const SweepGrid &grid,
                                 std::uint64_t baseSeed,
                                 SeedMode mode = SeedMode::Derived);

/** Result of one job plus its (non-deterministic) wall-clock cost. */
struct SweepJobResult
{
    SweepJob job;
    ComparisonResult comparison;
    /** Wall seconds this job took; excluded from aggregate outputs. */
    double wallSeconds = 0.0;
    /**
     * Spatial heatmap of the policy-under-test run; non-null only when
     * SweepRunOptions::collectHeatmaps was set. Integer counters, so
     * the merged export is deterministic at any -j N.
     */
    std::shared_ptr<RefreshHeatmap> heatmap;
    /**
     * Phase-profile JSON of this job (host wall time per stage);
     * non-empty only with SweepRunOptions::profile. Telemetry-only —
     * emitted in the job_finish NDJSON event, never in aggregates.
     */
    std::string profileJson;
};

/** Execution knobs of a sweep run. */
struct SweepRunOptions
{
    unsigned jobs = 1;              ///< worker threads (-j N)
    Tick warmup = 64 * kMillisecond;
    Tick measure = 128 * kMillisecond;
    std::uint32_t segments = 8;
    bool autoReconfigure = true;
    std::uint64_t baseSeed = 42;
    SeedMode seedMode = SeedMode::Derived;
    LogLevel logLevel = LogLevel::Warn;
    /** Print one completion line per job (with ETA) to stderr. */
    bool progress = false;
    /** Collect a per-job RefreshHeatmap (SweepJobResult::heatmap). */
    bool collectHeatmaps = false;
    /**
     * Optional NDJSON telemetry sink (not owned). Receives job_start /
     * job_finish / sweep_finish events; never touches the deterministic
     * aggregates.
     */
    SweepTelemetry *telemetry = nullptr;
    /**
     * Verify the energy-conservation invariant after every run of every
     * job (fatal on violation). Execution-only: excluded from
     * sweepConfigHash and invisible in aggregates.
     */
    bool checkConservation = false;
    /**
     * Collect a per-job phase profile (SweepJobResult::profileJson).
     * Execution-only, like checkConservation.
     */
    bool profile = false;
    /**
     * Worker threads *inside* each multi-channel job (the sharded
     * per-channel engine, harness/sharded.hh). Execution-only, like
     * `jobs`: aggregates are byte-identical for any value, so it never
     * enters seeds or sweepConfigHash.
     */
    unsigned shardJobs = 1;
    /**
     * Run every job with the hierarchical sparse CounterArray. This
     * changes the modeled SRAM traffic (skipped pristine segments bill
     * no reads), so it joins sweepConfigHash — but only when set,
     * keeping historical hashes stable.
     */
    bool sparseCounters = false;
};

/** Run one already-expanded job (exposed for tests). */
SweepJobResult runSweepJob(const SweepJob &job, const SweepRunOptions &opts);

/**
 * Expand and execute the grid with opts.jobs workers. The returned
 * vector is in grid order regardless of completion order.
 */
std::vector<SweepJobResult> runSweep(const SweepGrid &grid,
                                     const SweepRunOptions &opts);

/**
 * Write the deterministic aggregate JSON: the grid, per-config anchors
 * (geometry baseline refreshes/s, Table 3 bus nJ/address), every job's
 * metrics in grid order, and per-(config, retention, bits, policy)
 * geometric-mean summaries. Contains no timing or host information.
 */
void writeSweepJson(const SweepGrid &grid, const SweepRunOptions &opts,
                    const std::vector<SweepJobResult> &results,
                    std::ostream &os);
void writeSweepJson(const SweepGrid &grid, const SweepRunOptions &opts,
                    const std::vector<SweepJobResult> &results,
                    const std::string &path);

/** Flat per-job CSV (grid order; same determinism as the JSON). */
void writeSweepCsv(const std::vector<SweepJobResult> &results,
                   std::ostream &os);
void writeSweepCsv(const std::vector<SweepJobResult> &results,
                   const std::string &path);

/**
 * Provenance hash of a sweep's full configuration (grid axes + run
 * options), embedded as `configHash` in the meta blocks of every
 * artifact the sweep writes.
 */
std::string sweepConfigHash(const SweepGrid &grid,
                            const SweepRunOptions &opts);

/**
 * Write the merged spatial heatmaps: one RefreshHeatmap per summary
 * group (config, retentionMs, counterBits, policy), produced by
 * merging the group's per-job heatmaps in grid order. Deterministic:
 * integer counters summed in a fixed order make the bytes identical
 * for any -j N. Requires the sweep to have run with
 * `collectHeatmaps = true` (fatal otherwise).
 */
void writeSweepHeatmapJson(const SweepGrid &grid,
                           const SweepRunOptions &opts,
                           const std::vector<SweepJobResult> &results,
                           std::ostream &os);
void writeSweepHeatmapJson(const SweepGrid &grid,
                           const SweepRunOptions &opts,
                           const std::vector<SweepJobResult> &results,
                           const std::string &path);

/** Long-form CSV of the same merged heatmaps (one row per counter). */
void writeSweepHeatmapCsv(const std::vector<SweepJobResult> &results,
                          std::ostream &os);
void writeSweepHeatmapCsv(const std::vector<SweepJobResult> &results,
                          const std::string &path);

/** Total retention violations across all runs (0 on a correct sweep). */
std::uint64_t totalViolations(const std::vector<SweepJobResult> &results);

/**
 * The paper figures a full-suite run over one config reproduces.
 * `configName` is the preset name; figure ids follow the bench
 * binaries (fig06..fig18).
 */
struct FigureSpec
{
    std::string id;
    std::string title;
    std::string paperNote;
    enum class Metric { RefreshRate, RefreshEnergy, TotalEnergy,
                        Performance } metric;
    int decimals = 1;
};

/** Figure specs for a config; empty for configs with no paper figure. */
std::vector<FigureSpec> figuresForConfig(const std::string &configName);

/**
 * Print the paper-figure tables for one config's full-suite results
 * (comparisons must be in profile order) and, when outDir is
 * non-empty, write one CSV per figure as `<outDir>/<id>.csv` —
 * byte-compatible with the corresponding bench binary's --csv output.
 */
void writeFigures(std::ostream &os, const std::string &configName,
                  const std::vector<ComparisonResult> &comparisons,
                  const std::string &outDir);

} // namespace smartref

/**
 * @file
 * 3D die-stacked system assembly (paper Section 7.2): workloads -> 3D
 * DRAM cache (its own controller + refresh domain on the stacked die)
 * -> main-memory DRAM behind it.
 *
 * The refresh policy under test runs on the 3D module; main memory runs
 * plain CBR, matching the paper's observation that with a 64 MB L3 cache
 * the conventional DRAM sees negligible traffic and Smart Refresh
 * auto-disables there.
 */

#pragma once

#include <memory>
#include <vector>

#include "cache/dram_cache.hh"
#include "harness/system.hh"

namespace smartref {

/** Configuration of a 3D die-stacked system. */
struct ThreeDSystemConfig
{
    DramConfig threeD = dram3d_64MB();
    DramConfig mainMem = ddr2_2GB();
    ControllerConfig ctrl{};
    PolicyKind threeDPolicy = PolicyKind::Cbr;
    SmartRefreshConfig smart{};
    BusEnergyParams bus{};
    DramCacheConfig cache{};
    /** Optional RAPID-style classes for the stacked module's rows. */
    std::shared_ptr<const RetentionClassMap> retentionClasses;
    /**
     * Optional spatial heatmap (not owned; must outlive the system),
     * attached to the stacked die's controller and — for Smart Refresh
     * — its counter array. Main memory always runs CBR and is not
     * observed.
     */
    RefreshHeatmap *heatmap = nullptr;
    /**
     * Optional observability attachments (not owned; must outlive the
     * system), wired to the stacked die like the heatmap: the audit
     * trail to its controller and policy, the ledger to its DRAM
     * module, the profiler to its controller and Smart Refresh walk.
     * Main memory always runs CBR and is not observed.
     */
    RefreshAudit *audit = nullptr;
    EnergyLedger *ledger = nullptr;
    PhaseProfiler *profiler = nullptr;
};

/** One 3D die-stacked simulated system. */
class ThreeDSystem : public StatGroup
{
  public:
    explicit ThreeDSystem(const ThreeDSystemConfig &cfg);

    EventQueue &eventQueue() { return eq_; }
    DramModule &threeDDram() { return *threeDDram_; }
    DramModule &mainDram() { return *mainDram_; }
    MemoryController &threeDController() { return *threeDCtrl_; }
    MemoryController &mainController() { return *mainCtrl_; }
    DramCache &cache() { return *cache_; }
    RefreshPolicy &threeDPolicy() { return *policy_; }
    SmartRefreshPolicy *smartPolicy() { return smartPolicy_; }

    /** Attach a workload issuing post-L2 demand into the DRAM cache. */
    WorkloadModel &addWorkload(const WorkloadParams &params);

    /** Advance simulated time (workloads started on first call). */
    void run(Tick duration);

    const ThreeDSystemConfig &config() const { return cfg_; }

  private:
    ThreeDSystemConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<DramModule> threeDDram_;
    std::unique_ptr<DramModule> mainDram_;
    std::unique_ptr<MemoryController> threeDCtrl_;
    std::unique_ptr<MemoryController> mainCtrl_;
    std::unique_ptr<RefreshPolicy> policy_;
    std::unique_ptr<RefreshPolicy> mainPolicy_;
    std::unique_ptr<DramCache> cache_;
    SmartRefreshPolicy *smartPolicy_ = nullptr;
    std::vector<std::unique_ptr<WorkloadModel>> workloads_;
    bool started_ = false;
};

} // namespace smartref

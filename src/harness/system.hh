/**
 * @file
 * Conventional-system assembly: workloads -> memory controller -> DRAM
 * module, with a selectable refresh policy. Owns the event queue and the
 * statistics tree for one simulation.
 */

#pragma once

#include <memory>
#include <vector>

#include "core/smart_refresh.hh"
#include "ctrl/burst_refresh.hh"
#include "ctrl/cbr_refresh.hh"
#include "ctrl/memory_controller.hh"
#include "ctrl/per_bank_refresh.hh"
#include "ctrl/ras_only_refresh.hh"
#include "ctrl/retention_aware_refresh.hh"
#include "dram/dram_module.hh"
#include "sim/event_queue.hh"
#include "trace/workload_model.hh"

namespace smartref {

/** Selectable refresh policies. */
enum class PolicyKind {
    Cbr,
    Burst,
    RasOnly,
    PerBank,
    Smart,
    RetentionAware,
};

const char *toString(PolicyKind kind);

/** Inverse of toString(PolicyKind); fatal on an unknown name. */
PolicyKind policyFromString(const std::string &name);

/** Full configuration of a conventional system. */
struct SystemConfig
{
    DramConfig dram = ddr2_2GB();
    ControllerConfig ctrl{};
    PolicyKind policy = PolicyKind::Cbr;
    SmartRefreshConfig smart{};
    BusEnergyParams bus{}; ///< used by the RasOnly baseline
    /**
     * Optional RAPID-style retention classes. Applied to the retention
     * tracker's per-row deadlines and consumed by the RetentionAware
     * policy and by Smart Refresh's multi-rate counters.
     */
    std::shared_ptr<const RetentionClassMap> retentionClasses;
    /**
     * Optional spatial heatmap (not owned; must outlive the system).
     * Attached to the controller (refresh issues, demand accesses) and,
     * for Smart Refresh, to the counter array (skip/expiry and
     * counter-value distributions). Pure observation: attaching one
     * never perturbs simulated behaviour.
     */
    RefreshHeatmap *heatmap = nullptr;
    /**
     * Optional refresh decision audit trail (not owned; must outlive
     * the system). Attached to the controller (issued / forced-deadline
     * outcomes) and to the policy (skip / defer outcomes). Pure
     * observation, like the heatmap.
     */
    RefreshAudit *audit = nullptr;
    /**
     * Optional energy attribution ledger (not owned; must outlive the
     * system). Attached to the DRAM module before any traffic so its
     * conservation invariant holds at finalize().
     */
    EnergyLedger *ledger = nullptr;
    /**
     * Optional phase profiler (not owned; must outlive the system).
     * Collects host wall time and event counts for the walk/issue/drain
     * stages; never feeds deterministic outputs.
     */
    PhaseProfiler *profiler = nullptr;
};

/**
 * Derive the address-bus width (row + bank lines) and module count for
 * the bus energy model from a DRAM configuration.
 */
BusEnergyParams deriveBusParams(const BusEnergyParams &base,
                                const DramOrganization &org);

/** One conventional simulated system. */
class System : public StatGroup
{
  public:
    explicit System(const SystemConfig &cfg);

    EventQueue &eventQueue() { return eq_; }
    DramModule &dram() { return *dram_; }
    MemoryController &controller() { return *ctrl_; }
    RefreshPolicy &refreshPolicy() { return *policy_; }

    /** Non-null only when the system runs Smart Refresh. */
    SmartRefreshPolicy *smartPolicy() { return smartPolicy_; }

    /** Attach a workload generating demand traffic to the controller. */
    WorkloadModel &addWorkload(const WorkloadParams &params);

    /**
     * Advance simulated time by `duration`; workloads are started on the
     * first call. Background energy is integrated at the end, so
     * energies read between run() calls are consistent.
     */
    void run(Tick duration);

    const SystemConfig &config() const { return cfg_; }

  private:
    SystemConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<DramModule> dram_;
    std::unique_ptr<MemoryController> ctrl_;
    std::unique_ptr<RefreshPolicy> policy_;
    SmartRefreshPolicy *smartPolicy_ = nullptr;
    std::vector<std::unique_ptr<WorkloadModel>> workloads_;
    bool started_ = false;
};

} // namespace smartref

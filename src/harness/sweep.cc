#include "harness/sweep.hh"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <sstream>
#include <type_traits>

#include "ctrl/bus_energy_model.hh"
#include "dram/refresh_parallelism.hh"
#include "harness/report.hh"
#include "harness/result_cache.hh"
#include "harness/sweep_telemetry.hh"
#include "harness/system.hh"
#include "harness/threed_system.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/phase_profiler.hh"
#include "sim/provenance.hh"
#include "sim/thread_pool.hh"
#include "trace/benchmark_profiles.hh"

namespace smartref {

namespace {

/**
 * Shortest round-trip decimal form of a double. std::to_chars is both
 * exact and locale-independent, which the byte-identical aggregate
 * contract depends on.
 */
std::string
jsonNumber(double v)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    SMARTREF_ASSERT(res.ec == std::errc(), "to_chars failed");
    return std::string(buf, res.ptr);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    out += jsonEscape(s);
    out += '"';
    return out;
}

} // namespace

SweepJobResult
runSweepJob(const SweepJob &job, const SweepRunOptions &opts)
{
    const auto start = std::chrono::steady_clock::now();

    DramConfig dram = dramConfigByName(job.point.config);
    if (job.point.retentionMs > 0)
        dram.timing.retention = Tick(job.point.retentionMs) * kMillisecond;
    // Both runs of the comparison share the device mode: parallelism is
    // a property of the module under test, not of the policy.
    dram.parallelism = parallelismFromString(job.point.parallelism);

    ExperimentOptions eo;
    eo.warmup = opts.warmup;
    eo.measure = opts.measure;
    eo.counterBits = job.point.counterBits;
    eo.segments = opts.segments;
    eo.autoReconfigure = opts.autoReconfigure;
    eo.seed = job.seed;
    eo.logLevel = opts.logLevel;
    eo.checkConservation = opts.checkConservation;
    eo.shardJobs = opts.shardJobs;
    eo.sparseCounters = opts.sparseCounters;
    PhaseProfiler profiler; // this job's own; jobs never share one
    if (opts.profile)
        eo.profiler = &profiler;

    const BenchmarkProfile &profile = findProfile(job.point.benchmark);
    const PolicyKind policy = policyFromString(job.point.policy);

    SweepJobResult result;
    result.job = job;
    result.comparison.benchmark = profile.name;
    result.comparison.suite = profile.suite;
    if (opts.collectHeatmaps) {
        // The heatmap observes the policy-under-test run only (the CBR
        // baseline run keeps eoBase.heatmap null below); counterMax
        // matches the policy's counter width so merged groups — which
        // share counterBits — always agree on shape.
        result.heatmap = std::make_shared<RefreshHeatmap>(
            dram.org.ranks, dram.org.banks, opts.segments,
            (1u << job.point.counterBits) - 1);
        eo.heatmap = result.heatmap.get();
    }
    ExperimentOptions eoBase = eo;
    eoBase.heatmap = nullptr;
    if (policy == PolicyKind::RetentionAware) {
        // The retention-aware policy needs a per-row class map; derive
        // it from the job's coordinate seed so -j1 and -jN sweeps see
        // the same rows in the same classes. The CBR baseline run keeps
        // the uniform worst-case retention model (eoBase has no map).
        RetentionClassParams cp;
        cp.seed = job.seed;
        eo.retentionClasses = std::make_shared<const RetentionClassMap>(
            dram.org.totalRows(), cp);
    }
    if (isThreeDConfigName(job.point.config)) {
        {
            PhaseScope stage(eo.profiler, "baseline");
            result.comparison.baseline =
                runThreeD(profile, dram, PolicyKind::Cbr, eoBase);
        }
        PhaseScope stage(eo.profiler, "policy");
        result.comparison.smart = runThreeD(profile, dram, policy, eo);
    } else {
        // Larger modules spread each footprint over more rows than the
        // 2 GB calibration; the scale follows the row-buffer geometry
        // (absRowScaleFor), not the config's name, so new configs are
        // never silently unscaled.
        const double scale = absRowScaleFor(dram.org);
        {
            PhaseScope stage(eo.profiler, "baseline");
            result.comparison.baseline = runConventional(
                profile, dram, PolicyKind::Cbr, eoBase, scale);
        }
        PhaseScope stage(eo.profiler, "policy");
        result.comparison.smart =
            runConventional(profile, dram, policy, eo, scale);
    }
    if (opts.profile)
        result.profileJson = profiler.toJson();

    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

std::vector<SweepJobResult>
runSweep(const SweepGrid &grid, const SweepRunOptions &opts)
{
    const std::vector<SweepJob> jobs =
        expandGrid(grid, opts.baseSeed, opts.seedMode);
    std::vector<SweepJobResult> results(jobs.size());
    const auto sweepStart = std::chrono::steady_clock::now();
    std::mutex progressMu;
    std::size_t done = 0;
    const auto progressLine = [&](std::size_t i) {
        if (!opts.progress)
            return;
        std::lock_guard<std::mutex> lk(progressMu);
        ++done;
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - sweepStart)
                .count();
        // Naive linear ETA: remaining jobs at the observed mean
        // rate. Good enough for a ticker; never in aggregates.
        const double eta =
            elapsed / static_cast<double>(done) *
            static_cast<double>(jobs.size() - done);
        std::cerr << "  [" << done << "/" << jobs.size() << "] "
                  << pointKey(jobs[i].point) << " ["
                  << fmtPercent(
                         results[i].comparison.refreshReduction())
                  << ", "
                  << fmtDouble(results[i].wallSeconds, 1) << "s, eta "
                  << fmtDouble(eta, 1) << "s"
                  << (results[i].cached ? ", cached" : "") << "]"
                  << std::endl;
    };

    // Probe phase: serve hits from the result cache on the calling
    // thread, in grid order, before anything touches the thread pool.
    // Heatmap collection bypasses probing (entries carry no heatmap),
    // but finished jobs are still stored for later heatmap-less runs.
    std::vector<ResultCacheKey> keys;
    std::vector<char> hit;
    if (opts.cache) {
        keys.resize(jobs.size());
        hit.assign(jobs.size(), 0);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            keys[i] = resultCacheKey(jobs[i], opts);
        if (!opts.collectHeatmaps) {
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const auto probeStart = std::chrono::steady_clock::now();
                if (!opts.cache->lookup(keys[i], results[i]))
                    continue;
                hit[i] = 1;
                SMARTREF_METRIC_INC("sweep.jobs_cached");
                // Entries store the point and seed, not the grid index:
                // re-stamp the grid-local job.
                results[i].job = jobs[i];
                results[i].wallSeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - probeStart)
                        .count();
                if (!opts.cacheVerify) {
                    if (opts.telemetry) {
                        opts.telemetry->jobStart(jobs[i]);
                        opts.telemetry->jobFinish(results[i]);
                    }
                    progressLine(i);
                }
            }
        }
    }

    // Schedule only what the cache could not serve — plus every hit
    // when cacheVerify demands a recompute-and-compare.
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (opts.cache && hit[i] && !opts.cacheVerify)
            continue;
        pending.push_back(i);
    }
    SMARTREF_METRIC_ADD("sweep.jobs_scheduled", pending.size());

    const auto runOne = [&](std::size_t k) {
        const std::size_t i = pending[k];
        if (opts.telemetry)
            opts.telemetry->jobStart(jobs[i]);
        SweepJobResult fresh;
        try {
            fresh = runSweepJob(jobs[i], opts);
        } catch (...) {
            SMARTREF_METRIC_INC("sweep.jobs_failed");
            throw;
        }
        SMARTREF_METRIC_OBSERVE("sweep.job_wall_us",
                                fresh.wallSeconds * 1e6);
        if (opts.cache) {
            if (hit[i]) {
                // cacheVerify: the stored result must be bit-equal to
                // the recompute — anything else means a stale or
                // foreign cache (or nondeterminism) and is fatal.
                const std::string stored =
                    ResultCache::comparisonJson(results[i].comparison);
                const std::string recomputed =
                    ResultCache::comparisonJson(fresh.comparison);
                if (stored != recomputed) {
                    SMARTREF_METRIC_INC("result_cache.verify_failures");
                    SMARTREF_FATAL(
                        "cache verify failed for '",
                        pointKey(jobs[i].point), "' (key ", keys[i].hex,
                        "):\n  cached: ", stored,
                        "\n  fresh:  ", recomputed);
                }
                opts.cache->countVerified();
                fresh.cached = true; // served (and verified) from cache
            } else {
                opts.cache->store(keys[i], jobs[i], fresh);
            }
        }
        results[i] = std::move(fresh);
        if (opts.telemetry)
            opts.telemetry->jobFinish(results[i]);
        progressLine(i);
    };
    // Own the pool (rather than the parallelFor(jobs, ...) convenience)
    // so its scheduling counters can be reported to the telemetry sink.
    ResultCacheStats cacheStats;
    const ResultCacheStats *cacheStatsPtr = nullptr;
    const auto finishStats = [&]() {
        if (opts.cache) {
            cacheStats = opts.cache->stats();
            cacheStatsPtr = &cacheStats;
        }
    };
    if (opts.jobs <= 1 || pending.size() <= 1) {
        for (std::size_t k = 0; k < pending.size(); ++k)
            runOne(k);
        if (opts.telemetry) {
            const double wall = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    sweepStart)
                                    .count();
            finishStats();
            opts.telemetry->sweepFinish(wall, nullptr, cacheStatsPtr);
        }
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(opts.jobs, pending.size())));
        parallelFor(pool, pending.size(), runOne);
        if (opts.telemetry) {
            const double wall = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    sweepStart)
                                    .count();
            const ThreadPool::Stats poolStats = pool.stats();
            finishStats();
            opts.telemetry->sweepFinish(wall, &poolStats, cacheStatsPtr);
        }
    }
    return results;
}

std::uint64_t
totalViolations(const std::vector<SweepJobResult> &results)
{
    std::uint64_t total = 0;
    for (const auto &r : results)
        total += r.comparison.baseline.violations +
                 r.comparison.smart.violations;
    return total;
}

namespace {

void
writeRunResult(std::ostream &os, const RunResult &r)
{
    os << "{\"policy\":" << quoted(r.policy)
       << ",\"simSeconds\":" << jsonNumber(r.simSeconds)
       << ",\"refreshesPerSec\":" << jsonNumber(r.refreshesPerSec)
       << ",\"refreshEnergyJ\":" << jsonNumber(r.refreshEnergyJ)
       << ",\"totalEnergyJ\":" << jsonNumber(r.totalEnergyJ)
       << ",\"overheadJ\":" << jsonNumber(r.overheadJ)
       << ",\"avgLatencyNs\":" << jsonNumber(r.avgLatencyNs)
       << ",\"latencyP50Ns\":" << jsonNumber(r.latencyP50Ns)
       << ",\"latencyP95Ns\":" << jsonNumber(r.latencyP95Ns)
       << ",\"latencyP99Ns\":" << jsonNumber(r.latencyP99Ns)
       << ",\"demandBlockedByRefreshTicks\":"
       << jsonNumber(r.demandBlockedByRefreshTicks)
       << ",\"refreshStallsAvoided\":" << r.refreshStallsAvoided
       << ",\"subarrayConflicts\":" << r.subarrayConflicts
       << ",\"demandAccesses\":" << r.demandAccesses
       << ",\"violations\":" << r.violations
       << ",\"maxRefreshBacklog\":" << r.maxRefreshBacklog << "}";
}

template <typename T>
void
writeArray(std::ostream &os, const std::vector<T> &values, bool asString)
{
    os << "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        os << (i ? "," : "");
        if constexpr (std::is_arithmetic_v<T>) {
            (void)asString;
            os << +values[i];
        } else {
            os << quoted(values[i]);
        }
    }
    os << "]";
}

/** Jobs sharing every coordinate except the benchmark. */
struct SummaryGroup
{
    std::string config;
    std::uint64_t retentionMs;
    std::uint32_t counterBits;
    std::string policy;
    std::string parallelism;
    std::vector<const SweepJobResult *> members;
};

std::vector<SummaryGroup>
groupResults(const std::vector<SweepJobResult> &results)
{
    std::vector<SummaryGroup> groups;
    for (const auto &r : results) {
        const auto &p = r.job.point;
        if (groups.empty() || groups.back().config != p.config ||
            groups.back().retentionMs != p.retentionMs ||
            groups.back().counterBits != p.counterBits ||
            groups.back().policy != p.policy ||
            groups.back().parallelism != p.parallelism) {
            // Grid order nests benchmark innermost, so equal-coordinate
            // jobs are always contiguous.
            groups.push_back({p.config, p.retentionMs, p.counterBits,
                              p.policy, p.parallelism, {}});
        }
        groups.back().members.push_back(&r);
    }
    return groups;
}

double
gmeanOf(const SummaryGroup &g,
        const std::function<double(const ComparisonResult &)> &metric)
{
    std::vector<double> values;
    values.reserve(g.members.size());
    for (const auto *m : g.members)
        values.push_back(metric(m->comparison));
    return geometricMean(values);
}

} // namespace

void
writeSweepJson(const SweepGrid &grid, const SweepRunOptions &opts,
               const std::vector<SweepJobResult> &results,
               std::ostream &os)
{
    os << "{\"schema\":\"smartref-sweep-v1\"";

    RunMeta meta;
    meta.schema = "smartref-sweep-v1";
    meta.configHash = sweepConfigHash(grid, opts);
    meta.seedMode = seedModeName(opts.seedMode);
    os << ",\"meta\":" << metaJson(meta);

    os << ",\"grid\":{\"name\":" << quoted(grid.name) << ",\"configs\":";
    writeArray(os, grid.configs, true);
    os << ",\"benchmarks\":";
    writeArray(os, grid.benchmarks, true);
    os << ",\"policies\":";
    writeArray(os, grid.policies, true);
    os << ",\"counterBits\":";
    writeArray(os, grid.counterBits, false);
    os << ",\"retentionMs\":";
    writeArray(os, grid.retentionMs, false);
    os << ",\"parallelism\":";
    writeArray(os, grid.parallelism, true);
    os << "}";

    os << ",\"options\":{\"warmupMs\":" << opts.warmup / kMillisecond
       << ",\"measureMs\":" << opts.measure / kMillisecond
       << ",\"segments\":" << opts.segments << ",\"autoReconfigure\":"
       << (opts.autoReconfigure ? "true" : "false")
       << ",\"baseSeed\":" << opts.baseSeed
       << ",\"seedMode\":" << quoted(seedModeName(opts.seedMode)) << "}";

    // Geometry/energy anchors of each preset in the grid: the Table 1
    // baseline refresh rate and the Table 3 address-bus energy. CI's
    // golden-number gate reads these.
    os << ",\"anchors\":{";
    for (std::size_t i = 0; i < grid.configs.size(); ++i) {
        const DramConfig cfg = dramConfigByName(grid.configs[i]);
        StatGroup scratch("anchors");
        BusEnergyModel bus(deriveBusParams(BusEnergyParams{}, cfg.org),
                           &scratch);
        os << (i ? "," : "") << quoted(grid.configs[i])
           << ":{\"baselineRefreshesPerSec\":"
           << jsonNumber(cfg.baselineRefreshesPerSecond())
           << ",\"busNanojoulesPerAddress\":"
           << jsonNumber(bus.energyPerAccess() * 1e9)
           << ",\"refreshTargets\":" << cfg.org.totalRows() << "}";
    }
    os << "}";

    os << ",\"jobs\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const auto &p = r.job.point;
        os << (i ? "," : "") << "{\"index\":" << r.job.index
           << ",\"config\":" << quoted(p.config)
           << ",\"benchmark\":" << quoted(p.benchmark)
           << ",\"suite\":" << quoted(r.comparison.suite)
           << ",\"policy\":" << quoted(p.policy)
           << ",\"counterBits\":" << p.counterBits
           << ",\"retentionMs\":" << p.retentionMs
           << ",\"parallelism\":" << quoted(p.parallelism)
           // As a string: 64-bit seeds overflow JSON's double numbers.
           << ",\"seed\":" << quoted(std::to_string(r.job.seed))
           << ",\"baseline\":";
        writeRunResult(os, r.comparison.baseline);
        os << ",\"smart\":";
        writeRunResult(os, r.comparison.smart);
        os << ",\"refreshReduction\":"
           << jsonNumber(r.comparison.refreshReduction())
           << ",\"refreshEnergySaving\":"
           << jsonNumber(r.comparison.refreshEnergySaving())
           << ",\"totalEnergySaving\":"
           << jsonNumber(r.comparison.totalEnergySaving())
           << ",\"perfImprovement\":"
           << jsonNumber(r.comparison.perfImprovement()) << "}";
    }
    os << "]";

    os << ",\"summary\":[";
    const auto groups = groupResults(results);
    for (std::size_t i = 0; i < groups.size(); ++i) {
        const auto &g = groups[i];
        const double gmeanBase = gmeanOf(g, [](const ComparisonResult &c) {
            return c.baseline.refreshesPerSec;
        });
        const double gmeanSmart =
            gmeanOf(g, [](const ComparisonResult &c) {
                return c.smart.refreshesPerSec;
            });
        std::uint64_t violations = 0;
        for (const auto *m : g.members)
            violations += m->comparison.baseline.violations +
                          m->comparison.smart.violations;
        os << (i ? "," : "") << "{\"config\":" << quoted(g.config)
           << ",\"retentionMs\":" << g.retentionMs
           << ",\"counterBits\":" << g.counterBits
           << ",\"policy\":" << quoted(g.policy)
           << ",\"parallelism\":" << quoted(g.parallelism)
           << ",\"jobs\":" << g.members.size()
           << ",\"gmeanBaselineRefreshesPerSec\":" << jsonNumber(gmeanBase)
           << ",\"gmeanSmartRefreshesPerSec\":" << jsonNumber(gmeanSmart)
           << ",\"gmeanRefreshReduction\":"
           << jsonNumber(gmeanBase > 0.0 ? 1.0 - gmeanSmart / gmeanBase
                                         : 0.0)
           << ",\"gmeanRefreshEnergySaving\":"
           << jsonNumber(gmeanOf(g,
                                 [](const ComparisonResult &c) {
                                     return c.refreshEnergySaving();
                                 }))
           << ",\"gmeanTotalEnergySaving\":"
           << jsonNumber(gmeanOf(g,
                                 [](const ComparisonResult &c) {
                                     return c.totalEnergySaving();
                                 }))
           << ",\"gmeanPerfImprovement\":"
           << jsonNumber(gmeanOf(g,
                                 [](const ComparisonResult &c) {
                                     return c.perfImprovement();
                                 }))
           << ",\"violations\":" << violations << "}";
    }
    os << "]";

    os << ",\"totalViolations\":" << totalViolations(results) << "}\n";
}

void
writeSweepJson(const SweepGrid &grid, const SweepRunOptions &opts,
               const std::vector<SweepJobResult> &results,
               const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write sweep JSON '", path, "'");
    writeSweepJson(grid, opts, results, out);
}

void
writeSweepCsv(const std::vector<SweepJobResult> &results, std::ostream &os)
{
    ReportTable table({"index", "config", "benchmark", "suite", "policy",
                       "counterBits", "retentionMs", "parallelism",
                       "seed", "baselineRefreshesPerSec",
                       "smartRefreshesPerSec", "refreshReduction",
                       "refreshEnergySaving", "totalEnergySaving",
                       "perfImprovement", "demandBlockedByRefreshTicks",
                       "refreshStallsAvoided", "subarrayConflicts",
                       "violations"});
    for (const auto &r : results) {
        const auto &p = r.job.point;
        const auto &c = r.comparison;
        table.addRow({std::to_string(r.job.index), p.config, p.benchmark,
                      c.suite, p.policy, std::to_string(p.counterBits),
                      std::to_string(p.retentionMs), p.parallelism,
                      std::to_string(r.job.seed),
                      jsonNumber(c.baseline.refreshesPerSec),
                      jsonNumber(c.smart.refreshesPerSec),
                      jsonNumber(c.refreshReduction()),
                      jsonNumber(c.refreshEnergySaving()),
                      jsonNumber(c.totalEnergySaving()),
                      jsonNumber(c.perfImprovement()),
                      jsonNumber(c.smart.demandBlockedByRefreshTicks),
                      std::to_string(c.smart.refreshStallsAvoided),
                      std::to_string(c.smart.subarrayConflicts),
                      std::to_string(c.baseline.violations +
                                     c.smart.violations)});
    }
    table.writeCsv(os);
}

void
writeSweepCsv(const std::vector<SweepJobResult> &results,
              const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write sweep CSV '", path, "'");
    writeSweepCsv(results, out);
}

std::string
sweepConfigHash(const SweepGrid &grid, const SweepRunOptions &opts)
{
    // Canonical textual form of everything that shapes the sweep's
    // deterministic outputs. Deliberately excludes execution-only knobs
    // (jobs, progress, telemetry, heatmap collection): those never
    // change the aggregates, so they must not change the hash either.
    std::ostringstream oss;
    oss << "name=" << grid.name;
    auto axis = [&oss](const char *key, const auto &values) {
        oss << ";" << key << "=";
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i)
                oss << ",";
            oss << values[i];
        }
    };
    axis("configs", grid.configs);
    axis("benchmarks", grid.benchmarks);
    axis("policies", grid.policies);
    axis("counterBits", grid.counterBits);
    axis("retentionMs", grid.retentionMs);
    // Keep the hash of pre-parallelism grids stable: the axis only
    // contributes once it departs from the historical default.
    if (grid.parallelism != std::vector<std::string>{"refpb"})
        axis("parallelism", grid.parallelism);
    oss << ";warmupMs=" << opts.warmup / kMillisecond
        << ";measureMs=" << opts.measure / kMillisecond
        << ";segments=" << opts.segments
        << ";autoReconfigure=" << (opts.autoReconfigure ? 1 : 0)
        << ";baseSeed=" << opts.baseSeed
        << ";seedMode=" << seedModeName(opts.seedMode);
    // Sparse counters change the modeled SRAM traffic, so they are a
    // real configuration axis — but only when switched on, keeping
    // every historical hash stable. shardJobs stays excluded: it is
    // execution-only, like jobs.
    if (opts.sparseCounters)
        oss << ";sparse=1";
    return hex64(fnv1a64(oss.str()));
}

namespace {

/**
 * Merge each summary group's per-job heatmaps in grid order. Fatal when
 * any job lacks a heatmap (the sweep ran without collectHeatmaps).
 */
std::vector<RefreshHeatmap>
mergeGroupHeatmaps(const std::vector<SummaryGroup> &groups)
{
    std::vector<RefreshHeatmap> merged;
    merged.reserve(groups.size());
    for (const auto &g : groups) {
        SMARTREF_ASSERT(!g.members.empty(), "empty summary group");
        const SweepJobResult *first = g.members.front();
        if (!first->heatmap)
            SMARTREF_FATAL("job '", pointKey(first->job.point),
                           "' has no heatmap; run the sweep with "
                           "collectHeatmaps enabled");
        RefreshHeatmap sum(first->heatmap->ranks(),
                           first->heatmap->banks(),
                           first->heatmap->segments(),
                           first->heatmap->counterMax());
        for (const auto *m : g.members) {
            if (!m->heatmap)
                SMARTREF_FATAL("job '", pointKey(m->job.point),
                               "' has no heatmap; run the sweep with "
                               "collectHeatmaps enabled");
            sum.merge(*m->heatmap);
        }
        merged.push_back(std::move(sum));
    }
    return merged;
}

} // namespace

void
writeSweepHeatmapJson(const SweepGrid &grid, const SweepRunOptions &opts,
                      const std::vector<SweepJobResult> &results,
                      std::ostream &os)
{
    RunMeta meta;
    meta.schema = "smartref-sweep-heatmap-v1";
    meta.configHash = sweepConfigHash(grid, opts);
    meta.seedMode = seedModeName(opts.seedMode);

    const auto groups = groupResults(results);
    const auto merged = mergeGroupHeatmaps(groups);

    os << "{\"schema\":\"smartref-sweep-heatmap-v1\""
       << ",\"meta\":" << metaJson(meta)
       << ",\"grid\":{\"name\":" << quoted(grid.name) << "}"
       << ",\"groups\":[";
    for (std::size_t i = 0; i < groups.size(); ++i) {
        const auto &g = groups[i];
        os << (i ? "," : "") << "{\"config\":" << quoted(g.config)
           << ",\"retentionMs\":" << g.retentionMs
           << ",\"counterBits\":" << g.counterBits
           << ",\"policy\":" << quoted(g.policy)
           << ",\"parallelism\":" << quoted(g.parallelism)
           << ",\"jobs\":" << g.members.size() << ",\"heatmap\":";
        merged[i].writeJson(os);
        os << "}";
    }
    os << "]}\n";
}

void
writeSweepHeatmapJson(const SweepGrid &grid, const SweepRunOptions &opts,
                      const std::vector<SweepJobResult> &results,
                      const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write heatmap JSON '", path, "'");
    writeSweepHeatmapJson(grid, opts, results, out);
}

void
writeSweepHeatmapCsv(const std::vector<SweepJobResult> &results,
                     std::ostream &os)
{
    const auto groups = groupResults(results);
    const auto merged = mergeGroupHeatmaps(groups);
    os << "config,retentionMs,counterBits,policy,parallelism,"
       << "kind,rank,bank,segment,bucket,value\n";
    for (std::size_t i = 0; i < groups.size(); ++i) {
        const auto &g = groups[i];
        std::ostringstream body;
        merged[i].writeCsv(body, /*header=*/false);
        const std::string prefix = g.config + "," +
                                   std::to_string(g.retentionMs) + "," +
                                   std::to_string(g.counterBits) + "," +
                                   g.policy + "," + g.parallelism + ",";
        std::istringstream lines(body.str());
        std::string line;
        while (std::getline(lines, line))
            os << prefix << line << '\n';
    }
}

void
writeSweepHeatmapCsv(const std::vector<SweepJobResult> &results,
                     const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write heatmap CSV '", path, "'");
    writeSweepHeatmapCsv(results, out);
}

std::vector<FigureSpec>
figuresForConfig(const std::string &configName)
{
    using M = FigureSpec::Metric;
    if (configName == "2gb") {
        return {{"fig06", "Figure 6: refreshes per second (2 GB DRAM)",
                 "baseline 2,048,000/s, GMEAN 691,435/s, reductions "
                 "26%..85.7%",
                 M::RefreshRate, 1},
                {"fig07",
                 "Figure 7: relative refresh energy savings (2 GB DRAM)",
                 "savings 25% (gcc) .. 79% (radix), GMEAN 52.57%",
                 M::RefreshEnergy, 1},
                {"fig08",
                 "Figure 8: relative total DRAM energy savings (2 GB "
                 "DRAM)",
                 "up to 25% (perl_twolf), GMEAN 12.13%", M::TotalEnergy,
                 1}};
    }
    if (configName == "4gb") {
        return {{"fig09", "Figure 9: refreshes per second (4 GB DRAM)",
                 "baseline 4,096,000/s, GMEAN 2,343,691/s",
                 M::RefreshRate, 1},
                {"fig10",
                 "Figure 10: relative refresh energy savings (4 GB DRAM)",
                 "GMEAN 23.76%", M::RefreshEnergy, 1},
                {"fig11",
                 "Figure 11: relative total DRAM energy savings (4 GB "
                 "DRAM)",
                 "GMEAN 9.10%", M::TotalEnergy, 1}};
    }
    if (configName == "3d64") {
        return {{"fig12",
                 "Figure 12: refreshes per second (64 MB 3D DRAM cache, "
                 "64 ms)",
                 "baseline 1,024,000/s, GMEAN 795,411/s, reductions "
                 "4%..42%",
                 M::RefreshRate, 1},
                {"fig13",
                 "Figure 13: relative refresh energy savings (3D 64 MB, "
                 "64 ms)",
                 "savings 7%..42%, GMEAN 21.91%", M::RefreshEnergy, 1},
                {"fig14",
                 "Figure 14: relative total energy savings (3D 64 MB, "
                 "64 ms)",
                 "up to 21.5% (gcc_twolf), GMEAN 9.37%", M::TotalEnergy,
                 1}};
    }
    if (configName == "3d64-32ms") {
        return {{"fig15",
                 "Figure 15: refreshes per second (64 MB 3D DRAM cache, "
                 "32 ms)",
                 "baseline 2,048,000/s, GMEAN 1,724,640/s",
                 M::RefreshRate, 1},
                {"fig16",
                 "Figure 16: relative refresh energy savings (3D 64 MB, "
                 "32 ms)",
                 "GMEAN 15.79%", M::RefreshEnergy, 1},
                {"fig17",
                 "Figure 17: relative total energy savings (3D 64 MB, "
                 "32 ms)",
                 "GMEAN 6.87%", M::TotalEnergy, 1},
                {"fig18",
                 "Figure 18: performance improvement (3D 64 MB, 32 ms)",
                 "all under 1%, GMEAN 0.11%", M::Performance, 3}};
    }
    return {};
}

void
writeFigures(std::ostream &os, const std::string &configName,
             const std::vector<ComparisonResult> &comparisons,
             const std::string &outDir)
{
    const DramConfig cfg = dramConfigByName(configName);
    for (const FigureSpec &spec : figuresForConfig(configName)) {
        const std::string csvPath =
            outDir.empty() ? "" : outDir + "/" + spec.id + ".csv";
        switch (spec.metric) {
          case FigureSpec::Metric::RefreshRate:
            printRefreshRateFigure(os, spec.title, spec.paperNote,
                                   cfg.baselineRefreshesPerSecond(),
                                   comparisons, csvPath);
            break;
          case FigureSpec::Metric::RefreshEnergy:
            printFigure(os, spec.title, spec.paperNote, comparisons,
                        "refresh energy saving",
                        [](const ComparisonResult &c) {
                            return c.refreshEnergySaving();
                        },
                        true, csvPath, spec.decimals);
            break;
          case FigureSpec::Metric::TotalEnergy:
            printFigure(os, spec.title, spec.paperNote, comparisons,
                        "total energy saving",
                        [](const ComparisonResult &c) {
                            return c.totalEnergySaving();
                        },
                        true, csvPath, spec.decimals);
            break;
          case FigureSpec::Metric::Performance:
            printFigure(os, spec.title, spec.paperNote, comparisons,
                        "performance improvement",
                        [](const ComparisonResult &c) {
                            return c.perfImprovement();
                        },
                        true, csvPath, spec.decimals);
            break;
        }
    }
}

} // namespace smartref

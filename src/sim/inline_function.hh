/**
 * @file
 * A move-only, small-buffer-optimised callable wrapper for the
 * discrete-event hot path.
 *
 * Every simulated DRAM command, refresh, counter-walk step and workload
 * access is an event callback. std::function's small-object buffer (16
 * bytes on libstdc++) is too small for the captures this codebase
 * schedules — a demand item alone is ~100 bytes — so nearly every event
 * used to heap-allocate. InlineFunction stores captures of up to
 * `InlineBytes` directly in the object; larger captures (none exist in
 * this tree today) fall back to a single heap allocation rather than
 * failing to compile, and the fallback is observable via onHeap() so
 * tests can pin the contract.
 *
 * Unlike std::function it is move-only, which lets callbacks own
 * non-copyable state (unique_ptr members, move-only lambdas) without the
 * shared_ptr workarounds copyable wrappers force.
 */

#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace smartref {

template <typename Signature, std::size_t InlineBytes = 64>
class InlineFunction;

/** Move-only callable with `InlineBytes` of inline capture storage. */
template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes>
{
  public:
    /** Captures up to this size (and max_align_t alignment) stay inline. */
    static constexpr std::size_t kInlineCapacity = InlineBytes;

    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    template <typename F,
              std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                      std::is_invocable_r_v<R, std::decay_t<F> &, Args...>,
                  int> = 0>
    InlineFunction(F &&f)
    {
        construct(std::forward<F>(f));
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    /** Rebind to a new callable, constructing it in place (no temp). */
    template <typename F,
              std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                      std::is_invocable_r_v<R, std::decay_t<F> &, Args...>,
                  int> = 0>
    InlineFunction &
    operator=(F &&f)
    {
        reset();
        construct(std::forward<F>(f));
        return *this;
    }

    ~InlineFunction() { reset(); }

    R
    operator()(Args... args)
    {
        SMARTREF_ASSERT(invoke_ != nullptr, "invoking empty InlineFunction");
        return invoke_(buf_, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return invoke_ != nullptr; }

    /** True when the capture exceeded the inline buffer (fallback path). */
    bool onHeap() const { return onHeap_; }

  private:
    enum class Op { MoveTo, Destroy };

    using Invoke = R (*)(void *storage, Args &&...args);
    using Manage = void (*)(void *storage, void *dstStorage, Op op);

    template <typename F>
    void
    construct(F &&f)
    {
        using Fn = std::decay_t<F>;
        constexpr bool fitsInline =
            sizeof(Fn) <= InlineBytes &&
            alignof(Fn) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Fn>;
        if constexpr (fitsInline &&
                      std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>) {
            // POD captures (the hot path: every scheduler lambda in the
            // tree) move by raw byte copy and need no destruction, so
            // manage_ stays null and moveFrom()/reset() skip the
            // indirect call entirely.
            new (buf_) Fn(std::forward<F>(f));
            invoke_ = [](void *storage, Args &&...args) -> R {
                return (*static_cast<Fn *>(storage))(
                    std::forward<Args>(args)...);
            };
            manage_ = nullptr;
            onHeap_ = false;
        } else if constexpr (fitsInline) {
            new (buf_) Fn(std::forward<F>(f));
            invoke_ = [](void *storage, Args &&...args) -> R {
                return (*static_cast<Fn *>(storage))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](void *storage, void *dstStorage, Op op) {
                auto *fn = static_cast<Fn *>(storage);
                if (op == Op::MoveTo)
                    new (dstStorage) Fn(std::move(*fn));
                fn->~Fn();
            };
            onHeap_ = false;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            invoke_ = [](void *storage, Args &&...args) -> R {
                return (**reinterpret_cast<Fn **>(storage))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](void *storage, void *dstStorage, Op op) {
                if (op == Op::MoveTo) {
                    // Transfer ownership of the heap object by pointer.
                    *reinterpret_cast<Fn **>(dstStorage) =
                        *reinterpret_cast<Fn **>(storage);
                } else {
                    delete *reinterpret_cast<Fn **>(storage);
                }
            };
            onHeap_ = true;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        onHeap_ = other.onHeap_;
        if (manage_)
            manage_(other.buf_, buf_, Op::MoveTo);
        else if (invoke_)
            __builtin_memcpy(buf_, other.buf_, InlineBytes);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
        other.onHeap_ = false;
    }

    void
    reset()
    {
        // Trivially-destructible inline captures (manage_ == nullptr)
        // need no teardown.
        if (manage_)
            manage_(buf_, nullptr, Op::Destroy);
        invoke_ = nullptr;
        manage_ = nullptr;
        onHeap_ = false;
    }

    alignas(std::max_align_t) unsigned char buf_[InlineBytes];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
    bool onHeap_ = false;
};

} // namespace smartref

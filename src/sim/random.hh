/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component takes an explicit Rng (or a seed) so that a
 * given configuration replays identically run-to-run; tests rely on this.
 * The generator is xoshiro256** seeded through splitmix64, which is fast,
 * has a 2^256-1 period and passes BigCrush.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace smartref {

/** xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    /** Seed through splitmix64 so that small seeds are well mixed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's unbiased method. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of true. */
    bool nextBool(double p);

    /** Exponentially distributed value with the given mean. */
    double nextExponential(double mean);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Uses the rejection-inversion method of Hörmann & Derflinger, which is
 * O(1) per sample and exact, so large row populations (hundreds of
 * thousands) are cheap to sample from.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     population size (samples are in [0, n))
     * @param alpha skew exponent; 0 reduces to uniform
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw one sample. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t population() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;
    double h(double x) const;

    std::uint64_t n_;
    double alpha_;
    double hX1_;
    double hN_;
    double s_;
};

} // namespace smartref

/**
 * @file
 * Interval statistics: a periodic sampler driven off the event queue.
 *
 * Designated quantities are snapshotted every `period` ticks of
 * simulated time and reduced to one row per interval, producing the
 * time series (refreshes issued, energy, queue depth, ...) that
 * energy-over-time and refresh-dynamics plots need.
 *
 * Two column flavours:
 *  - delta columns wrap an accumulating source (a Scalar, an energy
 *    total): each interval reports the increment since the previous
 *    sample — the snapshot-and-reset semantics, implemented by
 *    resetting the sampler's snapshot rather than the statistic so the
 *    end-of-run totals stay intact;
 *  - gauge columns report the source's instantaneous value (backlog,
 *    pending-queue depth).
 *
 * Every sample also feeds the tracer as Chrome counter events (category
 * `interval`), so interval series show up as counter tracks right next
 * to the event timeline in Perfetto.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace smartref {

/** Periodic snapshot-and-reset sampler over an EventQueue. */
class IntervalStats
{
  public:
    /** Reads the current value of a sampled quantity. */
    using Probe = std::function<double()>;

    /** One per-interval row. */
    struct Sample
    {
        Tick begin = 0;
        Tick end = 0;
        std::vector<double> values; ///< one per column, column order
    };

    /**
     * @param eq     the event queue that drives sampling
     * @param period interval length in ticks (> 0)
     */
    IntervalStats(EventQueue &eq, Tick period);

    /** Add an accumulating source; rows report per-interval deltas. */
    void addDelta(std::string name, Probe read);

    /** Add an instantaneous source; rows report the sampled value. */
    void addGauge(std::string name, Probe read);

    /**
     * Take the base snapshot and schedule the first sample one period
     * from now. Call after all columns are registered.
     */
    void start();

    /** Stop sampling; already-collected rows remain readable. */
    void stop();

    /** Close the in-flight partial interval (end-of-run flush). */
    void finish();

    Tick period() const { return period_; }
    const std::vector<std::string> &columns() const { return columns_; }
    const std::vector<Sample> &samples() const { return samples_; }

    /** Write "begin_ms,end_ms,<column>..." rows. */
    void writeCsv(std::ostream &os) const;

    /** Write the CSV to a file (fatal on I/O error). */
    void writeCsv(const std::string &path) const;

  private:
    struct Column
    {
        std::string name;
        Probe read;
        bool delta; ///< false = gauge
        double snapshot = 0.0;
    };

    void scheduleNext();
    void sample();

    EventQueue &eq_;
    Tick period_;
    Tick intervalBegin_ = 0;
    bool running_ = false;
    std::uint64_t generation_ = 0; ///< stale scheduled samples no-op
    std::vector<Column> cols_;
    std::vector<std::string> columns_;
    std::vector<Sample> samples_;
};

} // namespace smartref

/**
 * @file
 * Hierarchical scoped phase profiler: wall time and entry counts per
 * engine phase (counter walk, command issue, refresh drain, sweep-job
 * stages), nested by scope.
 *
 * Usage:
 *
 *     PhaseProfiler prof;
 *     {
 *         PhaseScope s(&prof, "walk");   // null profiler -> no-op
 *         ...
 *     }
 *     prof.writeJson(os);
 *
 * Scopes entered while another is open become children of it, so one
 * profiler instance threaded through a sweep job naturally yields
 * baseline/policy stages with walk/issue/drain nested beneath.
 *
 * Wall times are host time (std::chrono::steady_clock) and therefore
 * belong only in non-deterministic channels: the `phases` member of a
 * standalone stats JSON and the sweep telemetry NDJSON — never in the
 * byte-identity-checked sweep aggregates. Times are inclusive of
 * children; labels must be string literals (pointers are stored).
 *
 * Not thread-safe: use one instance per thread (the sweep runner makes
 * one per job).
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace smartref {

/** Tree of labelled phases accumulating wall time and entry counts. */
class PhaseProfiler
{
  public:
    static constexpr std::uint32_t kNoParent = 0xffffffffu;

    struct Node
    {
        const char *label;
        std::uint32_t parent;       ///< index into nodes(), or kNoParent
        std::uint64_t count = 0;    ///< scope entries
        std::uint64_t wallNs = 0;   ///< inclusive wall time
    };

    /** Open a phase; nests under the currently open phase, if any. */
    void enter(const char *label);

    /** Close the most recently opened phase. */
    void leave();

    /** All phases, in first-entry order. */
    const std::vector<Node> &nodes() const { return nodes_; }

    bool empty() const { return nodes_.empty(); }

    /**
     * Nested JSON array:
     * [{"phase":"job","count":1,"wall_ns":N,"children":[...]}]
     */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

  private:
    std::uint32_t findOrAdd(const char *label);
    void emitChildren(std::ostream &os, std::uint32_t parent) const;

    std::vector<Node> nodes_;
    std::vector<std::uint32_t> stack_;
    std::vector<std::chrono::steady_clock::time_point> starts_;
};

/** RAII phase scope; constructing with a null profiler is a no-op. */
class PhaseScope
{
  public:
    PhaseScope(PhaseProfiler *p, const char *label) : p_(p)
    {
        if (p_)
            p_->enter(label);
    }

    ~PhaseScope()
    {
        if (p_)
            p_->leave();
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    PhaseProfiler *p_;
};

} // namespace smartref

/**
 * @file
 * Did-you-mean suggestions for CLI option values (trace categories,
 * dotted stat paths, policy names). A typo'd name fails fast with the
 * closest known candidate instead of being silently ignored.
 */

#pragma once

#include <string>
#include <vector>

namespace smartref {

/**
 * The candidate closest to @p input by Levenshtein distance, or ""
 * when nothing is within the edit budget (max(2, len/3) edits — a
 * short name tolerates small typos, a long dotted path a few more).
 * Ties resolve to the lexicographically smallest candidate so the
 * suggestion is deterministic.
 */
std::string suggestClosest(const std::string &input,
                           const std::vector<std::string> &candidates);

/**
 * " (did you mean 'X'?)" ready for appending to an error message, or
 * "" when no candidate is close enough.
 */
std::string didYouMean(const std::string &input,
                       const std::vector<std::string> &candidates);

} // namespace smartref

#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>

#include "sim/logging.hh"

namespace smartref {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    SMARTREF_ASSERT(parent != nullptr, "stat '", name_, "' needs a group");
    parent->registerStat(this);
}

namespace {

void
printLine(std::ostream &os, const std::string &prefix,
          const std::string &name, double value, const std::string &desc)
{
    std::ostringstream full;
    full << prefix << name;
    os << std::left << std::setw(46) << full.str() << " "
       << std::right << std::setw(16) << std::setprecision(6) << value;
    if (!desc.empty())
        os << "  # " << desc;
    os << '\n';
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), value_, desc());
}

VectorStat::VectorStat(StatGroup *parent, std::string name, std::string desc,
                       std::vector<std::string> labels)
    : StatBase(parent, std::move(name), std::move(desc)),
      labels_(std::move(labels)), values_(labels_.size(), 0.0)
{
}

double
VectorStat::total() const
{
    double t = 0.0;
    for (double v : values_)
        t += v;
    return t;
}

void
VectorStat::dump(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values_.size(); ++i)
        printLine(os, prefix, name() + "::" + labels_[i], values_[i], "");
    printLine(os, prefix, name() + "::total", total(), desc());
}

void
VectorStat::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

Histogram::Histogram(StatGroup *parent, std::string name, std::string desc,
                     double lo, double hi, std::size_t buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi), counts_(buckets, 0)
{
    SMARTREF_ASSERT(hi > lo && buckets > 0, "bad histogram shape");
}

void
Histogram::sample(double v, std::uint64_t count)
{
    if (samples_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    samples_ += count;
    sum_ += v * static_cast<double>(count);
    sumSq_ += v * v * static_cast<double>(count);
    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<std::size_t>(
            (v - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
        counts_[std::min(idx, counts_.size() - 1)] += count;
    }
}

double
Histogram::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (samples_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    const double n = static_cast<double>(samples_);
    auto rank = static_cast<std::uint64_t>(std::ceil(p * n));
    rank = std::clamp<std::uint64_t>(rank, 1, samples_);

    std::uint64_t cum = underflow_;
    if (rank <= cum)
        return min_;
    const double width =
        (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (rank <= cum)
            return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    SMARTREF_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ &&
                        counts_.size() == other.counts_.size(),
                    "merging histograms of different shapes");
    if (other.samples_ == 0)
        return;
    if (samples_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    samples_ += other.samples_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
}

double
Histogram::stddev() const
{
    if (samples_ < 2)
        return 0.0;
    const double n = static_cast<double>(samples_);
    const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + "::samples",
              static_cast<double>(samples_), desc());
    printLine(os, prefix, name() + "::mean", mean(), "");
    printLine(os, prefix, name() + "::min", min_, "");
    printLine(os, prefix, name() + "::max", max_, "");
    printLine(os, prefix, name() + "::stddev", stddev(), "");
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = sumSq_ = min_ = max_ = 0.0;
}

Formula::Formula(StatGroup *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
{
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), value(), desc());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->registerChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->unregisterChild(this);
}

std::string
StatGroup::fullStatName() const
{
    if (!parent_)
        return name_;
    const std::string base = parent_->fullStatName();
    return base.empty() ? name_ : base + "." + name_;
}

void
StatGroup::dumpStats(std::ostream &os) const
{
    const std::string prefix =
        fullStatName().empty() ? "" : fullStatName() + ".";
    for (const StatBase *s : stats_)
        s->dump(os, prefix);
    for (const StatGroup *c : children_)
        c->dumpStats(os);
}

void
StatGroup::resetStats()
{
    for (StatBase *s : stats_)
        s->reset();
    for (StatGroup *c : children_)
        c->resetStats();
}

const StatBase *
StatGroup::findStat(const std::string &name) const
{
    for (const StatBase *s : stats_)
        if (s->name() == name)
            return s;
    return nullptr;
}

const StatBase *
StatGroup::resolveStat(const std::string &path) const
{
    // Stat names never contain dots, so a whole-path match is a stat in
    // this very group.
    if (const StatBase *s = findStat(path))
        return s;

    // Accept an absolute path that still carries this group's own name.
    if (path.size() > name_.size() + 1 &&
        path.compare(0, name_.size(), name_) == 0 &&
        path[name_.size()] == '.') {
        if (const StatBase *s = resolveStat(path.substr(name_.size() + 1)))
            return s;
    }

    for (const StatGroup *c : children_) {
        const std::string &n = c->statName();
        if (path.size() > n.size() + 1 && path.compare(0, n.size(), n) == 0 &&
            path[n.size()] == '.') {
            if (const StatBase *s = c->resolveStat(path.substr(n.size() + 1)))
                return s;
        }
    }
    return nullptr;
}

void
StatGroup::registerStat(StatBase *stat)
{
    SMARTREF_ASSERT(findStat(stat->name()) == nullptr,
                    "duplicate stat '", stat->name(), "' in group '",
                    name_, "'");
    stats_.push_back(stat);
}

void
StatGroup::registerChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::unregisterChild(StatGroup *child)
{
    std::erase(children_, child);
}

} // namespace smartref

#include "sim/interval_stats.hh"

#include <fstream>
#include <limits>
#include <ostream>

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

IntervalStats::IntervalStats(EventQueue &eq, Tick period)
    : eq_(eq), period_(period)
{
    SMARTREF_ASSERT(period_ > 0, "interval period must be positive");
}

void
IntervalStats::addDelta(std::string name, Probe read)
{
    SMARTREF_ASSERT(!running_, "cannot add columns while sampling");
    SMARTREF_ASSERT(read != nullptr, "null probe for '", name, "'");
    columns_.push_back(name);
    cols_.push_back({std::move(name), std::move(read), true, 0.0});
}

void
IntervalStats::addGauge(std::string name, Probe read)
{
    SMARTREF_ASSERT(!running_, "cannot add columns while sampling");
    SMARTREF_ASSERT(read != nullptr, "null probe for '", name, "'");
    columns_.push_back(name);
    cols_.push_back({std::move(name), std::move(read), false, 0.0});
}

void
IntervalStats::start()
{
    SMARTREF_ASSERT(!running_, "sampler already started");
    running_ = true;
    intervalBegin_ = eq_.now();
    for (Column &c : cols_)
        if (c.delta)
            c.snapshot = c.read();
    scheduleNext();
}

void
IntervalStats::stop()
{
    running_ = false;
    ++generation_;
}

void
IntervalStats::finish()
{
    if (!running_)
        return;
    if (eq_.now() > intervalBegin_)
        sample();
    stop();
}

void
IntervalStats::scheduleNext()
{
    eq_.scheduleAfter(period_,
                      [this, gen = generation_] {
                          if (running_ && gen == generation_) {
                              sample();
                              scheduleNext();
                          }
                      },
                      EventPriority::Stats);
}

void
IntervalStats::sample()
{
    Sample row;
    row.begin = intervalBegin_;
    row.end = eq_.now();
    row.values.reserve(cols_.size());
    for (Column &c : cols_) {
        const double v = c.read();
        if (c.delta) {
            row.values.push_back(v - c.snapshot);
            c.snapshot = v; // the snapshot-and-reset step
        } else {
            row.values.push_back(v);
        }
        SMARTREF_TRACE_COUNTER(TraceCategory::Interval, row.end,
                               c.name.c_str(), row.values.back());
    }
    intervalBegin_ = row.end;
    samples_.push_back(std::move(row));
}

void
IntervalStats::writeCsv(std::ostream &os) const
{
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "begin_ms,end_ms";
    for (const auto &name : columns_)
        os << ',' << name;
    os << '\n';
    for (const Sample &s : samples_) {
        os << static_cast<double>(s.begin) / static_cast<double>(kMillisecond)
           << ','
           << static_cast<double>(s.end) / static_cast<double>(kMillisecond);
        for (double v : s.values)
            os << ',' << v;
        os << '\n';
    }
}

void
IntervalStats::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write interval CSV '", path, "'");
    writeCsv(out);
}

} // namespace smartref

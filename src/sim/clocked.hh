/**
 * @file
 * Clock-domain helper: converts between cycles of a component clock and
 * global ticks.
 */

#pragma once

#include "sim/logging.hh"
#include "sim/types.hh"

namespace smartref {

/** A clock domain with a fixed period. */
class ClockDomain
{
  public:
    explicit ClockDomain(Tick period) : period_(period)
    {
        SMARTREF_ASSERT(period > 0, "clock period must be positive");
    }

    Tick period() const { return period_; }

    /** Frequency in MHz (rounded down). */
    std::uint64_t mhz() const { return kSecond / period_ / 1000000; }

    /** Convert a cycle count to a tick duration. */
    Tick toTicks(Cycles c) const { return c * period_; }

    /** Cycles elapsed at `t` (rounded down). */
    Cycles toCycles(Tick t) const { return t / period_; }

    /** The first tick >= t that lies on a clock edge. */
    Tick
    nextEdge(Tick t) const
    {
        const Tick rem = t % period_;
        return rem == 0 ? t : t + (period_ - rem);
    }

  private:
    Tick period_;
};

} // namespace smartref

/**
 * @file
 * Fundamental simulation types: ticks, addresses and unit helpers.
 *
 * The simulator counts time in integer picoseconds ("ticks"). One tick is
 * small enough to represent any DRAM clock (DDR2-667 has a 1500 ps period)
 * without rounding, and a 64-bit tick counter covers ~213 days of simulated
 * time, far beyond any experiment in this repository.
 */

#pragma once

#include <cstdint>

namespace smartref {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** A cycle count within some clock domain. */
using Cycles = std::uint64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick kTickMax = ~Tick(0);

/** @name Time unit literals (all expressed in ticks = picoseconds). */
///@{
constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000 * kPicosecond;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;
///@}

/** @name Capacity unit helpers. */
///@{
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;
///@}

/** Convert a frequency in MHz to a clock period in ticks. */
constexpr Tick
periodFromMHz(std::uint64_t mhz)
{
    return kSecond / (mhz * 1000000);
}

} // namespace smartref

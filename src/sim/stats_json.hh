/**
 * @file
 * Machine-readable export of a StatGroup tree.
 *
 * Serialises every registered statistic below a group — Scalar, Vector,
 * Histogram and Formula, each with its full dotted name — as one flat
 * JSON object, so benches and CI can diff two runs structurally instead
 * of scraping the console dump. The flat keying mirrors the text dump:
 * what dumpStats() prints as "system.ctrl.demandReads" is the JSON key
 * "system.ctrl.demandReads".
 */

#pragma once

#include <iosfwd>
#include <string>

#include "sim/stats.hh"

namespace smartref {

/**
 * Generic numeric readout of any statistic: Scalar/Formula value,
 * VectorStat total, Histogram sample count. Useful for probing stats
 * found via StatGroup::resolveStat without knowing their kind.
 */
double statValue(const StatBase &stat);

/**
 * Serialise `root`'s subtree as JSON to a stream. When `metaJson` is
 * non-empty it must be a complete JSON value (normally produced by
 * smartref::metaJson()) and is embedded verbatim as a top-level "meta"
 * member, giving the dump run provenance. `extraMembers`, when
 * non-empty, is spliced verbatim as additional top-level members and
 * must be well-formed `"key": value` pairs (e.g. `"phases": [...]`);
 * callers embedding host timings this way keep them out of the "stats"
 * object, preserving its deterministic diffability.
 */
void writeStatsJson(const StatGroup &root, std::ostream &os,
                    const std::string &metaJson = "",
                    const std::string &extraMembers = "");

/** Serialise `root`'s subtree as JSON to a file (fatal on I/O error). */
void writeStatsJson(const StatGroup &root, const std::string &path,
                    const std::string &metaJson = "",
                    const std::string &extraMembers = "");

} // namespace smartref

/**
 * @file
 * Structured event tracing for the simulator.
 *
 * Components emit typed, timestamped events (DRAM commands, refreshes,
 * counter activity, activity-monitor transitions, row-buffer outcomes)
 * through the SMARTREF_TRACE macros. Events are filtered by a category
 * bitmask and streamed to pluggable sinks:
 *
 *  - ChromeTraceSink writes Chrome trace_event JSON, loadable in
 *    chrome://tracing and Perfetto (ui.perfetto.dev);
 *  - CsvTraceSink writes a compact one-line-per-event CSV timeline.
 *
 * The hot-path cost when tracing is off is a single branch on the
 * category mask; building with -DSMARTREF_TRACING=OFF compiles the
 * macros out entirely so instrumented code carries zero overhead.
 *
 * The simulator is single-threaded, so the tracer keeps no locks; the
 * process-wide instance returned by globalTracer() is what the macros
 * use, mirroring the logging module's global verbosity.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace smartref {

/** Event categories; a tracer filters on a bitmask of these. */
enum class TraceCategory : std::uint32_t {
    None = 0,
    Dram = 1u << 0,      ///< device commands (ACT/PRE/RD/WR/refresh)
    Refresh = 1u << 1,   ///< refresh requests and issues (CBR vs RAS-only)
    Counter = 1u << 2,   ///< counter resets, walk steps, expiries
    Monitor = 1u << 3,   ///< activity-monitor windows and mode switches
    RowBuffer = 1u << 4, ///< row-buffer hits / misses / conflicts
    Queue = 1u << 5,     ///< refresh-backlog and queue-depth counters
    Interval = 1u << 6,  ///< interval-stats samples
    All = (1u << 7) - 1,
};

/** Name of a single category ("dram", "refresh", ...). */
const char *toString(TraceCategory cat);

/**
 * Parse a comma-separated category list ("refresh,counter" or "all")
 * into a bitmask. Unknown names are fatal (bad user configuration).
 */
TraceCategory parseTraceCategories(const std::string &list);

/** How an event renders in the Chrome trace. */
enum class TracePhase : char {
    Instant = 'i', ///< a point in time
    Span = 'X',    ///< an operation with a duration
    Counter = 'C', ///< a sampled numeric track
};

/**
 * One trace event. Plain data; `name` and `detail` must point at
 * storage that outlives the tracer (string literals at every call site).
 */
struct TraceEvent
{
    Tick tick = 0;          ///< simulated time (ps)
    Tick duration = 0;      ///< span length (ps); only for TracePhase::Span
    TraceCategory cat = TraceCategory::None;
    TracePhase phase = TracePhase::Instant;
    const char *name = "";
    std::int32_t rank = -1; ///< -1 = not applicable
    std::int32_t bank = -1;
    std::int64_t row = -1;
    double value = 0.0;     ///< free-form numeric payload
    const char *detail = nullptr; ///< optional qualifier
};

/** Receives every event that passes the category filter. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void write(const TraceEvent &ev) = 0;
    /** Finalise the output (close JSON arrays, flush). Idempotent. */
    virtual void finish() {}
};

/**
 * Chrome trace_event JSON sink. Events become entries of the standard
 * {"traceEvents": [...]} envelope with ts/dur in microseconds; ranks map
 * to tids so per-rank activity lands on separate Perfetto tracks.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    /** Write to a file; fatal when the path cannot be opened. */
    explicit ChromeTraceSink(const std::string &path);
    /** Write to a caller-owned stream (tests, benchmarks). */
    explicit ChromeTraceSink(std::ostream &os);
    ~ChromeTraceSink() override;

    void write(const TraceEvent &ev) override;
    void finish() override;

  private:
    std::unique_ptr<std::ostream> owned_;
    std::ostream *os_;
    bool first_ = true;
    bool finished_ = false;
};

/** Compact CSV timeline sink: one event per line. */
class CsvTraceSink : public TraceSink
{
  public:
    explicit CsvTraceSink(const std::string &path);
    explicit CsvTraceSink(std::ostream &os);
    ~CsvTraceSink() override;

    void write(const TraceEvent &ev) override;
    void finish() override;

  private:
    void writeHeader();

    std::unique_ptr<std::ostream> owned_;
    std::ostream *os_;
    bool finished_ = false;
};

/**
 * The event dispatcher. enabled() is the only call on the hot path;
 * everything else runs once per emitted event or once per run.
 */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** True when `cat` is selected and at least one sink is attached. */
    bool
    enabled(TraceCategory cat) const
    {
        return (mask_ & static_cast<std::uint32_t>(cat)) != 0 &&
               !sinks_.empty();
    }

    /** Replace the category filter (default: All). */
    void
    setCategories(TraceCategory mask)
    {
        mask_ = static_cast<std::uint32_t>(mask);
    }

    TraceCategory
    categories() const
    {
        return static_cast<TraceCategory>(mask_);
    }

    void addSink(std::unique_ptr<TraceSink> sink);

    /** Finish and drop all sinks; also resets the filter to All. */
    void reset();

    /** Dispatch a fully-formed event (category already checked). */
    void emit(const TraceEvent &ev);

    /** Convenience emitter used by the SMARTREF_TRACE macro. */
    void
    emit(TraceCategory cat, Tick tick, const char *name,
         std::int32_t rank = -1, std::int32_t bank = -1,
         std::int64_t row = -1, double value = 0.0, Tick duration = 0,
         const char *detail = nullptr)
    {
        TraceEvent ev;
        ev.tick = tick;
        ev.duration = duration;
        ev.cat = cat;
        ev.phase = duration > 0 ? TracePhase::Span : TracePhase::Instant;
        ev.name = name;
        ev.rank = rank;
        ev.bank = bank;
        ev.row = row;
        ev.value = value;
        ev.detail = detail;
        emit(ev);
    }

    /** Convenience emitter for counter tracks. */
    void
    emitCounter(TraceCategory cat, Tick tick, const char *name,
                double value)
    {
        TraceEvent ev;
        ev.tick = tick;
        ev.cat = cat;
        ev.phase = TracePhase::Counter;
        ev.name = name;
        ev.value = value;
        emit(ev);
    }

    /** Call finish() on every sink (safe to call repeatedly). */
    void flush();

    /** Events dispatched to sinks so far. */
    std::uint64_t emitted() const { return emitted_; }

  private:
    std::uint32_t mask_ = static_cast<std::uint32_t>(TraceCategory::All);
    std::vector<std::unique_ptr<TraceSink>> sinks_;
    std::uint64_t emitted_ = 0;
};

/** The process-wide tracer the SMARTREF_TRACE macros feed. */
Tracer &globalTracer();

/**
 * Emission macros. The argument list after the category forwards to
 * Tracer::emit(cat, tick, name, rank, bank, row, value, duration,
 * detail); trailing arguments are optional.
 */
#ifndef SMARTREF_TRACING_DISABLED
#define SMARTREF_TRACE_ENABLED(cat) (::smartref::globalTracer().enabled(cat))
#define SMARTREF_TRACE(cat, ...)                                             \
    do {                                                                     \
        if (::smartref::globalTracer().enabled(cat))                         \
            ::smartref::globalTracer().emit((cat), __VA_ARGS__);             \
    } while (0)
#define SMARTREF_TRACE_COUNTER(cat, tick, name, value)                       \
    do {                                                                     \
        if (::smartref::globalTracer().enabled(cat))                         \
            ::smartref::globalTracer().emitCounter((cat), (tick), (name),    \
                                                   (value));                 \
    } while (0)
#else
#define SMARTREF_TRACE_ENABLED(cat) (false)
#define SMARTREF_TRACE(cat, ...)                                             \
    do {                                                                     \
    } while (0)
#define SMARTREF_TRACE_COUNTER(cat, tick, name, value)                       \
    do {                                                                     \
    } while (0)
#endif

} // namespace smartref

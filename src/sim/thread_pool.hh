/**
 * @file
 * A work-stealing thread pool for fanning independent simulations out
 * across cores (experiment sweeps, parallel figure suites).
 *
 * Each worker owns a deque: tasks submitted from inside a pool task go
 * to the owning worker's back and are popped LIFO (keeping nested work
 * hot in cache), while idle workers steal from other workers' fronts
 * FIFO (taking the oldest, largest-grained work). Tasks submitted from
 * outside the pool land in a shared FIFO queue that workers drain
 * before stealing.
 *
 * The pool makes no ordering guarantees between tasks; determinism is
 * the caller's job. The sweep runner achieves it by writing each
 * result into a slot chosen by the task's *index*, never by completion
 * order, and by deriving every job's seed from its grid coordinates —
 * see harness/sweep.hh.
 *
 * All queue bookkeeping is mutex-protected (one shared mutex for the
 * counters plus one small mutex per worker deque), so the pool is
 * clean under ThreadSanitizer by construction; CI runs it under TSan.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace smartref {

/** Work-stealing pool of worker threads. */
class ThreadPool
{
  public:
    /**
     * Start `threads` workers (0 picks hardwareThreads()). The pool
     * drains every submitted task before the destructor returns.
     */
    explicit ThreadPool(unsigned threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Waits for all queued and running tasks, then joins the workers. */
    ~ThreadPool();

    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue a task. Safe to call from inside a pool task (nested
     * submit): the child lands on the submitting worker's own deque.
     * Tasks must not throw; use submitFuture() when a task can fail.
     */
    void submit(std::function<void()> task);

    /**
     * Enqueue a callable and get a future for its result. Exceptions
     * thrown by the callable are captured and rethrown by get().
     */
    template <typename F>
    auto
    submitFuture(F fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        // Shared-ptr wrapper because std::function requires copyable
        // callables and std::packaged_task is move-only.
        auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> fut = task->get_future();
        submit([task] { (*task)(); });
        return fut;
    }

    /**
     * Block until every submitted task (including tasks submitted while
     * waiting) has finished. Must be called from outside the pool.
     */
    void waitIdle();

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static unsigned hardwareThreads();

    /** True when the calling thread is one of this pool's workers. */
    bool onWorkerThread() const;

    /**
     * Scheduling counters accumulated since construction. Telemetry
     * only: the numbers depend on thread scheduling and must never
     * enter a deterministic output. localPops + externalPops + steals
     * equals the number of tasks executed so far.
     */
    struct Stats
    {
        std::uint64_t localPops = 0;    ///< tasks popped from own deque
        std::uint64_t externalPops = 0; ///< tasks from the shared FIFO
        std::uint64_t steals = 0;       ///< tasks stolen from a victim
        std::uint64_t idleWaits = 0;    ///< times a worker went to sleep
    };

    /** Snapshot of the scheduling counters (thread-safe). */
    Stats stats() const;

  private:
    struct Worker
    {
        std::mutex mu;
        std::deque<std::function<void()>> deque;
    };

    void workerLoop(unsigned id);
    bool tryGetTask(unsigned id, std::function<void()> &out);
    void enqueue(std::function<void()> task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    // Shared bookkeeping: queued_ counts tasks not yet popped (wakes
    // sleeping workers), pending_ counts tasks not yet finished (wakes
    // waitIdle()). Both only change under mu_.
    mutable std::mutex mu_;
    std::condition_variable workCv_;
    std::condition_variable idleCv_;
    std::deque<std::function<void()>> external_;
    std::size_t queued_ = 0;
    std::size_t pending_ = 0;
    bool stop_ = false;
    Stats stats_; ///< guarded by mu_
};

/**
 * Run body(0..n-1) on `pool`, blocking until all complete. The first
 * exception *in index order* (not completion order) is rethrown, so a
 * failing sweep reports the same job no matter the thread count. When
 * called from inside one of `pool`'s own tasks the loop runs inline to
 * avoid self-deadlock.
 */
void parallelFor(ThreadPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &body);

/**
 * Convenience form: `jobs <= 1` runs the plain serial loop with no
 * threads at all (the reference ordering for determinism tests);
 * otherwise a pool of min(jobs, n) workers is created for the call.
 */
void parallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)> &body);

} // namespace smartref

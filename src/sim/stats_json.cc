#include "sim/stats_json.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

#include "sim/logging.hh"

namespace smartref {

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char ch : s) {
        switch (ch) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                os << ' '; // control characters never appear in descs
            else
                os << ch;
        }
    }
}

/** JSON has no NaN/Infinity literals; emit null for non-finite values. */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

void
writeStat(std::ostream &os, const std::string &fullName,
          const StatBase &stat)
{
    os << "    \"";
    jsonEscape(os, fullName);
    os << "\": {";

    auto field = [&os, first = true](const char *key) mutable
        -> std::ostream & {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << key << "\": ";
        return os;
    };

    if (const auto *s = dynamic_cast<const Scalar *>(&stat)) {
        field("kind") << "\"scalar\"";
        jsonNumber(field("value"), s->value());
    } else if (const auto *v = dynamic_cast<const VectorStat *>(&stat)) {
        field("kind") << "\"vector\"";
        field("labels") << "[";
        for (std::size_t i = 0; i < v->size(); ++i) {
            os << (i ? ", " : "") << "\"";
            jsonEscape(os, v->label(i));
            os << "\"";
        }
        os << "]";
        field("values") << "[";
        for (std::size_t i = 0; i < v->size(); ++i) {
            os << (i ? ", " : "");
            jsonNumber(os, v->at(i));
        }
        os << "]";
        jsonNumber(field("total"), v->total());
    } else if (const auto *h = dynamic_cast<const Histogram *>(&stat)) {
        field("kind") << "\"histogram\"";
        field("samples") << h->samples();
        jsonNumber(field("mean"), h->mean());
        jsonNumber(field("stddev"), h->stddev());
        jsonNumber(field("min"), h->min());
        jsonNumber(field("max"), h->max());
        jsonNumber(field("lo"), h->bucketLo());
        jsonNumber(field("hi"), h->bucketHi());
        jsonNumber(field("p50"), h->percentile(0.50));
        jsonNumber(field("p95"), h->percentile(0.95));
        jsonNumber(field("p99"), h->percentile(0.99));
        field("underflows") << h->underflows();
        field("overflows") << h->overflows();
        field("buckets") << "[";
        for (std::size_t i = 0; i < h->numBuckets(); ++i)
            os << (i ? ", " : "") << h->bucketCount(i);
        os << "]";
    } else if (const auto *f = dynamic_cast<const Formula *>(&stat)) {
        field("kind") << "\"formula\"";
        jsonNumber(field("value"), f->value());
    } else {
        SMARTREF_PANIC("unknown stat kind for '", fullName, "'");
    }

    if (!stat.desc().empty()) {
        field("desc") << "\"";
        jsonEscape(os, stat.desc());
        os << "\"";
    }
    os << "}";
}

void
walk(std::ostream &os, const StatGroup &root, const StatGroup &group,
     const std::string &prefix, bool &first)
{
    for (const StatBase *stat : group.stats()) {
        const std::string name = prefix + stat->name();
        // Every exported key must resolve back to the stat it names:
        // this pins resolveStat() and the export format to each other.
        SMARTREF_ASSERT(root.resolveStat(name) == stat,
                        "stat path '", name, "' does not resolve");
        os << (first ? "" : ",\n");
        first = false;
        writeStat(os, name, *stat);
    }
    for (const StatGroup *child : group.children())
        walk(os, root, *child, prefix + child->statName() + ".", first);
}

} // namespace

double
statValue(const StatBase &stat)
{
    if (const auto *s = dynamic_cast<const Scalar *>(&stat))
        return s->value();
    if (const auto *v = dynamic_cast<const VectorStat *>(&stat))
        return v->total();
    if (const auto *h = dynamic_cast<const Histogram *>(&stat))
        return static_cast<double>(h->samples());
    if (const auto *f = dynamic_cast<const Formula *>(&stat))
        return f->value();
    return 0.0;
}

void
writeStatsJson(const StatGroup &root, std::ostream &os,
               const std::string &metaJson,
               const std::string &extraMembers)
{
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"root\": \"";
    jsonEscape(os, root.statName());
    os << "\",\n";
    if (!metaJson.empty())
        os << "  \"meta\": " << metaJson << ",\n";
    if (!extraMembers.empty())
        os << "  " << extraMembers << ",\n";
    os << "  \"stats\": {\n";
    bool first = true;
    const std::string prefix =
        root.statName().empty() ? "" : root.statName() + ".";
    walk(os, root, root, prefix, first);
    os << "\n  }\n}\n";
}

void
writeStatsJson(const StatGroup &root, const std::string &path,
               const std::string &metaJson,
               const std::string &extraMembers)
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write stats JSON '", path, "'");
    writeStatsJson(root, out, metaJson, extraMembers);
}

} // namespace smartref

#include "sim/suggest.hh"

#include <algorithm>

namespace smartref {

namespace {

/** Classic two-row Levenshtein distance. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

std::string
suggestClosest(const std::string &input,
               const std::vector<std::string> &candidates)
{
    const std::size_t budget = std::max<std::size_t>(2, input.size() / 3);
    std::string best;
    std::size_t bestDist = budget + 1;
    for (const std::string &cand : candidates) {
        if (cand == input)
            continue;
        const std::size_t d = editDistance(input, cand);
        if (d < bestDist || (d == bestDist && !best.empty() && cand < best)) {
            bestDist = d;
            best = cand;
        }
    }
    return bestDist <= budget ? best : std::string();
}

std::string
didYouMean(const std::string &input,
           const std::vector<std::string> &candidates)
{
    const std::string s = suggestClosest(input, candidates);
    return s.empty() ? std::string()
                     : " (did you mean '" + s + "'?)";
}

} // namespace smartref

#include "sim/provenance.hh"

#include <ostream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "sim/provenance_info.hh"

namespace smartref {

namespace {

/** Minimal JSON string escaping for build/config strings. */
std::string
escaped(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                out += ' ';
            else
                out += ch;
        }
    }
    return out;
}

} // namespace

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = [] {
        BuildInfo b;
        b.gitSha = SMARTREF_GIT_SHA;
        if (b.gitSha.empty())
            b.gitSha = "unknown";
        b.compiler = SMARTREF_COMPILER_ID;
        const std::string version = SMARTREF_COMPILER_VERSION;
        if (!version.empty())
            b.compiler += " " + version;
        b.compilerFlags = SMARTREF_CXX_FLAGS;
        b.buildType = SMARTREF_BUILD_TYPE;
        if (b.buildType.empty())
            b.buildType = "unspecified";
        return b;
    }();
    return info;
}

std::uint64_t
fnv1a64(std::string_view s)
{
    // These constants predate this module (harness/sweep.cc seed
    // derivation); the pinned seeds in tests/test_sweep.cpp depend on
    // them, so they must never change.
    std::uint64_t hash = 1469598103934665603ULL;
    for (char ch : s) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::string
hex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

const std::string &
buildFingerprint()
{
    static const std::string fingerprint = [] {
        const BuildInfo &b = buildInfo();
        return "git=" + b.gitSha + ";compiler=" + b.compiler +
               ";flags=" + b.compilerFlags + ";buildType=" + b.buildType;
    }();
    return fingerprint;
}

void
writeMetaJson(std::ostream &os, const RunMeta &run)
{
    const BuildInfo &b = buildInfo();
    os << "{\"schemaVersion\":\"" << escaped(run.schema) << "\""
       << ",\"gitSha\":\"" << escaped(b.gitSha) << "\""
       << ",\"compiler\":\"" << escaped(b.compiler) << "\""
       << ",\"compilerFlags\":\"" << escaped(b.compilerFlags) << "\""
       << ",\"buildType\":\"" << escaped(b.buildType) << "\"";
    if (!run.configHash.empty())
        os << ",\"configHash\":\"" << escaped(run.configHash) << "\"";
    if (!run.seedMode.empty())
        os << ",\"seedMode\":\"" << escaped(run.seedMode) << "\"";
    if (run.peakRssBytes)
        os << ",\"peakRssBytes\":" << run.peakRssBytes;
    if (run.bytesPerSimulatedRow > 0.0)
        os << ",\"bytesPerSimulatedRow\":" << run.bytesPerSimulatedRow;
    if (!run.traceId.empty())
        os << ",\"traceId\":\"" << escaped(run.traceId) << "\"";
    os << "}";
}

std::string
metaJson(const RunMeta &run)
{
    std::ostringstream os;
    writeMetaJson(os, run);
    return os.str();
}

std::uint64_t
currentPeakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    // ru_maxrss is bytes on Darwin...
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    // ...and kilobytes on Linux.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024ULL;
#endif
#else
    return 0;
#endif
}

std::string
versionText(const std::string &toolName)
{
    const BuildInfo &b = buildInfo();
    std::ostringstream os;
    os << toolName << " (smartref)\n"
       << "  gitSha:        " << b.gitSha << "\n"
       << "  compiler:      " << b.compiler << "\n"
       << "  compilerFlags: " << b.compilerFlags << "\n"
       << "  buildType:     " << b.buildType << "\n";
    return os.str();
}

} // namespace smartref

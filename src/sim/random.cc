#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace smartref {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    SMARTREF_ASSERT(bound > 0, "nextBelow(0) is meaningless");
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    SMARTREF_ASSERT(lo <= hi, "bad range [", lo, ", ", hi, "]");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextExponential(double mean)
{
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    SMARTREF_ASSERT(n > 0, "zipf population must be positive");
    SMARTREF_ASSERT(alpha >= 0.0, "zipf alpha must be non-negative");
    hX1_ = hIntegral(1.5) - 1.0;
    hN_ = hIntegral(static_cast<double>(n) + 0.5);
    s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfSampler::hIntegral(double x) const
{
    const double logx = std::log(x);
    // Integral of x^-alpha; the alpha==1 limit is log(x).
    if (std::abs(1.0 - alpha_) < 1e-12)
        return logx;
    return (std::exp((1.0 - alpha_) * logx) - 1.0) / (1.0 - alpha_);
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    if (std::abs(1.0 - alpha_) < 1e-12)
        return std::exp(x);
    double t = x * (1.0 - alpha_) + 1.0;
    if (t < 0.0)
        t = 0.0;
    return std::exp(std::log(t) / (1.0 - alpha_));
}

double
ZipfSampler::h(double x) const
{
    return std::exp(-alpha_ * std::log(x));
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (alpha_ == 0.0)
        return rng.nextBelow(n_);
    while (true) {
        const double u = hN_ + rng.nextDouble() * (hX1_ - hN_);
        const double x = hIntegralInverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd))
            return k - 1; // shift to zero-based
    }
}

} // namespace smartref

#include "sim/tracer.hh"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/suggest.hh"

namespace smartref {

const char *
toString(TraceCategory cat)
{
    switch (cat) {
      case TraceCategory::None: return "none";
      case TraceCategory::Dram: return "dram";
      case TraceCategory::Refresh: return "refresh";
      case TraceCategory::Counter: return "counter";
      case TraceCategory::Monitor: return "monitor";
      case TraceCategory::RowBuffer: return "rowbuf";
      case TraceCategory::Queue: return "queue";
      case TraceCategory::Interval: return "interval";
      case TraceCategory::All: return "all";
    }
    return "?";
}

TraceCategory
parseTraceCategories(const std::string &list)
{
    std::uint32_t mask = 0;
    std::istringstream iss(list);
    std::string token;
    while (std::getline(iss, token, ',')) {
        if (token.empty())
            continue;
        bool known = false;
        for (TraceCategory c :
             {TraceCategory::Dram, TraceCategory::Refresh,
              TraceCategory::Counter, TraceCategory::Monitor,
              TraceCategory::RowBuffer, TraceCategory::Queue,
              TraceCategory::Interval, TraceCategory::All,
              TraceCategory::None}) {
            if (token == toString(c)) {
                mask |= static_cast<std::uint32_t>(c);
                known = true;
                break;
            }
        }
        if (!known) {
            SMARTREF_FATAL("unknown trace category '", token, "'",
                           didYouMean(token,
                                      {"dram", "refresh", "counter",
                                       "monitor", "rowbuf", "queue",
                                       "interval", "all", "none"}),
                           " (dram, refresh, counter, monitor, rowbuf, "
                           "queue, interval, all)");
        }
    }
    return static_cast<TraceCategory>(mask);
}

namespace {

std::unique_ptr<std::ostream>
openTraceFile(const std::string &path)
{
    auto out = std::make_unique<std::ofstream>(path);
    if (!*out)
        SMARTREF_FATAL("cannot write trace file '", path, "'");
    return out;
}

/** Escape a string for inclusion in a JSON string literal. */
void
jsonEscape(std::ostream &os, const char *s)
{
    for (; *s; ++s) {
        switch (*s) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(*s) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << int(*s) << std::dec
                   << std::setfill(' ');
            } else {
                os << *s;
            }
        }
    }
}

/** Ticks (ps) to the microseconds Chrome's `ts`/`dur` fields expect. */
double
toMicros(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : owned_(openTraceFile(path)), os_(owned_.get())
{
    *os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(&os)
{
    *os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink()
{
    finish();
}

void
ChromeTraceSink::write(const TraceEvent &ev)
{
    std::ostream &os = *os_;
    os << (first_ ? "\n" : ",\n");
    first_ = false;

    os << "{\"name\":\"";
    jsonEscape(os, ev.name);
    os << "\",\"cat\":\"" << toString(ev.cat) << "\",\"ph\":\""
       << static_cast<char>(ev.phase) << "\"";
    os << ",\"ts\":" << std::setprecision(15) << toMicros(ev.tick);
    if (ev.phase == TracePhase::Span)
        os << ",\"dur\":" << toMicros(ev.duration);
    if (ev.phase == TracePhase::Instant)
        os << ",\"s\":\"g\"";
    // One Perfetto track per rank; rank-less events share track 0.
    os << ",\"pid\":0,\"tid\":" << (ev.rank >= 0 ? ev.rank + 1 : 0);
    os << ",\"args\":{";
    bool firstArg = true;
    auto arg = [&](const char *key) -> std::ostream & {
        os << (firstArg ? "" : ",") << "\"" << key << "\":";
        firstArg = false;
        return os;
    };
    if (ev.phase == TracePhase::Counter) {
        arg("value") << std::setprecision(15) << ev.value;
    } else {
        if (ev.rank >= 0)
            arg("rank") << ev.rank;
        if (ev.bank >= 0)
            arg("bank") << ev.bank;
        if (ev.row >= 0)
            arg("row") << ev.row;
        if (ev.value != 0.0)
            arg("value") << std::setprecision(15) << ev.value;
        if (ev.detail) {
            arg("detail") << "\"";
            jsonEscape(os, ev.detail);
            os << "\"";
        }
    }
    os << "}}";
}

void
ChromeTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    *os_ << "\n]}\n";
    os_->flush();
}

CsvTraceSink::CsvTraceSink(const std::string &path)
    : owned_(openTraceFile(path)), os_(owned_.get())
{
    writeHeader();
}

CsvTraceSink::CsvTraceSink(std::ostream &os) : os_(&os)
{
    writeHeader();
}

CsvTraceSink::~CsvTraceSink()
{
    finish();
}

void
CsvTraceSink::writeHeader()
{
    *os_ << "tick_ps,category,name,rank,bank,row,value,duration_ps,"
            "detail\n";
}

void
CsvTraceSink::write(const TraceEvent &ev)
{
    std::ostream &os = *os_;
    os << ev.tick << ',' << toString(ev.cat) << ',' << ev.name << ',';
    if (ev.rank >= 0)
        os << ev.rank;
    os << ',';
    if (ev.bank >= 0)
        os << ev.bank;
    os << ',';
    if (ev.row >= 0)
        os << ev.row;
    os << ',' << std::setprecision(15) << ev.value << ',' << ev.duration
       << ',' << (ev.detail ? ev.detail : "") << '\n';
}

void
CsvTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_->flush();
}

void
Tracer::addSink(std::unique_ptr<TraceSink> sink)
{
    SMARTREF_ASSERT(sink != nullptr, "null trace sink");
    sinks_.push_back(std::move(sink));
}

void
Tracer::reset()
{
    flush();
    sinks_.clear();
    mask_ = static_cast<std::uint32_t>(TraceCategory::All);
    emitted_ = 0;
}

void
Tracer::emit(const TraceEvent &ev)
{
    ++emitted_;
    for (auto &sink : sinks_)
        sink->write(ev);
}

void
Tracer::flush()
{
    for (auto &sink : sinks_)
        sink->finish();
}

Tracer &
globalTracer()
{
    static Tracer tracer;
    return tracer;
}

} // namespace smartref

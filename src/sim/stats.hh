/**
 * @file
 * A small statistics framework in the spirit of gem5's stats package.
 *
 * Components own typed statistics (Scalar, Vector, Histogram, Formula) and
 * register them with a StatGroup. Groups nest; dumping a root group prints
 * every statistic below it with fully-qualified dotted names. Formulas are
 * evaluated lazily at dump time so derived metrics (rates, ratios) always
 * reflect the final counter values.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace smartref {

class StatGroup;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print "name value # desc" line(s) with the given prefix. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A single accumulating value. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator-=(double v) { value_ -= v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** A fixed-length vector of accumulating values with element labels. */
class VectorStat : public StatBase
{
  public:
    VectorStat(StatGroup *parent, std::string name, std::string desc,
               std::vector<std::string> labels);

    double &operator[](std::size_t i) { return values_.at(i); }
    double at(std::size_t i) const { return values_.at(i); }
    std::size_t size() const { return values_.size(); }
    const std::string &label(std::size_t i) const { return labels_.at(i); }
    double total() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::vector<std::string> labels_;
    std::vector<double> values_;
};

/** A histogram over a fixed linear bucket range, with overflow buckets. */
class Histogram : public StatBase
{
  public:
    /**
     * @param lo      lower bound of the first bucket
     * @param hi      upper bound of the last bucket
     * @param buckets number of linear buckets between lo and hi
     */
    Histogram(StatGroup *parent, std::string name, std::string desc,
              double lo, double hi, std::size_t buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double stddev() const;

    /**
     * Nearest-rank percentile estimated from the bucketed mass: rank
     * ceil(p * samples) counted through underflows (represented by
     * min()), the linear buckets (represented by their midpoints) and
     * overflows (represented by max()). p is clamped to (0, 1]; returns
     * NaN when the histogram is empty, which the JSON export renders
     * as null.
     */
    double percentile(double p) const;
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }
    double bucketLo() const { return lo_; }
    double bucketHi() const { return hi_; }
    std::size_t numBuckets() const { return counts_.size(); }

    /**
     * Bucket-wise sum of `other` into this histogram (same lo/hi/bucket
     * shape required; fatal otherwise). Deterministic: merging the same
     * histograms in the same order always yields the same state, which
     * is what lets the sharded runner combine per-channel latency
     * distributions into -jN-independent percentiles.
     */
    void merge(const Histogram &other);

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A lazily-evaluated derived statistic. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics and child groups.
 *
 * Groups form a tree; statistics register themselves with their parent at
 * construction. Ownership of the stat objects stays with the component that
 * declares them (they are members); the group only keeps raw pointers, so a
 * group must outlive its registered statistics' uses of it but not the
 * stats themselves (tests create/destroy components freely).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &statName() const { return name_; }

    /** Dotted path from the root group. */
    std::string fullStatName() const;

    /** Print every statistic in this group and below. */
    void dumpStats(std::ostream &os) const;

    /** Reset every statistic in this group and below. */
    void resetStats();

    /** Find a registered stat by name within this group only. */
    const StatBase *findStat(const std::string &name) const;

    /**
     * Resolve a dotted path ("ctrl.demandReads") to a stat anywhere in
     * this group's subtree. Group names may themselves contain dots
     * ("dram.ddr2-2gb"), so resolution greedily matches child names
     * rather than splitting on every dot. A leading "<this group>."
     * prefix is accepted, so paths copied from a dump (or the JSON
     * export) resolve from the root group directly.
     * @return nullptr when no stat matches
     */
    const StatBase *resolveStat(const std::string &path) const;

    /** Stats registered directly in this group, in registration order. */
    const std::vector<StatBase *> &stats() const { return stats_; }

    /** Child groups, in registration order. */
    const std::vector<StatGroup *> &children() const { return children_; }

  private:
    friend class StatBase;
    void registerStat(StatBase *stat);
    void registerChild(StatGroup *child);
    void unregisterChild(StatGroup *child);

    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace smartref

/**
 * @file
 * Discrete-event simulation core: events, the event queue, and the
 * Simulation driver that advances time.
 *
 * The queue is a binary min-heap ordered by (tick, priority, sequence).
 * The sequence number guarantees FIFO ordering among same-tick,
 * same-priority events, which keeps simulations deterministic.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace smartref {

/** Scheduling priority; lower values execute first within a tick. */
enum class EventPriority : int {
    ClockTick = 0,   ///< clock-domain maintenance (counter walks)
    Default = 10,    ///< ordinary component callbacks
    Stats = 100,     ///< end-of-window statistics sampling
};

/**
 * The global event queue for one simulation.
 *
 * Callbacks are std::function; components capture `this`. Events cannot be
 * descheduled (none of this codebase needs it); a cancelled event pattern
 * can be implemented by the callback checking a generation counter.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     * Scheduling in the past is an internal error.
     */
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::Default);

    /** Schedule a callback `delta` ticks from now. */
    void
    scheduleAfter(Tick delta, Callback cb,
                  EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delta, std::move(cb), prio);
    }

    /** Execute events until the queue is empty. */
    void run();

    /**
     * Execute events with tick <= limit, then set now() to limit.
     * Events scheduled beyond the limit remain pending.
     */
    void runUntil(Tick limit);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    bool empty() const { return heap_.empty(); }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace smartref

/**
 * @file
 * Discrete-event simulation core: events, the event queue, and the
 * Simulation driver that advances time.
 *
 * The queue is an owned 4-ary min-heap ordered by (tick, priority,
 * sequence). The sequence number guarantees FIFO ordering among
 * same-tick, same-priority events, which keeps simulations
 * deterministic.
 *
 * Layout is chosen for the hot path:
 *
 *  - Heap nodes are 24-byte PODs (tick, seq, priority, slot handle);
 *    sift operations move only these, never the callbacks. The 4-ary
 *    shape halves the tree depth of a binary heap and puts all four
 *    children of a node in one or two cache lines.
 *  - Callbacks live in a slab (a deque, so growth never relocates a
 *    live callback) of InlineFunction slots recycled through a free
 *    list: scheduling an event performs no heap allocation for any
 *    capture up to the inline capacity — which covers every capture in
 *    this codebase.
 *  - A one-entry "next" buffer holds the earliest pending event when it
 *    is scheduled earlier than everything in the heap. The common
 *    self-rescheduling pattern (a clock-like event that re-arms itself
 *    `stepInterval` ahead and is again the earliest event) therefore
 *    runs without touching the heap at all: O(1) per occurrence.
 *  - scheduleBurst() keeps one heap node alive across a fixed-interval
 *    train of occurrences instead of scheduling each occurrence as its
 *    own event. Sequence numbers for the whole train are reserved
 *    up-front, so the interleaving with other same-tick events is
 *    exactly as if every occurrence had been scheduled individually at
 *    burst-creation time (see docs/perf.md).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace smartref {

/** Scheduling priority; lower values execute first within a tick. */
enum class EventPriority : int {
    ClockTick = 0,   ///< clock-domain maintenance (counter walks)
    Default = 10,    ///< ordinary component callbacks
    Stats = 100,     ///< end-of-window statistics sampling
};

/**
 * The global event queue for one simulation.
 *
 * Callbacks are move-only InlineFunctions; components capture `this`.
 * Events cannot be descheduled (none of this codebase needs it); a
 * cancelled event pattern can be implemented by the callback checking a
 * generation counter.
 */
class EventQueue
{
  public:
    /**
     * Event callback. The inline capacity is sized so that the largest
     * capture in the tree (a demand completion: MemRequest + a
     * std::function completion callback + a tick) stays allocation-free;
     * oversize captures fall back to one heap allocation (see
     * InlineFunction).
     */
    using Callback = InlineFunction<void(), 96>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     * Scheduling in the past is an internal error.
     *
     * Accepts any void() callable; the capture is constructed directly
     * into its recycled slab slot, so the hot path performs no
     * allocation and no callback move.
     */
    template <typename F>
    void
    schedule(Tick when, F &&f,
             EventPriority prio = EventPriority::Default)
    {
        scheduleSlot(when, allocSlotFor(std::forward<F>(f)), prio);
    }

    /** Schedule a callback `delta` ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delta, F &&f,
                  EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delta, std::forward<F>(f), prio);
    }

    /**
     * Schedule `count` occurrences of `cb` at `first`, `first +
     * interval`, ... `first + (count-1) * interval`. One callback and
     * one heap node serve the whole train; the node re-arms itself
     * after each occurrence.
     *
     * Determinism contract: the train reserves `count` consecutive
     * sequence numbers now, and occurrence i carries the i-th of them —
     * same-tick FIFO interleaving with other events is byte-identical
     * to scheduling all occurrences individually at this instant.
     */
    template <typename F>
    void
    scheduleBurst(Tick first, Tick interval, std::uint64_t count, F &&f,
                  EventPriority prio = EventPriority::Default)
    {
        burstSlot(first, interval, count,
                  allocSlotFor(std::forward<F>(f)), prio);
    }

    /** Execute events until the queue is empty. */
    void run();

    /**
     * Execute events with tick <= limit, then set now() to limit.
     * Events scheduled beyond the limit remain pending.
     */
    void runUntil(Tick limit);

    /**
     * Number of pending events. Each remaining occurrence of a burst
     * counts once, matching individually scheduled events.
     */
    std::size_t pending() const { return pendingCount_; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    bool empty() const { return pendingCount_ == 0; }

  private:
    /**
     * A pending occurrence. POD on purpose: sifts copy 24 bytes and
     * never touch the callback slab.
     */
    struct Node
    {
        Tick when;
        std::uint64_t seq;
        std::int32_t prio;
        std::uint32_t slot;
    };

    /** Callback storage, recycled through freeSlots_. */
    struct Slot
    {
        Callback cb;
        Tick interval = 0;          ///< burst spacing (0 for one-shot)
        std::uint64_t remaining = 0; ///< occurrences left (1 = one-shot)
    };

    static bool
    lessThan(const Node &a, const Node &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.prio != b.prio)
            return a.prio < b.prio;
        return a.seq < b.seq;
    }

    /** Claim a slot and construct the callable in place. */
    template <typename F>
    std::uint32_t
    allocSlotFor(F &&f)
    {
        std::uint32_t idx;
        if (!freeSlots_.empty()) {
            idx = freeSlots_.back();
            freeSlots_.pop_back();
        } else {
            SMARTREF_ASSERT(slots_.size() <
                                std::numeric_limits<std::uint32_t>::max(),
                            "event slot space exhausted");
            idx = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        Slot &s = slots_[idx];
        s.cb = std::forward<F>(f);
        s.interval = 0;
        s.remaining = 1;
        return idx;
    }

    void scheduleSlot(Tick when, std::uint32_t slot, EventPriority prio);
    void burstSlot(Tick first, Tick interval, std::uint64_t count,
                   std::uint32_t slot, EventPriority prio);
    void insert(Node n);
    void heapPush(Node n);
    Node heapPopMin();
    /** Sift `moving` down from the hole at `i`, writing it once. */
    void siftDown(std::size_t i, Node moving);
    /** Pop the globally earliest pending node (next-buffer aware). */
    Node popMin();
    /** Execute one node's occurrence; re-arms bursts. */
    void execute(Node n);

    std::vector<Node> heap_;       ///< 4-ary min-heap
    std::deque<Slot> slots_;       ///< stable callback slab
    std::vector<std::uint32_t> freeSlots_;
    /**
     * Fast-path buffer: when valid, `next_` is strictly earlier (in the
     * full (tick, priority, seq) order) than every node in heap_, so it
     * is always the next event to run and can bypass the heap entirely.
     */
    Node next_{};
    bool hasNext_ = false;
    std::size_t pendingCount_ = 0;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace smartref

/**
 * @file
 * Logging and error-termination helpers, in the spirit of gem5's
 * logging.hh.
 *
 *  - panic():  an internal simulator invariant was violated (a bug in this
 *              library). Aborts.
 *  - fatal():  the user configured something impossible (bad config, bad
 *              arguments). Exits with an error code.
 *  - warn():   something is modelled approximately; simulation continues.
 *  - inform(): neutral status output.
 *
 * All of them accept printf-free, iostream-style formatting via
 * std::format-like concatenation helpers to keep call sites terse.
 */

#pragma once

#include <sstream>
#include <string>

namespace smartref {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global log verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/** Parse "silent", "warn", "info" or "debug"; fatal on anything else. */
LogLevel parseLogLevel(const std::string &name);

/** Lower-case name of a level, inverse of parseLogLevel(). */
const char *toString(LogLevel level);

namespace detail {

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/** Abort due to an internal simulator bug. */
#define SMARTREF_PANIC(...)                                                  \
    ::smartref::detail::panicImpl(__FILE__, __LINE__,                        \
                                  ::smartref::detail::concat(__VA_ARGS__))

/** Exit due to an impossible user configuration. */
#define SMARTREF_FATAL(...)                                                  \
    ::smartref::detail::fatalImpl(__FILE__, __LINE__,                        \
                                  ::smartref::detail::concat(__VA_ARGS__))

/** Warn about approximate or suspicious behaviour. */
#define SMARTREF_WARN(...)                                                   \
    ::smartref::detail::warnImpl(::smartref::detail::concat(__VA_ARGS__))

/** Neutral status output. */
#define SMARTREF_INFORM(...)                                                 \
    ::smartref::detail::informImpl(::smartref::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; panics with a message on failure. */
#define SMARTREF_ASSERT(cond, ...)                                           \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SMARTREF_PANIC("assertion failed: " #cond " ", __VA_ARGS__);     \
        }                                                                    \
    } while (0)

} // namespace smartref

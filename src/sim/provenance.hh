/**
 * @file
 * Run provenance: every JSON artifact the simulator emits (stats dumps,
 * sweep aggregates, heatmaps, BENCH_*.json) carries a `meta` block that
 * identifies the build (git SHA, compiler, flags, build type) and the
 * run configuration (schema version, config hash, seed mode), so a
 * number in a dashboard can always be traced back to the code and
 * configuration that produced it.
 *
 * The block deliberately contains only values that are identical for
 * every `-j N` execution of the same build and configuration — no
 * timestamps, host names, thread counts or wall times — so embedding it
 * preserves the byte-identical deterministic-aggregate contract
 * (docs/sweep.md).
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace smartref {

/** Build-time identity captured by CMake at configure time. */
struct BuildInfo
{
    std::string gitSha;        ///< "unknown" outside a git checkout
    std::string compiler;      ///< e.g. "GNU 13.2.0"
    std::string compilerFlags; ///< CMAKE_CXX_FLAGS as configured
    std::string buildType;     ///< e.g. "Release"
};

/**
 * The identity of this binary. The git SHA is sampled when CMake
 * configures, so it can lag the checkout until the next reconfigure;
 * CI always configures fresh, which is where provenance matters.
 */
const BuildInfo &buildInfo();

/**
 * FNV-1a 64-bit hash over bytes. Uses the exact constants the sweep
 * seed derivation has always used (harness/sweep.cc now delegates
 * here), so the pinned job seeds in tests/test_sweep.cpp are part of
 * this function's contract.
 */
std::uint64_t fnv1a64(std::string_view s);

/** Fixed-width (16 digit) lowercase hex of a 64-bit value. */
std::string hex64(std::uint64_t v);

/**
 * Canonical build-identity string for content-addressed result keys:
 * "git=<sha>;compiler=<id>;flags=<flags>;buildType=<type>". All four
 * BuildInfo fields join deliberately — a cached result may only be
 * served to the exact build that could have produced it, so a new
 * commit or a sanitizer flag flip cold-starts the cache rather than
 * risking a stale hit (harness/result_cache.hh).
 */
const std::string &buildFingerprint();

/** Run-scoped provenance fields; empty/zero members are omitted. */
struct RunMeta
{
    std::string schema;     ///< e.g. "smartref-sweep-v1"
    std::string configHash; ///< hex64(fnv1a64(canonical config string))
    std::string seedMode;   ///< "derived" / "fixed"; empty = not a sweep

    /**
     * Peak resident set of the producing process. Host-dependent, so it
     * may only be set on artifacts that are already outside the
     * byte-identity contract (the timing sidecar, BENCH_*.json) —
     * never on deterministic stats/aggregate dumps.
     */
    std::uint64_t peakRssBytes = 0;

    /**
     * Modeled counter-storage bytes per simulated row
     * (residentCounterBytes / total rows). Deterministic — derived from
     * the configuration and the workload, not the host — so statdiff
     * can flag memory regressions between runs.
     */
    double bytesPerSimulatedRow = 0.0;

    /**
     * Request-scoped trace ID (sweepd requests, ad-hoc runs). Joins an
     * artifact back to the request that produced it across status.json,
     * the access log and telemetry. Request- (not build-) dependent, so
     * like peakRssBytes it may only appear on non-deterministic
     * sidecars — never on aggregates under the byte-identity contract.
     */
    std::string traceId;
};

/**
 * The `meta` object as a compact JSON value (no whitespace, fixed
 * member order): schemaVersion, gitSha, compiler, compilerFlags,
 * buildType, then the non-empty RunMeta fields.
 */
std::string metaJson(const RunMeta &run);

/** Stream form of metaJson(). */
void writeMetaJson(std::ostream &os, const RunMeta &run);

/**
 * Peak resident set size of this process in bytes (getrusage). Host-
 * and allocator-dependent: use it to fill RunMeta::peakRssBytes for
 * non-deterministic artifacts only. Returns 0 where unsupported.
 */
std::uint64_t currentPeakRssBytes();

/**
 * The human-readable provenance build block every tool's `--version`
 * flag prints: the tool name followed by one indented line per
 * BuildInfo field. One shared implementation keeps the four CLIs'
 * output formats identical.
 */
std::string versionText(const std::string &toolName);

} // namespace smartref

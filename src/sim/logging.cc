#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace smartref {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "silent")
        return LogLevel::Silent;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    SMARTREF_FATAL("unknown log level '", name,
                   "' (silent, warn, info, debug)");
}

const char *
toString(LogLevel level)
{
    switch (level) {
      case LogLevel::Silent: return "silent";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    // Throwing (rather than abort()) lets unit tests assert that invariant
    // violations are detected; main() never catches it, so outside tests
    // the effect is still termination.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Info)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        std::cout << "debug: " << msg << std::endl;
}

} // namespace detail
} // namespace smartref

/**
 * @file
 * A tiny recursive-descent JSON parser. Parses the full JSON grammar
 * into a variant-like Value tree; throws std::runtime_error with a
 * byte offset on malformed input.
 *
 * Two consumers: test assertions over the simulator's JSON outputs
 * ("is this valid JSON, and does it contain what we wrote?"), and the
 * sweep runner's grid descriptions (harness/sweep.hh), which is why it
 * lives in src/sim rather than tests/.
 */

#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace minijson {

class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    bool
    has(const std::string &key) const
    {
        return kind == Kind::Object && object.count(key) > 0;
    }

    /** Object member access; throws when absent or not an object. */
    const Value &
    at(const std::string &key) const
    {
        if (kind != Kind::Object)
            throw std::runtime_error("not an object");
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("no member '" + key + "'");
        return it->second;
    }

    /** Array element access; throws when out of range. */
    const Value &
    at(std::size_t idx) const
    {
        if (kind != Kind::Array)
            throw std::runtime_error("not an array");
        if (idx >= array.size())
            throw std::runtime_error("index out of range");
        return array[idx];
    }
};

namespace detail {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            Value key = parseString();
            skipWs();
            expect(':');
            v.object[key.str] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Value
    parseString()
    {
        Value v;
        v.kind = Value::Kind::String;
        expect('"');
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': v.str += '"'; break;
              case '\\': v.str += '\\'; break;
              case '/': v.str += '/'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'n': v.str += '\n'; break;
              case 'r': v.str += '\r'; break;
              case 't': v.str += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = static_cast<unsigned>(std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                // Tests only emit ASCII control escapes; anything wider
                // is preserved as a replacement byte.
                v.str += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    Value
    parseBool()
    {
        Value v;
        v.kind = Value::Kind::Bool;
        if (consumeLiteral("true")) {
            v.boolean = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.boolean = false;
            return v;
        }
        fail("bad literal");
    }

    Value
    parseNull()
    {
        if (!consumeLiteral("null"))
            fail("bad literal");
        return Value{};
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        Value v;
        v.kind = Value::Kind::Number;
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse `text` as one JSON document; throws std::runtime_error. */
inline Value
parse(const std::string &text)
{
    return detail::Parser(text).parse();
}

} // namespace minijson

#include "sim/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <exception>

#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace smartref {

namespace {

/** Identifies the pool (and worker slot) the current thread belongs to. */
thread_local ThreadPool *tlsPool = nullptr;
thread_local unsigned tlsWorker = 0;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

bool
ThreadPool::onWorkerThread() const
{
    return tlsPool == this;
}

void
ThreadPool::submit(std::function<void()> task)
{
    SMARTREF_ASSERT(task != nullptr, "null task submitted");
    enqueue(std::move(task));
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    // Count before publishing: a task can only be popped (and queued_
    // decremented) after the push below, so queued_ never underflows.
    // A worker woken in the window before the push just retries.
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++queued_;
        ++pending_;
        SMARTREF_METRIC_SET("thread_pool.queue_depth", queued_);
    }
    if (tlsPool == this) {
        // Nested submit: LIFO on the submitting worker's own deque.
        Worker &w = *workers_[tlsWorker];
        std::lock_guard<std::mutex> wlk(w.mu);
        w.deque.push_back(std::move(task));
    } else {
        std::lock_guard<std::mutex> lk(mu_);
        external_.push_back(std::move(task));
    }
    workCv_.notify_one();
}

bool
ThreadPool::tryGetTask(unsigned id, std::function<void()> &out)
{
    enum class Source { None, Local, External, Steal };
    Source src = Source::None;
    {
        // Own deque first, newest task (LIFO): nested children run
        // before the worker picks up unrelated work.
        Worker &w = *workers_[id];
        std::lock_guard<std::mutex> wlk(w.mu);
        if (!w.deque.empty()) {
            out = std::move(w.deque.back());
            w.deque.pop_back();
            src = Source::Local;
        }
    }
    if (src == Source::None) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!external_.empty()) {
            out = std::move(external_.front());
            external_.pop_front();
            src = Source::External;
        }
    }
    if (src == Source::None) {
        // Steal the *oldest* task of another worker (FIFO side).
        const std::size_t n = workers_.size();
        for (std::size_t k = 1; k < n && src == Source::None; ++k) {
            Worker &victim = *workers_[(id + k) % n];
            std::lock_guard<std::mutex> vlk(victim.mu);
            if (!victim.deque.empty()) {
                out = std::move(victim.deque.front());
                victim.deque.pop_front();
                src = Source::Steal;
            }
        }
    }
    if (src != Source::None) {
        std::lock_guard<std::mutex> lk(mu_);
        --queued_;
        SMARTREF_METRIC_SET("thread_pool.queue_depth", queued_);
        switch (src) {
          case Source::Local:
            ++stats_.localPops;
            SMARTREF_METRIC_INC("thread_pool.local_pops");
            break;
          case Source::External:
            ++stats_.externalPops;
            SMARTREF_METRIC_INC("thread_pool.external_pops");
            break;
          case Source::Steal:
            ++stats_.steals;
            SMARTREF_METRIC_INC("thread_pool.steals");
            break;
          case Source::None: break;
        }
    }
    return src != Source::None;
}

void
ThreadPool::workerLoop(unsigned id)
{
    tlsPool = this;
    tlsWorker = id;
    for (;;) {
        std::function<void()> task;
        if (tryGetTask(id, task)) {
            if (kMetricsCompiledIn && metricsEnabled()) {
                const auto t0 = std::chrono::steady_clock::now();
                task();
                [[maybe_unused]] const auto busy =
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                SMARTREF_METRIC_INC("thread_pool.tasks_executed");
                SMARTREF_METRIC_ADD("thread_pool.busy_ns", busy);
            } else {
                task();
            }
            std::lock_guard<std::mutex> lk(mu_);
            --pending_;
            if (pending_ == 0)
                idleCv_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lk(mu_);
        // queued_ > 0 with empty deques is a transient (another worker
        // popped but has not decremented yet); the retry loop absorbs it.
        if (!stop_ && queued_ == 0) {
            ++stats_.idleWaits;
            SMARTREF_METRIC_INC("thread_pool.idle_waits");
        }
        workCv_.wait(lk, [this] { return stop_ || queued_ > 0; });
        if (stop_ && queued_ == 0)
            return;
    }
}

ThreadPool::Stats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void
ThreadPool::waitIdle()
{
    SMARTREF_ASSERT(!onWorkerThread(),
                    "waitIdle() called from inside a pool task");
    std::unique_lock<std::mutex> lk(mu_);
    idleCv_.wait(lk, [this] { return pending_ == 0; });
}

void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (pool.onWorkerThread()) {
        // Blocking on sibling tasks from a worker can deadlock a
        // fully-busy pool; the inline loop is always safe.
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::vector<std::exception_ptr> errors(n);
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = n;
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
            try {
                body(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            std::lock_guard<std::mutex> lk(mu);
            if (--remaining == 0)
                cv.notify_all();
        });
    }
    {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return remaining == 0; });
    }
    // Rethrow in index order so failures are independent of scheduling.
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

void
parallelFor(unsigned jobs, std::size_t n,
            const std::function<void(std::size_t)> &body)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, n)));
    parallelFor(pool, n, body);
}

} // namespace smartref

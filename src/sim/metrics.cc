#include "sim/metrics.hh"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

#include "sim/provenance.hh"

namespace smartref {

namespace {

std::atomic<bool> g_metricsEnabled{true};

/** Locale-independent shortest-round-trip double, like sweep.cc. */
std::string
num(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "0";
    return std::string(buf, ptr);
}

/** JSON string escaping for metric names (same policy as provenance). */
std::string
escaped(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                out += ' ';
            else
                out += ch;
        }
    }
    return out;
}

/** "result_cache.miss_absent" -> "smartref_result_cache_miss_absent". */
std::string
promName(const std::string &name)
{
    std::string out = "smartref_";
    for (char ch : name) {
        const bool ok = (ch >= 'a' && ch <= 'z') ||
                        (ch >= 'A' && ch <= 'Z') ||
                        (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
        out += ok ? ch : '_';
    }
    return out;
}

} // namespace

void
MetricHistogram::observe(std::uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
}

std::uint64_t
MetricHistogram::min() const
{
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
}

std::uint64_t
MetricHistogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

std::uint64_t
MetricHistogram::bucketCount(int k) const
{
    if (k < 0 || k >= kBuckets)
        return 0;
    return buckets_[k].load(std::memory_order_relaxed);
}

double
MetricHistogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
    std::uint64_t cum = 0;
    for (int k = 0; k < kBuckets; ++k) {
        cum += bucketCount(k);
        if (cum >= target && cum > 0) {
            // Bucket k covers [2^(k-1), 2^k); estimate with the
            // midpoint, clamped to the observed extremes.
            double estimate = 0.0;
            if (k > 0) {
                const double lo = std::ldexp(1.0, k - 1);
                const double hi = std::ldexp(1.0, k);
                estimate = (lo + hi) / 2.0;
            }
            const double lo = static_cast<double>(min());
            const double hi = static_cast<double>(max());
            if (estimate < lo)
                estimate = lo;
            if (estimate > hi)
                estimate = hi;
            return estimate;
        }
    }
    return static_cast<double>(max());
}

void
MetricHistogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry()
    : start_(std::chrono::steady_clock::now())
{
}

MetricCounter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<MetricCounter>();
    return *slot;
}

MetricGauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<MetricGauge>();
    return *slot;
}

MetricHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<MetricHistogram>();
    return *slot;
}

double
MetricsRegistry::uptimeSeconds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    RunMeta meta;
    meta.schema = "smartref-metrics-v1";
    meta.peakRssBytes = currentPeakRssBytes();

    std::lock_guard<std::mutex> lock(mu_);
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    os << "{\"schema\":\"smartref-metrics-v1\"";
    os << ",\"meta\":" << metaJson(meta);
    os << ",\"uptimeSeconds\":" << num(uptime);
    os << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "" : ",") << "\"" << escaped(name)
           << "\":" << c->value();
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "" : ",") << "\"" << escaped(name)
           << "\":" << num(g->value());
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << "\"" << escaped(name) << "\":{"
           << "\"count\":" << h->count() << ",\"sum\":" << h->sum()
           << ",\"min\":" << h->min() << ",\"max\":" << h->max()
           << ",\"p50\":" << num(h->quantile(0.50))
           << ",\"p95\":" << num(h->quantile(0.95))
           << ",\"p99\":" << num(h->quantile(0.99)) << "}";
        first = false;
    }
    os << "}}";
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " counter\n"
           << p << " " << c->value() << "\n";
    }
    for (const auto &[name, g] : gauges_) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n"
           << p << " " << num(g->value()) << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        std::uint64_t cum = 0;
        for (int k = 0; k < MetricHistogram::kBuckets; ++k) {
            const std::uint64_t b = h->bucketCount(k);
            if (b == 0)
                continue;
            cum += b;
            // Bucket k holds samples < 2^k (bit_width(v) == k).
            os << p << "_bucket{le=\"" << num(std::ldexp(1.0, k)) << "\"} "
               << cum << "\n";
        }
        os << p << "_bucket{le=\"+Inf\"} " << h->count() << "\n"
           << p << "_sum " << h->sum() << "\n"
           << p << "_count " << h->count() << "\n";
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
    start_ = std::chrono::steady_clock::now();
}

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry registry;
    return registry;
}

void
setMetricsEnabled(bool enabled)
{
    g_metricsEnabled.store(enabled, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return g_metricsEnabled.load(std::memory_order_relaxed);
}

} // namespace smartref

#include "sim/phase_profiler.hh"

#include <cstring>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace smartref {

std::uint32_t
PhaseProfiler::findOrAdd(const char *label)
{
    const std::uint32_t parent = stack_.empty() ? kNoParent : stack_.back();
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        // Labels are literals, so pointer equality catches the common
        // case; strcmp handles the same label from different TUs.
        if (n.parent == parent &&
            (n.label == label || std::strcmp(n.label, label) == 0))
            return i;
    }
    nodes_.push_back(Node{label, parent});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void
PhaseProfiler::enter(const char *label)
{
    const std::uint32_t idx = findOrAdd(label);
    ++nodes_[idx].count;
    stack_.push_back(idx);
    starts_.push_back(std::chrono::steady_clock::now());
}

void
PhaseProfiler::leave()
{
    SMARTREF_ASSERT(!stack_.empty(), "PhaseProfiler::leave underflow");
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - starts_.back())
                        .count();
    nodes_[stack_.back()].wallNs += static_cast<std::uint64_t>(ns);
    stack_.pop_back();
    starts_.pop_back();
}

void
PhaseProfiler::emitChildren(std::ostream &os, std::uint32_t parent) const
{
    bool first = true;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        if (n.parent != parent)
            continue;
        os << (first ? "" : ",") << "{\"phase\":\"" << n.label
           << "\",\"count\":" << n.count << ",\"wall_ns\":" << n.wallNs
           << ",\"children\":[";
        emitChildren(os, i);
        os << "]}";
        first = false;
    }
}

void
PhaseProfiler::writeJson(std::ostream &os) const
{
    os << "[";
    emitChildren(os, kNoParent);
    os << "]";
}

std::string
PhaseProfiler::toJson() const
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

} // namespace smartref

/**
 * @file
 * Service-layer metrics: a process-wide registry of named counters,
 * gauges and log2-bucketed histograms with lock-free atomic updates.
 *
 * Where the tracer (sim/tracer.hh) answers "what happened inside one
 * simulated run" and the sweep telemetry answers "how is this sweep
 * progressing", the metrics registry answers the serving-layer
 * question: cumulative cache hit rates, thread-pool utilization and
 * per-request wall distributions across *every* run this process has
 * executed. smartref_sweepd snapshots it into `daemon/health.json`
 * and a Prometheus text exposition; smartref_sweep dumps it via
 * `--metrics-out`.
 *
 * Contract mirrored from `peakRssBytes` and the phase profiler: every
 * metrics output is a non-deterministic sidecar and must never be
 * embedded in deterministic aggregates (sweep JSON/CSV, stats dumps,
 * cache entries). CI pins this by comparing smoke-sweep bytes with
 * metrics on vs off.
 *
 * Update cost: one relaxed atomic RMW per counter add, two per
 * histogram observe (plus CAS loops for min/max on new extremes).
 * Instrumented call sites go through the SMARTREF_METRIC_* macros,
 * which compile out entirely under -DSMARTREF_METRICS=OFF (mirroring
 * the SMARTREF_TRACING switch) and honour a runtime kill switch
 * (setMetricsEnabled) so one binary can measure its own overhead.
 *
 * The registry never deletes an instrument: references returned by
 * counter()/gauge()/histogram() stay valid for the process lifetime,
 * and reset() zeroes values in place, so call sites may cache handles
 * in function-local statics.
 */

#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace smartref {

/** True when the library was built with metrics compiled in. */
#ifndef SMARTREF_METRICS_DISABLED
inline constexpr bool kMetricsCompiledIn = true;
#else
inline constexpr bool kMetricsCompiledIn = false;
#endif

/** Monotonically increasing event count. */
class MetricCounter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (e.g. queue depth). */
class MetricGauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution of non-negative integer samples (durations in us/ns,
 * sizes in bytes) over power-of-two buckets: sample v lands in bucket
 * bit_width(v), so bucket k covers [2^(k-1), 2^k). 65 buckets span
 * the full uint64 range. Percentiles are estimated from the bucket
 * counts (geometric bucket midpoints, clamped to observed min/max),
 * so they are accurate to within one octave — plenty for "where is
 * the wall time going" questions, at the cost of two relaxed RMWs
 * per observe.
 */
class MetricHistogram
{
  public:
    static constexpr int kBuckets = 65;

    void observe(std::uint64_t v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    /** Smallest observed sample; 0 when empty. */
    std::uint64_t min() const;
    /** Largest observed sample; 0 when empty. */
    std::uint64_t max() const;
    /** Count in bucket k (samples with bit_width == k). */
    std::uint64_t bucketCount(int k) const;
    /** Estimated quantile in [0,1]; 0 when empty. */
    double quantile(double q) const;

    void reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/**
 * Named instruments, one namespace per kind. Lookup takes a mutex;
 * updates through the returned reference are lock-free, so hot paths
 * resolve the handle once (function-local static) and only ever pay
 * the atomic RMW.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();

    /** Find-or-create; the reference stays valid forever. */
    MetricCounter &counter(const std::string &name);
    MetricGauge &gauge(const std::string &name);
    MetricHistogram &histogram(const std::string &name);

    /** Seconds since this registry was constructed (steady clock). */
    double uptimeSeconds() const;

    /**
     * Compact JSON snapshot (schema "smartref-metrics-v1"): meta
     * block, uptimeSeconds, then counters/gauges/histograms keyed by
     * name in sorted order. Histograms carry count/sum/min/max and
     * estimated p50/p95/p99.
     */
    void writeJson(std::ostream &os) const;
    std::string snapshotJson() const;

    /**
     * Prometheus text exposition (version 0.0.4): names prefixed
     * "smartref_" with dots mapped to underscores; histograms emit
     * cumulative `_bucket{le="2^k"}` series plus `_sum`/`_count`.
     */
    void writePrometheus(std::ostream &os) const;

    /**
     * Zero every instrument in place (handles stay valid) and restart
     * the uptime clock. Test-only: the serving stack assumes counters
     * are cumulative.
     */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
    std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
    std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
    std::chrono::steady_clock::time_point start_;
};

/** The process-wide registry the SMARTREF_METRIC_* macros update. */
MetricsRegistry &globalMetrics();

/**
 * Runtime kill switch for the instrumented call sites (macros below).
 * Defaults to enabled. Direct MetricsRegistry use is unaffected —
 * this only gates the ambient instrumentation, so a single binary can
 * compare metrics-on vs metrics-off wall time (bench/micro_metrics)
 * and prove golden-byte neutrality (tests/test_metrics).
 */
void setMetricsEnabled(bool enabled);
bool metricsEnabled();

#ifndef SMARTREF_METRICS_DISABLED

/** Add `n` to the process-wide counter `name`. */
#define SMARTREF_METRIC_ADD(name, n)                                         \
    do {                                                                     \
        if (::smartref::metricsEnabled()) {                                  \
            static ::smartref::MetricCounter &smartrefMetricHandle_ =        \
                ::smartref::globalMetrics().counter(name);                   \
            smartrefMetricHandle_.add(                                       \
                static_cast<std::uint64_t>(n));                              \
        }                                                                    \
    } while (0)

/** Bump the process-wide counter `name` by one. */
#define SMARTREF_METRIC_INC(name) SMARTREF_METRIC_ADD(name, 1)

/** Set the process-wide gauge `name`. */
#define SMARTREF_METRIC_SET(name, v)                                         \
    do {                                                                     \
        if (::smartref::metricsEnabled()) {                                  \
            static ::smartref::MetricGauge &smartrefMetricHandle_ =          \
                ::smartref::globalMetrics().gauge(name);                     \
            smartrefMetricHandle_.set(static_cast<double>(v));               \
        }                                                                    \
    } while (0)

/** Record a sample into the process-wide histogram `name`. */
#define SMARTREF_METRIC_OBSERVE(name, v)                                     \
    do {                                                                     \
        if (::smartref::metricsEnabled()) {                                  \
            static ::smartref::MetricHistogram &smartrefMetricHandle_ =      \
                ::smartref::globalMetrics().histogram(name);                 \
            smartrefMetricHandle_.observe(                                   \
                static_cast<std::uint64_t>(v));                             \
        }                                                                    \
    } while (0)

#else // SMARTREF_METRICS_DISABLED

#define SMARTREF_METRIC_ADD(name, n)                                         \
    do {                                                                     \
    } while (0)
#define SMARTREF_METRIC_INC(name)                                            \
    do {                                                                     \
    } while (0)
#define SMARTREF_METRIC_SET(name, v)                                         \
    do {                                                                     \
    } while (0)
#define SMARTREF_METRIC_OBSERVE(name, v)                                     \
    do {                                                                     \
    } while (0)

#endif // SMARTREF_METRICS_DISABLED

} // namespace smartref

#include "sim/event_queue.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/logging.hh"

namespace smartref {

void
EventQueue::insert(Node n)
{
    if (!hasNext_) {
        // Empty heap: the single event needs no heap at all.
        if (heap_.empty() || lessThan(n, heap_.front())) {
            next_ = n;
            hasNext_ = true;
            return;
        }
        heapPush(n);
        return;
    }
    if (lessThan(n, next_)) {
        // New global minimum: demote the old one into the heap.
        heapPush(next_);
        next_ = n;
        return;
    }
    heapPush(n);
}

void
EventQueue::scheduleSlot(Tick when, std::uint32_t slot,
                         EventPriority prio)
{
    SMARTREF_ASSERT(when >= now_, "scheduling into the past: ", when,
                    " < now ", now_);
    ++pendingCount_;
    insert(Node{when, seq_++, static_cast<std::int32_t>(prio), slot});
}

void
EventQueue::burstSlot(Tick first, Tick interval, std::uint64_t count,
                      std::uint32_t slot, EventPriority prio)
{
    SMARTREF_ASSERT(first >= now_, "scheduling into the past: ", first,
                    " < now ", now_);
    SMARTREF_ASSERT(count > 0, "empty burst");
    SMARTREF_ASSERT(count == 1 || interval > 0,
                    "multi-occurrence burst needs a positive interval");
    Slot &s = slots_[slot];
    s.interval = interval;
    s.remaining = count;
    // Reserve the whole train's sequence numbers now so later schedules
    // interleave with every occurrence exactly as if each had been
    // scheduled here individually.
    const std::uint64_t seq = seq_;
    seq_ += count;
    pendingCount_ += count;
    insert(Node{first, seq, static_cast<std::int32_t>(prio), slot});
}

EventQueue::Node
EventQueue::popMin()
{
    if (hasNext_) {
        // Invariant: next_ precedes everything in the heap.
        hasNext_ = false;
        return next_;
    }
    return heapPopMin();
}

void
EventQueue::execute(Node n)
{
    now_ = n.when;
    ++executed_;
    --pendingCount_;
    Slot &s = slots_[n.slot];
    // Invoke in place: the deque slab never relocates a live slot, even
    // if the callback schedules (and grows the slab) reentrantly.
    s.cb();
    if (s.remaining > 1) {
        --s.remaining;
        n.when += s.interval;
        ++n.seq;
        insert(n);
        return;
    }
    s.cb = nullptr;
    s.interval = 0;
    s.remaining = 0;
    freeSlots_.push_back(n.slot);
}

void
EventQueue::run()
{
    while (pendingCount_ != 0)
        execute(popMin());
}

void
EventQueue::runUntil(Tick limit)
{
    while (pendingCount_ != 0) {
        const Node &min = hasNext_ ? next_ : heap_.front();
        if (min.when > limit)
            break;
        execute(popMin());
    }
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::heapPush(Node n)
{
    // Hole-based sift up through the 4-ary tree (parent of i is
    // (i - 1) / 4): shift displaced parents down and write the new node
    // once, instead of swapping 24 bytes at every level.
    std::size_t i = heap_.size();
    heap_.push_back(n);
    while (i != 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!lessThan(n, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = n;
}

EventQueue::Node
EventQueue::heapPopMin()
{
    const Node top = heap_.front();
    const Node last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0, last);
    return top;
}

void
EventQueue::siftDown(std::size_t i, Node moving)
{
    // Hole-based sift down: promote winning children into the hole and
    // place `moving` once at its final position. All four children are
    // 96 contiguous bytes, so the min-of-children scan stays within at
    // most two cache lines.
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t firstChild = 4 * i + 1;
        if (firstChild >= n)
            break;
        const std::size_t lastChild = std::min(firstChild + 4, n);
        std::size_t best = firstChild;
        for (std::size_t c = firstChild + 1; c < lastChild; ++c)
            if (lessThan(heap_[c], heap_[best]))
                best = c;
        if (!lessThan(heap_[best], moving))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = moving;
}

} // namespace smartref

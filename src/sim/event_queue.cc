#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace smartref {

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    SMARTREF_ASSERT(when >= now_, "scheduling into the past: ", when,
                    " < now ", now_);
    heap_.push(Entry{when, static_cast<int>(prio), seq_++, std::move(cb)});
}

void
EventQueue::run()
{
    while (!heap_.empty()) {
        // priority_queue::top returns const&; move out via const_cast is
        // the standard idiom but fragile — copy the small metadata and
        // move only the callback.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    if (now_ < limit)
        now_ = limit;
}

} // namespace smartref

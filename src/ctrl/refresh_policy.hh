/**
 * @file
 * The refresh-policy interface.
 *
 * A policy decides *when* each row is refreshed; the memory controller
 * arbitrates refreshes against demand traffic and issues the device
 * commands. The controller notifies the policy of row activity so that
 * access-aware policies (Smart Refresh) can track which rows were
 * implicitly restored.
 */

#pragma once

#include <cstdint>
#include <string>

#include "ctrl/mem_request.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace smartref {

class MemoryController;
class RefreshAudit;

/** Abstract base for refresh policies. */
class RefreshPolicy : public StatGroup
{
  public:
    RefreshPolicy(std::string name, StatGroup *parent)
        : StatGroup(std::move(name), parent)
    {
    }

    ~RefreshPolicy() override = default;

    /** Attach to the controller that will dispatch our requests. */
    void bind(MemoryController *ctrl) { ctrl_ = ctrl; }

    /** Schedule initial events; called once before simulation starts. */
    virtual void start() = 0;

    /** @name Row-activity notifications from the controller. */
    ///@{
    /** A row was opened by a demand access (charge read into amps). */
    virtual void
    onRowActivated(std::uint32_t rank, std::uint32_t bank,
                   std::uint32_t row)
    {
        (void)rank; (void)bank; (void)row;
    }

    /**
     * A row was closed (precharged), restoring its charge. Also called
     * for pages implicitly closed by a refresh operation.
     */
    virtual void
    onRowClosed(std::uint32_t rank, std::uint32_t bank, std::uint32_t row)
    {
        (void)rank; (void)bank; (void)row;
    }

    /** A refresh request from this policy was issued to the device. */
    virtual void onRefreshIssued(const RefreshRequest &req) { (void)req; }
    ///@}

    /** @name DARP cancellation hooks. */
    ///@{
    /**
     * Asked by the controller while a DARP-held refresh waits: is this
     * refresh still needed? Access-aware policies may answer no when
     * the target row is currently open (its charge will be restored by
     * the eventual precharge), letting skips and reorders compose.
     * CBR-flagged requests are never offered for cancellation.
     */
    virtual bool
    refreshStillNeeded(const RefreshRequest &req,
                       bool rowCurrentlyOpen) const
    {
        (void)req; (void)rowCurrentlyOpen;
        return true;
    }

    /**
     * A held refresh this policy requested was cancelled instead of
     * issued (only after refreshStillNeeded returned false). Policies
     * with pending-queue bookkeeping retire the entry here.
     */
    virtual void onRefreshCancelled(const RefreshRequest &req) { (void)req; }
    ///@}

    /**
     * Attach a refresh decision audit trail (pure observation; not
     * owned, may be null). Policies without skip/defer decisions keep
     * the default no-op: their issued refreshes are audited by the
     * controller.
     */
    virtual void setAudit(RefreshAudit *audit) { (void)audit; }

    /**
     * Controller-overhead energy attributable to this policy (bus
     * addresses for RAS-only refreshes, counter SRAM for Smart Refresh).
     */
    virtual double overheadEnergy() const { return 0.0; }

    /** Short policy label for reports. */
    virtual std::string policyName() const = 0;

  protected:
    MemoryController *ctrl_ = nullptr;
};

} // namespace smartref

#include "ctrl/retention_aware_refresh.hh"

#include "ctrl/refresh_audit.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

RetentionAwarePolicy::RetentionAwarePolicy(
    EventQueue &eq, std::shared_ptr<const RetentionClassMap> classes,
    const BusEnergyParams &busParams, StatGroup *parent)
    : RefreshPolicy("refresh.retentionAware", parent),
      eq_(eq),
      classes_(std::move(classes)),
      bus_(busParams, this),
      requested_(this, "requested", "refreshes requested"),
      skipped_(this, "visitsSkipped",
               "walk visits skipped because the class deadline was far")
{
    SMARTREF_ASSERT(classes_ != nullptr, "needs a retention class map");
}

void
RetentionAwarePolicy::start()
{
    SMARTREF_ASSERT(ctrl_ != nullptr, "policy not bound to a controller");
    const DramConfig &cfg = ctrl_->dram().config();
    SMARTREF_ASSERT(classes_->totalRows() == cfg.org.totalRows(),
                    "class map sized for ", classes_->totalRows(),
                    " rows, module has ", cfg.org.totalRows());
    spacing_ = cfg.refreshSpacing();
    retention_ = cfg.timing.retention;
    due_.assign(cfg.org.totalRows(), 0); // first pass refreshes all
    eq_.scheduleAfter(spacing_, [this] { step(); },
                      EventPriority::ClockTick);
}

void
RetentionAwarePolicy::step()
{
    const auto &org = ctrl_->dram().config().org;
    const std::uint64_t idx = walkIndex_++;

    const auto rank = static_cast<std::uint32_t>(idx % org.ranks);
    const auto bank =
        static_cast<std::uint32_t>((idx / org.ranks) % org.banks);
    const auto row = static_cast<std::uint32_t>(
        (idx / (std::uint64_t(org.ranks) * org.banks)) % org.rows);
    const std::uint64_t flat =
        (std::uint64_t(rank) * org.banks + bank) * org.rows + row;

    if (eq_.now() >= due_[flat]) {
        // Refresh now; the next one is due so that the (exactly once
        // per nominal interval) walk lands on the m-th visit, putting
        // the refresh age exactly at the class deadline m x nominal.
        const std::uint32_t mult = classes_->multiplier(flat);
        due_[flat] = eq_.now() + Tick(mult) * retention_ - retention_ / 2;
        RefreshRequest req;
        req.rank = rank;
        req.bank = bank;
        req.row = row;
        req.cbr = false;
        req.created = eq_.now();
        ++requested_;
        SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(),
                       "retentionAwareRequested", rank, bank, row, mult);
        ctrl_->pushRefresh(req);
    } else {
        ++skipped_;
        SMARTREF_AUDIT_RECORD(audit_, eq_.now(), rank, bank, row,
                              AuditOutcome::SkippedRecentAccess,
                              AuditSource::RetentionAware);
        SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(),
                       "retentionAwareSkipped", rank, bank, row);
    }

    eq_.scheduleAfter(spacing_, [this] { step(); },
                      EventPriority::ClockTick);
}

void
RetentionAwarePolicy::onRefreshIssued(const RefreshRequest &req)
{
    if (!req.cbr)
        bus_.recordAccesses(1);
}

} // namespace smartref

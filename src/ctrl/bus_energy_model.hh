/**
 * @file
 * Address-bus energy model (paper Section 6, Table 3).
 *
 * RAS-only refreshes must post the row address on the address bus, which
 * CBR refreshes avoid; that is the energy overhead Smart Refresh pays per
 * refresh it does issue. The model follows the paper's formula:
 *
 *   E = C * VDD^2 * busWidth * numAccesses,   C = 1.3 * Cload
 *   Cload = Lonchip*Conchip + Loffchip*Coffchip + sum_m Cin(m)
 *
 * with the constants of Table 3 (Intel 855PM geometry, ITRS wire caps,
 * Micron module input capacitance) as defaults.
 */

#pragma once

#include <cstdint>

#include "sim/stats.hh"

namespace smartref {

/** Parameters of the controller-to-DRAM address bus (Table 3). */
struct BusEnergyParams
{
    double onChipLengthMm = 36.0;     ///< semi-perimeter of the MCH die x2
    double offChipLengthMm = 102.0;   ///< board trace length
    double onChipCapPfPerMm = 0.21;   ///< ITRS 2006 interconnect update
    double offChipCapPfPerMm = 0.1;
    double moduleInputCapPf = 3.0;    ///< per-rank input capacitance
    std::uint32_t numModules = 2;     ///< ranks hanging off the bus
    double vdd = 1.8;
    std::uint32_t busWidthBits = 15;  ///< row + bank address lines
};

/** Accumulates address-bus energy for posted refresh addresses. */
class BusEnergyModel : public StatGroup
{
  public:
    BusEnergyModel(const BusEnergyParams &params, StatGroup *parent);

    /** Energy of posting one address on the bus (joules). */
    double energyPerAccess() const { return energyPerAccess_; }

    /** Total load capacitance seen by one wire (farads). */
    double wireCapacitance() const { return wireCap_; }

    /** Record `n` posted addresses. */
    void recordAccesses(std::uint64_t n = 1);

    /** Accumulated bus energy (joules). */
    double totalEnergy() const { return energy_.value(); }

    std::uint64_t
    accesses() const
    {
        return static_cast<std::uint64_t>(accesses_.value());
    }

  private:
    double wireCap_;
    double energyPerAccess_;
    Scalar energy_;
    Scalar accesses_;
};

} // namespace smartref

#include "ctrl/per_bank_refresh.hh"

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

PerBankRefreshPolicy::PerBankRefreshPolicy(
    EventQueue &eq, const BusEnergyParams &busParams, StatGroup *parent)
    : RefreshPolicy("refresh.perbank", parent),
      eq_(eq),
      bus_(busParams, this),
      requested_(this, "requested", "per-bank refreshes requested"),
      deadlineLagTicks_(this, "deadlineLagTicks",
                        "summed issue lag behind per-bank deadlines")
{
}

void
PerBankRefreshPolicy::start()
{
    SMARTREF_ASSERT(ctrl_ != nullptr, "policy not bound to a controller");
    const auto &cfg = ctrl_->dram().config();
    // Each bank refreshes its own rows over one retention interval.
    spacing_ = cfg.timing.retention / cfg.org.rows;

    const std::size_t nWalkers =
        std::size_t(cfg.org.ranks) * cfg.org.banks;
    walkers_.resize(nWalkers);
    // Stagger bank start offsets so the per-rank refresh slots
    // interleave instead of all banks refreshing in the same tick.
    const Tick offsetStep = spacing_ / nWalkers;
    for (std::uint32_t r = 0; r < cfg.org.ranks; ++r) {
        for (std::uint32_t b = 0; b < cfg.org.banks; ++b) {
            const std::size_t idx = std::size_t(r) * cfg.org.banks + b;
            BankWalker &w = walkers_[idx];
            w.rank = r;
            w.bank = b;
            w.nextRow = 0;
            w.nextDue = spacing_ + Tick(idx) * offsetStep;
            eq_.schedule(w.nextDue, [this, idx] { step(idx); },
                         EventPriority::ClockTick);
        }
    }
}

void
PerBankRefreshPolicy::step(std::size_t walkerIdx)
{
    BankWalker &w = walkers_[walkerIdx];
    const auto &org = ctrl_->dram().config().org;

    RefreshRequest req;
    req.rank = w.rank;
    req.bank = w.bank;
    req.row = w.nextRow;
    req.cbr = false;
    req.created = eq_.now();
    w.nextRow = (w.nextRow + 1) % org.rows;
    ++requested_;
    SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(), "perBankRequested",
                   req.rank, req.bank, req.row);
    ctrl_->pushRefresh(req);

    w.nextDue += spacing_;
    eq_.schedule(w.nextDue, [this, walkerIdx] { step(walkerIdx); },
                 EventPriority::ClockTick);
}

void
PerBankRefreshPolicy::onRefreshIssued(const RefreshRequest &req)
{
    if (req.cbr)
        return;
    bus_.recordAccesses(1);
    // `created` is the request's nominal deadline slot (step() fires on
    // schedule even when issue slips), so issue lag is directly the
    // per-bank deadline slip.
    const Tick lag = eq_.now() - req.created;
    deadlineLagTicks_ += static_cast<double>(lag);
    if (lag > maxDeadlineLag_)
        maxDeadlineLag_ = lag;
}

} // namespace smartref

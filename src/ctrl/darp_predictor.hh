/**
 * @file
 * DARP's per-bank demand predictor: a small integer EWMA over demand
 * inter-arrival gaps that answers "will this bank stay idle long
 * enough to hide a refresh?".
 *
 * The DARP scheduler (Chang et al., HPCA 2014) only pulls a refresh
 * into a bank when it expects the bank to stay free of demand for at
 * least the refresh latency. This predictor is deliberately tiny — one
 * averaged gap and the last arrival tick per bank — because the
 * hardware budget in the paper is a handful of counters per bank.
 */

#pragma once

#include <cstdint>

#include "sim/types.hh"

namespace smartref {

/** Idle-gap predictor for one bank. */
class DarpIdlePredictor
{
  public:
    /** A demand access arrived at `now`. */
    void
    recordDemand(Tick now)
    {
        if (seen_) {
            const std::int64_t gap =
                static_cast<std::int64_t>(now) -
                static_cast<std::int64_t>(lastArrival_);
            // Integer EWMA with alpha = 1/4: avg += (gap - avg) / 4.
            avgGap_ += (gap - avgGap_) / 4;
            if (avgGap_ < 0)
                avgGap_ = 0;
        }
        lastArrival_ = now;
        seen_ = true;
    }

    /** Predicted tick of the next demand arrival to this bank. */
    Tick
    predictedNextArrival() const
    {
        return lastArrival_ + static_cast<Tick>(avgGap_);
    }

    /**
     * Would the bank be expected to stay demand-free for `duration`
     * starting at `now`? Banks that have never seen demand are idle.
     */
    bool
    expectIdleFor(Tick now, Tick duration) const
    {
        if (!seen_)
            return true;
        return predictedNextArrival() >= now + duration;
    }

    bool hasSeenDemand() const { return seen_; }
    std::int64_t averageGap() const { return avgGap_; }
    Tick lastArrival() const { return lastArrival_; }

  private:
    bool seen_ = false;
    Tick lastArrival_ = 0;
    std::int64_t avgGap_ = 0;
};

} // namespace smartref

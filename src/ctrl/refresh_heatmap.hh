/**
 * @file
 * Spatial refresh heatmaps.
 *
 * The paper's headline numbers (59.3 % fewer refreshes on average,
 * 12.13 % of total DRAM energy saved) are distributions over rows and
 * banks, not scalars: Smart Refresh wins where demand traffic keeps
 * row counters topped up and loses where coverage is thin. A
 * RefreshHeatmap captures exactly that spatial story for one run:
 *
 *  - per (rank, bank): refresh issues, demand accesses, and a log2
 *    histogram of inter-access distance (ticks between successive
 *    demand accesses to the same bank);
 *  - per counter segment: the distribution of counter values observed
 *    at decrement time, split into skips (counter still > 0, so the
 *    scheduled refresh is elided) and expiries (counter hit 0 and a
 *    refresh must be issued).
 *
 * Recording is a null-pointer check plus a few increments on the hot
 * path; a controller or counter array with no heatmap attached pays
 * one branch. All accumulators are integers, so merging job heatmaps
 * in the sweep reducer is associative and the merged export is
 * byte-identical for any -j N (docs/heatmaps.md).
 *
 * The `lastAccess` timestamps used to derive inter-access distances
 * are transient per-run state: they are neither exported nor merged.
 */

#pragma once

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace smartref {

class RefreshHeatmap
{
  public:
    /** Inter-access-distance log2 buckets: bucket b holds deltas with
     *  bit_width b, i.e. [2^(b-1), 2^b); bucket 0 is delta == 0. The
     *  last bucket also absorbs anything wider. */
    static constexpr std::uint32_t kDistanceBuckets = 48;

    /**
     * @param ranks      DRAM ranks covered by the controller
     * @param banks      banks per rank
     * @param segments   counter-walk segments (stagger scheduler lanes)
     * @param counterMax largest raw counter value a touch can observe
     */
    RefreshHeatmap(std::uint32_t ranks, std::uint32_t banks,
                   std::uint32_t segments, std::uint32_t counterMax);

    std::uint32_t ranks() const { return ranks_; }
    std::uint32_t banks() const { return banks_; }
    std::uint32_t segments() const { return segments_; }
    std::uint32_t counterMax() const { return counterMax_; }

    /** A refresh (auto or generated) was issued to (rank, bank). */
    void recordRefresh(std::uint32_t rank, std::uint32_t bank)
    {
        ++refreshes_[cell(rank, bank)];
    }

    /** A demand access to (rank, bank) entered the controller at `now`. */
    void recordDemand(std::uint32_t rank, std::uint32_t bank, Tick now)
    {
        const std::size_t c = cell(rank, bank);
        ++demands_[c];
        if (lastAccess_[c] != kNoAccess) {
            const Tick delta = now - lastAccess_[c];
            ++distance_[c * kDistanceBuckets + distanceBucket(delta)];
        }
        lastAccess_[c] = now;
    }

    /**
     * The staggered walk is about to decrement one counter in
     * `segment` whose pre-decrement raw value is `value`. value == 0
     * means the row's retention budget expired and a refresh is
     * generated; value > 0 means the scheduled refresh is skipped.
     */
    void recordCounterTouch(std::uint32_t segment, std::uint32_t value)
    {
        SMARTREF_ASSERT(value <= counterMax_,
                        "counter value ", value, " above heatmap max ",
                        counterMax_);
        ++counterValues_[segment * (counterMax_ + 1) + value];
        if (value == 0)
            ++expiries_[segment];
        else
            ++skips_[segment];
    }

    std::uint64_t refreshes(std::uint32_t rank, std::uint32_t bank) const
    {
        return refreshes_[cell(rank, bank)];
    }
    std::uint64_t demands(std::uint32_t rank, std::uint32_t bank) const
    {
        return demands_[cell(rank, bank)];
    }
    std::uint64_t distanceCount(std::uint32_t rank, std::uint32_t bank,
                                std::uint32_t bucket) const
    {
        return distance_[cell(rank, bank) * kDistanceBuckets + bucket];
    }
    std::uint64_t counterValueCount(std::uint32_t segment,
                                    std::uint32_t value) const
    {
        return counterValues_[segment * (counterMax_ + 1) + value];
    }
    std::uint64_t segmentExpiries(std::uint32_t segment) const
    {
        return expiries_[segment];
    }
    std::uint64_t segmentSkips(std::uint32_t segment) const
    {
        return skips_[segment];
    }

    std::uint64_t totalRefreshes() const;
    std::uint64_t totalDemands() const;
    std::uint64_t totalExpiries() const;
    std::uint64_t totalSkips() const;

    bool sameShape(const RefreshHeatmap &other) const;

    /** Cell-wise sum of `other` into this; fatal on shape mismatch. */
    void merge(const RefreshHeatmap &other);

    /**
     * One deterministic JSON object ("smartref-heatmap-v1"): shape,
     * per-cell counters with inter-access buckets, per-segment counter
     * value distributions, totals. Integer-only, so the bytes are
     * independent of how many jobs' heatmaps were merged in and in
     * which thread they were produced.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Long-form CSV (kind,rank,bank,segment,bucket,value rows).
     * `header = false` emits only the rows, for callers that prepend
     * their own columns (the sweep reducer).
     */
    void writeCsv(std::ostream &os, bool header = true) const;

  private:
    static std::uint32_t distanceBucket(Tick delta)
    {
        const auto width = static_cast<std::uint32_t>(
            std::bit_width(static_cast<std::uint64_t>(delta)));
        return width < kDistanceBuckets ? width : kDistanceBuckets - 1;
    }

    std::size_t cell(std::uint32_t rank, std::uint32_t bank) const
    {
        SMARTREF_ASSERT(rank < ranks_ && bank < banks_,
                        "heatmap cell (", rank, ",", bank, ") out of range");
        return static_cast<std::size_t>(rank) * banks_ + bank;
    }

    static constexpr Tick kNoAccess = ~Tick{0};

    std::uint32_t ranks_;
    std::uint32_t banks_;
    std::uint32_t segments_;
    std::uint32_t counterMax_;

    std::vector<std::uint64_t> refreshes_;     ///< [rank*banks+bank]
    std::vector<std::uint64_t> demands_;       ///< [rank*banks+bank]
    std::vector<std::uint64_t> distance_;      ///< [cell][kDistanceBuckets]
    std::vector<std::uint64_t> counterValues_; ///< [segment][counterMax+1]
    std::vector<std::uint64_t> expiries_;      ///< [segment]
    std::vector<std::uint64_t> skips_;         ///< [segment]
    std::vector<Tick> lastAccess_;             ///< transient, not merged
};

} // namespace smartref

#include "ctrl/burst_refresh.hh"

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

BurstRefreshPolicy::BurstRefreshPolicy(EventQueue &eq, StatGroup *parent)
    : RefreshPolicy("refresh.burst", parent),
      eq_(eq),
      requested_(this, "requested", "burst refreshes requested")
{
}

void
BurstRefreshPolicy::start()
{
    SMARTREF_ASSERT(ctrl_ != nullptr, "policy not bound to a controller");
    const Tick retention = ctrl_->dram().config().timing.retention;
    eq_.scheduleAfter(retention, [this] { burst(); },
                      EventPriority::ClockTick);
}

void
BurstRefreshPolicy::burst()
{
    const auto &org = ctrl_->dram().config().org;
    // One summary event per rank burst: per-request events would emit
    // banks*rows lines for a single instant.
    SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(), "burstRequested",
                   -1, -1, -1,
                   static_cast<double>(org.ranks) * org.banks * org.rows);
    for (std::uint32_t r = 0; r < org.ranks; ++r) {
        for (std::uint32_t n = 0; n < org.banks * org.rows; ++n) {
            RefreshRequest req;
            req.rank = r;
            req.cbr = true;
            req.created = eq_.now();
            ++requested_;
            ctrl_->pushRefresh(req);
        }
    }
    eq_.scheduleAfter(ctrl_->dram().config().timing.retention,
                      [this] { burst(); }, EventPriority::ClockTick);
}

} // namespace smartref

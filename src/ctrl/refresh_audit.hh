/**
 * @file
 * Refresh decision audit trail: every refresh opportunity, in every
 * policy, records a compact POD outcome with row coordinates and
 * simulated time.
 *
 * Outcomes (one per opportunity):
 *  - `Issued`             — an addressed (RAS-only) refresh reached the
 *                           DRAM; recorded at completion with resolved
 *                           coordinates.
 *  - `ForcedDeadline`     — a CBR refresh the policy could not avoid
 *                           (plain CBR/burst cadence, or Smart Refresh
 *                           falling back to CBR mode).
 *  - `SkippedCounterReset`— Smart Refresh's walk found the row counter
 *                           non-zero: an intervening access or refresh
 *                           reset it, so the visit issues nothing.
 *  - `SkippedRecentAccess`— the retention-aware policy visited a row
 *                           whose last restore is recent enough (its
 *                           class deadline has not expired).
 *  - `Deferred`           — Smart Refresh found an expired counter but
 *                           delayed the refresh to its stagger slot.
 *  - `DarpDeferred`       — DARP held a refresh back because its bank
 *                           had demand in flight (or predicted
 *                           imminent).
 *  - `DarpIdleIssued`     — DARP dispatched a held refresh into a
 *                           demand-idle bank.
 *  - `DarpPiggybacked`    — DARP dispatched a held refresh right after
 *                           a write drain in the same bank.
 *  - `DarpForced`         — a held refresh hit its defer window and was
 *                           force-dispatched ahead of demand.
 *  - `DarpCancelled`      — the policy answered that a held refresh is
 *                           no longer needed (row currently open), so
 *                           it was dropped instead of issued.
 *  - `SarpParallel`       — a subarray refresh completed while its bank
 *                           kept serving demand in other subarrays.
 *
 * Records are buffered allocation-free in fixed slabs (pointer-bump
 * appends; a new slab every 64 Ki records) and drained to a binary
 * sink (32-byte "SRAUDIT" header + raw 24-byte records, native
 * endianness) and/or an NDJSON sink. Per-outcome summary counters are
 * always maintained, so the histogram is O(1) to read.
 *
 * Multi-channel runs (DramConfig::channels > 1) give each channel its
 * own trail stamped with setChannel(); the sharded runner merges them
 * by (tick, channel) into one trail whose header carries the channel
 * count (format version 2).
 *
 * Like tracing, the record sites compile out: configure with
 * `-DSMARTREF_AUDIT=OFF` and `SMARTREF_AUDIT_RECORD` expands to
 * nothing. With auditing compiled in but no sink attached (the
 * default), each site costs one null-pointer branch.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace smartref {

/** What happened to one refresh opportunity. */
enum class AuditOutcome : std::uint8_t {
    Issued = 0,
    SkippedRecentAccess = 1,
    SkippedCounterReset = 2,
    ForcedDeadline = 3,
    Deferred = 4,
    DarpDeferred = 5,
    DarpIdleIssued = 6,
    DarpPiggybacked = 7,
    DarpForced = 8,
    DarpCancelled = 9,
    SarpParallel = 10,
};
constexpr std::size_t kAuditOutcomeCount = 11;

/** Which component recorded the outcome. */
enum class AuditSource : std::uint8_t {
    Controller = 0,     ///< refresh completion in the memory controller
    SmartWalk = 1,      ///< Smart Refresh counter walk
    SmartSchedule = 2,  ///< Smart Refresh stagger-slot scheduling
    RetentionAware = 3, ///< retention-aware row visit
    Darp = 4,           ///< DARP hold/dispatch decisions
};
constexpr std::size_t kAuditSourceCount = 5;

const char *toString(AuditOutcome outcome);
const char *toString(AuditSource source);

/** Parse a kebab-case outcome name ("skipped-counter-reset"). */
bool parseAuditOutcome(const std::string &name, AuditOutcome &out);

/** All outcome names, for CLI validation / did-you-mean. */
std::vector<std::string> auditOutcomeNames();

/** One refresh opportunity. 24 bytes, trivially copyable. The
 *  explicit padding keeps the on-disk bytes fully determined. */
struct AuditRecord
{
    Tick tick;          ///< simulated time (ps)
    std::uint32_t row;
    std::uint8_t rank;
    std::uint8_t bank;
    std::uint8_t outcome;   ///< AuditOutcome
    std::uint8_t source;    ///< AuditSource
    std::uint8_t channel;   ///< memory channel (0 in single-channel runs)
    std::uint8_t reserved[7]; ///< zero
};
static_assert(sizeof(AuditRecord) == 24, "audit record must stay compact");
static_assert(std::is_trivially_copyable_v<AuditRecord>);

/** Binary sink header; followed by raw AuditRecords. */
struct AuditFileHeader
{
    char magic[8];              ///< "SRAUDIT\0"
    std::uint32_t version;      ///< 2
    std::uint32_t recordBytes;  ///< sizeof(AuditRecord)
    std::uint32_t ranks;        ///< per channel
    std::uint32_t banks;
    std::uint32_t rows;
    std::uint32_t channels;     ///< 1 for single-channel trails
};
static_assert(sizeof(AuditFileHeader) == 32);

constexpr char kAuditMagic[8] = {'S', 'R', 'A', 'U', 'D', 'I', 'T', '\0'};
constexpr std::uint32_t kAuditVersion = 2;

/** Slab-buffered audit trail for one module's refresh domain. */
class RefreshAudit
{
  public:
    struct Shape
    {
        std::uint32_t ranks = 0;
        std::uint32_t banks = 0;
        std::uint32_t rows = 0;
    };

    static constexpr std::size_t kSlabRecords = std::size_t(1) << 16;

    explicit RefreshAudit(Shape shape);

    /** Append one record; allocation-free except at slab boundaries. */
    void
    record(Tick tick, std::uint32_t rank, std::uint32_t bank,
           std::uint32_t row, AuditOutcome outcome, AuditSource source)
    {
        ++counts_[static_cast<std::size_t>(outcome)];
        if (freeInSlab_ == 0)
            addSlab();
        Slab &s = *slabs_.back();
        s.records[s.used++] = AuditRecord{
            tick, row, static_cast<std::uint8_t>(rank),
            static_cast<std::uint8_t>(bank),
            static_cast<std::uint8_t>(outcome),
            static_cast<std::uint8_t>(source), channel_, {}};
        --freeInSlab_;
    }

    /** Append an already-built record (sharded-run merging). */
    void
    append(const AuditRecord &r)
    {
        ++counts_[static_cast<std::size_t>(r.outcome)];
        if (freeInSlab_ == 0)
            addSlab();
        Slab &s = *slabs_.back();
        s.records[s.used++] = r;
        --freeInSlab_;
    }

    /**
     * Channel id stamped into every subsequent record (per-channel
     * trails in a sharded run; 0 for single-channel runs).
     */
    void
    setChannel(std::uint32_t channel)
    {
        SMARTREF_ASSERT(channel <= 255,
                        "audit records store the channel in one byte");
        channel_ = static_cast<std::uint8_t>(channel);
    }

    /** Channel count written to the binary header (merged trails). */
    void setChannels(std::uint32_t channels) { channels_ = channels; }
    std::uint32_t channels() const { return channels_; }

    Shape shape() const { return shape_; }
    std::uint64_t total() const;

    std::uint64_t
    count(AuditOutcome outcome) const
    {
        return counts_[static_cast<std::size_t>(outcome)];
    }

    /** Visit every record in append order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &slab : slabs_) {
            for (std::size_t i = 0; i < slab->used; ++i)
                fn(slab->records[i]);
        }
    }

    /** All records in one vector (tests, small runs). */
    std::vector<AuditRecord> collect() const;

    /** Drain to the binary format described above. */
    void writeBinary(const std::string &path) const;

    /** Drain to NDJSON, one record object per line. */
    void writeNdjson(const std::string &path) const;

  private:
    struct Slab
    {
        std::array<AuditRecord, kSlabRecords> records;
        std::size_t used = 0;
    };

    void addSlab();

    Shape shape_;
    std::vector<std::unique_ptr<Slab>> slabs_;
    std::size_t freeInSlab_ = 0;
    std::array<std::uint64_t, kAuditOutcomeCount> counts_{};
    std::uint8_t channel_ = 0;
    std::uint32_t channels_ = 1;
};

/**
 * Record an audit outcome through a possibly-null RefreshAudit*.
 * Compiles to nothing under -DSMARTREF_AUDIT=OFF.
 */
#ifndef SMARTREF_AUDIT_DISABLED
#define SMARTREF_AUDIT_RECORD(audit, ...)                                  \
    do {                                                                   \
        if (audit)                                                         \
            (audit)->record(__VA_ARGS__);                                  \
    } while (0)
#else
#define SMARTREF_AUDIT_RECORD(audit, ...)                                  \
    do {                                                                   \
    } while (0)
#endif

} // namespace smartref

/**
 * @file
 * The baseline distributed CBR refresh policy (paper Section 3).
 *
 * One refresh command is issued every retention/totalRows, walking ranks
 * round-robin; the device's internal counter picks the (bank, row), so no
 * address is posted on the bus. Every row is refreshed exactly once per
 * retention interval regardless of demand activity — this is the
 * lower-power baseline the paper compares Smart Refresh against.
 */

#pragma once

#include "ctrl/memory_controller.hh"
#include "ctrl/refresh_policy.hh"
#include "sim/event_queue.hh"

namespace smartref {

/** Distributed CAS-before-RAS refresh. */
class CbrRefreshPolicy : public RefreshPolicy
{
  public:
    CbrRefreshPolicy(EventQueue &eq, StatGroup *parent);

    void start() override;
    std::string policyName() const override { return "cbr"; }

    std::uint64_t
    refreshesRequested() const
    {
        return static_cast<std::uint64_t>(requested_.value());
    }

  private:
    void step();

    EventQueue &eq_;
    Tick spacing_ = 0;
    std::uint32_t nextRank_ = 0;
    Scalar requested_;
};

} // namespace smartref

/**
 * @file
 * Retention-aware (RAPID-style) distributed refresh — the related-work
 * baseline of the paper's reference [32].
 *
 * Rows are profiled into retention classes (see RetentionClassMap); the
 * policy walks all rows at the nominal distributed cadence but only
 * issues a refresh when a row's class deadline actually requires one: a
 * class-m row is refreshed on every m-th visit, so its refresh age is
 * m x nominal — exactly its deadline. This skips refreshes based on
 * *cell strength* where Smart Refresh skips based on *access recency*;
 * the two compose (see SmartRefreshConfig::retentionClasses).
 *
 * Refreshes are addressed (RAS-only), so the Table 3 bus energy applies
 * per issued refresh, just as for Smart Refresh.
 */

#pragma once

#include <memory>

#include "dram/retention_classes.hh"
#include "ctrl/bus_energy_model.hh"
#include "ctrl/memory_controller.hh"
#include "ctrl/refresh_policy.hh"
#include "sim/event_queue.hh"

namespace smartref {

/** RAPID-style multi-rate distributed refresh. */
class RetentionAwarePolicy : public RefreshPolicy
{
  public:
    RetentionAwarePolicy(EventQueue &eq,
                         std::shared_ptr<const RetentionClassMap> classes,
                         const BusEnergyParams &busParams,
                         StatGroup *parent);

    void start() override;
    void onRefreshIssued(const RefreshRequest &req) override;

    /**
     * Attach a refresh decision audit trail (not owned, may be null):
     * walk visits skipped because the row's last restore is still fresh
     * against its class deadline record SkippedRecentAccess.
     */
    void setAudit(RefreshAudit *audit) override { audit_ = audit; }

    double overheadEnergy() const override { return bus_.totalEnergy(); }
    std::string policyName() const override { return "retention-aware"; }

    std::uint64_t
    refreshesRequested() const
    {
        return static_cast<std::uint64_t>(requested_.value());
    }

    std::uint64_t
    visitsSkipped() const
    {
        return static_cast<std::uint64_t>(skipped_.value());
    }

    const BusEnergyModel &bus() const { return bus_; }

  private:
    void step();

    EventQueue &eq_;
    std::shared_ptr<const RetentionClassMap> classes_;
    BusEnergyModel bus_;
    Tick spacing_ = 0;
    Tick retention_ = 0;
    std::uint64_t walkIndex_ = 0;
    /** Next tick each row's refresh becomes due (flat index order). */
    std::vector<Tick> due_;
    RefreshAudit *audit_ = nullptr;

    Scalar requested_;
    Scalar skipped_;
};

} // namespace smartref

#include "ctrl/address_mapper.hh"

#include <bit>

#include "sim/logging.hh"

namespace smartref {

std::uint32_t
AddressMapper::log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        SMARTREF_FATAL(what, " (", v, ") must be a power of two");
    return static_cast<std::uint32_t>(std::countr_zero(v));
}

AddressMapper::AddressMapper(const DramOrganization &org,
                             AddressScheme scheme)
    : scheme_(scheme),
      capacity_(org.capacityBytes()),
      offsetBits_(log2Exact(org.bytesPerColumn(), "bytes per column")),
      columnBits_(log2Exact(org.columns, "columns")),
      bankBits_(log2Exact(org.banks, "banks")),
      rankBits_(log2Exact(org.ranks, "ranks")),
      rowBits_(log2Exact(org.rows, "rows"))
{
}

DramCoord
AddressMapper::decode(Addr addr) const
{
    Addr a = addr % capacity_;
    DramCoord c;

    auto take = [&a](std::uint32_t bits) {
        const Addr field = a & ((Addr(1) << bits) - 1);
        a >>= bits;
        return static_cast<std::uint32_t>(field);
    };

    // Fields are consumed least-significant first, i.e. in reverse of the
    // scheme's msb-first declaration.
    switch (scheme_) {
      case AddressScheme::RowRankBankColumn:
        c.offset = take(offsetBits_);
        c.column = take(columnBits_);
        c.bank = take(bankBits_);
        c.rank = take(rankBits_);
        c.row = take(rowBits_);
        break;
      case AddressScheme::RowBankRankColumn:
        c.offset = take(offsetBits_);
        c.column = take(columnBits_);
        c.rank = take(rankBits_);
        c.bank = take(bankBits_);
        c.row = take(rowBits_);
        break;
      case AddressScheme::RankBankRowColumn:
        c.offset = take(offsetBits_);
        c.column = take(columnBits_);
        c.row = take(rowBits_);
        c.bank = take(bankBits_);
        c.rank = take(rankBits_);
        break;
    }
    return c;
}

Addr
AddressMapper::encode(const DramCoord &c) const
{
    Addr a = 0;
    auto put = [&a](std::uint32_t value, std::uint32_t bits) {
        a = (a << bits) | (value & ((Addr(1) << bits) - 1));
    };

    switch (scheme_) {
      case AddressScheme::RowRankBankColumn:
        put(c.row, rowBits_);
        put(c.rank, rankBits_);
        put(c.bank, bankBits_);
        put(c.column, columnBits_);
        put(c.offset, offsetBits_);
        break;
      case AddressScheme::RowBankRankColumn:
        put(c.row, rowBits_);
        put(c.bank, bankBits_);
        put(c.rank, rankBits_);
        put(c.column, columnBits_);
        put(c.offset, offsetBits_);
        break;
      case AddressScheme::RankBankRowColumn:
        put(c.rank, rankBits_);
        put(c.bank, bankBits_);
        put(c.row, rowBits_);
        put(c.column, columnBits_);
        put(c.offset, offsetBits_);
        break;
    }
    return a;
}

std::string
AddressMapper::schemeName(AddressScheme scheme)
{
    switch (scheme) {
      case AddressScheme::RowRankBankColumn: return "row:rank:bank:column";
      case AddressScheme::RowBankRankColumn: return "row:bank:rank:column";
      case AddressScheme::RankBankRowColumn: return "rank:bank:row:column";
    }
    return "?";
}

} // namespace smartref

#include "ctrl/refresh_audit.hh"

#include <cstring>
#include <fstream>

#include "sim/logging.hh"

namespace smartref {

const char *
toString(AuditOutcome outcome)
{
    switch (outcome) {
      case AuditOutcome::Issued: return "issued";
      case AuditOutcome::SkippedRecentAccess:
        return "skipped-recent-access";
      case AuditOutcome::SkippedCounterReset:
        return "skipped-counter-reset";
      case AuditOutcome::ForcedDeadline: return "forced-deadline";
      case AuditOutcome::Deferred: return "deferred";
      case AuditOutcome::DarpDeferred: return "darp-deferred";
      case AuditOutcome::DarpIdleIssued: return "darp-idle-issued";
      case AuditOutcome::DarpPiggybacked: return "darp-piggybacked";
      case AuditOutcome::DarpForced: return "darp-forced";
      case AuditOutcome::DarpCancelled: return "darp-cancelled";
      case AuditOutcome::SarpParallel: return "sarp-parallel";
    }
    return "?";
}

const char *
toString(AuditSource source)
{
    switch (source) {
      case AuditSource::Controller: return "controller";
      case AuditSource::SmartWalk: return "smart-walk";
      case AuditSource::SmartSchedule: return "smart-schedule";
      case AuditSource::RetentionAware: return "retention-aware";
      case AuditSource::Darp: return "darp";
    }
    return "?";
}

bool
parseAuditOutcome(const std::string &name, AuditOutcome &out)
{
    for (std::size_t i = 0; i < kAuditOutcomeCount; ++i) {
        const auto o = static_cast<AuditOutcome>(i);
        if (name == toString(o)) {
            out = o;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
auditOutcomeNames()
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < kAuditOutcomeCount; ++i)
        names.push_back(toString(static_cast<AuditOutcome>(i)));
    return names;
}

RefreshAudit::RefreshAudit(Shape shape) : shape_(shape)
{
    SMARTREF_ASSERT(shape_.ranks > 0 && shape_.banks > 0 &&
                        shape_.rows > 0,
                    "audit shape must be non-empty");
    SMARTREF_ASSERT(shape_.ranks <= 256 && shape_.banks <= 256,
                    "audit records store rank/bank in one byte");
    addSlab();
}

void
RefreshAudit::addSlab()
{
    slabs_.push_back(std::make_unique<Slab>());
    freeInSlab_ = kSlabRecords;
}

std::uint64_t
RefreshAudit::total() const
{
    std::uint64_t n = 0;
    for (std::uint64_t c : counts_)
        n += c;
    return n;
}

std::vector<AuditRecord>
RefreshAudit::collect() const
{
    std::vector<AuditRecord> out;
    out.reserve(total());
    forEach([&out](const AuditRecord &r) { out.push_back(r); });
    return out;
}

void
RefreshAudit::writeBinary(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        SMARTREF_FATAL("cannot write audit file '", path, "'");

    AuditFileHeader header{};
    std::memcpy(header.magic, kAuditMagic, sizeof(header.magic));
    header.version = kAuditVersion;
    header.recordBytes = sizeof(AuditRecord);
    header.ranks = shape_.ranks;
    header.banks = shape_.banks;
    header.rows = shape_.rows;
    header.channels = channels_;
    out.write(reinterpret_cast<const char *>(&header), sizeof(header));
    for (const auto &slab : slabs_) {
        out.write(reinterpret_cast<const char *>(slab->records.data()),
                  static_cast<std::streamsize>(slab->used *
                                               sizeof(AuditRecord)));
    }
    if (!out)
        SMARTREF_FATAL("short write to audit file '", path, "'");
}

void
RefreshAudit::writeNdjson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write audit NDJSON '", path, "'");
    const bool multi = channels_ > 1;
    forEach([&out, multi](const AuditRecord &r) {
        out << "{\"t\":" << r.tick;
        if (multi)
            out << ",\"channel\":" << unsigned(r.channel);
        out << ",\"rank\":" << unsigned(r.rank)
            << ",\"bank\":" << unsigned(r.bank) << ",\"row\":" << r.row
            << ",\"outcome\":\""
            << toString(static_cast<AuditOutcome>(r.outcome))
            << "\",\"source\":\""
            << toString(static_cast<AuditSource>(r.source)) << "\"}\n";
    });
}

} // namespace smartref

/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * The mapper splits a physical byte address into (rank, bank, row, column)
 * plus a sub-column offset, according to a configurable bit-field order.
 * All field widths are powers of two, so mapping is exact and bijective
 * over the module capacity (property-tested).
 */

#pragma once

#include <cstdint>
#include <string>

#include "dram/dram_config.hh"
#include "sim/types.hh"

namespace smartref {

/** DRAM coordinates of one address. */
struct DramCoord
{
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0;
    std::uint32_t offset = 0; ///< byte offset within the column payload

    bool
    operator==(const DramCoord &o) const
    {
        return rank == o.rank && bank == o.bank && row == o.row &&
               column == o.column && offset == o.offset;
    }
};

/** Bit-field orders (most-significant field first). */
enum class AddressScheme {
    /**
     * row : rank : bank : column : offset — consecutive addresses sweep a
     * row (maximising open-page hits); row-sized blocks interleave across
     * banks and ranks. The default, matching open-page controllers.
     */
    RowRankBankColumn,
    /** row : bank : rank : column : offset. */
    RowBankRankColumn,
    /** rank : bank : row : column : offset — fully linear per bank. */
    RankBankRowColumn,
};

/** Converts between physical addresses and DRAM coordinates. */
class AddressMapper
{
  public:
    AddressMapper(const DramOrganization &org,
                  AddressScheme scheme = AddressScheme::RowRankBankColumn);

    /** Decode a physical address (wraps modulo capacity). */
    DramCoord decode(Addr addr) const;

    /** Encode coordinates back into a physical address. */
    Addr encode(const DramCoord &coord) const;

    /** Capacity covered by the mapping, in bytes. */
    std::uint64_t capacityBytes() const { return capacity_; }

    AddressScheme scheme() const { return scheme_; }

    static std::string schemeName(AddressScheme scheme);

  private:
    static std::uint32_t log2Exact(std::uint64_t v, const char *what);

    AddressScheme scheme_;
    std::uint64_t capacity_;
    std::uint32_t offsetBits_;
    std::uint32_t columnBits_;
    std::uint32_t bankBits_;
    std::uint32_t rankBits_;
    std::uint32_t rowBits_;
};

} // namespace smartref

/**
 * @file
 * The memory controller: per-bank transaction engines with an open-page
 * row-buffer policy, arbitration between demand traffic and refresh
 * requests, and latency statistics.
 *
 * Each (rank, bank) pair has a FIFO engine. Demand transactions expand
 * into the command sequence the open-page policy requires (PRE on a row
 * conflict, ACT on a closed bank, then the column burst); refresh requests
 * occupy the engine for one refresh command. Engines run concurrently;
 * the device model enforces all shared-resource timing (data bus, tRRD),
 * so engines simply retry until their command becomes legal.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ctrl/address_mapper.hh"
#include "ctrl/darp_predictor.hh"
#include "ctrl/mem_request.hh"
#include "ctrl/refresh_policy.hh"
#include "dram/dram_module.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace smartref {

class PhaseProfiler;
class RefreshHeatmap;

/** Controller tunables. */
struct ControllerConfig
{
    AddressScheme scheme = AddressScheme::RowRankBankColumn;
    /**
     * Adaptive page policy: close an open row after this much bank
     * idleness (0 disables). Closing idle pages lets ranks reach
     * precharge power-down, which is what makes refresh a significant
     * share of DRAM energy in the low-power baseline (the ITSY
     * observation the paper starts from). The writeback also restores
     * the row's charge, so access-aware refresh policies are notified.
     */
    Tick idlePrechargeAfter = 200 * kNanosecond;

    /**
     * DARP only: how long a refresh may be held back waiting for its
     * bank to go demand-idle before it is force-dispatched ahead of
     * demand. Must stay well under the retention tracker's deadline
     * slack (20 us) so held refreshes cannot cause violations.
     */
    Tick darpDeferWindow = 8 * kMicrosecond;

    /**
     * DARP only: the idle-gap the per-bank predictor must expect
     * before a refresh is dispatched into an idle bank immediately.
     * 0 means "one row refresh" (tRFCrow).
     */
    Tick darpIdleLookahead = 0;
};

/** Open-page memory controller for one DRAM module. */
class MemoryController : public StatGroup
{
  public:
    MemoryController(DramModule &dram, EventQueue &eq,
                     const ControllerConfig &cfg = {},
                     StatGroup *parent = nullptr);

    /** Attach the refresh policy (not owned) and start it. */
    void setRefreshPolicy(RefreshPolicy *policy);

    /**
     * Attach a spatial heatmap (not owned, may be null). The controller
     * records demand accesses (with inter-access distance) on entry and
     * refresh issues at the tick the device accepts them.
     */
    void setHeatmap(RefreshHeatmap *heatmap) { heatmap_ = heatmap; }

    /**
     * Attach a refresh decision audit trail (not owned, may be null).
     * Every refresh the device accepts is recorded at its issue tick:
     * ForcedDeadline for CBR fallback refreshes (the unconditional
     * deadline path), Issued for policy-requested addressed refreshes.
     */
    void setAudit(RefreshAudit *audit) { audit_ = audit; }

    /**
     * Attach a phase profiler (not owned, may be null): engine item
     * starts run under an "issue" scope and refresh completions under
     * a "drain" scope.
     */
    void setProfiler(PhaseProfiler *profiler) { profiler_ = profiler; }

    /**
     * Submit a demand access arriving now.
     * @param cb invoked when the data burst completes (may be empty)
     */
    void access(Addr addr, bool write, MemCallback cb = nullptr);

    /** Submit a refresh request (called by the refresh policy). */
    void pushRefresh(const RefreshRequest &req);

    const AddressMapper &mapper() const { return mapper_; }
    DramModule &dram() { return dram_; }
    EventQueue &eventQueue() { return eq_; }

    /** @name Statistics accessors. */
    ///@{
    std::uint64_t demandReads() const { return asU64(reads_); }
    std::uint64_t demandWrites() const { return asU64(writes_); }
    std::uint64_t rowHits() const { return asU64(rowHits_); }
    std::uint64_t rowMisses() const { return asU64(rowMisses_); }
    std::uint64_t rowConflicts() const { return asU64(rowConflicts_); }
    double
    rowHitRate() const
    {
        const double total = reads_.value() + writes_.value();
        return total > 0.0 ? rowHits_.value() / total : 0.0;
    }
    /** Mean demand latency (arrival to data completion) in ticks. */
    double avgLatency() const { return latency_.mean(); }
    /** Sum of all demand latencies in ticks. */
    double latencySumTicks() const { return latencySum_.value(); }
    const Histogram &latencyHistogram() const { return latency_; }
    /** Refresh requests not yet issued to the device. */
    std::size_t refreshBacklog() const { return refreshBacklog_; }
    /** Largest refresh backlog ever observed. */
    std::size_t maxRefreshBacklog() const { return maxRefreshBacklog_; }
    /** Largest request-to-issue delay of any refresh (ticks). */
    Tick maxRefreshDispatchDelay() const { return maxRefreshDelay_; }
    /** Ticks demand spent blocked behind in-flight refresh state. */
    double demandBlockedTicks() const { return demandBlocked_.value(); }
    /** Refreshes DARP slipped into idle banks / behind write drains. */
    std::uint64_t refreshStallsAvoided() const
    {
        return asU64(stallsAvoided_);
    }
    /** Demand arrivals that hit a subarray mid-refresh (SARP). */
    std::uint64_t subarrayConflicts() const
    {
        return asU64(subarrayConflicts_);
    }
    /** Refreshes DARP held back at least once. */
    std::uint64_t darpDeferred() const { return asU64(darpDeferred_); }
    /** Held refreshes cancelled because the policy no longer needs them. */
    std::uint64_t darpCancelled() const { return asU64(darpCancelled_); }
    ///@}

    /** Drain outstanding work: returns true when all queues are empty. */
    bool idle() const;

  private:
    static std::uint64_t
    asU64(const Scalar &s)
    {
        return static_cast<std::uint64_t>(s.value());
    }

    /** A queued unit of work for one bank engine. */
    struct Item
    {
        enum class Kind { Demand, Refresh } kind = Kind::Demand;
        // Demand fields
        MemRequest req;
        DramCoord coord;
        MemCallback cb;
        // Refresh fields
        RefreshRequest ref;
        /**
         * AuditOutcome a DARP dispatch decision stamped on this
         * refresh, or -1 when the refresh took the normal path.
         */
        int darpOutcome = -1;
    };

    /** FIFO engine for one (rank, bank). */
    struct Engine
    {
        std::deque<Item> queue;
        bool busy = false;
        /** Bumped on any activity; stale idle-precharge checks no-op. */
        std::uint64_t activityGen = 0;
        /** DARP: refreshes held back until the bank goes demand-idle. */
        std::deque<Item> heldRefresh;
        /** DARP: was the last column burst from this bank a write? */
        bool lastWasWrite = false;
        /** DARP: per-bank demand inter-arrival predictor. */
        DarpIdlePredictor predictor;
    };

    std::size_t
    engineIndex(std::uint32_t rank, std::uint32_t bank) const
    {
        return std::size_t(rank) * dram_.config().org.banks + bank;
    }

    void kick(std::size_t engineIdx);
    /** DARP: dispatch held refreshes once idleness is confirmed. */
    void armHeldDispatch(std::size_t engineIdx);
    /** DARP: dispatch held refreshes while the engine is drained. */
    void tryDispatchHeld(std::size_t engineIdx);
    /** DARP: force-dispatch held refreshes that hit the defer window. */
    void forceHeld(std::size_t engineIdx);
    /**
     * DARP: offer a held refresh to the policy for cancellation.
     * @return true when it was cancelled (caller drops the item)
     */
    bool maybeCancelHeld(const Item &item);
    void startItem(std::size_t engineIdx, Item item);
    void runDemand(std::size_t engineIdx, Item item);
    void issueColumn(std::size_t engineIdx, Item item);
    void runRefresh(std::size_t engineIdx, Item item);
    void finishEngine(std::size_t engineIdx);
    void armIdlePrecharge(std::size_t engineIdx);
    void tryIdlePrecharge(std::size_t engineIdx, std::uint64_t gen);
    /** Bump activeEngines_ if `engine` is about to gain its first work. */
    void noteEngineActivated(const Engine &engine);

    /**
     * Invoked once `cmd` has issued: completion tick plus the bank's
     * open-row state observed immediately *before* the device accepted
     * the command (refreshes implicitly close an open page, and
     * access-aware policies must learn which row was written back).
     */
    using IssueCallback =
        std::function<void(Tick done, bool rowWasOpen,
                           std::uint32_t openRow)>;

    /**
     * Issue `cmd` as soon as it becomes legal, then invoke `then`.
     * Retries via the event queue if constraints move while waiting.
     */
    void issueWhenReady(DramCommand cmd, IssueCallback then);

    DramModule &dram_;
    EventQueue &eq_;
    ControllerConfig cfg_;
    AddressMapper mapper_;
    RefreshPolicy *policy_ = nullptr;
    RefreshHeatmap *heatmap_ = nullptr;
    RefreshAudit *audit_ = nullptr;
    PhaseProfiler *profiler_ = nullptr;

    std::vector<Engine> engines_;
    /**
     * Mirror of each rank's CBR counter. Refreshes may issue out of the
     * device's internal-counter order once routed to per-bank engines, so
     * the controller resolves each CBR's (bank, row) at push time from
     * this mirror and issues it as an addressed refresh; the `cbr` flag
     * is kept for energy accounting (no address posted on the bus).
     */
    std::vector<std::uint64_t> cbrMirror_;
    /**
     * Number of engines with work (busy or a non-empty queue),
     * maintained incrementally so idle() is O(1) instead of scanning
     * every engine; debug builds assert it against the full scan.
     */
    std::size_t activeEngines_ = 0;
    std::uint64_t nextReqId_ = 0;
    std::size_t refreshBacklog_ = 0;
    std::size_t maxRefreshBacklog_ = 0;
    Tick maxRefreshDelay_ = 0;
    /** Held refreshes across all engines (DARP); part of idle(). */
    std::size_t heldRefreshes_ = 0;
    /** Whether the attached module's parallelism mode enables DARP. */
    bool darpEnabled_ = false;

    Scalar reads_;
    Scalar writes_;
    Scalar rowHits_;
    Scalar rowMisses_;
    Scalar rowConflicts_;
    Scalar refreshesForwarded_;
    Scalar idlePrecharges_;
    Histogram latency_;
    Scalar latencySum_;
    Scalar demandBlocked_;
    Scalar stallsAvoided_;
    Scalar subarrayConflicts_;
    Scalar darpDeferred_;
    Scalar darpCancelled_;
};

} // namespace smartref

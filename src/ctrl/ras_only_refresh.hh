/**
 * @file
 * Distributed RAS-only refresh: like distributed CBR but the controller
 * supplies each row address on the address bus, paying the Table 3 bus
 * energy per refresh. This isolates the RAS-only overhead that Smart
 * Refresh also pays, without any refresh skipping.
 */

#pragma once

#include "ctrl/bus_energy_model.hh"
#include "ctrl/memory_controller.hh"
#include "ctrl/refresh_policy.hh"
#include "sim/event_queue.hh"

namespace smartref {

/** Distributed RAS-only refresh with posted addresses. */
class RasOnlyRefreshPolicy : public RefreshPolicy
{
  public:
    RasOnlyRefreshPolicy(EventQueue &eq, const BusEnergyParams &busParams,
                         StatGroup *parent);

    void start() override;
    void onRefreshIssued(const RefreshRequest &req) override;
    double overheadEnergy() const override { return bus_.totalEnergy(); }
    std::string policyName() const override { return "ras-only"; }

    const BusEnergyModel &bus() const { return bus_; }

  private:
    void step();

    EventQueue &eq_;
    BusEnergyModel bus_;
    Tick spacing_ = 0;
    std::uint64_t walkIndex_ = 0;
    Scalar requested_;
};

} // namespace smartref

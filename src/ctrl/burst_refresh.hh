/**
 * @file
 * Burst refresh policy (paper Section 3): once per retention interval,
 * every row is refreshed back-to-back. Included as the undesirable
 * comparison point — it maximises peak refresh backlog and blocks demand
 * traffic while the burst drains.
 */

#pragma once

#include "ctrl/memory_controller.hh"
#include "ctrl/refresh_policy.hh"
#include "sim/event_queue.hh"

namespace smartref {

/** All-rows burst refresh, once per retention interval. */
class BurstRefreshPolicy : public RefreshPolicy
{
  public:
    BurstRefreshPolicy(EventQueue &eq, StatGroup *parent);

    void start() override;
    std::string policyName() const override { return "burst"; }

    std::uint64_t
    refreshesRequested() const
    {
        return static_cast<std::uint64_t>(requested_.value());
    }

  private:
    void burst();

    EventQueue &eq_;
    Scalar requested_;
};

} // namespace smartref

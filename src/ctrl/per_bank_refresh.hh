/**
 * @file
 * Per-bank refresh (REFpb): one independent refresh walker per
 * (rank, bank), each cycling its own bank's rows at the per-bank
 * spacing with start offsets staggered across banks so at most one
 * bank per rank refreshes at a time under nominal scheduling.
 *
 * Unlike the module-wide RAS-only walker, each bank carries its own
 * deadline account: the policy tracks how far each bank's walker has
 * slipped behind its nominal schedule (the controller may delay
 * refreshes behind demand, and DARP may hold them), exposing the worst
 * per-bank deadline lag as a stat. Addresses are posted on the bus, so
 * the overhead matches RAS-only refresh per request.
 */

#pragma once

#include <vector>

#include "ctrl/bus_energy_model.hh"
#include "ctrl/memory_controller.hh"
#include "ctrl/refresh_policy.hh"
#include "sim/event_queue.hh"

namespace smartref {

/** Per-bank (REFpb) refresh with per-bank deadline accounting. */
class PerBankRefreshPolicy : public RefreshPolicy
{
  public:
    PerBankRefreshPolicy(EventQueue &eq, const BusEnergyParams &busParams,
                         StatGroup *parent);

    void start() override;
    void onRefreshIssued(const RefreshRequest &req) override;
    double overheadEnergy() const override { return bus_.totalEnergy(); }
    std::string policyName() const override { return "per-bank"; }

    const BusEnergyModel &bus() const { return bus_; }

    /** Worst observed issue lag behind a bank's nominal deadline. */
    Tick maxDeadlineLag() const { return maxDeadlineLag_; }

  private:
    /** Walker state for one (rank, bank). */
    struct BankWalker
    {
        std::uint32_t rank = 0;
        std::uint32_t bank = 0;
        std::uint32_t nextRow = 0;
        /** Nominal tick the next refresh request is due. */
        Tick nextDue = 0;
    };

    void step(std::size_t walkerIdx);

    EventQueue &eq_;
    BusEnergyModel bus_;
    Tick spacing_ = 0; ///< per-bank request spacing (retention / rows)
    std::vector<BankWalker> walkers_;
    Tick maxDeadlineLag_ = 0;
    Scalar requested_;
    Scalar deadlineLagTicks_;
};

} // namespace smartref

#include "ctrl/refresh_heatmap.hh"

#include <numeric>
#include <ostream>

namespace smartref {

RefreshHeatmap::RefreshHeatmap(std::uint32_t ranks, std::uint32_t banks,
                               std::uint32_t segments,
                               std::uint32_t counterMax)
    : ranks_(ranks), banks_(banks), segments_(segments),
      counterMax_(counterMax)
{
    SMARTREF_ASSERT(ranks_ > 0 && banks_ > 0 && segments_ > 0,
                    "heatmap needs a non-empty shape");
    const std::size_t cells = static_cast<std::size_t>(ranks_) * banks_;
    refreshes_.assign(cells, 0);
    demands_.assign(cells, 0);
    distance_.assign(cells * kDistanceBuckets, 0);
    counterValues_.assign(
        static_cast<std::size_t>(segments_) * (counterMax_ + 1), 0);
    expiries_.assign(segments_, 0);
    skips_.assign(segments_, 0);
    lastAccess_.assign(cells, kNoAccess);
}

namespace {

std::uint64_t
sum(const std::vector<std::uint64_t> &v)
{
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}

} // namespace

std::uint64_t RefreshHeatmap::totalRefreshes() const { return sum(refreshes_); }
std::uint64_t RefreshHeatmap::totalDemands() const { return sum(demands_); }
std::uint64_t RefreshHeatmap::totalExpiries() const { return sum(expiries_); }
std::uint64_t RefreshHeatmap::totalSkips() const { return sum(skips_); }

bool
RefreshHeatmap::sameShape(const RefreshHeatmap &other) const
{
    return ranks_ == other.ranks_ && banks_ == other.banks_ &&
           segments_ == other.segments_ && counterMax_ == other.counterMax_;
}

void
RefreshHeatmap::merge(const RefreshHeatmap &other)
{
    SMARTREF_ASSERT(sameShape(other),
                    "merging heatmaps of different shapes: (",
                    ranks_, "x", banks_, " seg ", segments_, " max ",
                    counterMax_, ") vs (", other.ranks_, "x", other.banks_,
                    " seg ", other.segments_, " max ", other.counterMax_,
                    ")");
    auto add = [](std::vector<std::uint64_t> &dst,
                  const std::vector<std::uint64_t> &src) {
        for (std::size_t i = 0; i < dst.size(); ++i)
            dst[i] += src[i];
    };
    add(refreshes_, other.refreshes_);
    add(demands_, other.demands_);
    add(distance_, other.distance_);
    add(counterValues_, other.counterValues_);
    add(expiries_, other.expiries_);
    add(skips_, other.skips_);
    // lastAccess_ is per-run transient state and deliberately not merged.
}

void
RefreshHeatmap::writeJson(std::ostream &os) const
{
    os << "{\"schema\":\"smartref-heatmap-v1\""
       << ",\"ranks\":" << ranks_
       << ",\"banks\":" << banks_
       << ",\"segments\":" << segments_
       << ",\"counterMax\":" << counterMax_
       << ",\"distanceBuckets\":" << kDistanceBuckets
       << ",\"cells\":[";
    for (std::uint32_t r = 0; r < ranks_; ++r) {
        for (std::uint32_t b = 0; b < banks_; ++b) {
            const std::size_t c = cell(r, b);
            os << (c ? "," : "")
               << "{\"rank\":" << r << ",\"bank\":" << b
               << ",\"refreshes\":" << refreshes_[c]
               << ",\"demandAccesses\":" << demands_[c]
               << ",\"interAccessLog2\":[";
            for (std::uint32_t d = 0; d < kDistanceBuckets; ++d)
                os << (d ? "," : "")
                   << distance_[c * kDistanceBuckets + d];
            os << "]}";
        }
    }
    os << "],\"segmentCounters\":[";
    for (std::uint32_t s = 0; s < segments_; ++s) {
        os << (s ? "," : "")
           << "{\"segment\":" << s
           << ",\"expiries\":" << expiries_[s]
           << ",\"skips\":" << skips_[s]
           << ",\"counterValues\":[";
        for (std::uint32_t v = 0; v <= counterMax_; ++v)
            os << (v ? "," : "")
               << counterValues_[static_cast<std::size_t>(s) *
                                     (counterMax_ + 1) + v];
        os << "]}";
    }
    os << "],\"totals\":{\"refreshes\":" << totalRefreshes()
       << ",\"demandAccesses\":" << totalDemands()
       << ",\"expiries\":" << totalExpiries()
       << ",\"skips\":" << totalSkips()
       << "}}";
}

void
RefreshHeatmap::writeCsv(std::ostream &os, bool header) const
{
    // Long-form tidy rows; zero-valued histogram buckets are omitted
    // to keep the file readable, scalar rows are always present.
    if (header)
        os << "kind,rank,bank,segment,bucket,value\n";
    for (std::uint32_t r = 0; r < ranks_; ++r) {
        for (std::uint32_t b = 0; b < banks_; ++b) {
            const std::size_t c = cell(r, b);
            os << "refreshes," << r << ',' << b << ",,,"
               << refreshes_[c] << '\n';
            os << "demandAccesses," << r << ',' << b << ",,,"
               << demands_[c] << '\n';
            for (std::uint32_t d = 0; d < kDistanceBuckets; ++d) {
                const std::uint64_t v = distance_[c * kDistanceBuckets + d];
                if (v)
                    os << "interAccessLog2," << r << ',' << b << ",,"
                       << d << ',' << v << '\n';
            }
        }
    }
    for (std::uint32_t s = 0; s < segments_; ++s) {
        os << "expiries,,," << s << ",," << expiries_[s] << '\n';
        os << "skips,,," << s << ",," << skips_[s] << '\n';
        for (std::uint32_t v = 0; v <= counterMax_; ++v) {
            const std::uint64_t n =
                counterValues_[static_cast<std::size_t>(s) *
                                   (counterMax_ + 1) + v];
            if (n)
                os << "counterValue,,," << s << ',' << v << ',' << n
                   << '\n';
        }
    }
}

} // namespace smartref

#include "ctrl/ras_only_refresh.hh"

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

RasOnlyRefreshPolicy::RasOnlyRefreshPolicy(EventQueue &eq,
                                           const BusEnergyParams &busParams,
                                           StatGroup *parent)
    : RefreshPolicy("refresh.rasonly", parent),
      eq_(eq),
      bus_(busParams, this),
      requested_(this, "requested", "RAS-only refreshes requested")
{
}

void
RasOnlyRefreshPolicy::start()
{
    SMARTREF_ASSERT(ctrl_ != nullptr, "policy not bound to a controller");
    spacing_ = ctrl_->dram().config().refreshSpacing();
    eq_.scheduleAfter(spacing_, [this] { step(); },
                      EventPriority::ClockTick);
}

void
RasOnlyRefreshPolicy::step()
{
    const auto &org = ctrl_->dram().config().org;
    const std::uint64_t idx = walkIndex_++;

    RefreshRequest req;
    // Walk ranks fastest, then banks, so consecutive refreshes spread
    // across independent resources.
    req.rank = static_cast<std::uint32_t>(idx % org.ranks);
    req.bank = static_cast<std::uint32_t>((idx / org.ranks) % org.banks);
    req.row = static_cast<std::uint32_t>(
        (idx / (std::uint64_t(org.ranks) * org.banks)) % org.rows);
    req.cbr = false;
    req.created = eq_.now();
    ++requested_;
    SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(), "rasOnlyRequested",
                   req.rank, req.bank, req.row);
    ctrl_->pushRefresh(req);

    eq_.scheduleAfter(spacing_, [this] { step(); },
                      EventPriority::ClockTick);
}

void
RasOnlyRefreshPolicy::onRefreshIssued(const RefreshRequest &req)
{
    if (!req.cbr)
        bus_.recordAccesses(1);
}

} // namespace smartref

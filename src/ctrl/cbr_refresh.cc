#include "ctrl/cbr_refresh.hh"

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

CbrRefreshPolicy::CbrRefreshPolicy(EventQueue &eq, StatGroup *parent)
    : RefreshPolicy("refresh.cbr", parent),
      eq_(eq),
      requested_(this, "requested", "CBR refreshes requested")
{
}

void
CbrRefreshPolicy::start()
{
    SMARTREF_ASSERT(ctrl_ != nullptr, "policy not bound to a controller");
    spacing_ = ctrl_->dram().config().refreshSpacing();
    eq_.scheduleAfter(spacing_, [this] { step(); },
                      EventPriority::ClockTick);
}

void
CbrRefreshPolicy::step()
{
    RefreshRequest req;
    req.rank = nextRank_;
    req.cbr = true;
    req.created = eq_.now();
    nextRank_ = (nextRank_ + 1) % ctrl_->dram().config().org.ranks;
    ++requested_;
    SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(), "cbrRequested",
                   req.rank);
    ctrl_->pushRefresh(req);

    eq_.scheduleAfter(spacing_, [this] { step(); },
                      EventPriority::ClockTick);
}

} // namespace smartref

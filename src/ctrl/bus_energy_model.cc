#include "ctrl/bus_energy_model.hh"

namespace smartref {

BusEnergyModel::BusEnergyModel(const BusEnergyParams &p, StatGroup *parent)
    : StatGroup("bus", parent),
      energy_(this, "energy", "address-bus energy (J)"),
      accesses_(this, "accesses", "addresses posted on the bus")
{
    const double cloadPf =
        p.onChipLengthMm * p.onChipCapPfPerMm +
        p.offChipLengthMm * p.offChipCapPfPerMm +
        static_cast<double>(p.numModules) * p.moduleInputCapPf;
    // Driver capacitance is 30 % of the load for impedance matching [16].
    wireCap_ = 1.3 * cloadPf * 1e-12;
    energyPerAccess_ =
        wireCap_ * p.vdd * p.vdd * static_cast<double>(p.busWidthBits);
}

void
BusEnergyModel::recordAccesses(std::uint64_t n)
{
    accesses_ += static_cast<double>(n);
    energy_ += energyPerAccess_ * static_cast<double>(n);
}

} // namespace smartref

#include "ctrl/memory_controller.hh"

#include <utility>

#include "ctrl/refresh_audit.hh"
#include "ctrl/refresh_heatmap.hh"
#include "sim/logging.hh"
#include "sim/phase_profiler.hh"
#include "sim/tracer.hh"

namespace smartref {

MemoryController::MemoryController(DramModule &dram, EventQueue &eq,
                                   const ControllerConfig &cfg,
                                   StatGroup *parent)
    : StatGroup("ctrl", parent),
      dram_(dram),
      eq_(eq),
      cfg_(cfg),
      mapper_(dram.config().org, cfg.scheme),
      engines_(std::size_t(dram.config().org.ranks) *
               dram.config().org.banks),
      cbrMirror_(dram.config().org.ranks, 0),
      reads_(this, "demandReads", "demand read transactions"),
      writes_(this, "demandWrites", "demand write transactions"),
      rowHits_(this, "rowHits", "column accesses hitting the open row"),
      rowMisses_(this, "rowMisses", "accesses to a precharged bank"),
      rowConflicts_(this, "rowConflicts",
                    "accesses that had to close another row"),
      refreshesForwarded_(this, "refreshesForwarded",
                          "refresh requests accepted from the policy"),
      idlePrecharges_(this, "idlePrecharges",
                      "pages closed by the idle-precharge timer"),
      latency_(this, "latency", "demand latency (ticks)",
               0.0, 2.0e6, 64),
      latencySum_(this, "latencySum", "sum of demand latencies (ticks)"),
      demandBlocked_(this, "demandBlockedTicks",
                     "ticks demand waited on in-flight refresh state"),
      stallsAvoided_(this, "refreshStallsAvoided",
                     "refreshes DARP moved into demand-idle banks"),
      subarrayConflicts_(this, "subarrayConflicts",
                         "demand arrivals hitting a subarray mid-refresh"),
      darpDeferred_(this, "darpDeferred",
                    "refreshes DARP held back at least once"),
      darpCancelled_(this, "darpCancelled",
                     "held refreshes the policy no longer needed")
{
    darpEnabled_ = parallelismUsesDarp(dram_.config().parallelism);
}

void
MemoryController::setRefreshPolicy(RefreshPolicy *policy)
{
    policy_ = policy;
    if (policy_) {
        policy_->bind(this);
        policy_->start();
    }
}

void
MemoryController::access(Addr addr, bool write, MemCallback cb)
{
    Item item;
    item.kind = Item::Kind::Demand;
    item.req = MemRequest{addr, write, eq_.now(), nextReqId_++};
    item.coord = mapper_.decode(addr);
    item.cb = std::move(cb);

    if (write)
        ++writes_;
    else
        ++reads_;
    if (heatmap_)
        heatmap_->recordDemand(item.coord.rank, item.coord.bank, eq_.now());

    const std::size_t idx = engineIndex(item.coord.rank, item.coord.bank);
    engines_[idx].predictor.recordDemand(eq_.now());
    noteEngineActivated(engines_[idx]);
    engines_[idx].queue.push_back(std::move(item));
    kick(idx);
}

void
MemoryController::pushRefresh(const RefreshRequest &req)
{
    Item item;
    item.kind = Item::Kind::Refresh;
    item.ref = req;

    if (req.cbr) {
        // Resolve the internal-counter target now so the request can be
        // routed to (and issued from) the right bank engine even if
        // engines drain out of order.
        auto [bank, row] =
            dram_.peekCbrTarget(req.rank, cbrMirror_[req.rank]++);
        item.ref.bank = bank;
        item.ref.row = row;
    }
    ++refreshesForwarded_;
    ++refreshBacklog_;
    maxRefreshBacklog_ = std::max(maxRefreshBacklog_, refreshBacklog_);
    SMARTREF_TRACE_COUNTER(TraceCategory::Queue, eq_.now(),
                           "refreshBacklog",
                           static_cast<double>(refreshBacklog_));

    const std::size_t idx = engineIndex(req.rank, item.ref.bank);
    Engine &engine = engines_[idx];

    if (darpEnabled_) {
        // DARP: only let the refresh through immediately when the bank
        // is demand-idle and the predictor expects it to stay idle for
        // the refresh duration; otherwise hold it and wait for a drain
        // (or the defer window, whichever comes first).
        const Tick lookahead = cfg_.darpIdleLookahead != 0
                                   ? cfg_.darpIdleLookahead
                                   : dram_.config().timing.tRFCrow;
        const bool bankQuiet = !engine.busy && engine.queue.empty();
        if (!bankQuiet ||
            !engine.predictor.expectIdleFor(eq_.now(), lookahead)) {
            ++darpDeferred_;
            SMARTREF_AUDIT_RECORD(audit_, eq_.now(), item.ref.rank,
                                  item.ref.bank, item.ref.row,
                                  AuditOutcome::DarpDeferred,
                                  AuditSource::Darp);
            ++heldRefreshes_;
            engine.heldRefresh.push_back(std::move(item));
            eq_.scheduleAfter(cfg_.darpDeferWindow,
                              [this, idx] { forceHeld(idx); });
            // Quiet bank held back only by the predictor: re-check
            // after an idle window instead of waiting for the drain
            // hook (which needs demand) or the defer deadline.
            if (bankQuiet)
                armHeldDispatch(idx);
            return;
        }
        item.darpOutcome =
            static_cast<int>(AuditOutcome::DarpIdleIssued);
    }

    noteEngineActivated(engine);
    engine.queue.push_back(std::move(item));
    kick(idx);
}

void
MemoryController::armHeldDispatch(std::size_t engineIdx)
{
    // A drained engine is not the same as an idle bank: back-to-back
    // demand leaves micro-gaps between requests, and slipping a refresh
    // into one closes the open row mid-burst. Wait out an idle window
    // first; any intervening activity bumps the generation and voids
    // the timer (the next drain re-arms it).
    Engine &engine = engines_[engineIdx];
    const std::uint64_t gen = engine.activityGen;
    const Tick wait = cfg_.darpIdleLookahead != 0
                          ? cfg_.darpIdleLookahead
                          : (cfg_.idlePrechargeAfter != 0
                                 ? cfg_.idlePrechargeAfter
                                 : dram_.config().timing.tRFCrow);
    eq_.scheduleAfter(wait, [this, engineIdx, gen] {
        Engine &e = engines_[engineIdx];
        if (e.busy || !e.queue.empty() || e.activityGen != gen)
            return;
        tryDispatchHeld(engineIdx);
    });
}

void
MemoryController::tryDispatchHeld(std::size_t engineIdx)
{
    Engine &engine = engines_[engineIdx];
    while (!engine.busy && !engine.heldRefresh.empty()) {
        Item item = std::move(engine.heldRefresh.front());
        engine.heldRefresh.pop_front();
        --heldRefreshes_;
        if (maybeCancelHeld(item))
            continue;
        // The bank just drained: slip the refresh in now, behind the
        // write drain when that is what freed the bank.
        item.darpOutcome = static_cast<int>(
            engine.lastWasWrite ? AuditOutcome::DarpPiggybacked
                                : AuditOutcome::DarpIdleIssued);
        ++stallsAvoided_;
        noteEngineActivated(engine);
        engine.queue.push_back(std::move(item));
        kick(engineIdx);
    }
}

void
MemoryController::forceHeld(std::size_t engineIdx)
{
    Engine &engine = engines_[engineIdx];
    std::vector<Item> expired;
    while (!engine.heldRefresh.empty() &&
           engine.heldRefresh.front().ref.created + cfg_.darpDeferWindow <=
               eq_.now()) {
        Item item = std::move(engine.heldRefresh.front());
        engine.heldRefresh.pop_front();
        --heldRefreshes_;
        if (maybeCancelHeld(item))
            continue;
        item.darpOutcome = static_cast<int>(AuditOutcome::DarpForced);
        expired.push_back(std::move(item));
    }
    if (expired.empty())
        return;
    noteEngineActivated(engine);
    // Jump ahead of queued demand: these refreshes are out of slack.
    for (auto it = expired.rbegin(); it != expired.rend(); ++it)
        engine.queue.push_front(std::move(*it));
    kick(engineIdx);
}

bool
MemoryController::maybeCancelHeld(const Item &item)
{
    const RefreshRequest &ref = item.ref;
    // CBR-flagged refreshes already advanced the device's internal
    // counter mirror; they may be delayed but never dropped.
    if (ref.cbr || !policy_)
        return false;
    const bool rowOpen = dram_.isBankOpen(ref.rank, ref.bank) &&
                         dram_.openRow(ref.rank, ref.bank) == ref.row;
    if (policy_->refreshStillNeeded(ref, rowOpen))
        return false;
    SMARTREF_ASSERT(refreshBacklog_ > 0, "refresh backlog underflow");
    --refreshBacklog_;
    ++darpCancelled_;
    SMARTREF_AUDIT_RECORD(audit_, eq_.now(), ref.rank, ref.bank, ref.row,
                          AuditOutcome::DarpCancelled, AuditSource::Darp);
    policy_->onRefreshCancelled(ref);
    return true;
}

void
MemoryController::noteEngineActivated(const Engine &engine)
{
    if (!engine.busy && engine.queue.empty())
        ++activeEngines_;
}

bool
MemoryController::idle() const
{
#ifndef NDEBUG
    std::size_t scanned = 0;
    for (const Engine &e : engines_)
        if (e.busy || !e.queue.empty())
            ++scanned;
    SMARTREF_ASSERT(scanned == activeEngines_,
                    "active-engine count drifted: tracked ",
                    activeEngines_, ", scan found ", scanned);
#endif
    return activeEngines_ == 0 && heldRefreshes_ == 0;
}

void
MemoryController::kick(std::size_t engineIdx)
{
    Engine &engine = engines_[engineIdx];
    if (engine.busy || engine.queue.empty())
        return;
    engine.busy = true;
    ++engine.activityGen;
    Item item = std::move(engine.queue.front());
    engine.queue.pop_front();
    startItem(engineIdx, std::move(item));
}

void
MemoryController::startItem(std::size_t engineIdx, Item item)
{
    PhaseScope issueScope(profiler_, "issue");
    if (item.kind == Item::Kind::Demand)
        runDemand(engineIdx, std::move(item));
    else
        runRefresh(engineIdx, std::move(item));
}

void
MemoryController::finishEngine(std::size_t engineIdx)
{
    Engine &engine = engines_[engineIdx];
    engine.busy = false;
    if (!engine.queue.empty()) {
        // The engine stays active. kick() may complete the next item
        // synchronously (SARP refreshes wait on no bank window) and
        // recurse through finishEngine; each frame accounts only the
        // transition it observed, so decide active-vs-idle *before*
        // anything re-entrant can run.
        kick(engineIdx);
        return;
    }
    SMARTREF_ASSERT(activeEngines_ > 0, "active-engine underflow");
    --activeEngines_;
    // DARP: the bank just drained. Piggyback a held refresh straight
    // behind a write when the predictor expects the bank to stay quiet
    // (the bus turnaround already broke the burst); otherwise wait for
    // confirmed idleness before slipping one in.
    if (darpEnabled_ && !engine.heldRefresh.empty()) {
        const Tick lookahead = cfg_.darpIdleLookahead != 0
                                   ? cfg_.darpIdleLookahead
                                   : dram_.config().timing.tRFCrow;
        if (engine.lastWasWrite &&
            engine.predictor.expectIdleFor(eq_.now(), lookahead))
            tryDispatchHeld(engineIdx);
        else
            armHeldDispatch(engineIdx);
    }
    if (!engine.busy)
        armIdlePrecharge(engineIdx);
}

void
MemoryController::armIdlePrecharge(std::size_t engineIdx)
{
    if (cfg_.idlePrechargeAfter == 0)
        return;
    Engine &engine = engines_[engineIdx];
    const std::uint32_t rank = static_cast<std::uint32_t>(
        engineIdx / dram_.config().org.banks);
    const std::uint32_t bank = static_cast<std::uint32_t>(
        engineIdx % dram_.config().org.banks);
    if (!dram_.isBankOpen(rank, bank))
        return;
    const std::uint64_t gen = engine.activityGen;
    eq_.scheduleAfter(cfg_.idlePrechargeAfter, [this, engineIdx, gen] {
        tryIdlePrecharge(engineIdx, gen);
    });
}

void
MemoryController::tryIdlePrecharge(std::size_t engineIdx,
                                   std::uint64_t gen)
{
    Engine &engine = engines_[engineIdx];
    if (engine.busy || !engine.queue.empty() || engine.activityGen != gen)
        return;
    const std::uint32_t rank = static_cast<std::uint32_t>(
        engineIdx / dram_.config().org.banks);
    const std::uint32_t bank = static_cast<std::uint32_t>(
        engineIdx % dram_.config().org.banks);
    if (!dram_.isBankOpen(rank, bank))
        return;

    noteEngineActivated(engine);
    engine.busy = true;
    ++engine.activityGen;
    const std::uint32_t row = dram_.openRow(rank, bank);
    ++idlePrecharges_;
    DramCommand pre{DramCommandType::Precharge, rank, bank, 0, 0};
    issueWhenReady(pre,
                   [this, engineIdx, rank, bank, row](Tick, bool,
                                                      std::uint32_t) {
        if (policy_)
            policy_->onRowClosed(rank, bank, row);
        finishEngine(engineIdx);
    });
}

void
MemoryController::issueWhenReady(DramCommand cmd, IssueCallback then)
{
    const Tick earliest = dram_.earliestIssue(cmd);
    if (earliest <= eq_.now()) {
        // Observe the bank's row state immediately before the device
        // accepts the command: refreshes (and precharges) implicitly
        // close the open page, and the callback may need to know which
        // row was written back.
        const bool rowWasOpen = dram_.isBankOpen(cmd.rank, cmd.bank);
        const std::uint32_t openRow =
            rowWasOpen ? dram_.openRow(cmd.rank, cmd.bank) : 0;
        const Tick done = dram_.issue(cmd);
        then(done, rowWasOpen, openRow);
        return;
    }
    eq_.schedule(earliest, [this, cmd,
                            then = std::move(then)]() mutable {
        // Constraints may have moved while we waited; re-check.
        issueWhenReady(cmd, std::move(then));
    });
}

void
MemoryController::runDemand(std::size_t engineIdx, Item item)
{
    const DramCoord &c = item.coord;

    // Attribute refresh-induced demand blocking at the tick the demand
    // reaches the bank scheduler: any in-flight refresh state (bank
    // busy window, REFab rank stall, SARP subarray busy) that postpones
    // this access is charged here.
    const Tick blocked = dram_.refreshBlockedUntil(c.rank, c.bank, c.row);
    if (blocked > eq_.now())
        demandBlocked_ += static_cast<double>(blocked - eq_.now());
    if (dram_.subarrayBlockedUntil(c.rank, c.bank, c.row) > eq_.now())
        ++subarrayConflicts_;

    if (dram_.isBankOpen(c.rank, c.bank)) {
        if (dram_.openRow(c.rank, c.bank) == c.row) {
            ++rowHits_;
            SMARTREF_TRACE(TraceCategory::RowBuffer, eq_.now(), "rowHit",
                           c.rank, c.bank, c.row);
            issueColumn(engineIdx, std::move(item));
            return;
        }
        // Row conflict: close the open page, then activate ours.
        ++rowConflicts_;
        SMARTREF_TRACE(TraceCategory::RowBuffer, eq_.now(), "rowConflict",
                       c.rank, c.bank, c.row);
        const std::uint32_t victim = dram_.openRow(c.rank, c.bank);
        DramCommand pre{DramCommandType::Precharge, c.rank, c.bank, 0, 0};
        issueWhenReady(pre, [this, engineIdx, victim,
                             item = std::move(item)](
                                Tick, bool, std::uint32_t) mutable {
            const DramCoord &cc = item.coord;
            if (policy_)
                policy_->onRowClosed(cc.rank, cc.bank, victim);
            DramCommand act{DramCommandType::Activate, cc.rank, cc.bank,
                            cc.row, 0};
            issueWhenReady(act,
                           [this, engineIdx, item = std::move(item)](
                               Tick, bool, std::uint32_t) mutable {
                const DramCoord &c3 = item.coord;
                if (policy_)
                    policy_->onRowActivated(c3.rank, c3.bank, c3.row);
                issueColumn(engineIdx, std::move(item));
            });
        });
        return;
    }

    // Bank closed: plain row miss.
    ++rowMisses_;
    SMARTREF_TRACE(TraceCategory::RowBuffer, eq_.now(), "rowMiss", c.rank,
                   c.bank, c.row);
    DramCommand act{DramCommandType::Activate, c.rank, c.bank, c.row, 0};
    issueWhenReady(act, [this, engineIdx, item = std::move(item)](
                            Tick, bool, std::uint32_t) mutable {
        const DramCoord &cc = item.coord;
        if (policy_)
            policy_->onRowActivated(cc.rank, cc.bank, cc.row);
        issueColumn(engineIdx, std::move(item));
    });
}

void
MemoryController::issueColumn(std::size_t engineIdx, Item item)
{
    const DramCoord &c = item.coord;
    DramCommand col{item.req.write ? DramCommandType::Write
                                   : DramCommandType::Read,
                    c.rank, c.bank, c.row, c.column};
    issueWhenReady(col, [this, engineIdx, item = std::move(item)](
                            Tick done, bool, std::uint32_t) mutable {
        engines_[engineIdx].lastWasWrite = item.req.write;
        const Tick lat = done - item.req.arrival;
        latency_.sample(static_cast<double>(lat));
        latencySum_ += static_cast<double>(lat);
        if (item.cb) {
            // Deliver the completion at the tick the data arrives.
            eq_.schedule(done, [req = item.req, cb = std::move(item.cb),
                                done]() { cb(req, done); });
        }
        // The engine frees as soon as the column command has issued; the
        // device enforces all remaining burst/recovery timing.
        finishEngine(engineIdx);
    });
}

void
MemoryController::runRefresh(std::size_t engineIdx, Item item)
{
    const RefreshRequest req = item.ref;
    const int darpOutcome = item.darpOutcome;
    // All refreshes carry a resolved (bank, row); the cbr flag only
    // changes whether an address was posted on the bus (energy).
    DramCommand cmd{DramCommandType::RefreshRasOnly, req.rank, req.bank,
                    req.row, 0};

    // The refresh implicitly closes an open page (its charge is
    // restored); issueWhenReady observes the pre-issue row state and
    // hands it to the callback, so access-aware policies learn which
    // row was written back without any shared out-of-band state.
    issueWhenReady(cmd, [this, engineIdx, req, darpOutcome](
                            Tick, bool rowWasOpen,
                            std::uint32_t openRow) {
        PhaseScope drainScope(profiler_, "drain");
        SMARTREF_ASSERT(refreshBacklog_ > 0, "refresh backlog underflow");
        --refreshBacklog_;
        maxRefreshDelay_ = std::max(maxRefreshDelay_,
                                    eq_.now() - req.created);
        SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(),
                       req.cbr ? "refreshIssuedCbr" : "refreshIssuedRas",
                       req.rank, req.bank, req.row,
                       static_cast<double>(eq_.now() - req.created));
        SMARTREF_TRACE_COUNTER(TraceCategory::Queue, eq_.now(),
                               "refreshBacklog",
                               static_cast<double>(refreshBacklog_));
        if (heatmap_)
            heatmap_->recordRefresh(req.rank, req.bank);
        // In subarray modes a refresh only closes the page when it
        // lands in the open row's own subarray; the device applied the
        // same predicate, so the post-issue bank state is the truth.
        const bool pageSurvived =
            rowWasOpen && dram_.isBankOpen(req.rank, req.bank);
        // The deadline-driven CBR fallback path is what the policy could
        // not avoid; an addressed refresh is a decision the policy made;
        // DARP dispatch decisions and subarray-parallel refreshes carry
        // their own outcomes.
        AuditOutcome outcome = req.cbr ? AuditOutcome::ForcedDeadline
                                       : AuditOutcome::Issued;
        AuditSource source = AuditSource::Controller;
        if (darpOutcome >= 0) {
            outcome = static_cast<AuditOutcome>(darpOutcome);
            source = AuditSource::Darp;
        } else if (pageSurvived) {
            outcome = AuditOutcome::SarpParallel;
        }
        SMARTREF_AUDIT_RECORD(audit_, eq_.now(), req.rank, req.bank,
                              req.row, outcome, source);
        if (policy_) {
            if (rowWasOpen && !pageSurvived)
                policy_->onRowClosed(req.rank, req.bank, openRow);
            policy_->onRefreshIssued(req);
        }
        finishEngine(engineIdx);
    });
}

} // namespace smartref

/**
 * @file
 * Demand memory request and refresh request types exchanged between the
 * workload front-end, the memory controller and refresh policies.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace smartref {

/** A demand read or write arriving at the memory controller. */
struct MemRequest
{
    Addr addr = 0;
    bool write = false;
    Tick arrival = 0;
    std::uint64_t id = 0;
};

/** Completion callback: invoked when the data burst finishes. */
using MemCallback = std::function<void(const MemRequest &, Tick completion)>;

/** A refresh operation requested by a refresh policy. */
struct RefreshRequest
{
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    /**
     * CBR refreshes let the device's internal counter choose the row (no
     * address posted on the bus); RAS-only refreshes target (bank, row)
     * explicitly.
     */
    bool cbr = false;
    Tick created = 0;
};

} // namespace smartref

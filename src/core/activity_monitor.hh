/**
 * @file
 * The self-configuration circuit of paper Section 4.6.
 *
 * Smart Refresh only pays off when the DRAM sees enough row activity;
 * with a cold working set the counters just burn SRAM energy and the
 * RAS-only refreshes burn bus energy. The monitor counts row activations
 * per retention interval and applies hysteresis: below 1 % of the row
 * count it requests a fall-back to plain CBR refresh, above 2 % it
 * requests Smart Refresh be re-enabled.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace smartref {

/** Hysteresis thresholds as fractions of the module row count. */
struct ActivityMonitorParams
{
    double disableBelowFraction = 0.01; ///< paper's 1 %
    double enableAboveFraction = 0.02;  ///< paper's 2 %
};

/** Windowed row-activity counter with hysteresis decisions. */
class ActivityMonitor : public StatGroup
{
  public:
    enum class Decision { KeepSmart, KeepCbr, SwitchToCbr, SwitchToSmart };

    ActivityMonitor(std::uint64_t totalRows,
                    const ActivityMonitorParams &params, StatGroup *parent);

    /** A row was activated by a demand access. */
    void recordAccess() { ++windowAccesses_; }

    /**
     * Close the current window and decide the mode for the next one.
     * @param smartCurrentlyOn whether Smart Refresh is active now
     * @param now simulated time, used to timestamp the trace event
     */
    Decision closeWindow(bool smartCurrentlyOn, Tick now = 0);

    /**
     * Close the current window without making a decision (used while a
     * mode transition is already in flight).
     */
    void discardWindow(Tick now = 0);

    std::uint64_t windowAccesses() const { return windowAccesses_; }
    std::uint64_t disableThreshold() const { return disableThreshold_; }
    std::uint64_t enableThreshold() const { return enableThreshold_; }

    std::uint64_t
    switchesToCbr() const
    {
        return static_cast<std::uint64_t>(toCbr_.value());
    }

    std::uint64_t
    switchesToSmart() const
    {
        return static_cast<std::uint64_t>(toSmart_.value());
    }

  private:
    std::uint64_t disableThreshold_;
    std::uint64_t enableThreshold_;
    std::uint64_t windowAccesses_ = 0;
    Scalar windows_;
    Scalar toCbr_;
    Scalar toSmart_;
};

} // namespace smartref

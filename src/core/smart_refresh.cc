#include "core/smart_refresh.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"
#include "sim/phase_profiler.hh"
#include "sim/tracer.hh"

namespace smartref {

SmartRefreshPolicy::SmartRefreshPolicy(const DramConfig &dramCfg,
                                       const SmartRefreshConfig &cfg,
                                       EventQueue &eq, StatGroup *parent)
    : RefreshPolicy("refresh.smart", parent),
      org_(dramCfg.org),
      retention_(dramCfg.timing.retention),
      cbrSpacing_(dramCfg.refreshSpacing()),
      cfg_(cfg),
      eq_(eq),
      counters_(std::make_unique<CounterArray>(
          org_.totalRows(),
          cfg.counterBits +
              (cfg.retentionClasses
                   ? static_cast<std::uint32_t>(std::bit_width(
                         cfg.retentionClasses->maxMultiplier() - 1))
                   : 0u),
          cfg.segments, cfg.sparseCounters)),
      stagger_(std::make_unique<StaggerScheduler>(*counters_, cfg.segments,
                                                  retention_,
                                                  cfg.counterBits)),
      pending_(cfg.queueCapacity, this),
      monitor_(org_.totalRows(), cfg.monitor, this),
      bus_(cfg.bus, this),
      sram_(static_cast<double>(std::max(cfg.controllerMaxRows,
                                         org_.totalRows())) *
                cfg.counterBits / (8.0 * 1024.0),
            cfg.sram, this),
      smartRequested_(this, "smartRequested",
                      "counter-expiry refreshes requested"),
      cbrRequested_(this, "cbrRequested",
                    "CBR refreshes requested (fallback/overlap)"),
      skippedByCounters_(this, "touchesDeferred",
                         "counter touches that deferred a refresh"),
      cancelledWhileHeld_(this, "cancelledWhileHeld",
                          "DARP-held refreshes cancelled as redundant")
{
    // Section 5: counter banks for the controller's maximum capacity;
    // the BIOS enables one bank per installed totalRows-worth of DRAM.
    const std::uint64_t maxRows =
        std::max(cfg.controllerMaxRows, org_.totalRows());
    banksTotal_ = static_cast<std::uint32_t>(
        (maxRows + org_.totalRows() - 1) / org_.totalRows());
    banksEnabled_ = 1;

    if (cfg_.retentionClasses) {
        // Multi-rate counters: a class-m row restarts its countdown at
        // m x 2^counterBits - 1, deferring its next periodic refresh to
        // the class deadline m x retention (the walk period stays
        // retention / 2^counterBits).
        const auto &classes = *cfg_.retentionClasses;
        SMARTREF_ASSERT(classes.totalRows() == org_.totalRows(),
                        "class map sized for ", classes.totalRows(),
                        " rows, module has ", org_.totalRows());
        for (std::uint64_t i = 0; i < org_.totalRows(); ++i) {
            const auto resetVal = static_cast<std::uint8_t>(
                classes.multiplier(i) * (1u << cfg_.counterBits) - 1);
            counters_->setResetValue(i, resetVal);
        }
    }
}

double
SmartRefreshPolicy::counterAreaKBUsed() const
{
    // Uses the *storage* width, which exceeds cfg_.counterBits when
    // multi-rate retention classes widen the counters.
    return counterAreaKB(org_.banks, org_.ranks, org_.rows,
                         counters_->bits());
}

void
SmartRefreshPolicy::start()
{
    SMARTREF_ASSERT(ctrl_ != nullptr, "policy not bound to a controller");
    if (cfg_.startInCbrMode) {
        mode_ = Mode::Cbr;
        cbrActive_ = true;
        scheduleCbr();
    } else {
        mode_ = Mode::Smart;
        countersActive_ = true;
        stagger_->initialiseStaggered();
        scheduleStep();
    }
    if (cfg_.autoReconfigure)
        scheduleWindow();
}

void
SmartRefreshPolicy::scheduleStep()
{
    eq_.scheduleAfter(stagger_->stepInterval(),
                      [this, gen = stepGen_] { doStep(gen); },
                      EventPriority::ClockTick);
}

void
SmartRefreshPolicy::doStep(std::uint64_t generation)
{
    if (!countersActive_ || generation != stepGen_)
        return;
    PhaseScope walkScope(profiler_, "walk");
    // Expired counters are emitted spread across the step interval (the
    // pending queue dispatches one refresh per sub-slot) so that a step
    // never slams all banks with simultaneous refreshes.
    const Tick slot = stagger_->stepInterval() / stagger_->segments();
    std::uint32_t expired = 0;
    stagger_->step(eq_.now(), [this, &expired, slot](std::uint64_t idx) {
        const Tick delay = Tick(expired) * slot;
        ++expired;
        if (delay == 0) {
            emitSmartRefresh(idx);
        } else {
            SMARTREF_AUDIT_RECORD(
                audit_, eq_.now(),
                static_cast<std::uint32_t>((idx / org_.rows) / org_.banks),
                static_cast<std::uint32_t>((idx / org_.rows) % org_.banks),
                static_cast<std::uint32_t>(idx % org_.rows),
                AuditOutcome::Deferred, AuditSource::SmartSchedule);
            eq_.scheduleAfter(delay,
                              [this, idx] { emitSmartRefresh(idx); });
        }
    });
    skippedByCounters_ +=
        static_cast<double>(stagger_->segments() - expired);
    scheduleStep();
}

void
SmartRefreshPolicy::emitSmartRefresh(std::uint64_t counterIndex)
{
    RefreshRequest req;
    req.row = static_cast<std::uint32_t>(counterIndex % org_.rows);
    const std::uint64_t rb = counterIndex / org_.rows;
    req.bank = static_cast<std::uint32_t>(rb % org_.banks);
    req.rank = static_cast<std::uint32_t>(rb / org_.banks);
    req.cbr = false;
    req.created = eq_.now();
    ++smartRequested_;
    SMARTREF_TRACE(TraceCategory::Counter, eq_.now(), "counterExpiry",
                   req.rank, req.bank, req.row);
    pending_.push(req);
    ctrl_->pushRefresh(req);
}

void
SmartRefreshPolicy::scheduleCbr()
{
    eq_.scheduleAfter(cbrSpacing_,
                      [this, gen = cbrGen_] { doCbr(gen); },
                      EventPriority::ClockTick);
}

void
SmartRefreshPolicy::doCbr(std::uint64_t generation)
{
    if (!cbrActive_ || generation != cbrGen_)
        return;
    RefreshRequest req;
    req.rank = nextCbrRank_;
    req.cbr = true;
    req.created = eq_.now();
    nextCbrRank_ = (nextCbrRank_ + 1) % org_.ranks;
    ++cbrRequested_;
    SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(), "smartCbrRequested",
                   req.rank);
    ctrl_->pushRefresh(req);
    scheduleCbr();
}

void
SmartRefreshPolicy::scheduleWindow()
{
    eq_.scheduleAfter(retention_, [this] { closeWindow(); },
                      EventPriority::Stats);
}

void
SmartRefreshPolicy::closeWindow()
{
    if (mode_ == Mode::EnableOverlap || mode_ == Mode::DisableOverlap) {
        monitor_.discardWindow(eq_.now());
    } else {
        const auto decision =
            monitor_.closeWindow(mode_ == Mode::Smart, eq_.now());
        switch (decision) {
          case ActivityMonitor::Decision::SwitchToCbr:
            beginDisable();
            break;
          case ActivityMonitor::Decision::SwitchToSmart:
            beginEnable();
            break;
          case ActivityMonitor::Decision::KeepSmart:
          case ActivityMonitor::Decision::KeepCbr:
            break;
        }
    }
    scheduleWindow();
}

void
SmartRefreshPolicy::beginDisable()
{
    // Start CBR now; keep the counters running one full interval so that
    // every row stays covered by at least one mechanism at every instant.
    mode_ = Mode::DisableOverlap;
    cbrActive_ = true;
    ++cbrGen_;
    SMARTREF_TRACE(TraceCategory::Monitor, eq_.now(), "modeDisableOverlap",
                   -1, -1, -1, 0.0, 0, "smart+cbr");
    scheduleCbr();
    eq_.scheduleAfter(retention_, [this] {
        if (mode_ != Mode::DisableOverlap)
            return;
        countersActive_ = false;
        ++stepGen_;
        mode_ = Mode::Cbr;
        SMARTREF_TRACE(TraceCategory::Monitor, eq_.now(), "modeCbr", -1,
                       -1, -1, 0.0, 0, "counters off");
    });
}

void
SmartRefreshPolicy::beginEnable()
{
    // Restart the counters now; keep CBR running one full interval, after
    // which every counter has been reset at least once by a CBR refresh
    // and the Section 4.3 guarantee carries the deadline from there.
    mode_ = Mode::EnableOverlap;
    countersActive_ = true;
    ++stepGen_;
    SMARTREF_TRACE(TraceCategory::Monitor, eq_.now(), "modeEnableOverlap",
                   -1, -1, -1, 0.0, 0, "smart+cbr");
    stagger_->initialiseStaggered();
    scheduleStep();
    eq_.scheduleAfter(retention_, [this] {
        if (mode_ != Mode::EnableOverlap)
            return;
        cbrActive_ = false;
        ++cbrGen_;
        mode_ = Mode::Smart;
        SMARTREF_TRACE(TraceCategory::Monitor, eq_.now(), "modeSmart", -1,
                       -1, -1, 0.0, 0, "cbr off");
    });
}

void
SmartRefreshPolicy::onRowActivated(std::uint32_t rank, std::uint32_t bank,
                                   std::uint32_t row)
{
    monitor_.recordAccess();
    if (countersActive_) {
        counters_->reset(counterIndex(rank, bank, row));
        SMARTREF_TRACE(TraceCategory::Counter, eq_.now(),
                       "counterReset.activate", rank, bank, row);
    }
}

void
SmartRefreshPolicy::onRowClosed(std::uint32_t rank, std::uint32_t bank,
                                std::uint32_t row)
{
    // Closing a page writes it back, which restores the charge exactly
    // like a refresh (Section 4.1), so the counter resets again.
    if (countersActive_) {
        counters_->reset(counterIndex(rank, bank, row));
        SMARTREF_TRACE(TraceCategory::Counter, eq_.now(),
                       "counterReset.close", rank, bank, row);
    }
}

void
SmartRefreshPolicy::onRefreshIssued(const RefreshRequest &req)
{
    if (req.cbr) {
        // A fallback/overlap CBR refresh restored this row; if the
        // counters are live they must learn about it.
        if (countersActive_) {
            counters_->reset(counterIndex(req.rank, req.bank, req.row));
            SMARTREF_TRACE(TraceCategory::Counter, eq_.now(),
                           "counterReset.cbr", req.rank, req.bank,
                           req.row);
        }
        return;
    }
    bus_.recordAccesses(1);
    pending_.markIssued(req);
}

bool
SmartRefreshPolicy::refreshStillNeeded(const RefreshRequest &req,
                                       bool rowCurrentlyOpen) const
{
    (void)req;
    // An open row's charge is in the sense amplifiers and will be
    // restored by the eventual precharge (the idle-precharge timer
    // bounds how long that takes, and the retention tracker does not
    // age open rows), so a DARP-held refresh to it is redundant: the
    // close notification resets the row's counter. A closed row keeps
    // its expired counter, so the refresh must still issue.
    return !rowCurrentlyOpen;
}

void
SmartRefreshPolicy::onRefreshCancelled(const RefreshRequest &req)
{
    // Retire the pending-queue entry exactly as an issue would; the
    // row's restore is carried by the upcoming precharge instead.
    pending_.markIssued(req);
    ++cancelledWhileHeld_;
    SMARTREF_TRACE(TraceCategory::Refresh, eq_.now(), "smartCancelled",
                   req.rank, req.bank, req.row);
}

double
SmartRefreshPolicy::overheadEnergy() const
{
    return bus_.totalEnergy() +
           sram_.energyFor(counters_->sramReads(),
                           counters_->sramWrites());
}

void
SmartRefreshPolicy::setHeatmap(RefreshHeatmap *heatmap)
{
    if (heatmap) {
        SMARTREF_ASSERT(heatmap->segments() >= cfg_.segments &&
                            heatmap->counterMax() >= counters_->maxValue(),
                        "heatmap shape (", heatmap->segments(), " segments, "
                        "counterMax ", heatmap->counterMax(),
                        ") too small for policy (", cfg_.segments,
                        " segments, counterMax ",
                        unsigned(counters_->maxValue()), ")");
    }
    counters_->setHeatmap(heatmap);
}

void
SmartRefreshPolicy::setAudit(RefreshAudit *audit)
{
    audit_ = audit;
    counters_->setAudit(audit, &eq_, org_.banks, org_.rows);
}

void
SmartRefreshPolicy::syncEnergyStats()
{
    const std::uint64_t reads = counters_->sramReads();
    const std::uint64_t writes = counters_->sramWrites();
    sram_.recordTraffic(reads - syncedReads_, writes - syncedWrites_);
    syncedReads_ = reads;
    syncedWrites_ = writes;
}

} // namespace smartref

#include "core/pending_refresh_queue.hh"

namespace smartref {

PendingRefreshQueue::PendingRefreshQueue(std::size_t capacity,
                                         StatGroup *parent)
    : StatGroup("pendingQueue", parent),
      capacity_(capacity),
      pushed_(this, "pushed", "refresh requests enqueued"),
      overflows_(this, "overflows",
                 "requests arriving at a full queue (should be 0)")
{
}

void
PendingRefreshQueue::push(const RefreshRequest &req)
{
    if (queue_.size() >= capacity_)
        ++overflows_;
    queue_.push_back(req);
    maxDepth_ = std::max(maxDepth_, queue_.size());
    ++pushed_;
}

bool
PendingRefreshQueue::markIssued(const RefreshRequest &req)
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->rank == req.rank && it->bank == req.bank &&
            it->row == req.row) {
            queue_.erase(it);
            return true;
        }
    }
    return false;
}

} // namespace smartref

#include "core/sram_energy_model.hh"

#include "sim/logging.hh"

namespace smartref {

SramEnergyModel::SramEnergyModel(double arrayKB,
                                 const SramEnergyParams &params,
                                 StatGroup *parent)
    : StatGroup("counterSram", parent),
      arrayKB_(arrayKB),
      energy_(this, "energy", "counter SRAM energy (J)"),
      reads_(this, "reads", "counter SRAM reads"),
      writes_(this, "writes", "counter SRAM writes")
{
    SMARTREF_ASSERT(arrayKB > 0.0, "empty SRAM array");
    readEnergy_ =
        (params.baseReadPj + params.slopePjPerKB * arrayKB) * 1e-12;
    writeEnergy_ = readEnergy_ * params.writeFactor;
}

void
SramEnergyModel::recordTraffic(std::uint64_t reads, std::uint64_t writes)
{
    reads_ += static_cast<double>(reads);
    writes_ += static_cast<double>(writes);
    energy_ += readEnergy_ * static_cast<double>(reads) +
               writeEnergy_ * static_cast<double>(writes);
}

} // namespace smartref

/**
 * @file
 * The Smart Refresh policy — the paper's primary contribution.
 *
 * A B-bit down-counter is kept per (rank, bank, row). Demand activity
 * (row open and row close) resets the corresponding counter to its
 * maximum; the staggered segment walk touches each counter exactly once
 * per counter access period and emits a RAS-only refresh only when a
 * counter has expired. Refreshes for recently-touched rows are thereby
 * skipped while the Section 4.3 deadline guarantee is preserved.
 *
 * Section 4.6 self-configuration: a per-interval activity monitor falls
 * back to plain CBR refresh when the DRAM is nearly idle and re-enables
 * the counters when activity returns. Mode switches are made safe by a
 * one-retention-interval *overlap*, during which both the old and the
 * new mechanism run: the paper does not spell out how to hand over
 * without violating a deadline, and the overlap is the simplest scheme
 * that provably cannot (each mechanism alone guarantees every row is
 * refreshed within one interval of the handover point). The overlap's
 * duplicate refreshes are the hysteresis cost and are fully accounted.
 *
 * Energy overheads charged to this policy (reported by overheadEnergy()):
 * address-bus energy for every RAS-only refresh posted (Table 3 model)
 * and counter-array SRAM energy (one read + one write per counter touch,
 * one write per demand reset — Section 6's accounting).
 */

#pragma once

#include <memory>

#include "core/activity_monitor.hh"
#include "core/counter_array.hh"
#include "core/pending_refresh_queue.hh"
#include "dram/retention_classes.hh"
#include "core/sram_energy_model.hh"
#include "core/stagger_scheduler.hh"
#include "ctrl/bus_energy_model.hh"
#include "ctrl/memory_controller.hh"
#include "ctrl/refresh_policy.hh"
#include "dram/dram_config.hh"
#include "sim/event_queue.hh"

namespace smartref {

class PhaseProfiler;

/** Tunables for SmartRefreshPolicy. */
struct SmartRefreshConfig
{
    std::uint32_t counterBits = 3;   ///< the paper simulates 3-bit counters
    std::uint32_t segments = 8;      ///< logical segments == queue entries
    std::size_t queueCapacity = 8;   ///< pending refresh queue size
    bool autoReconfigure = true;     ///< Section 4.6 on/off circuit
    bool startInCbrMode = false;     ///< begin disabled (tests/idle runs)
    /**
     * Hierarchical sparse counter storage: idle segments stay in the
     * analytic pristine closed form and the walk skips their SRAM
     * traffic (billed as summary reads / skipped touches instead). Off
     * by default — dense storage is the paper's modeled hardware and
     * the byte-exact golden behaviour. See core/counter_array.hh.
     */
    bool sparseCounters = false;
    /**
     * Section 5: the controller is built before the DRAM size is known,
     * so it carries counter banks for its maximum permissible capacity
     * and the BIOS enables only as many as the installed module needs.
     * This is the row count of that maximum capacity (0 = sized exactly
     * for the module). Only enabled banks are walked, but the SRAM
     * array's per-access energy reflects the full structure (the 768 KB
     * figure the paper quotes for a 32 GB-capable controller).
     */
    std::uint64_t controllerMaxRows = 0;
    /**
     * Optional RAPID-style retention classes (paper Section 8: "our
     * technique is orthogonal ... and can be applied on top"). When
     * set, counters widen by log2(max multiplier) bits and each row's
     * countdown restarts from multiplier x 2^counterBits - 1: strong
     * rows defer their periodic refresh to their own (longer) deadline
     * while access-driven resets keep working unchanged. The walk
     * granularity (counter access period) stays retention/2^counterBits.
     */
    std::shared_ptr<const RetentionClassMap> retentionClasses;
    ActivityMonitorParams monitor{};
    BusEnergyParams bus{};
    SramEnergyParams sram{};
};

/** The Smart Refresh memory-controller refresh policy. */
class SmartRefreshPolicy : public RefreshPolicy
{
  public:
    /** Operating mode (overlaps run both mechanisms at once). */
    enum class Mode { Smart, Cbr, EnableOverlap, DisableOverlap };

    SmartRefreshPolicy(const DramConfig &dramCfg,
                       const SmartRefreshConfig &cfg, EventQueue &eq,
                       StatGroup *parent);

    void start() override;
    void onRowActivated(std::uint32_t rank, std::uint32_t bank,
                        std::uint32_t row) override;
    void onRowClosed(std::uint32_t rank, std::uint32_t bank,
                     std::uint32_t row) override;
    void onRefreshIssued(const RefreshRequest &req) override;
    bool refreshStillNeeded(const RefreshRequest &req,
                            bool rowCurrentlyOpen) const override;
    void onRefreshCancelled(const RefreshRequest &req) override;
    double overheadEnergy() const override;
    std::string policyName() const override { return "smart"; }

    Mode mode() const { return mode_; }
    bool countersActive() const { return countersActive_; }
    bool cbrActive() const { return cbrActive_; }

    const CounterArray &counters() const { return *counters_; }
    const StaggerScheduler &stagger() const { return *stagger_; }
    const PendingRefreshQueue &pendingQueue() const { return pending_; }
    const ActivityMonitor &monitor() const { return monitor_; }
    const BusEnergyModel &bus() const { return bus_; }
    const SramEnergyModel &sram() const { return sram_; }

    std::uint64_t
    smartRefreshesRequested() const
    {
        return static_cast<std::uint64_t>(smartRequested_.value());
    }

    std::uint64_t
    cbrRefreshesRequested() const
    {
        return static_cast<std::uint64_t>(cbrRequested_.value());
    }

    /** Counter-array area in KB (Section 4.7 formula). */
    double counterAreaKBUsed() const;

    /** @name Section 5 counter banking. */
    ///@{
    /** Counter banks physically present in the controller. */
    std::uint32_t counterBanksTotal() const { return banksTotal_; }
    /** Counter banks the BIOS enabled for the installed module. */
    std::uint32_t counterBanksEnabled() const { return banksEnabled_; }
    ///@}

    /** Flush SRAM traffic into the energy model's statistics. */
    void syncEnergyStats();

    /**
     * Attach a spatial heatmap (not owned, may be null) to the counter
     * array: every walk touch feeds the per-segment skip/expiry and
     * counter-value distributions. The heatmap must have been sized for
     * at least this policy's segment count and counter range.
     */
    void setHeatmap(RefreshHeatmap *heatmap);

    /**
     * Attach a refresh decision audit trail (not owned, may be null):
     * walk touches that skip a refresh record SkippedCounterReset (via
     * the counter array) and expired counters whose refresh is pushed
     * to a later stagger sub-slot record Deferred.
     */
    void setAudit(RefreshAudit *audit) override;

    /** Attach a phase profiler (not owned, may be null): the counter
     *  walk runs under a "walk" scope. */
    void setProfiler(PhaseProfiler *profiler) { profiler_ = profiler; }

  private:
    std::uint64_t
    counterIndex(std::uint32_t rank, std::uint32_t bank,
                 std::uint32_t row) const
    {
        return (std::uint64_t(rank) * org_.banks + bank) * org_.rows + row;
    }

    void scheduleStep();
    void doStep(std::uint64_t generation);
    void scheduleCbr();
    void doCbr(std::uint64_t generation);
    void scheduleWindow();
    void closeWindow();
    void beginDisable();
    void beginEnable();
    void emitSmartRefresh(std::uint64_t counterIndex);

    DramOrganization org_;
    Tick retention_;
    Tick cbrSpacing_;
    SmartRefreshConfig cfg_;
    EventQueue &eq_;

    std::unique_ptr<CounterArray> counters_;
    std::unique_ptr<StaggerScheduler> stagger_;
    PendingRefreshQueue pending_;
    ActivityMonitor monitor_;
    BusEnergyModel bus_;
    SramEnergyModel sram_;

    std::uint32_t banksTotal_ = 1;
    std::uint32_t banksEnabled_ = 1;
    Mode mode_ = Mode::Smart;
    bool countersActive_ = false;
    bool cbrActive_ = false;
    std::uint64_t stepGen_ = 0;
    std::uint64_t cbrGen_ = 0;
    std::uint32_t nextCbrRank_ = 0;
    std::uint64_t syncedReads_ = 0;
    std::uint64_t syncedWrites_ = 0;
    RefreshAudit *audit_ = nullptr;
    PhaseProfiler *profiler_ = nullptr;

    Scalar smartRequested_;
    Scalar cbrRequested_;
    Scalar skippedByCounters_;
    Scalar cancelledWhileHeld_;
};

} // namespace smartref

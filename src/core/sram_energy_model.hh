/**
 * @file
 * Energy model of the counter SRAM array in the memory controller.
 *
 * The paper estimated per-access energy from an Artisan 90 nm SRAM
 * compiler datasheet; that tool is proprietary, so this model uses an
 * analytic fit typical of published 90 nm SRAM macros: a fixed decoder/
 * sense cost plus a bit-line term growing with array capacity. The logic
 * that decrements the counters is an order of magnitude cheaper than the
 * array access and is neglected, exactly as in the paper (Section 6).
 */

#pragma once

#include <cstdint>

#include "sim/stats.hh"

namespace smartref {

/** Per-access energy parameters for a 90 nm SRAM macro. */
struct SramEnergyParams
{
    double baseReadPj = 5.0;    ///< decoder + sense amp floor
    double slopePjPerKB = 0.3;  ///< bit-line cost per KB of array
    double writeFactor = 1.2;   ///< writes cost ~20 % more than reads
};

/** Computes and accumulates counter-array SRAM energy. */
class SramEnergyModel : public StatGroup
{
  public:
    /**
     * @param arrayKB capacity of the counter array in KB
     */
    SramEnergyModel(double arrayKB, const SramEnergyParams &params,
                    StatGroup *parent);

    double readEnergy() const { return readEnergy_; }   ///< J per read
    double writeEnergy() const { return writeEnergy_; } ///< J per write

    /** Record SRAM traffic (idempotent totals: pass deltas). */
    void recordTraffic(std::uint64_t reads, std::uint64_t writes);

    /** Energy of a given traffic volume, without accumulating it (J). */
    double
    energyFor(std::uint64_t reads, std::uint64_t writes) const
    {
        return readEnergy_ * static_cast<double>(reads) +
               writeEnergy_ * static_cast<double>(writes);
    }

    /** Total accumulated energy (J). */
    double totalEnergy() const { return energy_.value(); }

    double arrayKB() const { return arrayKB_; }

  private:
    double arrayKB_;
    double readEnergy_;
    double writeEnergy_;
    Scalar energy_;
    Scalar reads_;
    Scalar writes_;
};

} // namespace smartref

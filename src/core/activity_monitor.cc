#include "core/activity_monitor.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

ActivityMonitor::ActivityMonitor(std::uint64_t totalRows,
                                 const ActivityMonitorParams &params,
                                 StatGroup *parent)
    : StatGroup("activityMonitor", parent),
      windows_(this, "windows", "monitoring windows closed"),
      toCbr_(this, "switchesToCbr", "fall-backs to CBR refresh"),
      toSmart_(this, "switchesToSmart", "re-enables of Smart Refresh")
{
    SMARTREF_ASSERT(params.disableBelowFraction <
                        params.enableAboveFraction,
                    "hysteresis thresholds inverted");
    disableThreshold_ = static_cast<std::uint64_t>(
        std::ceil(params.disableBelowFraction *
                  static_cast<double>(totalRows)));
    enableThreshold_ = static_cast<std::uint64_t>(
        std::ceil(params.enableAboveFraction *
                  static_cast<double>(totalRows)));
}

namespace {

[[maybe_unused]] const char *
toString(ActivityMonitor::Decision d)
{
    switch (d) {
      case ActivityMonitor::Decision::KeepSmart: return "keepSmart";
      case ActivityMonitor::Decision::KeepCbr: return "keepCbr";
      case ActivityMonitor::Decision::SwitchToCbr: return "switchToCbr";
      case ActivityMonitor::Decision::SwitchToSmart:
        return "switchToSmart";
    }
    return "?";
}

} // namespace

void
ActivityMonitor::discardWindow(Tick now)
{
    (void)now; // only read when tracing is compiled in
    ++windows_;
    SMARTREF_TRACE(TraceCategory::Monitor, now, "windowDiscard", -1, -1,
                   -1, static_cast<double>(windowAccesses_), 0,
                   "transition in flight");
    windowAccesses_ = 0;
}

ActivityMonitor::Decision
ActivityMonitor::closeWindow(bool smartCurrentlyOn, Tick now)
{
    (void)now; // only read when tracing is compiled in
    ++windows_;
    const std::uint64_t accesses = windowAccesses_;
    windowAccesses_ = 0;

    Decision decision;
    if (smartCurrentlyOn) {
        decision = accesses < disableThreshold_ ? Decision::SwitchToCbr
                                                : Decision::KeepSmart;
    } else {
        decision = accesses > enableThreshold_ ? Decision::SwitchToSmart
                                               : Decision::KeepCbr;
    }
    if (decision == Decision::SwitchToCbr)
        ++toCbr_;
    else if (decision == Decision::SwitchToSmart)
        ++toSmart_;
    SMARTREF_TRACE(TraceCategory::Monitor, now, "windowClose", -1, -1, -1,
                   static_cast<double>(accesses), 0, toString(decision));
    return decision;
}

} // namespace smartref

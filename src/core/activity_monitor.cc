#include "core/activity_monitor.hh"

#include <cmath>

#include "sim/logging.hh"

namespace smartref {

ActivityMonitor::ActivityMonitor(std::uint64_t totalRows,
                                 const ActivityMonitorParams &params,
                                 StatGroup *parent)
    : StatGroup("activityMonitor", parent),
      windows_(this, "windows", "monitoring windows closed"),
      toCbr_(this, "switchesToCbr", "fall-backs to CBR refresh"),
      toSmart_(this, "switchesToSmart", "re-enables of Smart Refresh")
{
    SMARTREF_ASSERT(params.disableBelowFraction <
                        params.enableAboveFraction,
                    "hysteresis thresholds inverted");
    disableThreshold_ = static_cast<std::uint64_t>(
        std::ceil(params.disableBelowFraction *
                  static_cast<double>(totalRows)));
    enableThreshold_ = static_cast<std::uint64_t>(
        std::ceil(params.enableAboveFraction *
                  static_cast<double>(totalRows)));
}

void
ActivityMonitor::discardWindow()
{
    ++windows_;
    windowAccesses_ = 0;
}

ActivityMonitor::Decision
ActivityMonitor::closeWindow(bool smartCurrentlyOn)
{
    ++windows_;
    const std::uint64_t accesses = windowAccesses_;
    windowAccesses_ = 0;

    if (smartCurrentlyOn) {
        if (accesses < disableThreshold_) {
            ++toCbr_;
            return Decision::SwitchToCbr;
        }
        return Decision::KeepSmart;
    }
    if (accesses > enableThreshold_) {
        ++toSmart_;
        return Decision::SwitchToSmart;
    }
    return Decision::KeepCbr;
}

} // namespace smartref

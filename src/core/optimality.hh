/**
 * @file
 * The refresh-optimality metric of paper Section 4.4.
 *
 * Optimality measures how close rows are refreshed to the retention
 * deadline: an ideal scheme refreshing every row exactly at the deadline
 * is 100 % optimal. With B-bit counters the worst case is a refresh at
 * (1 - 1/2^B) of the interval, giving the closed form below (75 % for
 * 2 bits, 87.5 % for 3 bits).
 */

#pragma once

#include <cstdint>

namespace smartref {

/** Analytic worst-case optimality of Smart Refresh with B-bit counters. */
constexpr double
smartRefreshOptimality(std::uint32_t bitsPerCounter)
{
    return 1.0 - 1.0 / static_cast<double>(1ull << bitsPerCounter);
}

} // namespace smartref

/**
 * @file
 * The pending refresh request queue (paper Section 5, Figure 5).
 *
 * Expired counters enqueue refresh requests here; the memory controller
 * drains them into RAS-only refresh commands. The paper sizes the queue
 * at the segment count (8) and argues it can never overflow because at
 * most N requests are generated per counter-access step and a step
 * interval comfortably covers N row-refresh times. This implementation
 * keeps the bound *observable*: depth and overflow statistics are
 * recorded so the claim is checked by tests rather than assumed.
 */

#pragma once

#include <cstdint>
#include <deque>

#include "ctrl/mem_request.hh"
#include "sim/stats.hh"

namespace smartref {

/** Bounded-by-contract FIFO of outstanding refresh requests. */
class PendingRefreshQueue : public StatGroup
{
  public:
    PendingRefreshQueue(std::size_t capacity, StatGroup *parent);

    /** Nominal capacity (the paper's 8). */
    std::size_t capacity() const { return capacity_; }

    std::size_t depth() const { return queue_.size(); }
    std::size_t maxDepth() const { return maxDepth_; }

    /** Requests that found the queue already at capacity. */
    std::uint64_t
    overflows() const
    {
        return static_cast<std::uint64_t>(overflows_.value());
    }

    /** Enqueue a request (always accepted; overflow is recorded). */
    void push(const RefreshRequest &req);

    /**
     * Remove the entry matching an issued refresh. Engines may drain
     * banks out of order, so this searches rather than pops the front.
     * @return true if a matching entry was found
     */
    bool markIssued(const RefreshRequest &req);

    bool empty() const { return queue_.empty(); }

  private:
    std::size_t capacity_;
    std::deque<RefreshRequest> queue_;
    std::size_t maxDepth_ = 0;
    Scalar pushed_;
    Scalar overflows_;
};

} // namespace smartref

/**
 * @file
 * The per-row time-out counter array (paper Section 4.1).
 *
 * One small binary down-counter per (rank, bank, row). The array models
 * the SRAM structure the memory controller would hold: every touch is
 * counted as SRAM traffic so the energy overhead the paper accounts for
 * (Section 6) can be charged faithfully — a counter-access step is billed
 * one read and one write per touched counter, and a demand reset is one
 * write.
 *
 * Storage layout: logical index i (the (rank, bank, row) linearisation
 * used by every caller) is decoupled from the physical byte position via
 * physIndex(). With an interleave factor S (the stagger walk's segment
 * count), logical index s * P + p is stored at byte p * S + s, so the S
 * counters one StaggerScheduler::step touches — one per segment at the
 * same in-segment position p — are S *adjacent* bytes instead of S
 * bytes a full segment stride apart. The walk becomes one or two cache
 * lines per step instead of S guaranteed misses; demand resets pay one
 * shift-and-mask (or a divide for non-power-of-two segment sizes) to
 * map through the same function. The default interleave of 1 keeps the
 * identity layout.
 *
 * Hierarchical sparse mode (server-scale capacities, docs/scaling.md):
 * with `sparse = true` the physical byte array is split into chunks of
 * `chunkPositions` walk positions (× interleave bytes each), allocated
 * lazily. An untouched ("pristine") chunk stores nothing: because the
 * walk decrements every position exactly once per cycle and the
 * staggered init gives all segments at position p the same start value,
 * a pristine position's value is a closed-form function of (position,
 * completed walk passes). The walk therefore skips a pristine chunk's
 * step in O(1) — one summary read instead of `interleave` counter
 * reads/writes — and bills no per-counter SRAM traffic for it; the
 * summary/skip totals are reported separately (summaryReads(),
 * touchesSkipped()). The first demand reset(), touch(), init() or
 * setResetValue() into a chunk materialises it from the closed form, so
 * observable behaviour (expiry sequence, peek values, heatmap and audit
 * streams) is bit-exact with the dense array; only the billed SRAM
 * traffic differs, by exactly the explicitly-accounted skips. Dense
 * mode (the default) is byte-for-byte the historical implementation.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "ctrl/refresh_audit.hh"
#include "ctrl/refresh_heatmap.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace smartref {

/** A fixed-size array of B-bit down-counters with SRAM traffic counts. */
class CounterArray
{
  public:
    /** Default walk positions per sparse chunk (32 KiB of counters at
     *  interleave 8). Billing depends on chunk granularity — a chunk is
     *  either wholly pristine or wholly materialised — so this is part
     *  of the modelled design, not a tuning knob. */
    static constexpr std::uint64_t kDefaultChunkPositions = 4096;

    /**
     * @param size number of counters (one per rank/bank/row)
     * @param bits counter width in bits (the paper uses 2 or 3)
     * @param interleave segment-interleave factor for the physical
     *        layout (the stagger walk's segment count); 1 = identity
     *        layout. Must divide `size` evenly.
     * @param sparse lazy chunked storage with an O(1) pristine walk
     *        fast path (see file comment); default dense
     * @param chunkPositions walk positions per sparse chunk; 0 picks
     *        kDefaultChunkPositions (tests use small chunks to exercise
     *        boundaries)
     */
    CounterArray(std::uint64_t size, std::uint32_t bits,
                 std::uint32_t interleave = 1, bool sparse = false,
                 std::uint64_t chunkPositions = 0)
        : bits_(bits), max_(static_cast<std::uint8_t>((1u << bits) - 1)),
          interleave_(interleave), sparse_(sparse),
          size_(size)
    {
        SMARTREF_ASSERT(bits >= 1 && bits <= 8,
                        "counter width ", bits, " unsupported");
        SMARTREF_ASSERT(size > 0, "empty counter array");
        SMARTREF_ASSERT(interleave >= 1 && size % interleave == 0,
                        "interleave ", interleave, " must divide ", size);
        perSegment_ = size / interleave;
        // Power-of-two segment sizes (every shipped geometry) map with a
        // shift and a mask instead of a divide.
        if (perSegment_ > 1 && (perSegment_ & (perSegment_ - 1)) == 0) {
            posMask_ = perSegment_ - 1;
            std::uint32_t shift = 0;
            while ((std::uint64_t(1) << shift) < perSegment_)
                ++shift;
            posShift_ = shift;
        }
        if (sparse_) {
            chunkPositions_ = chunkPositions ? chunkPositions
                                             : kDefaultChunkPositions;
            chunkPositions_ = std::min(chunkPositions_, perSegment_);
            chunks_.resize((perSegment_ + chunkPositions_ - 1) /
                           chunkPositions_);
        } else {
            values_.assign(size, 0);
        }
    }

    std::uint64_t size() const { return size_; }
    std::uint32_t bits() const { return bits_; }
    std::uint8_t maxValue() const { return max_; }
    /** Segment-interleave factor of the physical layout. */
    std::uint32_t interleave() const { return interleave_; }
    /** True when built with lazy chunked storage. */
    bool sparse() const { return sparse_; }

    /**
     * Attach a spatial heatmap (not owned, may be null): every walk
     * touch reports its segment and pre-decrement counter value, which
     * is where the skip/expiry and counter-value distributions come
     * from. Costs one branch per touched counter when detached.
     */
    void setHeatmap(RefreshHeatmap *heatmap) { heatmap_ = heatmap; }
    RefreshHeatmap *heatmap() const { return heatmap_; }

    /**
     * Attach a refresh decision audit trail (not owned, may be null):
     * every walk touch that finds a non-zero counter — a refresh
     * opportunity skipped because an intervening access or refresh
     * reset the countdown — records a SkippedCounterReset outcome.
     * @p eq provides the timestamp; @p banks/@p rows decode the
     * logical counter index back into (rank, bank, row).
     */
    void
    setAudit(RefreshAudit *audit, const EventQueue *eq,
             std::uint32_t banks, std::uint32_t rows)
    {
        audit_ = audit;
        auditEq_ = eq;
        auditBanks_ = banks;
        auditRows_ = rows;
        SMARTREF_ASSERT(!audit_ || (auditEq_ && banks > 0 && rows > 0 &&
                                    std::uint64_t(banks) * rows > 0),
                        "audit decode shape must be non-empty");
    }

    /**
     * Physical byte position of logical counter i: the index-mapping
     * function shared by the stagger walk and demand resets.
     */
    std::uint64_t
    physIndex(std::uint64_t i) const
    {
        if (interleave_ == 1)
            return i;
        std::uint64_t seg, pos;
        if (posMask_ != 0) {
            seg = i >> posShift_;
            pos = i & posMask_;
        } else {
            seg = i / perSegment_;
            pos = i % perSegment_;
        }
        return pos * interleave_ + seg;
    }

    /** Storage the array occupies, in bits (for the area formula). */
    std::uint64_t
    storageBits() const
    {
        return size() * bits_;
    }

    /** Current value (no SRAM traffic; for tests/inspection). */
    std::uint8_t
    peek(std::uint64_t i) const
    {
        const std::uint64_t p = physIndex(i);
        if (!sparse_)
            return values_[p];
        const std::uint8_t *chunk =
            chunkFor((p / interleave_) / chunkPositions_);
        return chunk ? chunk[chunkOffset(p)]
                     : pristineValue(p / interleave_);
    }

    /** Set an initial value without SRAM traffic (initialisation). */
    void
    init(std::uint64_t i, std::uint8_t v)
    {
        SMARTREF_ASSERT(v <= max_, "init value ", int(v), " over max");
        slot(physIndex(i)) = v;
    }

    /**
     * Per-counter reset value (multi-rate extension): rows in stronger
     * retention classes restart their countdown from a higher value,
     * deferring their next refresh proportionally. Defaults to the
     * width's maximum for every counter. In sparse mode the pristine
     * closed form assumes the maximum, so the first call materialises
     * every chunk (retention classes and sparse storage do not compose
     * usefully; docs/scaling.md).
     */
    void
    setResetValue(std::uint64_t i, std::uint8_t v)
    {
        SMARTREF_ASSERT(v <= max_, "reset value ", int(v), " over max");
        if (resetValues_.empty()) {
            if (sparse_)
                materializeAll();
            resetValues_.assign(size_, max_);
        }
        resetValues_[physIndex(i)] = v;
    }

    /** The value reset()/expiry restarts this counter from. */
    std::uint8_t
    resetValue(std::uint64_t i) const
    {
        return resetValues_.empty() ? max_ : resetValues_[physIndex(i)];
    }

    /** Demand access: reset to the row's reset value (one SRAM write). */
    void
    reset(std::uint64_t i)
    {
        const std::uint64_t p = physIndex(i);
        slot(p) = resetValues_.empty() ? max_ : resetValues_[p];
        ++writes_;
    }

    /**
     * Periodic walk touch: read the counter; if zero, restart it and
     * report that a refresh is due, else decrement. Counted as one read
     * plus one write (the paper's conservative accounting).
     * @return true when the row must be refreshed
     */
    bool
    touch(std::uint64_t i)
    {
        ++reads_;
        ++writes_;
        const std::uint64_t p = physIndex(i);
        return touchRef(slot(p), p);
    }

    /**
     * One stagger-walk step over the interleaved layout: touch the
     * counter at in-segment position `pos` of every segment — exactly
     * `interleave()` physically adjacent bytes — invoking
     * `expired(segment)` for each counter found at zero. SRAM traffic
     * (one read + one write per touched counter) is billed once for the
     * whole step. Only meaningful when the array was built with an
     * interleave factor equal to the walk's segment count.
     *
     * Sparse mode: a step whose chunk is pristine is answered from the
     * per-chunk summary in O(1) — billed as one summary read, with the
     * `interleave()` per-counter touches recorded in touchesSkipped()
     * instead of the SRAM traffic counters. Observable behaviour
     * (expiry callbacks, heatmap, audit) is identical to dense.
     */
    template <typename Fn>
    void
    walkStep(std::uint64_t pos, Fn &&expired)
    {
        if (!sparse_) {
            reads_ += interleave_;
            writes_ += interleave_;
            const std::uint64_t base = pos * interleave_;
            for (std::uint32_t s = 0; s < interleave_; ++s) {
                if (heatmap_)
                    heatmap_->recordCounterTouch(s, values_[base + s]);
#ifndef SMARTREF_AUDIT_DISABLED
                if (audit_ && values_[base + s] != 0)
                    recordWalkSkip(std::uint64_t(s) * perSegment_ + pos);
#endif
                if (touchRef(values_[base + s], base + s))
                    expired(s);
            }
            return;
        }

        // The stagger walk visits positions cyclically, which is what
        // makes the pristine closed form a function of (pos, pass).
        SMARTREF_ASSERT(pos == nextPos_, "sparse walk out of order: pos ",
                        pos, " expected ", nextPos_);
        std::uint8_t *chunk = chunkFor(pos / chunkPositions_);
        if (chunk) {
            reads_ += interleave_;
            writes_ += interleave_;
            std::uint8_t *base =
                chunk + (pos % chunkPositions_) * interleave_;
            const std::uint64_t physBase = pos * interleave_;
            for (std::uint32_t s = 0; s < interleave_; ++s) {
                if (heatmap_)
                    heatmap_->recordCounterTouch(s, base[s]);
#ifndef SMARTREF_AUDIT_DISABLED
                if (audit_ && base[s] != 0)
                    recordWalkSkip(std::uint64_t(s) * perSegment_ + pos);
#endif
                if (touchRef(base[s], physBase + s))
                    expired(s);
            }
        } else {
            // Pristine chunk: all segments at this position share one
            // analytic value. One summary read answers the whole step.
            ++summaryReads_;
            touchesSkipped_ += interleave_;
            const std::uint8_t v = pristineValue(pos);
            if (heatmap_) {
                for (std::uint32_t s = 0; s < interleave_; ++s)
                    heatmap_->recordCounterTouch(s, v);
            }
#ifndef SMARTREF_AUDIT_DISABLED
            if (audit_ && v != 0) {
                for (std::uint32_t s = 0; s < interleave_; ++s)
                    recordWalkSkip(std::uint64_t(s) * perSegment_ + pos);
            }
#endif
            if (v == 0) {
                for (std::uint32_t s = 0; s < interleave_; ++s)
                    expired(s);
            }
        }
        if (++nextPos_ == perSegment_) {
            nextPos_ = 0;
            ++pass_;
        }
    }

    /**
     * Rewrite every counter with the staggered start pattern
     * min(maxValue - (p % 2^bits), resetValue) used by
     * StaggerScheduler::initialiseStaggered, where p is the in-segment
     * position under `segments` walk lanes, and restart the sparse walk
     * bookkeeping. In sparse mode with `segments == interleave()` and
     * uniform reset values this frees every chunk instead of writing
     * the pattern out — the pattern *is* the pristine closed form at
     * pass 0 — which is what keeps a server-scale array unallocated
     * until demand traffic arrives.
     */
    void
    resetToStaggeredPattern(std::uint32_t segments)
    {
        SMARTREF_ASSERT(segments >= 1 && size_ % segments == 0,
                        "segments ", segments, " must divide ", size_);
        if (sparse_) {
            nextPos_ = 0;
            pass_ = 0;
            staggered_ = true;
            if (segments == interleave_ && resetValues_.empty()) {
                for (auto &chunk : chunks_)
                    chunk.reset();
                residentChunks_ = 0;
                return;
            }
        }
        const std::uint64_t per = size_ / segments;
        const std::uint32_t numValues = 1u << bits_;
        for (std::uint64_t s = 0; s < segments; ++s) {
            for (std::uint64_t p = 0; p < per; ++p) {
                const std::uint64_t idx = s * per + p;
                const auto pattern =
                    static_cast<std::uint8_t>(max_ - (p % numValues));
                init(idx, std::min(pattern, resetValue(idx)));
            }
        }
    }

    /** @name SRAM traffic counters. */
    ///@{
    std::uint64_t sramReads() const { return reads_; }
    std::uint64_t sramWrites() const { return writes_; }
    ///@}

    /** @name Sparse-mode accounting (all zero in dense mode). */
    ///@{
    /** Pristine-chunk walk steps answered from the summary (O(1)). */
    std::uint64_t summaryReads() const { return summaryReads_; }
    /** Per-counter touches those summary answers replaced. */
    std::uint64_t touchesSkipped() const { return touchesSkipped_; }
    /** Chunks currently materialised. */
    std::uint64_t chunksResident() const { return residentChunks_; }
    /** Chunks the layout would hold when fully materialised. */
    std::uint64_t
    chunksTotal() const
    {
        return chunks_.size();
    }
    ///@}

    /**
     * Bytes of counter storage actually resident: the whole array when
     * dense, materialised chunks (plus any per-counter reset values)
     * when sparse. Deterministic — materialisation depends only on the
     * simulated access sequence — so it may appear in meta blocks.
     */
    std::uint64_t
    residentCounterBytes() const
    {
        const std::uint64_t resets = resetValues_.size();
        if (!sparse_)
            return values_.size() + resets;
        return residentChunks_ * chunkBytes() + resets;
    }

  private:
    /** Record a SkippedCounterReset for logical counter index `idx`. */
    void
    recordWalkSkip(std::uint64_t idx)
    {
        const auto row = static_cast<std::uint32_t>(idx % auditRows_);
        const std::uint64_t rb = idx / auditRows_;
        const auto bank = static_cast<std::uint32_t>(rb % auditBanks_);
        const auto rank = static_cast<std::uint32_t>(rb / auditBanks_);
        audit_->record(auditEq_->now(), rank, bank, row,
                       AuditOutcome::SkippedCounterReset,
                       AuditSource::SmartWalk);
    }

    /** Touch through a reference; traffic is billed by the caller. */
    bool
    touchRef(std::uint8_t &v, std::uint64_t phys)
    {
        if (v == 0) {
            v = resetValues_.empty() ? max_ : resetValues_[phys];
            return true;
        }
        --v;
        return false;
    }

    std::uint64_t chunkBytes() const { return chunkPositions_ * interleave_; }

    /** Byte offset of physical position `phys` inside its chunk. */
    std::uint64_t
    chunkOffset(std::uint64_t phys) const
    {
        const std::uint64_t pos = phys / interleave_;
        return (pos % chunkPositions_) * interleave_ + phys % interleave_;
    }

    std::uint8_t *
    chunkFor(std::uint64_t chunkIdx)
    {
        return chunks_[chunkIdx].get();
    }
    const std::uint8_t *
    chunkFor(std::uint64_t chunkIdx) const
    {
        return chunks_[chunkIdx].get();
    }

    /**
     * Value of every still-pristine counter at in-segment position
     * `pos`: the staggered start value (or 0 when never initialised)
     * minus one per completed walk visit, mod 2^bits — the wrap at zero
     * is exactly the expiry reset back to maxValue.
     */
    std::uint8_t
    pristineValue(std::uint64_t pos) const
    {
        const std::uint64_t m = std::uint64_t(max_) + 1;
        const std::uint64_t visits =
            pass_ + (pos < nextPos_ ? 1 : 0);
        const std::uint64_t v0 = staggered_ ? max_ - (pos % m) : 0;
        return static_cast<std::uint8_t>((v0 + m - visits % m) % m);
    }

    /** Materialise (if needed) and return the chunk holding `pos`. */
    std::uint8_t *
    ensureChunk(std::uint64_t chunkIdx)
    {
        auto &ptr = chunks_[chunkIdx];
        if (!ptr) {
            ptr = std::make_unique<std::uint8_t[]>(chunkBytes());
            const std::uint64_t first = chunkIdx * chunkPositions_;
            const std::uint64_t count =
                std::min(chunkPositions_, perSegment_ - first);
            for (std::uint64_t p = 0; p < count; ++p) {
                std::fill_n(ptr.get() + p * interleave_, interleave_,
                            pristineValue(first + p));
            }
            ++residentChunks_;
        }
        return ptr.get();
    }

    void
    materializeAll()
    {
        for (std::uint64_t c = 0; c < chunks_.size(); ++c)
            ensureChunk(c);
    }

    /** Mutable byte of physical position `phys`, materialising in
     *  sparse mode. */
    std::uint8_t &
    slot(std::uint64_t phys)
    {
        if (!sparse_)
            return values_[phys];
        std::uint8_t *chunk =
            ensureChunk((phys / interleave_) / chunkPositions_);
        return chunk[chunkOffset(phys)];
    }

    std::uint32_t bits_;
    std::uint8_t max_;
    std::uint32_t interleave_;
    bool sparse_;
    std::uint64_t size_;
    std::uint64_t perSegment_ = 0;
    std::uint64_t posMask_ = 0;   ///< non-zero when perSegment_ is pow2
    std::uint32_t posShift_ = 0;
    std::vector<std::uint8_t> values_;       ///< physical layout (dense)
    std::vector<std::uint8_t> resetValues_;  ///< physical; empty = max
    /** Sparse storage: chunk c covers walk positions
     *  [c*chunkPositions_, ...); null = pristine (closed form). */
    std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
    std::uint64_t chunkPositions_ = 0;
    std::uint64_t residentChunks_ = 0;
    /** Sparse walk bookkeeping: completed full passes and the next
     *  position walkStep must visit. */
    std::uint64_t pass_ = 0;
    std::uint64_t nextPos_ = 0;
    bool staggered_ = false;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t summaryReads_ = 0;
    std::uint64_t touchesSkipped_ = 0;
    RefreshHeatmap *heatmap_ = nullptr;
    RefreshAudit *audit_ = nullptr;
    const EventQueue *auditEq_ = nullptr;
    std::uint32_t auditBanks_ = 0;
    std::uint32_t auditRows_ = 0;
};

/**
 * The paper's Section 4.7 area formula:
 * Area(KB) = Nbanks * Nranks * Nrows * bits / (8 * 1024).
 */
inline double
counterAreaKB(std::uint32_t banks, std::uint32_t ranks, std::uint32_t rows,
              std::uint32_t bitsPerCounter)
{
    return static_cast<double>(banks) * ranks * rows * bitsPerCounter /
           (8.0 * 1024.0);
}

} // namespace smartref

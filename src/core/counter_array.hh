/**
 * @file
 * The per-row time-out counter array (paper Section 4.1).
 *
 * One small binary down-counter per (rank, bank, row). The array models
 * the SRAM structure the memory controller would hold: every touch is
 * counted as SRAM traffic so the energy overhead the paper accounts for
 * (Section 6) can be charged faithfully — a counter-access step is billed
 * one read and one write per touched counter, and a demand reset is one
 * write.
 *
 * Storage layout: logical index i (the (rank, bank, row) linearisation
 * used by every caller) is decoupled from the physical byte position via
 * physIndex(). With an interleave factor S (the stagger walk's segment
 * count), logical index s * P + p is stored at byte p * S + s, so the S
 * counters one StaggerScheduler::step touches — one per segment at the
 * same in-segment position p — are S *adjacent* bytes instead of S
 * bytes a full segment stride apart. The walk becomes one or two cache
 * lines per step instead of S guaranteed misses; demand resets pay one
 * shift-and-mask (or a divide for non-power-of-two segment sizes) to
 * map through the same function. The default interleave of 1 keeps the
 * identity layout.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ctrl/refresh_audit.hh"
#include "ctrl/refresh_heatmap.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace smartref {

/** A fixed-size array of B-bit down-counters with SRAM traffic counts. */
class CounterArray
{
  public:
    /**
     * @param size number of counters (one per rank/bank/row)
     * @param bits counter width in bits (the paper uses 2 or 3)
     * @param interleave segment-interleave factor for the physical
     *        layout (the stagger walk's segment count); 1 = identity
     *        layout. Must divide `size` evenly.
     */
    CounterArray(std::uint64_t size, std::uint32_t bits,
                 std::uint32_t interleave = 1)
        : bits_(bits), max_(static_cast<std::uint8_t>((1u << bits) - 1)),
          interleave_(interleave), values_(size, 0)
    {
        SMARTREF_ASSERT(bits >= 1 && bits <= 8,
                        "counter width ", bits, " unsupported");
        SMARTREF_ASSERT(size > 0, "empty counter array");
        SMARTREF_ASSERT(interleave >= 1 && size % interleave == 0,
                        "interleave ", interleave, " must divide ", size);
        perSegment_ = size / interleave;
        // Power-of-two segment sizes (every shipped geometry) map with a
        // shift and a mask instead of a divide.
        if (perSegment_ > 1 && (perSegment_ & (perSegment_ - 1)) == 0) {
            posMask_ = perSegment_ - 1;
            std::uint32_t shift = 0;
            while ((std::uint64_t(1) << shift) < perSegment_)
                ++shift;
            posShift_ = shift;
        }
    }

    std::uint64_t size() const { return values_.size(); }
    std::uint32_t bits() const { return bits_; }
    std::uint8_t maxValue() const { return max_; }
    /** Segment-interleave factor of the physical layout. */
    std::uint32_t interleave() const { return interleave_; }

    /**
     * Attach a spatial heatmap (not owned, may be null): every walk
     * touch reports its segment and pre-decrement counter value, which
     * is where the skip/expiry and counter-value distributions come
     * from. Costs one branch per touched counter when detached.
     */
    void setHeatmap(RefreshHeatmap *heatmap) { heatmap_ = heatmap; }
    RefreshHeatmap *heatmap() const { return heatmap_; }

    /**
     * Attach a refresh decision audit trail (not owned, may be null):
     * every walk touch that finds a non-zero counter — a refresh
     * opportunity skipped because an intervening access or refresh
     * reset the countdown — records a SkippedCounterReset outcome.
     * @p eq provides the timestamp; @p banks/@p rows decode the
     * logical counter index back into (rank, bank, row).
     */
    void
    setAudit(RefreshAudit *audit, const EventQueue *eq,
             std::uint32_t banks, std::uint32_t rows)
    {
        audit_ = audit;
        auditEq_ = eq;
        auditBanks_ = banks;
        auditRows_ = rows;
        SMARTREF_ASSERT(!audit_ || (auditEq_ && banks > 0 && rows > 0 &&
                                    std::uint64_t(banks) * rows > 0),
                        "audit decode shape must be non-empty");
    }

    /**
     * Physical byte position of logical counter i: the index-mapping
     * function shared by the stagger walk and demand resets.
     */
    std::uint64_t
    physIndex(std::uint64_t i) const
    {
        if (interleave_ == 1)
            return i;
        std::uint64_t seg, pos;
        if (posMask_ != 0) {
            seg = i >> posShift_;
            pos = i & posMask_;
        } else {
            seg = i / perSegment_;
            pos = i % perSegment_;
        }
        return pos * interleave_ + seg;
    }

    /** Storage the array occupies, in bits (for the area formula). */
    std::uint64_t
    storageBits() const
    {
        return size() * bits_;
    }

    /** Current value (no SRAM traffic; for tests/inspection). */
    std::uint8_t peek(std::uint64_t i) const { return values_[physIndex(i)]; }

    /** Set an initial value without SRAM traffic (initialisation). */
    void
    init(std::uint64_t i, std::uint8_t v)
    {
        SMARTREF_ASSERT(v <= max_, "init value ", int(v), " over max");
        values_[physIndex(i)] = v;
    }

    /**
     * Per-counter reset value (multi-rate extension): rows in stronger
     * retention classes restart their countdown from a higher value,
     * deferring their next refresh proportionally. Defaults to the
     * width's maximum for every counter.
     */
    void
    setResetValue(std::uint64_t i, std::uint8_t v)
    {
        SMARTREF_ASSERT(v <= max_, "reset value ", int(v), " over max");
        if (resetValues_.empty())
            resetValues_.assign(values_.size(), max_);
        resetValues_[physIndex(i)] = v;
    }

    /** The value reset()/expiry restarts this counter from. */
    std::uint8_t
    resetValue(std::uint64_t i) const
    {
        return resetValues_.empty() ? max_ : resetValues_[physIndex(i)];
    }

    /** Demand access: reset to the row's reset value (one SRAM write). */
    void
    reset(std::uint64_t i)
    {
        const std::uint64_t p = physIndex(i);
        values_[p] = resetValues_.empty() ? max_ : resetValues_[p];
        ++writes_;
    }

    /**
     * Periodic walk touch: read the counter; if zero, restart it and
     * report that a refresh is due, else decrement. Counted as one read
     * plus one write (the paper's conservative accounting).
     * @return true when the row must be refreshed
     */
    bool
    touch(std::uint64_t i)
    {
        ++reads_;
        ++writes_;
        return touchPhys(physIndex(i));
    }

    /**
     * One stagger-walk step over the interleaved layout: touch the
     * counter at in-segment position `pos` of every segment — exactly
     * `interleave()` physically adjacent bytes — invoking
     * `expired(segment)` for each counter found at zero. SRAM traffic
     * (one read + one write per touched counter) is billed once for the
     * whole step. Only meaningful when the array was built with an
     * interleave factor equal to the walk's segment count.
     */
    template <typename Fn>
    void
    walkStep(std::uint64_t pos, Fn &&expired)
    {
        reads_ += interleave_;
        writes_ += interleave_;
        const std::uint64_t base = pos * interleave_;
        for (std::uint32_t s = 0; s < interleave_; ++s) {
            if (heatmap_)
                heatmap_->recordCounterTouch(s, values_[base + s]);
#ifndef SMARTREF_AUDIT_DISABLED
            if (audit_ && values_[base + s] != 0)
                recordWalkSkip(std::uint64_t(s) * perSegment_ + pos);
#endif
            if (touchPhys(base + s))
                expired(s);
        }
    }

    /** @name SRAM traffic counters. */
    ///@{
    std::uint64_t sramReads() const { return reads_; }
    std::uint64_t sramWrites() const { return writes_; }
    ///@}

  private:
    /** Record a SkippedCounterReset for logical counter index `idx`. */
    void
    recordWalkSkip(std::uint64_t idx)
    {
        const auto row = static_cast<std::uint32_t>(idx % auditRows_);
        const std::uint64_t rb = idx / auditRows_;
        const auto bank = static_cast<std::uint32_t>(rb % auditBanks_);
        const auto rank = static_cast<std::uint32_t>(rb / auditBanks_);
        audit_->record(auditEq_->now(), rank, bank, row,
                       AuditOutcome::SkippedCounterReset,
                       AuditSource::SmartWalk);
    }

    /** Touch by physical position; traffic is billed by the caller. */
    bool
    touchPhys(std::uint64_t p)
    {
        if (values_[p] == 0) {
            values_[p] = resetValues_.empty() ? max_ : resetValues_[p];
            return true;
        }
        --values_[p];
        return false;
    }

    std::uint32_t bits_;
    std::uint8_t max_;
    std::uint32_t interleave_;
    std::uint64_t perSegment_ = 0;
    std::uint64_t posMask_ = 0;   ///< non-zero when perSegment_ is pow2
    std::uint32_t posShift_ = 0;
    std::vector<std::uint8_t> values_;       ///< physical layout
    std::vector<std::uint8_t> resetValues_;  ///< physical; empty = max
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    RefreshHeatmap *heatmap_ = nullptr;
    RefreshAudit *audit_ = nullptr;
    const EventQueue *auditEq_ = nullptr;
    std::uint32_t auditBanks_ = 0;
    std::uint32_t auditRows_ = 0;
};

/**
 * The paper's Section 4.7 area formula:
 * Area(KB) = Nbanks * Nranks * Nrows * bits / (8 * 1024).
 */
inline double
counterAreaKB(std::uint32_t banks, std::uint32_t ranks, std::uint32_t rows,
              std::uint32_t bitsPerCounter)
{
    return static_cast<double>(banks) * ranks * rows * bitsPerCounter /
           (8.0 * 1024.0);
}

} // namespace smartref

/**
 * @file
 * The per-row time-out counter array (paper Section 4.1).
 *
 * One small binary down-counter per (rank, bank, row). The array models
 * the SRAM structure the memory controller would hold: every touch is
 * counted as SRAM traffic so the energy overhead the paper accounts for
 * (Section 6) can be charged faithfully — a counter-access step is billed
 * one read and one write per touched counter, and a demand reset is one
 * write.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace smartref {

/** A fixed-size array of B-bit down-counters with SRAM traffic counts. */
class CounterArray
{
  public:
    /**
     * @param size number of counters (one per rank/bank/row)
     * @param bits counter width in bits (the paper uses 2 or 3)
     */
    CounterArray(std::uint64_t size, std::uint32_t bits)
        : bits_(bits), max_(static_cast<std::uint8_t>((1u << bits) - 1)),
          values_(size, 0)
    {
        SMARTREF_ASSERT(bits >= 1 && bits <= 8,
                        "counter width ", bits, " unsupported");
        SMARTREF_ASSERT(size > 0, "empty counter array");
    }

    std::uint64_t size() const { return values_.size(); }
    std::uint32_t bits() const { return bits_; }
    std::uint8_t maxValue() const { return max_; }

    /** Storage the array occupies, in bits (for the area formula). */
    std::uint64_t
    storageBits() const
    {
        return size() * bits_;
    }

    /** Current value (no SRAM traffic; for tests/inspection). */
    std::uint8_t peek(std::uint64_t i) const { return values_[i]; }

    /** Set an initial value without SRAM traffic (initialisation). */
    void
    init(std::uint64_t i, std::uint8_t v)
    {
        SMARTREF_ASSERT(v <= max_, "init value ", int(v), " over max");
        values_[i] = v;
    }

    /**
     * Per-counter reset value (multi-rate extension): rows in stronger
     * retention classes restart their countdown from a higher value,
     * deferring their next refresh proportionally. Defaults to the
     * width's maximum for every counter.
     */
    void
    setResetValue(std::uint64_t i, std::uint8_t v)
    {
        SMARTREF_ASSERT(v <= max_, "reset value ", int(v), " over max");
        if (resetValues_.empty())
            resetValues_.assign(values_.size(), max_);
        resetValues_[i] = v;
    }

    /** The value reset()/expiry restarts this counter from. */
    std::uint8_t
    resetValue(std::uint64_t i) const
    {
        return resetValues_.empty() ? max_ : resetValues_[i];
    }

    /** Demand access: reset to the row's reset value (one SRAM write). */
    void
    reset(std::uint64_t i)
    {
        values_[i] = resetValue(i);
        ++writes_;
    }

    /**
     * Periodic walk touch: read the counter; if zero, restart it and
     * report that a refresh is due, else decrement. Counted as one read
     * plus one write (the paper's conservative accounting).
     * @return true when the row must be refreshed
     */
    bool
    touch(std::uint64_t i)
    {
        ++reads_;
        ++writes_;
        if (values_[i] == 0) {
            values_[i] = resetValue(i);
            return true;
        }
        --values_[i];
        return false;
    }

    /** @name SRAM traffic counters. */
    ///@{
    std::uint64_t sramReads() const { return reads_; }
    std::uint64_t sramWrites() const { return writes_; }
    ///@}

  private:
    std::uint32_t bits_;
    std::uint8_t max_;
    std::vector<std::uint8_t> values_;
    std::vector<std::uint8_t> resetValues_; ///< empty = uniform max
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

/**
 * The paper's Section 4.7 area formula:
 * Area(KB) = Nbanks * Nranks * Nrows * bits / (8 * 1024).
 */
inline double
counterAreaKB(std::uint32_t banks, std::uint32_t ranks, std::uint32_t rows,
              std::uint32_t bitsPerCounter)
{
    return static_cast<double>(banks) * ranks * rows * bitsPerCounter /
           (8.0 * 1024.0);
}

} // namespace smartref

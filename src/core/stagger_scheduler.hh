/**
 * @file
 * The staggered segment countdown of paper Section 4.2 (Figure 3).
 *
 * The counter array is partitioned into N logical segments. At every
 * *step*, exactly one counter per segment is touched (N total), and the
 * step index advances so that each counter is touched exactly once per
 * *counter access period* P = retention / 2^bits. A touched counter at
 * zero is reset to max and a refresh is emitted; otherwise it decrements.
 *
 * This walk guarantees (a) at most N refreshes are generated per step —
 * which bounds the pending-refresh queue at the segment count — and
 * (b) the spacing between touches of one counter is exactly P, which is
 * what makes the Section 4.3 correctness argument hold.
 *
 * For the 2 GB module (131072 counters, 8 segments) each segment covers
 * exactly one (rank, bank) pair, so the N simultaneous refreshes land in
 * independent banks and proceed in parallel.
 *
 * When the CounterArray was built with an interleave factor equal to the
 * segment count, one step's N counters are physically adjacent bytes and
 * the walk runs over them contiguously (CounterArray::walkStep); with
 * any other layout it falls back to the strided per-counter loop. Both
 * paths touch the same logical counters in the same order.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "core/counter_array.hh"
#include "sim/types.hh"

namespace smartref {

/** Walks a CounterArray in staggered segment order. */
class StaggerScheduler
{
  public:
    /** Invoked when a touched counter has expired (refresh due). */
    using RefreshFn = std::function<void(std::uint64_t counterIndex)>;

    /**
     * @param counters  the array to walk (not owned)
     * @param segments  number of logical segments N (pending-queue size)
     * @param retention the (nominal) retention interval in ticks
     * @param periodBits granularity bits defining the counter access
     *        period P = retention / 2^periodBits; 0 means "use the
     *        counter width". The multi-rate extension stores wider
     *        counters than the walk granularity, so the two decouple.
     */
    StaggerScheduler(CounterArray &counters, std::uint32_t segments,
                     Tick retention, std::uint32_t periodBits = 0);

    /** Counter access period P = retention / 2^bits. */
    Tick counterAccessPeriod() const { return period_; }

    /** Interval between successive steps = P / countersPerSegment. */
    Tick stepInterval() const { return stepInterval_; }

    std::uint32_t segments() const { return segments_; }
    std::uint64_t countersPerSegment() const { return perSegment_; }

    /**
     * Apply the staggered initialisation of Figure 2(b)/3: counter at
     * in-segment position p starts at max - (p mod 2^bits), spreading
     * expiry times uniformly over the first retention interval. Also
     * rewinds the step position — call when (re-)enabling Smart Refresh.
     */
    void initialiseStaggered();

    /**
     * Execute one step: touch one counter in each segment, invoking
     * `refresh` for every expired one (at most `segments` calls).
     */
    void step(const RefreshFn &refresh) { step(0, refresh); }

    /**
     * As above, with the current simulated time so the walk step can be
     * traced (category `counter`).
     */
    void step(Tick now, const RefreshFn &refresh);

    /** Number of steps executed so far. */
    std::uint64_t stepsExecuted() const { return steps_; }

    /** In-segment position the next step will touch. */
    std::uint64_t position() const { return position_; }

  private:
    CounterArray &counters_;
    std::uint32_t segments_;
    std::uint64_t perSegment_;
    Tick period_;
    Tick stepInterval_;
    std::uint64_t position_ = 0;
    std::uint64_t steps_ = 0;
};

} // namespace smartref

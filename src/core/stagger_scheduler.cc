#include "core/stagger_scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace smartref {

StaggerScheduler::StaggerScheduler(CounterArray &counters,
                                   std::uint32_t segments, Tick retention,
                                   std::uint32_t periodBits)
    : counters_(counters), segments_(segments)
{
    SMARTREF_ASSERT(segments > 0, "need at least one segment");
    SMARTREF_ASSERT(counters.size() % segments == 0,
                    "counters (", counters.size(),
                    ") must divide evenly into ", segments, " segments");
    if (periodBits == 0)
        periodBits = counters.bits();
    SMARTREF_ASSERT(periodBits <= counters.bits(),
                    "walk granularity finer than counter width");
    perSegment_ = counters.size() / segments;
    period_ = retention >> periodBits;
    SMARTREF_ASSERT(period_ > 0, "retention too short for counter width");
    stepInterval_ = period_ / perSegment_;
    SMARTREF_ASSERT(stepInterval_ > 0,
                    "too many counters per segment for the period");
}

void
StaggerScheduler::initialiseStaggered()
{
    // Spread expiry phases; never start above the row's reset value
    // (class deadlines must hold from the first interval). The array
    // owns the pattern so its sparse mode can express it as the
    // pristine closed form instead of writing every byte.
    counters_.resetToStaggeredPattern(segments_);
    position_ = 0;
}

void
StaggerScheduler::step(Tick now, const RefreshFn &refresh)
{
    (void)now; // only read when tracing is compiled in
    std::uint32_t expired = 0;
    if (counters_.interleave() == segments_) {
        // Interleaved layout: the step's counters are adjacent bytes,
        // touched in segment order (identical emission order to the
        // strided loop below) with the SRAM traffic billed per step.
        counters_.walkStep(position_, [&](std::uint32_t s) {
            ++expired;
            refresh(std::uint64_t(s) * perSegment_ + position_);
        });
    } else {
        for (std::uint32_t s = 0; s < segments_; ++s) {
            const std::uint64_t idx =
                std::uint64_t(s) * perSegment_ + position_;
            if (RefreshHeatmap *hm = counters_.heatmap())
                hm->recordCounterTouch(s, counters_.peek(idx));
            if (counters_.touch(idx)) {
                ++expired;
                refresh(idx);
            }
        }
    }
    SMARTREF_TRACE(TraceCategory::Counter, now, "counterWalkStep", -1, -1,
                   static_cast<std::int64_t>(position_),
                   static_cast<double>(expired));
    position_ = (position_ + 1) % perSegment_;
    ++steps_;
}

} // namespace smartref

/**
 * @file
 * Memory-trace records and file I/O.
 *
 * Traces capture the DRAM-level access stream (post-cache), one record
 * per access. Two interchangeable encodings are provided: a line-based
 * text format ("<tick> <hex addr> R|W") for inspection, and a packed
 * binary format for bulk replay. Readers auto-detect the format.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace smartref {

/** One traced memory access. */
struct TraceRecord
{
    Tick tick = 0;
    Addr addr = 0;
    bool write = false;

    bool
    operator==(const TraceRecord &o) const
    {
        return tick == o.tick && addr == o.addr && write == o.write;
    }
};

/** Trace file encodings. */
enum class TraceFormat { Text, Binary };

/** Streams TraceRecords to a file. */
class TraceWriter
{
  public:
    TraceWriter(const std::string &path, TraceFormat format);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &rec);
    std::uint64_t recordsWritten() const { return count_; }
    void close();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::uint64_t count_ = 0;
};

/** Reads TraceRecords from a file (format auto-detected). */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** @return false at end of trace. */
    bool next(TraceRecord &rec);

    TraceFormat format() const { return format_; }

    /** Convenience: slurp an entire trace. */
    static std::vector<TraceRecord> readAll(const std::string &path);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    TraceFormat format_ = TraceFormat::Text;
};

} // namespace smartref

/**
 * @file
 * Closed-loop address-stream generator.
 *
 * WorkloadModel drives *open-loop* traffic (accesses arrive at wall-
 * clock rates regardless of memory backpressure) — right for the
 * figure experiments, where the access stream is the independent
 * variable. A CPU model needs the *same spatial behaviour* but paced by
 * execution: AddressPattern produces one access at a time on demand,
 * using the identical WorkloadParams vocabulary (footprint sweep with
 * Zipf jumps, open-page run lengths, read mix, stride/offset
 * interleaving).
 */

#pragma once

#include "sim/random.hh"
#include "trace/workload_model.hh"

namespace smartref {

/** Pull-based generator of the WorkloadParams access pattern. */
class AddressPattern
{
  public:
    /** One generated access. */
    struct Access
    {
        Addr addr = 0;
        bool write = false;
        bool startsNewRow = false; ///< first access of a row visit
    };

    AddressPattern(const WorkloadParams &params, std::uint64_t rowBytes);

    /** Produce the next access of the stream. */
    Access next();

    std::uint64_t rowVisits() const { return visits_; }
    std::uint64_t accessesGenerated() const { return accesses_; }

  private:
    std::uint64_t pickRow();

    WorkloadParams params_;
    std::uint64_t rowBytes_;
    Rng rng_;
    ZipfSampler zipf_;
    std::uint64_t scanPos_ = 0;
    std::uint64_t currentRow_ = 0;
    std::uint32_t currentCol_ = 0;
    std::uint32_t runRemaining_ = 0;
    std::uint64_t visits_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace smartref

#include "trace/workload_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace smartref {

WorkloadModel::WorkloadModel(const WorkloadParams &params,
                             std::uint64_t rowBytes, Sink sink,
                             EventQueue &eq, StatGroup *parent)
    : StatGroup("workload." + params.name, parent),
      params_(params),
      rowBytes_(rowBytes),
      sink_(std::move(sink)),
      eq_(eq),
      rng_(params.seed),
      zipf_(std::max<std::uint64_t>(params.footprintRows, 1),
            params.zipfAlpha),
      visits_(this, "rowVisits", "row visits initiated"),
      accesses_(this, "accesses", "memory accesses issued"),
      jumps_(this, "randomJumps", "visits that jumped (vs swept)")
{
    SMARTREF_ASSERT(params.rowVisitsPerSecond > 0.0,
                    "visit rate must be positive");
    SMARTREF_ASSERT(params.footprintRows > 0, "empty footprint");
    SMARTREF_ASSERT(params.accessesPerVisit >= 1, "empty visits");
    SMARTREF_ASSERT(rowBytes_ > 0, "zero row span");
    meanInterArrival_ = static_cast<Tick>(
        static_cast<double>(kSecond) / params.rowVisitsPerSecond);
    SMARTREF_ASSERT(meanInterArrival_ > 0, "visit rate too high");
}

void
WorkloadModel::start()
{
    running_ = true;
    // Desynchronise workloads sharing a queue by a small random phase.
    eq_.scheduleAfter(params_.startAfter +
                          rng_.nextBelow(meanInterArrival_) + 1,
                      [this] { visit(); });
}

void
WorkloadModel::scheduleNextVisit()
{
    const double jitter = params_.interArrivalJitter;
    const double mean = static_cast<double>(meanInterArrival_);
    double dt = (1.0 - jitter) * mean;
    if (jitter > 0.0)
        dt += rng_.nextExponential(mean * jitter);
    eq_.scheduleAfter(std::max<Tick>(1, static_cast<Tick>(dt)),
                      [this] { visit(); });
}

std::uint64_t
WorkloadModel::pickRow()
{
    if (rng_.nextBool(params_.randomJumpProb)) {
        ++jumps_;
        return zipf_.sample(rng_);
    }
    const std::uint64_t row = scanPos_;
    scanPos_ = (scanPos_ + 1) % params_.footprintRows;
    return row;
}

Addr
WorkloadModel::rowToAddr(std::uint64_t footprintRow,
                         std::uint32_t column) const
{
    const std::uint64_t physicalRow =
        footprintRow * params_.rowStride + params_.rowOffset;
    return physicalRow * rowBytes_ +
           (column * 64ull) % rowBytes_; // 64 B line-grain columns
}

void
WorkloadModel::visit()
{
    if (!running_ || eq_.now() >= params_.stopAfter)
        return;
    ++visits_;

    const std::uint64_t row = pickRow();
    const std::uint32_t startCol =
        static_cast<std::uint32_t>(rng_.nextBelow(rowBytes_ / 64));
    // Issue the open-page run back-to-back, 45 ns apart (a row hit every
    // few controller cycles, comfortably above the burst time). Access i
    // lands at now + i * 45 ns; accesses that would land at or past
    // stopAfter are clamped off here so the accesses stat is exact at
    // the boundary instead of counting events that never fire.
    constexpr Tick kAccessSpacing = 45 * kNanosecond;
    const Tick headroom = params_.stopAfter - eq_.now();
    const std::uint64_t fitting = (headroom - 1) / kAccessSpacing + 1;
    const std::uint32_t count = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(params_.accessesPerVisit, fitting));

    if (count <= 65) {
        // Common case: the whole deferred train rides on one burst event
        // (one heap node, one callback slot) instead of count - 1
        // individually scheduled events. The write decisions are drawn
        // up front in the same RNG order as the per-event loop below
        // and packed into a bitmask; scheduleBurst reserves the same
        // contiguous sequence numbers the loop would have consumed, so
        // event interleaving is unchanged.
        const bool firstWrite = !rng_.nextBool(params_.readFraction);
        std::uint64_t writeMask = 0;
        for (std::uint32_t i = 1; i < count; ++i)
            if (!rng_.nextBool(params_.readFraction))
                writeMask |= std::uint64_t(1) << (i - 1);
        accesses_ += static_cast<double>(count);
        sink_(rowToAddr(row, startCol), firstWrite);
        if (count > 1) {
            eq_.scheduleBurst(
                eq_.now() + kAccessSpacing, kAccessSpacing, count - 1,
                [this, row, startCol, writeMask,
                 i = std::uint32_t(1)]() mutable {
                if (running_)
                    sink_(rowToAddr(row, startCol + i),
                          (writeMask >> (i - 1)) & 1);
                ++i;
            });
        }
    } else {
        // Oversized visit (> 64 deferred accesses): fall back to one
        // event per access, which has no bitmask width limit.
        for (std::uint32_t i = 0; i < count; ++i) {
            const bool write = !rng_.nextBool(params_.readFraction);
            const Addr addr = rowToAddr(row, startCol + i);
            ++accesses_;
            if (i == 0) {
                sink_(addr, write);
            } else {
                eq_.scheduleAfter(Tick(i) * kAccessSpacing,
                                  [this, addr, write] {
                    if (running_)
                        sink_(addr, write);
                });
            }
        }
    }
    scheduleNextVisit();
}

} // namespace smartref

/**
 * @file
 * Synthetic DRAM-level workload generator.
 *
 * What matters to a refresh policy is the stream of *row visits* over
 * time: which (rank, bank, row) pairs are touched, how often each is
 * re-touched relative to the retention interval, and how many column
 * accesses each visit performs (row-buffer locality). The generator
 * produces exactly that signature:
 *
 *  - Row visits start at `rowVisitsPerSecond` with configurable
 *    inter-arrival jitter.
 *  - Each visit picks a row: mostly a sequential sweep over the
 *    benchmark's footprint (cyclic scan), with a `randomJumpProb`
 *    fraction of Zipf-skewed jumps modelling hot structures.
 *  - A visit issues `accessesPerVisit` back-to-back column accesses to
 *    that row (the open-page hits), each read or write per
 *    `readFraction`.
 *
 * Rows are laid out block-linearly: footprint row index `fr` maps to
 * byte address fr * rowBytes (+ column offset), which under the default
 * row:rank:bank:column address scheme touches a distinct (rank, bank,
 * row) per index and interleaves banks between consecutive indices.
 * `rowStride`/`rowOffset` let multiprogrammed workloads interleave their
 * footprints across the module.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace smartref {

/** Calibrated generator parameters for one benchmark. */
struct WorkloadParams
{
    std::string name = "synthetic";
    std::string suite = "custom";
    double rowVisitsPerSecond = 1e6;  ///< row-visit initiation rate
    std::uint64_t footprintRows = 1024; ///< distinct rows cycled through
    std::uint32_t accessesPerVisit = 2; ///< open-page run length
    double randomJumpProb = 0.1;      ///< Zipf jump vs sequential sweep
    double zipfAlpha = 0.8;           ///< skew of random jumps
    double readFraction = 0.7;
    double interArrivalJitter = 0.5;  ///< 0 = clockwork, 1 = Poisson
    std::uint64_t rowStride = 1;      ///< footprint interleaving stride
    std::uint64_t rowOffset = 0;      ///< footprint interleaving offset
    Tick startAfter = 0;              ///< delay before the first visit
    Tick stopAfter = kTickMax;        ///< stop generating at this tick
    std::uint64_t seed = 42;
};

/** Event-driven synthetic access generator. */
class WorkloadModel : public StatGroup
{
  public:
    /** Receives each generated access. */
    using Sink = std::function<void(Addr addr, bool write)>;

    /**
     * @param rowBytes row span of the target module (address granularity
     *                 of one footprint row index)
     */
    WorkloadModel(const WorkloadParams &params, std::uint64_t rowBytes,
                  Sink sink, EventQueue &eq, StatGroup *parent);

    /** Begin generating; the first visit is scheduled immediately. */
    void start();

    /** Stop generating (subsequent scheduled visits are ignored). */
    void stop() { running_ = false; }

    const WorkloadParams &params() const { return params_; }

    std::uint64_t
    rowVisits() const
    {
        return static_cast<std::uint64_t>(visits_.value());
    }

    std::uint64_t
    accessesIssued() const
    {
        return static_cast<std::uint64_t>(accesses_.value());
    }

  private:
    void scheduleNextVisit();
    void visit();
    std::uint64_t pickRow();
    Addr rowToAddr(std::uint64_t footprintRow, std::uint32_t column) const;

    WorkloadParams params_;
    std::uint64_t rowBytes_;
    Sink sink_;
    EventQueue &eq_;
    Rng rng_;
    ZipfSampler zipf_;
    Tick meanInterArrival_;
    std::uint64_t scanPos_ = 0;
    bool running_ = false;

    Scalar visits_;
    Scalar accesses_;
    Scalar jumps_;
};

} // namespace smartref

#include "trace/address_pattern.hh"

#include "sim/logging.hh"

namespace smartref {

AddressPattern::AddressPattern(const WorkloadParams &params,
                               std::uint64_t rowBytes)
    : params_(params),
      rowBytes_(rowBytes),
      rng_(params.seed),
      zipf_(std::max<std::uint64_t>(params.footprintRows, 1),
            params.zipfAlpha)
{
    SMARTREF_ASSERT(params.footprintRows > 0, "empty footprint");
    SMARTREF_ASSERT(params.accessesPerVisit >= 1, "empty visits");
    SMARTREF_ASSERT(rowBytes_ >= 64, "row smaller than a line");
}

std::uint64_t
AddressPattern::pickRow()
{
    if (rng_.nextBool(params_.randomJumpProb))
        return zipf_.sample(rng_);
    const std::uint64_t row = scanPos_;
    scanPos_ = (scanPos_ + 1) % params_.footprintRows;
    return row;
}

AddressPattern::Access
AddressPattern::next()
{
    Access access;
    if (runRemaining_ == 0) {
        ++visits_;
        currentRow_ = pickRow();
        currentCol_ =
            static_cast<std::uint32_t>(rng_.nextBelow(rowBytes_ / 64));
        runRemaining_ = params_.accessesPerVisit;
        access.startsNewRow = true;
    }
    --runRemaining_;

    const std::uint64_t physicalRow =
        currentRow_ * params_.rowStride + params_.rowOffset;
    access.addr =
        physicalRow * rowBytes_ + (currentCol_ * 64ull) % rowBytes_;
    ++currentCol_;
    access.write = !rng_.nextBool(params_.readFraction);
    ++accesses_;
    return access;
}

} // namespace smartref

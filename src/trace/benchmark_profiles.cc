#include "trace/benchmark_profiles.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace smartref {

const std::vector<BenchmarkProfile> &
allProfiles()
{
    // Columns: name, suite, reduction2gb, reduction3d, readFraction,
    // accessesPerVisit, randomJumpProb, zipfAlpha, pair.
    //
    // reduction2gb anchors: fasta 0.26 and water-spatial 0.857 are quoted
    // in the text; radix (79 % refresh-energy saving) and gcc (25 %) pin
    // the extremes of Fig. 7; perl_twolf pins the Fig. 8 maximum (25 %
    // total). The suite-internal ordering follows Fig. 6's bars.
    // reduction3d anchors: mummer/clustalw 0.42 and fasta 0.04 (Fig. 12),
    // gcc_twolf highest pair (21.5 % total, Fig. 14).
    static const std::vector<BenchmarkProfile> profiles = {
        // accessesPerVisit encodes memory-reference intensity: streaming
        // codes re-read rows heavily (long open-page runs dilute the
        // refresh share of total energy -> small total savings), while
        // cache-friendly codes touch DRAM rows once and leave (refresh
        // dominates -> large total savings). This is the paper's "total
        // savings depend on the number of memory references" effect.
        //
        // Biobench — streaming genomics: long scans, few jumps.
        {"clustalw", "Biobench", 0.62, 0.42, 0.75, 2, 0.05, 0.6, false},
        {"fasta", "Biobench", 0.26, 0.04, 0.80, 16, 0.02, 0.5, false},
        {"hmmer", "Biobench", 0.55, 0.25, 0.70, 5, 0.10, 0.7, false},
        {"mummer", "Biobench", 0.68, 0.42, 0.72, 2, 0.15, 0.8, false},
        {"phylip", "Biobench", 0.60, 0.30, 0.74, 2, 0.08, 0.6, false},
        {"tiger", "Biobench", 0.58, 0.27, 0.73, 2, 0.10, 0.7, false},
        // SPLASH-2 — scientific kernels: sweeps over large grids.
        {"barnes", "SPLASH2", 0.55, 0.17, 0.68, 5, 0.25, 0.9, false},
        {"cholesky", "SPLASH2", 0.50, 0.15, 0.66, 8, 0.20, 0.9, false},
        {"fft", "SPLASH2", 0.65, 0.22, 0.65, 8, 0.05, 0.5, false},
        {"fmm", "SPLASH2", 0.60, 0.19, 0.67, 5, 0.20, 0.9, false},
        {"lucontig", "SPLASH2", 0.62, 0.18, 0.64, 8, 0.05, 0.5, false},
        {"lunoncontig", "SPLASH2", 0.66, 0.19, 0.64, 5, 0.15, 0.7, false},
        {"ocean-contig", "SPLASH2", 0.70, 0.24, 0.66, 3, 0.05, 0.5, false},
        {"radix", "SPLASH2", 0.79, 0.30, 0.55, 1, 0.30, 0.4, false},
        {"water-nsquared", "SPLASH2", 0.75, 0.22, 0.70, 1, 0.10, 0.7,
         false},
        {"water-spatial", "SPLASH2", 0.857, 0.25, 0.70, 1, 0.08, 0.6,
         false},
        // SPECint2000 — pointer-chasing integer codes: smaller alive
        // sets, more skew.
        {"eon", "SPECint2000", 0.45, 0.10, 0.72, 8, 0.30, 1.0, false},
        {"gcc", "SPECint2000", 0.35, 0.13, 0.70, 10, 0.35, 1.0, false},
        {"parser", "SPECint2000", 0.55, 0.17, 0.71, 4, 0.30, 0.9, false},
        {"perl", "SPECint2000", 0.72, 0.22, 0.69, 1, 0.25, 0.9, false},
        {"twolf", "SPECint2000", 0.70, 0.22, 0.68, 1, 0.30, 0.9, false},
        {"vpr", "SPECint2000", 0.60, 0.17, 0.69, 4, 0.30, 0.9, false},
        // Two-process SPECint pairs — interleaved footprints reduce
        // spatial locality and raise row coverage (Section 7.2).
        {"gcc_parser", "2Proc", 0.60, 0.25, 0.70, 4, 0.32, 0.9, true},
        {"gcc_perl", "2Proc", 0.68, 0.28, 0.70, 1, 0.30, 0.9, true},
        {"gcc_twolf", "2Proc", 0.72, 0.35, 0.69, 1, 0.32, 0.9, true},
        {"parser_perl", "2Proc", 0.70, 0.28, 0.70, 1, 0.28, 0.9, true},
        {"parser_twolf", "2Proc", 0.72, 0.30, 0.70, 1, 0.30, 0.9, true},
        {"perl_twolf", "2Proc", 0.78, 0.32, 0.68, 1, 0.27, 0.9, true},
        {"vpr_gcc", "2Proc", 0.62, 0.26, 0.70, 4, 0.32, 0.9, true},
        {"vpr_parser", "2Proc", 0.65, 0.26, 0.70, 1, 0.30, 0.9, true},
        {"vpr_perl", "2Proc", 0.72, 0.30, 0.69, 1, 0.28, 0.9, true},
        {"vpr_twolf", "2Proc", 0.70, 0.29, 0.69, 1, 0.30, 0.9, true},
    };
    return profiles;
}

const BenchmarkProfile &
findProfile(const std::string &name)
{
    for (const auto &p : allProfiles())
        if (p.name == name)
            return p;
    SMARTREF_FATAL("unknown benchmark profile '", name, "'");
}

namespace {

/** Build one WorkloadParams from a coverage target. */
WorkloadParams
makeParams(const BenchmarkProfile &profile, std::uint64_t footprintRows,
           double visitsPerSecond, std::uint64_t stride,
           std::uint64_t offset, std::uint64_t seed,
           const std::string &nameSuffix)
{
    WorkloadParams wp;
    wp.name = profile.name + nameSuffix;
    wp.suite = profile.suite;
    wp.footprintRows = std::max<std::uint64_t>(footprintRows, 1);
    wp.rowVisitsPerSecond = visitsPerSecond;
    wp.accessesPerVisit = profile.accessesPerVisit;
    wp.randomJumpProb = profile.randomJumpProb;
    wp.zipfAlpha = profile.zipfAlpha;
    wp.readFraction = profile.readFraction;
    wp.interArrivalJitter = 0.5;
    wp.rowStride = stride;
    wp.rowOffset = offset;
    wp.seed = seed;
    return wp;
}

} // namespace

double
absRowScaleFor(const DramOrganization &org)
{
    // 8 row buffers (2 ranks x 4 banks) is the 2 GB calibration point.
    const double buffers =
        static_cast<double>(org.ranks) * static_cast<double>(org.banks);
    if (buffers <= 8.0)
        return 1.0;
    // Exact at the calibration points: log2(16/8) == 1.0 makes the
    // 4 GB module's scale bit-identical to kFourGBRowScale.
    return 1.0 + (kFourGBRowScale - 1.0) * std::log2(buffers / 8.0);
}

std::vector<WorkloadParams>
conventionalParams(const BenchmarkProfile &profile, const DramConfig &cfg,
                   double absRowScale, std::uint64_t seed)
{
    const std::uint64_t totalRows = cfg.org.totalRows();
    const double retentionSec = static_cast<double>(cfg.timing.retention) /
                                static_cast<double>(kSecond);

    // Absolute alive-row target, anchored to the 2 GB calibration.
    std::uint64_t aliveRows = static_cast<std::uint64_t>(
        profile.reduction2gb * static_cast<double>(k2GBRowTargets) *
        absRowScale);
    aliveRows = std::min<std::uint64_t>(
        aliveRows, static_cast<std::uint64_t>(0.95 * totalRows));

    // Only non-jump visits advance the footprint sweep, so the visit
    // rate is inflated by the jump fraction to keep the revisit period.
    const double totalVisitRate = static_cast<double>(aliveRows) /
                                  retentionSec * kRevisitSafety /
                                  (1.0 - profile.randomJumpProb);

    if (!profile.pair) {
        return {makeParams(profile, aliveRows, totalVisitRate, 1, 0, seed,
                           "")};
    }
    // Two processes: interleave footprints at stride 2, splitting rows
    // and rate evenly. The interleaving is what lowers spatial locality.
    const std::uint64_t half = aliveRows / 2;
    return {
        makeParams(profile, half, totalVisitRate / 2, 2, 0, seed, ".p0"),
        makeParams(profile, half, totalVisitRate / 2, 2, 1, seed + 1,
                   ".p1"),
    };
}

std::vector<WorkloadParams>
threeDParams(const BenchmarkProfile &profile, const DramConfig &threeDCfg,
             std::uint64_t seed)
{
    const std::uint64_t totalRows = threeDCfg.org.totalRows();

    std::uint64_t aliveRows = static_cast<std::uint64_t>(
        profile.reduction3d * static_cast<double>(k3DRowTargets));
    aliveRows = std::min<std::uint64_t>(
        aliveRows, static_cast<std::uint64_t>(0.95 * totalRows));
    aliveRows = std::max<std::uint64_t>(aliveRows, 64);

    // Cache-resident working sets are two-tier: a hot core re-touched
    // every few milliseconds (inside even the 32 ms counter deadline)
    // and a colder fringe re-touched just inside the 64 ms deadline.
    // The split reproduces the paper's Fig. 12 vs Fig. 15 relationship:
    // the unchanged access stream keeps eliminating every hot-row
    // refresh when the rate doubles, but only a sliver of the cold-row
    // ones. Rates are a property of the benchmark, fixed at the 64 ms
    // calibration regardless of the config's retention.
    constexpr double kHotFraction = 0.67;
    constexpr double kHotRevisitSec = 0.012;
    constexpr double kColdRevisitSec = 0.040;

    const double pairScale = profile.pair ? 0.5 : 1.0;
    const auto hotRows = static_cast<std::uint64_t>(
        kHotFraction * static_cast<double>(aliveRows) * pairScale);
    const auto coldRows = static_cast<std::uint64_t>(
        static_cast<double>(aliveRows) * pairScale) - hotRows;
    const double jumpFix = 1.0 / (1.0 - profile.randomJumpProb);
    const double hotRate =
        static_cast<double>(hotRows) / kHotRevisitSec * jumpFix;
    const double coldRate =
        static_cast<double>(coldRows) / kColdRevisitSec * jumpFix;

    auto tiers = [&](std::uint64_t stride, std::uint64_t offset,
                     std::uint64_t s, const std::string &suffix) {
        std::vector<WorkloadParams> v;
        if (hotRows > 0) {
            v.push_back(makeParams(profile, hotRows, hotRate, stride,
                                   offset, s, suffix + ".hot"));
        }
        if (coldRows > 0) {
            v.push_back(makeParams(profile, coldRows, coldRate, stride,
                                   offset + stride * hotRows, s + 7,
                                   suffix + ".cold"));
        }
        return v;
    };

    if (!profile.pair)
        return tiers(1, 0, seed, "");

    auto v = tiers(2, 0, seed, ".p0");
    for (auto &wp : tiers(2, 1, seed + 1, ".p1"))
        v.push_back(wp);
    return v;
}

WorkloadParams
idleParams(const DramConfig &cfg, std::uint64_t seed)
{
    const double retentionSec = static_cast<double>(cfg.timing.retention) /
                                static_cast<double>(kSecond);
    WorkloadParams wp;
    wp.name = "idle-os";
    wp.suite = "custom";
    // ~0.3 % of rows touched per interval: well under the 1 % disable
    // threshold, modelling an idle OS's timer-tick footprint.
    wp.footprintRows = cfg.org.totalRows() / 333;
    wp.rowVisitsPerSecond =
        static_cast<double>(wp.footprintRows) / retentionSec;
    wp.accessesPerVisit = 2;
    wp.randomJumpProb = 0.2;
    wp.zipfAlpha = 0.9;
    wp.readFraction = 0.7;
    wp.interArrivalJitter = 0.5;
    wp.seed = seed;
    return wp;
}

WorkloadParams
lightParams(const DramConfig &cfg, std::uint64_t seed)
{
    WorkloadParams wp = idleParams(cfg, seed);
    wp.name = "light-activity";
    // ~1.5 % of rows per interval: inside the hysteresis band, so the
    // mode the system is already in sticks.
    const double retentionSec = static_cast<double>(cfg.timing.retention) /
                                static_cast<double>(kSecond);
    wp.footprintRows = static_cast<std::uint64_t>(
        0.015 * static_cast<double>(cfg.org.totalRows()));
    wp.rowVisitsPerSecond =
        static_cast<double>(wp.footprintRows) / retentionSec * 1.2;
    return wp;
}

} // namespace smartref

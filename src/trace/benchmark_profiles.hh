/**
 * @file
 * Calibrated workload profiles for the paper's 32 benchmark runs.
 *
 * The paper ran SPLASH-2, SPECint2000 and Biobench binaries under
 * Simics/Solaris; those binaries (and a Solaris full-system stack) are
 * not reproducible here, so each benchmark is represented by the
 * refresh-relevant signature of its memory behaviour: how many distinct
 * DRAM rows it keeps "alive" (re-touches within a retention interval)
 * and with what access pattern. The per-benchmark coverage targets are
 * calibrated from the paper's own reported per-benchmark refresh
 * reductions (Figures 6 and 12, plus the ranges quoted in the text:
 * 26 % for fasta up to 85.7 % for water-spatial on the 2 GB module,
 * 4 % for fasta up to 42 % for mummer on the 64 MB 3D cache).
 *
 * For the 4 GB module the same benchmark touches ~1.3x the absolute
 * rows of the 2 GB run (twice the banks give the OS more row buffers to
 * scatter pages over), matching the paper's Fig. 9 ratio of reductions.
 * The 32 ms 3D runs reuse the 64 ms workload unchanged — the paper's
 * point is precisely that the access stream stays constant while the
 * refresh baseline doubles.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/dram_config.hh"
#include "trace/workload_model.hh"

namespace smartref {

/** Refresh-relevant signature of one benchmark (or benchmark pair). */
struct BenchmarkProfile
{
    std::string name;
    std::string suite;        ///< Biobench / SPLASH2 / SPECint2000 / 2Proc
    double reduction2gb;      ///< target refresh reduction, 2 GB, 64 ms
    double reduction3d;       ///< target refresh reduction, 3D 64 MB, 64 ms
    double readFraction;
    std::uint32_t accessesPerVisit; ///< row-buffer run length
    double randomJumpProb;
    double zipfAlpha;
    bool pair = false;        ///< two-process multiprogrammed run
};

/** The (bank,row) refresh-target count of the paper's 2 GB module. */
constexpr std::uint64_t k2GBRowTargets = 131072;

/** The row-target count of the 64 MB 3D DRAM cache. */
constexpr std::uint64_t k3DRowTargets = 65536;

/**
 * Rows must be revisited comfortably *before* the earliest possible
 * counter expiry, which for B-bit counters is retention * (1 - 1/2^B)
 * after the last reset (56 ms for 3 bits at 64 ms). 1.6 puts the sweep
 * revisit period around 40 ms, leaving room for arrival jitter.
 */
constexpr double kRevisitSafety = 1.6;

/** All 32 benchmark runs of the paper's evaluation, in figure order. */
const std::vector<BenchmarkProfile> &allProfiles();

/** Look up a profile by name; fatals if unknown. */
const BenchmarkProfile &findProfile(const std::string &name);

/**
 * Workload parameters for a conventional-DRAM run.
 *
 * @param absRowScale scales the absolute number of alive rows relative
 *        to the 2 GB calibration (use kFourGBRowScale for 4 GB runs)
 * @return one entry for single benchmarks, two interleaved (stride-2)
 *         entries for 2-process pairs
 */
std::vector<WorkloadParams>
conventionalParams(const BenchmarkProfile &profile, const DramConfig &cfg,
                   double absRowScale = 1.0, std::uint64_t seed = 42);

/** Absolute-row scaling used for the 4 GB module (see file comment). */
constexpr double kFourGBRowScale = 1.3;

/**
 * Row scale derived from the module geometry instead of a config-name
 * match. The paper's 1.3x for the 4 GB module comes from doubling the
 * row buffers (8 banks instead of 4): more open rows let the OS scatter
 * each footprint over proportionally more DRAM rows. Generalised as
 * 1 + (1.3 - 1) * log2(rowBuffers / 8): exactly 1.0 at the 2 GB
 * module's 8 row buffers and exactly kFourGBRowScale at 16, so the
 * existing goldens are bit-unchanged, while new large configs (the
 * multi-channel server presets included — the scale is per channel)
 * are no longer silently unscaled.
 */
double absRowScaleFor(const DramOrganization &org);

/**
 * Workload parameters for a 3D DRAM cache run. Visit rates are derived
 * from the 64 ms calibration regardless of the config's retention, so
 * the same stream drives both the 64 ms and 32 ms experiments.
 */
std::vector<WorkloadParams>
threeDParams(const BenchmarkProfile &profile, const DramConfig &threeDCfg,
             std::uint64_t seed = 42);

/**
 * A near-idle workload (Section 4.6): row activity below the 1 %
 * disable threshold, for exercising the self-configuration circuit.
 */
WorkloadParams idleParams(const DramConfig &cfg, std::uint64_t seed = 42);

/** A lightly-active workload sitting between the 1 %/2 % thresholds. */
WorkloadParams lightParams(const DramConfig &cfg, std::uint64_t seed = 42);

} // namespace smartref

#include "trace/trace.hh"

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "sim/logging.hh"

namespace smartref {

namespace {

constexpr char kBinaryMagic[8] = {'S', 'R', 'T', 'R', 'A', 'C', 'E', '1'};

#pragma pack(push, 1)
struct BinaryRecord
{
    std::uint64_t tick;
    std::uint64_t addr;
    std::uint8_t write;
};
#pragma pack(pop)

} // namespace

struct TraceWriter::Impl
{
    std::ofstream out;
    TraceFormat format;
};

TraceWriter::TraceWriter(const std::string &path, TraceFormat format)
    : impl_(std::make_unique<Impl>())
{
    impl_->format = format;
    const auto mode = format == TraceFormat::Binary
                          ? std::ios::binary | std::ios::out
                          : std::ios::out;
    impl_->out.open(path, mode);
    if (!impl_->out)
        SMARTREF_FATAL("cannot open trace file '", path, "' for writing");
    if (format == TraceFormat::Binary)
        impl_->out.write(kBinaryMagic, sizeof(kBinaryMagic));
}

TraceWriter::~TraceWriter() = default;

void
TraceWriter::append(const TraceRecord &rec)
{
    if (impl_->format == TraceFormat::Text) {
        impl_->out << rec.tick << " 0x" << std::hex << rec.addr << std::dec
                   << (rec.write ? " W" : " R") << '\n';
    } else {
        BinaryRecord b{rec.tick, rec.addr,
                       static_cast<std::uint8_t>(rec.write ? 1 : 0)};
        impl_->out.write(reinterpret_cast<const char *>(&b), sizeof(b));
    }
    ++count_;
}

void
TraceWriter::close()
{
    impl_->out.close();
}

struct TraceReader::Impl
{
    std::ifstream in;
};

TraceReader::TraceReader(const std::string &path)
    : impl_(std::make_unique<Impl>())
{
    impl_->in.open(path, std::ios::binary);
    if (!impl_->in)
        SMARTREF_FATAL("cannot open trace file '", path, "'");
    char magic[sizeof(kBinaryMagic)] = {};
    impl_->in.read(magic, sizeof(magic));
    if (impl_->in.gcount() == sizeof(magic) &&
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0) {
        format_ = TraceFormat::Binary;
    } else {
        format_ = TraceFormat::Text;
        impl_->in.clear();
        impl_->in.seekg(0);
    }
}

TraceReader::~TraceReader() = default;

bool
TraceReader::next(TraceRecord &rec)
{
    if (format_ == TraceFormat::Binary) {
        BinaryRecord b;
        impl_->in.read(reinterpret_cast<char *>(&b), sizeof(b));
        if (impl_->in.gcount() != sizeof(b))
            return false;
        rec = TraceRecord{b.tick, b.addr, b.write != 0};
        return true;
    }
    std::string line;
    while (std::getline(impl_->in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        std::string rw;
        if (!(iss >> rec.tick >> std::hex >> rec.addr >> std::dec >> rw))
            SMARTREF_FATAL("malformed trace line: '", line, "'");
        rec.write = (rw == "W" || rw == "w");
        return true;
    }
    return false;
}

std::vector<TraceRecord>
TraceReader::readAll(const std::string &path)
{
    TraceReader reader(path);
    std::vector<TraceRecord> out;
    TraceRecord rec;
    while (reader.next(rec))
        out.push_back(rec);
    return out;
}

} // namespace smartref

#include "cache/cache_hierarchy.hh"

namespace smartref {

CacheHierarchy::CacheHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                               StatGroup *parent)
    : StatGroup("hierarchy", parent),
      l1_(l1, this),
      l2_(l2, this),
      accesses_(this, "accesses", "CPU-side accesses"),
      memAccesses_(this, "memAccesses", "accesses reaching memory")
{
}

HierarchyResult
CacheHierarchy::access(Addr addr, bool write)
{
    ++accesses_;
    HierarchyResult result;
    result.cacheLatency = l1_.config().hitLatency;

    const CacheAccessResult r1 = l1_.access(addr, write);
    if (r1.hit) {
        result.hitLevel = 1;
        return result;
    }
    // L1 dirty victim is absorbed by L2 (write-allocate there).
    if (r1.writebackVictim)
        l2_.access(r1.victimAddr, true);

    result.cacheLatency += l2_.config().hitLatency;
    const CacheAccessResult r2 = l2_.access(addr, write);
    if (r2.hit) {
        result.hitLevel = 2;
        return result;
    }

    result.hitLevel = 0;
    ++memAccesses_;
    result.memOps.push_back({addr, false}); // demand fill read
    if (r2.writebackVictim)
        result.memOps.push_back({r2.victimAddr, true});
    return result;
}

} // namespace smartref

/**
 * @file
 * A generic set-associative write-back cache model (tags only).
 *
 * The cache is functional: it tracks which lines are present and dirty
 * and reports hits, misses and victim writebacks; it does not store data
 * payloads. Latency is a fixed per-level constant composed by the system
 * model. This mirrors the role Ruby played in the paper's setup — a
 * hierarchy filter in front of the DRAM simulator.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace smartref {

/** Configuration of one cache level. */
struct CacheConfig
{
    std::string name = "L2";
    std::uint64_t sizeBytes = 1 * kMiB;
    std::uint32_t assoc = 8;
    std::uint32_t lineSize = 64;
    ReplacementKind replacement = ReplacementKind::Lru;
    Tick hitLatency = 6 * kNanosecond;
    std::uint64_t seed = 1;

    std::uint32_t
    numSets() const
    {
        return static_cast<std::uint32_t>(sizeBytes / lineSize / assoc);
    }
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** On a miss with a dirty victim: its line-aligned address. */
    bool writebackVictim = false;
    Addr victimAddr = 0;
};

/** Tag-array model of a set-associative cache. */
class Cache : public StatGroup
{
  public:
    Cache(const CacheConfig &cfg, StatGroup *parent);

    /**
     * Access (and on miss, allocate) a line.
     * @param addr  byte address
     * @param write marks the line dirty on hit or fill
     */
    CacheAccessResult access(Addr addr, bool write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate a line if present; @return true if it was dirty. */
    bool invalidate(Addr addr);

    /** Drop all lines (no writebacks generated). */
    void flush();

    const CacheConfig &config() const { return cfg_; }

    /** @name Statistics. */
    ///@{
    std::uint64_t hits() const { return asU64(hits_); }
    std::uint64_t misses() const { return asU64(misses_); }
    std::uint64_t writebacks() const { return asU64(writebacks_); }
    double
    hitRate() const
    {
        const double total = hits_.value() + misses_.value();
        return total > 0.0 ? hits_.value() / total : 0.0;
    }
    ///@}

  private:
    static std::uint64_t
    asU64(const Scalar &s)
    {
        return static_cast<std::uint64_t>(s.value());
    }

    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t setOf(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Addr lineAddr(std::uint64_t tag, std::uint32_t set) const;

    CacheConfig cfg_;
    std::uint32_t sets_;
    std::vector<Line> lines_;
    std::unique_ptr<ReplacementPolicy> repl_;

    Scalar hits_;
    Scalar misses_;
    Scalar writebacks_;
};

} // namespace smartref

#include "cache/cmp_hierarchy.hh"

#include "sim/logging.hh"

namespace smartref {

CmpHierarchy::CmpHierarchy(std::uint32_t numCores, const CacheConfig &l1,
                           const CacheConfig &l2, StatGroup *parent)
    : StatGroup("cmpHierarchy", parent),
      l2_(l2, this),
      accesses_(this, "accesses", "CPU-side accesses"),
      memAccesses_(this, "memAccesses", "accesses reaching memory")
{
    SMARTREF_ASSERT(numCores > 0, "need at least one core");
    for (std::uint32_t c = 0; c < numCores; ++c) {
        CacheConfig cfg = l1;
        cfg.name = l1.name + std::to_string(c);
        cfg.seed = l1.seed + c;
        l1s_.push_back(std::make_unique<Cache>(cfg, this));
    }
}

HierarchyResult
CmpHierarchy::access(std::uint32_t core, Addr addr, bool write)
{
    SMARTREF_ASSERT(core < l1s_.size(), "core ", core, " out of range");
    ++accesses_;
    Cache &l1 = *l1s_[core];

    HierarchyResult result;
    result.cacheLatency = l1.config().hitLatency;
    const CacheAccessResult r1 = l1.access(addr, write);
    if (r1.hit) {
        result.hitLevel = 1;
        return result;
    }
    if (r1.writebackVictim)
        l2_.access(r1.victimAddr, true);

    result.cacheLatency += l2_.config().hitLatency;
    const CacheAccessResult r2 = l2_.access(addr, write);
    if (r2.hit) {
        result.hitLevel = 2;
        return result;
    }

    result.hitLevel = 0;
    ++memAccesses_;
    result.memOps.push_back({addr, false});
    if (r2.writebackVictim)
        result.memOps.push_back({r2.victimAddr, true});
    return result;
}

} // namespace smartref

#include "cache/cache.hh"

#include "sim/logging.hh"

namespace smartref {

Cache::Cache(const CacheConfig &cfg, StatGroup *parent)
    : StatGroup("cache." + cfg.name, parent),
      cfg_(cfg),
      sets_(cfg.numSets()),
      lines_(std::size_t(sets_) * cfg.assoc),
      repl_(ReplacementPolicy::create(cfg.replacement, sets_, cfg.assoc,
                                      cfg.seed)),
      hits_(this, "hits", "cache hits"),
      misses_(this, "misses", "cache misses"),
      writebacks_(this, "writebacks", "dirty victim writebacks")
{
    SMARTREF_ASSERT(sets_ > 0, "cache '", cfg.name, "' has zero sets");
    SMARTREF_ASSERT((cfg.lineSize & (cfg.lineSize - 1)) == 0,
                    "line size must be a power of two");
    SMARTREF_ASSERT((sets_ & (sets_ - 1)) == 0,
                    "set count must be a power of two");
}

std::uint32_t
Cache::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / cfg_.lineSize) % sets_);
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return addr / cfg_.lineSize / sets_;
}

Addr
Cache::lineAddr(std::uint64_t tag, std::uint32_t set) const
{
    return (tag * sets_ + set) * cfg_.lineSize;
}

CacheAccessResult
Cache::access(Addr addr, bool write)
{
    const std::uint32_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    const std::size_t base = std::size_t(set) * cfg_.assoc;

    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            ++hits_;
            line.dirty = line.dirty || write;
            repl_->onAccess(set, w);
            return CacheAccessResult{true, false, 0};
        }
    }

    ++misses_;
    // Prefer an invalid way; otherwise consult the replacement policy.
    std::uint32_t way = cfg_.assoc;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        if (!lines_[base + w].valid) {
            way = w;
            break;
        }
    }

    CacheAccessResult result;
    if (way == cfg_.assoc) {
        way = repl_->victim(set);
        Line &victim = lines_[base + way];
        if (victim.dirty) {
            ++writebacks_;
            result.writebackVictim = true;
            result.victimAddr = lineAddr(victim.tag, set);
        }
    }

    Line &line = lines_[base + way];
    line.valid = true;
    line.tag = tag;
    line.dirty = write;
    repl_->onFill(set, way);
    return result;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint32_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    const std::size_t base = std::size_t(set) * cfg_.assoc;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const std::uint32_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    const std::size_t base = std::size_t(set) * cfg_.assoc;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            const bool wasDirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return wasDirty;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace smartref

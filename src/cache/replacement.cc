#include "cache/replacement.hh"

#include "sim/logging.hh"

namespace smartref {

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(ReplacementKind kind, std::uint32_t sets,
                          std::uint32_t ways, std::uint64_t seed)
{
    switch (kind) {
      case ReplacementKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplacementKind::Fifo:
        return std::make_unique<FifoPolicy>(sets, ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(ways, seed);
    }
    SMARTREF_PANIC("unknown replacement kind");
}

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways), stamps_(std::size_t(sets) * ways, 0)
{
}

void
LruPolicy::onAccess(std::uint32_t set, std::uint32_t way)
{
    stamps_[std::size_t(set) * ways_ + way] = ++clock_;
}

void
LruPolicy::onFill(std::uint32_t set, std::uint32_t way)
{
    onAccess(set, way);
}

std::uint32_t
LruPolicy::victim(std::uint32_t set)
{
    const std::size_t base = std::size_t(set) * ways_;
    std::uint32_t oldest = 0;
    for (std::uint32_t w = 1; w < ways_; ++w)
        if (stamps_[base + w] < stamps_[base + oldest])
            oldest = w;
    return oldest;
}

FifoPolicy::FifoPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways), next_(sets, 0)
{
}

void
FifoPolicy::onAccess(std::uint32_t, std::uint32_t)
{
}

void
FifoPolicy::onFill(std::uint32_t, std::uint32_t)
{
}

std::uint32_t
FifoPolicy::victim(std::uint32_t set)
{
    const std::uint32_t w = next_[set];
    next_[set] = (w + 1) % ways_;
    return w;
}

RandomPolicy::RandomPolicy(std::uint32_t ways, std::uint64_t seed)
    : ways_(ways), rng_(seed)
{
}

void
RandomPolicy::onAccess(std::uint32_t, std::uint32_t)
{
}

void
RandomPolicy::onFill(std::uint32_t, std::uint32_t)
{
}

std::uint32_t
RandomPolicy::victim(std::uint32_t)
{
    return static_cast<std::uint32_t>(rng_.nextBelow(ways_));
}

} // namespace smartref

#include "cache/dram_cache.hh"

#include "sim/logging.hh"

namespace smartref {

DramCache::DramCache(MemoryController &dataCtrl, MemoryController &mainMem,
                     const DramCacheConfig &cfg, EventQueue &eq,
                     StatGroup *parent)
    : StatGroup("dramCache", parent),
      dataCtrl_(dataCtrl),
      mainMem_(mainMem),
      cfg_(cfg),
      eq_(eq),
      numLines_(dataCtrl.dram().config().org.capacityBytes() /
                cfg.lineSize),
      tags_(numLines_),
      tagSram_(static_cast<double>(numLines_) * cfg.tagBytesPerEntry /
                   1024.0,
               cfg.tagSram, this),
      accesses_(this, "accesses", "demand accesses"),
      hits_(this, "hits", "tag hits"),
      misses_(this, "misses", "tag misses"),
      writebacks_(this, "writebacks", "dirty victim writebacks"),
      fills_(this, "fills", "lines filled from main memory"),
      latency_(this, "latency", "demand latency through the cache (ticks)",
               0.0, 2.0e6, 64),
      latencySum_(this, "latencySum", "sum of demand latencies (ticks)")
{
    SMARTREF_ASSERT(numLines_ > 0, "cache smaller than one line");
}

void
DramCache::access(Addr addr, bool write, MemCallback cb)
{
    ++accesses_;
    const Tick arrival = eq_.now();
    const std::uint64_t lineNo = addr / cfg_.lineSize;
    const std::uint64_t index = lineNo % numLines_;
    const std::uint64_t tag = lineNo / numLines_;
    const Addr lineInCache = index * cfg_.lineSize;
    const Addr offset = addr % cfg_.lineSize;

    tagSram_.recordTraffic(1, 0); // lookup

    auto complete = [this, arrival, cb = std::move(cb)](
                        const MemRequest &req, Tick done) {
        const Tick lat = done - arrival;
        latency_.sample(static_cast<double>(lat));
        latencySum_ += static_cast<double>(lat);
        if (cb)
            cb(req, done);
    };

    TagEntry &entry = tags_[index];
    if (entry.valid && entry.tag == tag) {
        ++hits_;
        if (write) {
            entry.dirty = true;
            tagSram_.recordTraffic(0, 1);
        }
        // Data lives in the stacked DRAM: hit becomes a 3D access.
        eq_.scheduleAfter(cfg_.tagLatency,
                          [this, lineInCache, offset, write,
                           complete]() mutable {
            dataCtrl_.access(lineInCache + offset, write,
                             std::move(complete));
        });
        return;
    }

    // Miss: evict (writeback if dirty), fetch from main memory, fill.
    ++misses_;
    if (entry.valid && entry.dirty) {
        ++writebacks_;
        const Addr victimAddr =
            (entry.tag * numLines_ + index) * cfg_.lineSize;
        eq_.scheduleAfter(cfg_.tagLatency, [this, victimAddr]() {
            mainMem_.access(victimAddr, true);
        });
    }
    entry.valid = true;
    entry.tag = tag;
    entry.dirty = write;
    tagSram_.recordTraffic(0, 1);

    eq_.scheduleAfter(cfg_.tagLatency,
                      [this, addr, lineInCache, complete]() mutable {
        mainMem_.access(addr, false,
                        [this, lineInCache, complete](
                            const MemRequest &req, Tick done) mutable {
            // Demand completes when the line arrives from main memory;
            // the fill write into the 3D DRAM is off the critical path.
            complete(req, done);
            ++fills_;
            eq_.schedule(done, [this, lineInCache]() {
                dataCtrl_.access(lineInCache, true);
            });
        });
    });
}

} // namespace smartref

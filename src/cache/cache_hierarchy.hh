/**
 * @file
 * A two-level (L1 + L2) cache hierarchy filter.
 *
 * CPU-side accesses filter through L1 then L2; only L2 misses (and dirty
 * L2 victim writebacks) reach memory. The hierarchy is inclusive-enough
 * for traffic purposes: L1 victims that are dirty are written through to
 * L2 (allocating there), and L2 evictions do not back-invalidate L1 —
 * a simplification that only affects traffic second-order.
 */

#pragma once

#include <functional>
#include <optional>

#include "cache/cache.hh"
#include "sim/stats.hh"

namespace smartref {

/** Result of a hierarchy access. */
struct HierarchyResult
{
    /** 1 = L1 hit, 2 = L2 hit, 0 = miss to memory. */
    int hitLevel = 0;
    /** Total cache-lookup latency accumulated. */
    Tick cacheLatency = 0;
    /** Memory accesses generated: the demand fill and any writebacks. */
    struct MemOp
    {
        Addr addr;
        bool write;
    };
    std::vector<MemOp> memOps;
};

/** L1 + L2 filter in front of the memory controller. */
class CacheHierarchy : public StatGroup
{
  public:
    CacheHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                   StatGroup *parent);

    /** Run one CPU access through the hierarchy. */
    HierarchyResult access(Addr addr, bool write);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }

    double
    memoryAccessFraction() const
    {
        const double total = accesses_.value();
        return total > 0.0 ? memAccesses_.value() / total : 0.0;
    }

  private:
    Cache l1_;
    Cache l2_;
    Scalar accesses_;
    Scalar memAccesses_;
};

} // namespace smartref

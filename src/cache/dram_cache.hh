/**
 * @file
 * The 3D die-stacked DRAM cache (paper Sections 4.5, 6, 7.2).
 *
 * A direct-mapped cache whose data array is a DRAM module (the stacked
 * die, with its own memory controller and refresh domain) and whose tag
 * array is SRAM on the processor die. An access first checks the tags;
 * a hit becomes a read/write on the 3D DRAM, a miss fetches the line
 * from main memory, fills it into the 3D DRAM and writes back a dirty
 * victim. Tags are updated synchronously (no MSHR modelling) — the
 * simplification only merges the occasional overlapping miss and does
 * not affect refresh behaviour.
 */

#pragma once

#include "core/sram_energy_model.hh"
#include "ctrl/memory_controller.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace smartref {

/** Configuration of the 3D DRAM cache front-end. */
struct DramCacheConfig
{
    std::uint32_t lineSize = 64;
    Tick tagLatency = 3 * kNanosecond;  ///< on-die SRAM tag lookup
    double tagBytesPerEntry = 4.0;      ///< tag + valid + dirty storage
    SramEnergyParams tagSram{};
};

/** Direct-mapped DRAM cache in front of main memory. */
class DramCache : public StatGroup
{
  public:
    /**
     * @param dataCtrl controller of the 3D DRAM holding the data array
     * @param mainMem  controller of the backing main memory
     */
    DramCache(MemoryController &dataCtrl, MemoryController &mainMem,
              const DramCacheConfig &cfg, EventQueue &eq,
              StatGroup *parent);

    /** Run one access (post-L2 demand) through the cache. */
    void access(Addr addr, bool write, MemCallback cb = nullptr);

    std::uint64_t numLines() const { return numLines_; }

    /** @name Statistics. */
    ///@{
    std::uint64_t hits() const { return asU64(hits_); }
    std::uint64_t misses() const { return asU64(misses_); }
    std::uint64_t writebacks() const { return asU64(writebacks_); }
    double
    hitRate() const
    {
        const double total = hits_.value() + misses_.value();
        return total > 0.0 ? hits_.value() / total : 0.0;
    }
    /** Mean demand latency through the cache (ticks). */
    double avgLatency() const { return latency_.mean(); }
    double latencySum() const { return latencySum_.value(); }
    std::uint64_t demandAccesses() const { return asU64(accesses_); }
    /** Tag-array SRAM energy (J); identical across refresh policies. */
    double tagEnergy() const { return tagSram_.totalEnergy(); }
    ///@}

  private:
    static std::uint64_t
    asU64(const Scalar &s)
    {
        return static_cast<std::uint64_t>(s.value());
    }

    struct TagEntry
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    MemoryController &dataCtrl_;
    MemoryController &mainMem_;
    DramCacheConfig cfg_;
    EventQueue &eq_;
    std::uint64_t numLines_;
    std::vector<TagEntry> tags_;
    SramEnergyModel tagSram_;

    Scalar accesses_;
    Scalar hits_;
    Scalar misses_;
    Scalar writebacks_;
    Scalar fills_;
    Histogram latency_;
    Scalar latencySum_;
};

} // namespace smartref

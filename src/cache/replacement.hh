/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * A policy tracks per-way metadata within each set and picks victims.
 * LRU is the default (the paper's L2 is 8-way LRU); FIFO and Random are
 * provided for sensitivity studies.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/random.hh"

namespace smartref {

/** Available replacement algorithms. */
enum class ReplacementKind { Lru, Fifo, Random };

/** Per-set replacement state and victim selection. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A way was accessed (hit). */
    virtual void onAccess(std::uint32_t set, std::uint32_t way) = 0;

    /** A way was filled with a new line. */
    virtual void onFill(std::uint32_t set, std::uint32_t way) = 0;

    /** Choose the victim way for a fill into a full set. */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** Factory. */
    static std::unique_ptr<ReplacementPolicy>
    create(ReplacementKind kind, std::uint32_t sets, std::uint32_t ways,
           std::uint64_t seed = 1);
};

/** True-LRU via per-way age stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways);

    void onAccess(std::uint32_t set, std::uint32_t way) override;
    void onFill(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;

  private:
    std::uint32_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_;
};

/** FIFO: evict the oldest fill. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    FifoPolicy(std::uint32_t sets, std::uint32_t ways);

    void onAccess(std::uint32_t set, std::uint32_t way) override;
    void onFill(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;

  private:
    std::uint32_t ways_;
    std::vector<std::uint32_t> next_;
};

/** Uniform-random victim selection (deterministic via seeded RNG). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t ways, std::uint64_t seed);

    void onAccess(std::uint32_t set, std::uint32_t way) override;
    void onFill(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;

  private:
    std::uint32_t ways_;
    Rng rng_;
};

} // namespace smartref

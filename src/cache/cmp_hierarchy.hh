/**
 * @file
 * CMP cache hierarchy: one private L1 per core, one shared L2 — the
 * paper's SPLASH-2 configuration (a 2-processor CMP sharing a 1 MB L2).
 *
 * Functionally identical to CacheHierarchy but indexed by core: a
 * core's access filters through its own L1, dirty L1 victims write
 * through into the shared L2, and only shared-L2 misses (plus dirty L2
 * victim writebacks) reach memory. No coherence protocol is modelled —
 * the workloads partition their footprints, matching how the refresh
 * experiments use it (shared data would only *increase* row touches).
 */

#pragma once

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/cache_hierarchy.hh"

namespace smartref {

/** Private-L1 / shared-L2 filter for multiple cores. */
class CmpHierarchy : public StatGroup
{
  public:
    CmpHierarchy(std::uint32_t numCores, const CacheConfig &l1,
                 const CacheConfig &l2, StatGroup *parent);

    /** Run one access from `core` through the hierarchy. */
    HierarchyResult access(std::uint32_t core, Addr addr, bool write);

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(l1s_.size());
    }

    Cache &l1(std::uint32_t core) { return *l1s_.at(core); }
    Cache &sharedL2() { return l2_; }

    double
    memoryAccessFraction() const
    {
        const double total = accesses_.value();
        return total > 0.0 ? memAccesses_.value() / total : 0.0;
    }

  private:
    std::vector<std::unique_ptr<Cache>> l1s_;
    Cache l2_;
    Scalar accesses_;
    Scalar memAccesses_;
};

} // namespace smartref

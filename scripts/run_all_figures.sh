#!/usr/bin/env bash
# Regenerate every paper table/figure and ablation, writing console
# output and per-figure CSVs into results/.
#
# Usage: scripts/run_all_figures.sh [build-dir] [results-dir]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

run() {
    local name="$1"
    echo "=== $name ==="
    if "$BUILD/bench/$name" --csv "$OUT/$name.csv" 2>"$OUT/$name.log"; then
        :
    else
        # Table printers and some ablations take no --csv flag.
        "$BUILD/bench/$name" 2>>"$OUT/$name.log"
    fi
}

for b in table1_configs table3_bus_energy \
         fig06_refreshes_2gb fig07_refresh_energy_2gb \
         fig08_total_energy_2gb fig09_refreshes_4gb \
         fig10_refresh_energy_4gb fig11_total_energy_4gb \
         fig12_refreshes_3d64 fig13_refresh_energy_3d64 \
         fig14_total_energy_3d64 fig15_refreshes_3d32 \
         fig16_refresh_energy_3d32 fig17_total_energy_3d32 \
         fig18_performance_3d32 \
         ablation_counter_bits ablation_idle_disable \
         ablation_queue_stress ablation_page_policy ablation_thermal \
         ablation_retention_aware ablation_cpu_timing; do
    run "$b"
done | tee "$OUT/all_figures.txt"

echo "done; outputs in $OUT/"

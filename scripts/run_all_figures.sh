#!/usr/bin/env bash
# Regenerate every paper table/figure and ablation into results/.
#
# The paper figures (6-18) come from one smartref_sweep run over the
# "figures" grid: each config's 32-benchmark suite is simulated once
# and every figure is derived from it, fanned out over all cores.
# --seed-mode fixed keeps per-benchmark numbers identical to the
# historical serial bench binaries (every job at the base seed), which
# is what EXPERIMENTS.md was generated with.
#
# Usage: scripts/run_all_figures.sh [build-dir] [results-dir] [jobs]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
JOBS="${3:-$(nproc)}"

# Start from a clean slate so a failed run can never leave a stale CSV
# masquerading as fresh output.
rm -rf "$OUT"
mkdir -p "$OUT"

run() {
    # Every bench binary tolerates --csv (table printers ignore their
    # argv); a non-zero exit is a real failure and aborts the script --
    # no silent fallback that masks crashed binaries.
    local name="$1"
    echo "=== $name ==="
    "$BUILD/bench/$name" --csv "$OUT/$name.csv" 2>"$OUT/$name.log"
}

{
    echo "=== paper figures (smartref_sweep --grid figures) ==="
    "$BUILD/tools/smartref_sweep" --grid figures --seed-mode fixed \
        -j "$JOBS" --figures --out-dir "$OUT" \
        --timing "$OUT/figures_timing.json" \
        2>"$OUT/figures_sweep.log"

    for b in table1_configs table3_bus_energy \
             ablation_counter_bits ablation_idle_disable \
             ablation_queue_stress ablation_page_policy \
             ablation_thermal ablation_retention_aware \
             ablation_cpu_timing; do
        run "$b"
    done
} | tee "$OUT/all_figures.txt"

echo "done; outputs in $OUT/"

/**
 * @file
 * smartref_statdiff — structural diff of two stats/sweep JSON files.
 *
 * Flattens both documents into dotted metric paths, compares every
 * numeric leaf under per-metric absolute/relative tolerances, and
 * reports a human table plus an optional machine JSON verdict. CI uses
 * it as the golden gate of the sweep-smoke job: the golden file pins a
 * stable subset of metrics, the tolerance file says how far each may
 * drift (ci/golden_tolerances.json).
 *
 * Usage:
 *   smartref_statdiff A B
 *                     [--tolerances FILE]  per-metric tolerance table
 *                     [--subset]           metrics only in B are OK
 *                     [--json-out FILE]    machine verdict JSON
 *                     [--cache-dir DIR]    result cache for cache refs
 *                     [--quiet]            suppress the human report
 *                     [--version]          print the provenance block
 *
 * Each operand is a JSON file path, or a reference into the
 * content-addressed sweep result cache: `cache:<key-prefix>` or a bare
 * unique hex key prefix (when no file of that name exists). Cache refs
 * resolve against --cache-dir (default: the same SMARTREF_CACHE_DIR /
 * XDG_CACHE_HOME / ~/.cache/smartref chain as smartref_sweep).
 *
 * Exit codes: 0 = within tolerance, 1 = differences found,
 *             2 = usage or I/O error.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/result_cache.hh"
#include "harness/statdiff.hh"
#include "sim/provenance.hh"

using namespace smartref;

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " A B [--tolerances FILE] [--subset]"
                 " [--json-out FILE] [--cache-dir DIR] [--quiet]\n"
                 "  A/B: stats/sweep JSON path, cache:<key-prefix>, or "
                 "a bare unique hex key prefix\n";
    return 2;
}

bool
isHexPrefix(const std::string &s)
{
    return !s.empty() && s.size() <= 16 &&
           s.find_first_not_of("0123456789abcdef") == std::string::npos;
}

/**
 * Turn an operand into a readable JSON path. `cache:<prefix>` always
 * resolves through the cache; a bare operand resolves through the
 * cache only when it is not an existing file but looks like a hex key
 * prefix. Throws std::runtime_error on no / ambiguous matches.
 */
std::string
resolveOperand(const std::string &operand, const std::string &cacheDir)
{
    const bool explicitRef = operand.rfind("cache:", 0) == 0;
    const std::string prefix =
        explicitRef ? operand.substr(6) : operand;
    if (!explicitRef &&
        (std::filesystem::exists(operand) || !isHexPrefix(prefix)))
        return operand;
    if (!isHexPrefix(prefix))
        throw std::runtime_error("bad cache key prefix '" + prefix +
                                 "' (lowercase hex, at most 16 digits)");
    ResultCache cache(cacheDir);
    const std::vector<std::string> matches = cache.matchPrefix(prefix);
    if (matches.empty())
        throw std::runtime_error("no cache entry matches '" + prefix +
                                 "' in '" + cacheDir + "'");
    if (matches.size() > 1) {
        std::string msg = "ambiguous cache prefix '" + prefix +
                          "' matches " +
                          std::to_string(matches.size()) + " keys:";
        for (const auto &m : matches)
            msg += "\n  " + m;
        throw std::runtime_error(msg);
    }
    return cache.entryPath(matches[0]);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    std::string tolerancesPath;
    std::string jsonOutPath;
    std::string cacheDir = ResultCache::defaultDir();
    bool subset = false;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerances" || arg == "--json-out" ||
            arg == "--cache-dir") {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                return usage(argv[0]);
            }
            const std::string value = argv[++i];
            if (arg == "--tolerances")
                tolerancesPath = value;
            else if (arg == "--json-out")
                jsonOutPath = value;
            else
                cacheDir = value;
        } else if (arg == "--subset") {
            subset = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--version") {
            std::cout << versionText("smartref_statdiff");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown flag '" << arg << "'\n";
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        return usage(argv[0]);

    try {
        DiffTolerances tolerances;
        if (!tolerancesPath.empty())
            tolerances = loadTolerances(tolerancesPath);
        const auto a = loadMetrics(resolveOperand(files[0], cacheDir));
        const auto b = loadMetrics(resolveOperand(files[1], cacheDir));
        const DiffResult result = diffMetrics(a, b, tolerances, subset);
        if (!quiet)
            writeDiffReport(std::cout, result);
        if (!jsonOutPath.empty()) {
            std::ofstream out(jsonOutPath);
            if (!out) {
                std::cerr << "cannot write '" << jsonOutPath << "'\n";
                return 2;
            }
            writeDiffJson(out, result);
        }
        return result.pass() ? 0 : 1;
    } catch (const std::exception &e) {
        // SMARTREF_FATAL and the JSON parser both throw runtime_error.
        std::cerr << "smartref_statdiff: " << e.what() << "\n";
        return 2;
    }
}

/**
 * @file
 * smartref_statdiff — structural diff of two stats/sweep JSON files.
 *
 * Flattens both documents into dotted metric paths, compares every
 * numeric leaf under per-metric absolute/relative tolerances, and
 * reports a human table plus an optional machine JSON verdict. CI uses
 * it as the golden gate of the sweep-smoke job: the golden file pins a
 * stable subset of metrics, the tolerance file says how far each may
 * drift (ci/golden_tolerances.json).
 *
 * Usage:
 *   smartref_statdiff A.json B.json
 *                     [--tolerances FILE]  per-metric tolerance table
 *                     [--subset]           metrics only in B are OK
 *                     [--json-out FILE]    machine verdict JSON
 *                     [--quiet]            suppress the human report
 *                     [--version]          print the provenance block
 *
 * Exit codes: 0 = within tolerance, 1 = differences found,
 *             2 = usage or I/O error.
 */

#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/statdiff.hh"
#include "sim/provenance.hh"

using namespace smartref;

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " A.json B.json [--tolerances FILE] [--subset]"
                 " [--json-out FILE] [--quiet]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    std::string tolerancesPath;
    std::string jsonOutPath;
    bool subset = false;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerances" || arg == "--json-out") {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                return usage(argv[0]);
            }
            (arg == "--tolerances" ? tolerancesPath : jsonOutPath) =
                argv[++i];
        } else if (arg == "--subset") {
            subset = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--version") {
            std::cout << versionText("smartref_statdiff");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown flag '" << arg << "'\n";
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        return usage(argv[0]);

    try {
        DiffTolerances tolerances;
        if (!tolerancesPath.empty())
            tolerances = loadTolerances(tolerancesPath);
        const auto a = loadMetrics(files[0]);
        const auto b = loadMetrics(files[1]);
        const DiffResult result = diffMetrics(a, b, tolerances, subset);
        if (!quiet)
            writeDiffReport(std::cout, result);
        if (!jsonOutPath.empty()) {
            std::ofstream out(jsonOutPath);
            if (!out) {
                std::cerr << "cannot write '" << jsonOutPath << "'\n";
                return 2;
            }
            writeDiffJson(out, result);
        }
        return result.pass() ? 0 : 1;
    } catch (const std::exception &e) {
        // SMARTREF_FATAL and the JSON parser both throw runtime_error.
        std::cerr << "smartref_statdiff: " << e.what() << "\n";
        return 2;
    }
}

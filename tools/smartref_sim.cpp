/**
 * @file
 * smartref_sim — the standalone simulator frontend.
 *
 * Runs one (configuration, refresh policy, workload) combination and
 * prints a summary plus, optionally, the full statistics tree. The
 * workload can be a named benchmark profile, the idle/light special
 * profiles, or a recorded trace file (DRAMsim-style trace-driven mode).
 *
 * Usage:
 *   smartref_sim [--config 2gb|4gb|128gb|256gb|512gb|3d64|3d64-32ms|
 *                          3d32|edram]
 *                [--policy cbr|burst|ras-only|per-bank|smart|
 *                          retention-aware]
 *                [--parallelism none|refpb|darp|sarp|all]
 *                                      refresh-access parallelism mode
 *                [--classes]           RAPID-style retention classes
 *                [--sparse-counters]   lazily-chunked counter array
 *                [-j N]                shard workers for multi-channel
 *                                      configs (aggregates are
 *                                      byte-identical for any N)
 *                [--benchmark NAME | --idle | --light | --trace FILE]
 *                [--threed]            use the 3D cache system assembly
 *                [--warmup-ms N] [--measure-ms N]
 *                [--bits B] [--segments N] [--no-auto] [--seed S]
 *                [--scheme row-rank-bank|row-bank-rank|rank-bank-row]
 *                [--stats-out FILE]    dump the full statistics tree
 *                [--stats-json FILE]   machine-readable statistics dump
 *                [--stats-interval-ms N]  per-interval time series
 *                [--stats-interval-out FILE]
 *                [--interval-cols LIST]  extra interval columns by dotted
 *                                      stat path (validated up front)
 *                [--heatmap-out FILE]  spatial refresh heatmap JSON
 *                                      (+ .csv sibling)
 *                [--audit-out FILE]    binary refresh decision audit trail
 *                [--audit-json FILE]   NDJSON audit trail
 *                [--ledger-out FILE]   energy attribution ledger JSON
 *                [--ledger-csv FILE]   per-interval ledger grid CSV
 *                [--ledger-check FILE] conservation-check JSON (for
 *                                      smartref_statdiff --subset)
 *                [--check-conservation]  verify the ledger invariant
 *                [--profile-out FILE]  phase-profile JSON (host wall time)
 *                [--trace-out FILE]    Chrome trace_event JSON timeline
 *                [--trace-csv FILE]    compact CSV timeline
 *                [--trace-categories LIST]  e.g. refresh,counter (def all)
 *                [--log-level silent|warn|info|debug]
 *                [--list]              list benchmark profiles and exit
 *                [--version]           print the provenance build block
 */

#include <bit>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "ctrl/refresh_audit.hh"
#include "ctrl/refresh_heatmap.hh"
#include "dram/energy_ledger.hh"
#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sharded.hh"
#include "sim/interval_stats.hh"
#include "sim/phase_profiler.hh"
#include "sim/provenance.hh"
#include "sim/stats_json.hh"
#include "sim/suggest.hh"
#include "sim/tracer.hh"
#include "trace/trace.hh"

using namespace smartref;

namespace {

AddressScheme
schemeByName(const std::string &name)
{
    if (name == "row-rank-bank")
        return AddressScheme::RowRankBankColumn;
    if (name == "row-bank-rank")
        return AddressScheme::RowBankRankColumn;
    if (name == "rank-bank-row")
        return AddressScheme::RankBankRowColumn;
    SMARTREF_FATAL("unknown scheme '", name, "'");
}

void
listProfiles()
{
    ReportTable table({"benchmark", "suite", "2GB coverage",
                       "3D coverage", "reads", "run length"});
    for (const auto &p : allProfiles()) {
        table.addRow({p.name, p.suite, fmtPercent(p.reduction2gb),
                      fmtPercent(p.reduction3d),
                      fmtPercent(p.readFraction),
                      std::to_string(p.accessesPerVisit)});
    }
    table.print(std::cout);
}

void
printSummary(const std::string &label, const EnergySnapshot &d,
             std::size_t backlog, double hitRate, bool isCache)
{
    const double seconds =
        static_cast<double>(d.tick) / static_cast<double>(kSecond);
    ReportTable table({"metric", "value"});
    table.addRow({"measured window (ms)", fmtDouble(seconds * 1e3, 1)});
    table.addRow({"refreshes/s",
                  fmtMillions(static_cast<double>(d.refreshes) / seconds) +
                      " M"});
    table.addRow({"demand accesses", std::to_string(d.demandAccesses)});
    if (isCache)
        table.addRow({"cache hit rate", fmtPercent(hitRate)});
    table.addRow(
        {"avg demand latency (ns)",
         fmtDouble(d.demandAccesses
                       ? d.latencySumTicks /
                             static_cast<double>(d.demandAccesses) / 1e3
                       : 0.0,
                   1)});
    table.addRow({"refresh energy (mJ)", fmtDouble(d.refreshEnergy * 1e3)});
    table.addRow({"activate energy (mJ)", fmtDouble(d.actEnergy * 1e3)});
    table.addRow({"read/write energy (mJ)",
                  fmtDouble((d.readEnergy + d.writeEnergy) * 1e3)});
    table.addRow(
        {"background energy (mJ)", fmtDouble(d.backgroundEnergy * 1e3)});
    table.addRow(
        {"policy overhead (mJ)", fmtDouble(d.overheadEnergy * 1e3)});
    table.addRow({"total energy (mJ)", fmtDouble(d.totalEnergy() * 1e3)});
    table.addRow({"max refresh backlog", std::to_string(backlog)});
    table.addRow({"retention violations", std::to_string(d.violations)});
    std::cout << "\n=== " << label << " ===\n";
    table.print(std::cout);
}

/** Attach the sinks and category filter requested on the command line. */
void
configureTracer(const CliArgs &args)
{
    Tracer &tracer = globalTracer();
    tracer.setCategories(parseTraceCategories(args.traceCategories()));
    if (!args.traceOutPath().empty())
        tracer.addSink(
            std::make_unique<ChromeTraceSink>(args.traceOutPath()));
    if (!args.traceCsvPath().empty())
        tracer.addSink(
            std::make_unique<CsvTraceSink>(args.traceCsvPath()));
}

/** Split a comma-separated list, dropping empty tokens. */
std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream in(list);
    while (std::getline(in, token, ','))
        if (!token.empty())
            out.push_back(token);
    return out;
}

/** Every full dotted stat path below @p group, for did-you-mean. */
void
collectStatPaths(const StatGroup &group, const std::string &prefix,
                 std::vector<std::string> &out)
{
    for (const StatBase *stat : group.stats())
        out.push_back(prefix + stat->name());
    for (const StatGroup *child : group.children())
        collectStatPaths(*child, prefix + child->statName() + ".", out);
}

/**
 * Build the interval sampler (when --stats-interval-ms is given) with
 * the standard refresh-dynamics columns plus any --interval-cols dotted
 * stat paths (validated before the run starts), and start it.
 */
std::unique_ptr<IntervalStats>
makeSampler(const CliArgs &args, const StatGroup &root, EventQueue &eq,
            MemoryController &ctrl, DramModule &dram,
            SmartRefreshPolicy *smart)
{
    const std::uint64_t ms = args.statsIntervalMs();
    const std::string cols = args.getString("interval-cols");
    if (ms == 0) {
        if (!cols.empty())
            SMARTREF_FATAL("--interval-cols requires --stats-interval-ms");
        return nullptr;
    }
    auto sampler =
        std::make_unique<IntervalStats>(eq, Tick(ms) * kMillisecond);
    sampler->addDelta("refreshes", [&dram] {
        return static_cast<double>(dram.totalRefreshes());
    });
    sampler->addDelta("demandAccesses", [&ctrl] {
        return static_cast<double>(ctrl.demandReads() +
                                   ctrl.demandWrites());
    });
    sampler->addDelta("rowHits", [&ctrl] {
        return static_cast<double>(ctrl.rowHits());
    });
    sampler->addGauge("refreshBacklog", [&ctrl] {
        return static_cast<double>(ctrl.refreshBacklog());
    });
    if (smart) {
        // Policy-internal stats are found by dotted path; the group is
        // named "refresh.smart" so this also exercises greedy matching.
        if (const StatBase *s =
                smart->resolveStat("refresh.smart.touchesDeferred")) {
            sampler->addDelta("touchesDeferred",
                              [s] { return statValue(*s); });
        }
    }
    for (const std::string &path : splitCommas(cols)) {
        const StatBase *s = root.resolveStat(path);
        if (!s) {
            std::vector<std::string> names;
            collectStatPaths(root,
                             root.statName().empty()
                                 ? ""
                                 : root.statName() + ".",
                             names);
            SMARTREF_FATAL("unknown stat path '", path, "'",
                           didYouMean(path, names));
        }
        sampler->addDelta(path, [s] { return statValue(*s); });
    }
    sampler->start();
    return sampler;
}

/**
 * Verify and drain the optional audit / ledger / profile artifacts.
 * The overhead lump joins the ledger here because it is an analytic
 * per-run quantity the DRAM module never sees. @p dram is null for
 * sharded multi-channel runs, whose caller has already verified every
 * channel's ledger.
 */
void
finishLedgerAudit(const CliArgs &args, const DramModule *dram,
                  double overheadJoules, const RefreshAudit *audit,
                  EnergyLedger *ledger, const PhaseProfiler *profiler,
                  const std::string &configHash)
{
    if (ledger) {
        ledger->setOverhead(overheadJoules);
        if (args.has("check-conservation") && dram) {
            dram->verifyLedger(true);
            std::cout << "energy conservation verified on '"
                      << dram->statName()
                      << "' (ledger == power stats)\n";
        }
        RunMeta meta;
        meta.schema = "smartref-ledger-v1";
        meta.configHash = configHash;
        if (!args.ledgerOutPath().empty()) {
            ledger->writeJson(args.ledgerOutPath(), metaJson(meta));
            std::cout << "energy ledger written to "
                      << args.ledgerOutPath() << "\n";
        }
        if (!args.ledgerCsvPath().empty()) {
            ledger->writeCsv(args.ledgerCsvPath());
            std::cout << "energy ledger CSV written to "
                      << args.ledgerCsvPath() << "\n";
        }
        if (!args.ledgerCheckPath().empty()) {
            SMARTREF_ASSERT(dram,
                            "--ledger-check needs a single-module run");
            RunMeta checkMeta;
            checkMeta.schema = "smartref-stats-v1";
            checkMeta.configHash = configHash;
            ledger->writeConservationCheckJson(
                args.ledgerCheckPath(), dram->power().fullStatName(),
                metaJson(checkMeta));
            std::cout << "conservation check written to "
                      << args.ledgerCheckPath() << "\n";
        }
    }
    if (audit) {
        if (!args.auditOutPath().empty()) {
            audit->writeBinary(args.auditOutPath());
            std::cout << "audit trail (" << audit->total()
                      << " records) written to " << args.auditOutPath()
                      << "\n";
        }
        if (!args.auditJsonPath().empty()) {
            audit->writeNdjson(args.auditJsonPath());
            std::cout << "audit NDJSON (" << audit->total()
                      << " records) written to " << args.auditJsonPath()
                      << "\n";
        }
    }
    if (profiler && !args.profileOutPath().empty()) {
        std::ofstream out(args.profileOutPath());
        if (!out)
            SMARTREF_FATAL("cannot write profile JSON '",
                           args.profileOutPath(), "'");
        RunMeta meta;
        meta.schema = "smartref-profile-v1";
        meta.configHash = configHash;
        out << "{\"schema\":\"smartref-profile-v1\",\"meta\":"
            << metaJson(meta) << ",\"phases\":" << profiler->toJson()
            << "}\n";
        std::cout << "phase profile written to "
                  << args.profileOutPath() << "\n";
    }
}

/** End-of-run observability output: interval CSV, JSON stats, heatmap,
 *  flush. `configHash` ties every artifact to the same run provenance. */
void
finishObservability(const CliArgs &args, const StatGroup &root,
                    IntervalStats *sampler, const std::string &configHash,
                    const RefreshHeatmap *heatmap,
                    const PhaseProfiler *profiler)
{
    if (sampler) {
        sampler->finish();
        std::string path = args.statsIntervalPath();
        if (path.empty())
            path = "stats_intervals.csv";
        sampler->writeCsv(path);
        std::cout << "interval statistics written to " << path << "\n";
    }
    if (!args.statsJsonPath().empty()) {
        RunMeta meta;
        meta.schema = "smartref-stats-v1";
        meta.configHash = configHash;
        // Host wall times are non-deterministic, so phase profiles ride
        // as a top-level extra member, never inside "stats".
        std::string extra;
        if (profiler && !profiler->empty())
            extra = "\"phases\": " + profiler->toJson();
        writeStatsJson(root, args.statsJsonPath(), metaJson(meta),
                       extra);
        std::cout << "JSON statistics written to "
                  << args.statsJsonPath() << "\n";
    }
    if (heatmap) {
        const std::string path = args.heatmapOutPath();
        std::ofstream out(path);
        if (!out)
            SMARTREF_FATAL("cannot write heatmap JSON '", path, "'");
        RunMeta meta;
        meta.schema = "smartref-heatmap-v1";
        meta.configHash = configHash;
        out << "{\"schema\":\"smartref-heatmap-v1\",\"meta\":"
            << metaJson(meta) << ",\"heatmap\":";
        heatmap->writeJson(out);
        out << "}\n";
        std::filesystem::path csvPath(path);
        csvPath.replace_extension(".csv");
        std::ofstream csv(csvPath);
        if (!csv)
            SMARTREF_FATAL("cannot write heatmap CSV '",
                           csvPath.string(), "'");
        heatmap->writeCsv(csv);
        std::cout << "heatmap written to " << path << " and "
                  << csvPath.string() << "\n";
    }
    globalTracer().flush();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("version")) {
        std::cout << versionText("smartref_sim");
        return 0;
    }
    if (args.has("list")) {
        listProfiles();
        return 0;
    }

    const ExperimentOptions opts = args.experimentOptions();
    setLogLevel(opts.logLevel);
    configureTracer(args);
    DramConfig dram = dramConfigByName(args.getString("config", "2gb"));
    if (args.has("parallelism"))
        dram.parallelism =
            parallelismFromString(args.getString("parallelism"));
    const PolicyKind policy =
        policyFromString(args.getString("policy", "smart"));
    const std::string tracePath = args.getString("trace");
    const std::string statsOut = args.getString("stats-out");
    const bool threed = args.has("threed");

    SmartRefreshConfig smart;
    smart.counterBits = opts.counterBits;
    smart.segments = opts.segments;
    smart.queueCapacity = opts.segments;
    smart.autoReconfigure = opts.autoReconfigure;
    smart.sparseCounters = opts.sparseCounters;

    // Every artifact of this run (stats JSON, heatmap) carries the same
    // configuration hash so they can be attributed to one experiment.
    std::ostringstream cfgKey;
    cfgKey << "config=" << dram.name << ";policy=" << toString(policy)
           << ";threed=" << (threed ? 1 : 0);
    // Same convention as sweepConfigHash: the historical default mode
    // leaves pre-parallelism hashes untouched.
    if (dram.parallelism != RefreshParallelism::PerBank)
        cfgKey << ";par=" << toString(dram.parallelism);
    // Same stability convention: sparse counters change the modeled
    // SRAM traffic, so they enter the hash only when switched on.
    if (opts.sparseCounters)
        cfgKey << ";sparse=1";
    cfgKey << ";classes=" << (args.has("classes") ? 1 : 0)
           << ";bits=" << opts.counterBits
           << ";segments=" << opts.segments
           << ";autoReconfigure=" << (opts.autoReconfigure ? 1 : 0)
           << ";warmupMs=" << opts.warmup / kMillisecond
           << ";measureMs=" << opts.measure / kMillisecond
           << ";seed=" << opts.seed << ";workload="
           << (tracePath.empty() ? args.getString("benchmark", "mummer")
                                 : "trace:" + tracePath);
    const std::string configHash = hex64(fnv1a64(cfgKey.str()));

    const bool wantAudit =
        !args.auditOutPath().empty() || !args.auditJsonPath().empty();
#ifdef SMARTREF_AUDIT_DISABLED
    if (wantAudit) {
        SMARTREF_FATAL("this binary was built with SMARTREF_AUDIT=OFF; "
                       "--audit-out/--audit-json are unavailable");
    }
#endif
    std::unique_ptr<RefreshAudit> audit;
    if (wantAudit) {
        audit = std::make_unique<RefreshAudit>(RefreshAudit::Shape{
            dram.org.ranks, dram.org.banks, dram.org.rows});
    }
    std::unique_ptr<EnergyLedger> ledger;
    if (args.has("check-conservation") || !args.ledgerOutPath().empty() ||
        !args.ledgerCsvPath().empty() || !args.ledgerCheckPath().empty()) {
        // Multi-channel runs merge into a channel-major rank axis
        // (channel = rank / org.ranks); single-channel shapes are
        // unchanged (channels == 1).
        ledger = std::make_unique<EnergyLedger>(EnergyLedger::Shape{
            dram.channels * dram.org.ranks, dram.org.banks});
    }
    std::unique_ptr<PhaseProfiler> profiler;
    if (!args.profileOutPath().empty())
        profiler = std::make_unique<PhaseProfiler>();

    std::uint64_t violations = 0;

    if (threed) {
        ThreeDSystemConfig cfg;
        cfg.threeD = dram;
        cfg.threeDPolicy = policy;
        cfg.smart = smart;
        std::unique_ptr<RefreshHeatmap> heatmap;
        if (!args.heatmapOutPath().empty()) {
            heatmap = std::make_unique<RefreshHeatmap>(
                dram.org.ranks, dram.org.banks, opts.segments,
                (1u << opts.counterBits) - 1);
            cfg.heatmap = heatmap.get();
        }
        cfg.audit = audit.get();
        cfg.ledger = ledger.get();
        cfg.profiler = profiler.get();
        ThreeDSystem sys(cfg);
        const std::string benchName =
            args.getString("benchmark", "mummer");
        for (const auto &wp : threeDParams(findProfile(benchName), dram,
                                           opts.seed))
            sys.addWorkload(wp);

        auto sampler =
            makeSampler(args, sys, sys.eventQueue(),
                        sys.threeDController(), sys.threeDDram(),
                        sys.smartPolicy());
        sys.run(opts.warmup);
        const EnergySnapshot warm = captureSnapshot(sys);
        sys.run(opts.measure);
        EnergySnapshot d = captureSnapshot(sys) - warm;
        d.violations += sys.threeDDram().retention().finalCheck(
            sys.eventQueue().now());
        violations = d.violations;
        printSummary(dram.name + " / " + toString(policy) + " / " +
                         benchName,
                     d, sys.threeDController().maxRefreshBacklog(),
                     sys.cache().hitRate(), true);
        if (!statsOut.empty()) {
            std::ofstream out(statsOut);
            sys.dumpStats(out);
            std::cout << "full statistics written to " << statsOut
                      << "\n";
        }
        finishLedgerAudit(args, &sys.threeDDram(),
                          sys.threeDPolicy().overheadEnergy(),
                          audit.get(), ledger.get(), profiler.get(),
                          configHash);
        finishObservability(args, sys, sampler.get(), configHash,
                            cfg.heatmap, profiler.get());
    } else if (dram.channels > 1) {
        // Multi-channel server configs run on the per-channel sharded
        // engine (harness/sharded.hh): one event queue per channel
        // advanced in epoch lock-step on up to -j N workers, with
        // deterministic merges, so every artifact below is
        // byte-identical for any -j value.
        for (const char *flag :
             {"trace", "trace-out", "trace-csv", "stats-out",
              "stats-json", "stats-interval-ms", "stats-interval-out",
              "interval-cols", "ledger-check", "classes"}) {
            if (args.has(flag)) {
                SMARTREF_FATAL("--", flag,
                               " is not yet supported with channels"
                               " > 1 (config '", dram.name, "')");
            }
        }

        SystemConfig cfg;
        cfg.dram = dram;
        cfg.policy = policy;
        cfg.smart = smart;
        cfg.ctrl.scheme =
            schemeByName(args.getString("scheme", "row-rank-bank"));
        std::unique_ptr<RefreshHeatmap> heatmap;
        if (!args.heatmapOutPath().empty()) {
            // Per-channel shape: channels overlay onto one grid.
            heatmap = std::make_unique<RefreshHeatmap>(
                dram.org.ranks, dram.org.banks, opts.segments,
                (1u << opts.counterBits) - 1);
            cfg.heatmap = heatmap.get();
        }
        cfg.audit = audit.get();
        cfg.ledger = ledger.get();
        cfg.profiler = profiler.get();

        ShardedSystem sys(cfg, opts.shardJobs);
        DramConfig chDram = dram;
        chDram.channels = 1;
        std::string label;
        for (std::uint32_t c = 0; c < dram.channels; ++c) {
            const std::uint64_t seed = shardChannelSeed(opts.seed, c);
            if (args.has("idle")) {
                label = "idle-os";
                sys.channel(c).addWorkload(idleParams(chDram, seed));
            } else if (args.has("light")) {
                label = "light-activity";
                sys.channel(c).addWorkload(lightParams(chDram, seed));
            } else {
                label = args.getString("benchmark", "mummer");
                for (const auto &wp : conventionalParams(
                         findProfile(label), chDram, 1.0, seed))
                    sys.channel(c).addWorkload(wp);
            }
        }

        sys.run(opts.warmup);
        const EnergySnapshot warm = sys.captureMergedSnapshot();
        sys.run(opts.measure);
        EnergySnapshot d = sys.captureMergedSnapshot() - warm;
        d.violations += sys.finalCheck();
        violations = d.violations;
        printSummary(dram.name + " / " + toString(policy) + " / " +
                         label,
                     d, sys.maxRefreshBacklog(), 0.0, false);
        std::cout << "channels: " << dram.channels
                  << ", resident counter bytes: "
                  << sys.residentCounterBytes() << "\n";

        if (args.has("check-conservation")) {
            sys.verifyLedgers(true);
            std::cout << "energy conservation verified on all "
                      << dram.channels << " channels\n";
        }
        double overhead = 0.0;
        for (std::uint32_t c = 0; c < dram.channels; ++c)
            overhead += sys.channel(c).refreshPolicy().overheadEnergy();
        sys.mergeObservers();
        finishLedgerAudit(args, nullptr, overhead, audit.get(),
                          ledger.get(), profiler.get(), configHash);
        finishObservability(args, sys.channel(0), nullptr, configHash,
                            cfg.heatmap, profiler.get());
    } else {
        SystemConfig cfg;
        cfg.dram = dram;
        cfg.policy = policy;
        cfg.smart = smart;
        cfg.ctrl.scheme =
            schemeByName(args.getString("scheme", "row-rank-bank"));
        if (args.has("classes")) {
            // RAPID-style retention classes (see DESIGN.md section 9).
            RetentionClassParams cp;
            cp.seed = opts.seed;
            cfg.retentionClasses = std::make_shared<RetentionClassMap>(
                dram.org.totalRows(), cp);
        }
        std::unique_ptr<RefreshHeatmap> heatmap;
        if (!args.heatmapOutPath().empty()) {
            // Retention classes widen the counters (multi-rate rows),
            // so the heatmap's value axis must widen with them.
            std::uint32_t bits = opts.counterBits;
            if (cfg.retentionClasses)
                bits += static_cast<std::uint32_t>(std::bit_width(
                    cfg.retentionClasses->maxMultiplier() - 1));
            heatmap = std::make_unique<RefreshHeatmap>(
                dram.org.ranks, dram.org.banks, opts.segments,
                (1u << bits) - 1);
            cfg.heatmap = heatmap.get();
        }
        cfg.audit = audit.get();
        cfg.ledger = ledger.get();
        cfg.profiler = profiler.get();
        System sys(cfg);
        auto sampler = makeSampler(args, sys, sys.eventQueue(),
                                   sys.controller(), sys.dram(),
                                   sys.smartPolicy());

        std::string label;
        if (!tracePath.empty()) {
            label = "trace:" + tracePath;
            // Trace-driven: inject records as simulated time advances.
            TraceReader reader(tracePath);
            TraceRecord rec;
            Tick last = 0;
            sys.run(0);
            while (reader.next(rec)) {
                if (rec.tick > last) {
                    sys.run(rec.tick - last);
                    last = rec.tick;
                }
                sys.controller().access(rec.addr, rec.write);
            }
            sys.run(opts.measure);
            EnergySnapshot d = captureSnapshot(sys);
            d.violations += sys.dram().retention().finalCheck(
                sys.eventQueue().now());
            violations = d.violations;
            printSummary(dram.name + " / " + toString(policy) + " / " +
                             label,
                         d, sys.controller().maxRefreshBacklog(), 0.0,
                         false);
        } else {
            if (args.has("idle")) {
                label = "idle-os";
                sys.addWorkload(idleParams(dram, opts.seed));
            } else if (args.has("light")) {
                label = "light-activity";
                sys.addWorkload(lightParams(dram, opts.seed));
            } else {
                label = args.getString("benchmark", "mummer");
                for (const auto &wp : conventionalParams(
                         findProfile(label), dram, 1.0, opts.seed))
                    sys.addWorkload(wp);
            }
            sys.run(opts.warmup);
            const EnergySnapshot warm = captureSnapshot(sys);
            sys.run(opts.measure);
            EnergySnapshot d = captureSnapshot(sys) - warm;
            d.violations += sys.dram().retention().finalCheck(
                sys.eventQueue().now());
            violations = d.violations;
            printSummary(dram.name + " / " + toString(policy) + " / " +
                             label,
                         d, sys.controller().maxRefreshBacklog(), 0.0,
                         false);
        }
        if (!statsOut.empty()) {
            std::ofstream out(statsOut);
            sys.dumpStats(out);
            std::cout << "full statistics written to " << statsOut
                      << "\n";
        }
        finishLedgerAudit(args, &sys.dram(),
                          sys.refreshPolicy().overheadEnergy(),
                          audit.get(), ledger.get(), profiler.get(),
                          configHash);
        finishObservability(args, sys, sampler.get(), configHash,
                            cfg.heatmap, profiler.get());
    }

    return violations == 0 ? 0 : 1;
}

/**
 * @file
 * smartref_inspect — query refresh-audit trails and energy ledgers.
 *
 * Takes the artifacts the simulator emits (`--audit-out` binary audit
 * trails, `--ledger-out` ledger JSON, sweep result-cache entry blobs,
 * `--metrics-out` snapshots and sweepd `health.json`) and answers the
 * questions a debugging session actually asks: which outcomes
 * dominate, which rows are hot, what happened in this time window, and
 * how do two runs differ. File types are auto-detected (binary
 * "SRAUDIT" magic vs JSON schema), so there are no subcommands.
 *
 * Usage:
 *   smartref_inspect FILE [FILE_B]
 *                    [--outcome NAME]   keep one decision outcome
 *                    [--channel N]      keep one memory channel
 *                    [--rank N] [--bank N]
 *                    [--from-ms X] [--to-ms X]  simulated-time window
 *                    [--top N]          top rows (audit) / cells (ledger)
 *                    [--histogram]      decision histogram only
 *                    [--records N]      dump N matching records (NDJSON)
 *                    [--version]        print the provenance build block
 *
 * With two files of the same kind the tool diffs them: per-outcome
 * counts for audits, component totals for ledgers, counter deltas and
 * rates for metrics snapshots (health.json diffs its embedded
 * snapshot).
 *
 * Exit codes: 0 = done (diff: equal), 1 = diff found differences,
 *             2 = usage or I/O error.
 */

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "ctrl/refresh_audit.hh"
#include "harness/report.hh"
#include "sim/logging.hh"
#include "sim/mini_json.hh"
#include "sim/provenance.hh"
#include "sim/suggest.hh"
#include "sim/types.hh"

using namespace smartref;

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " FILE [FILE_B] [--outcome NAME] [--channel N]"
                 " [--rank N] [--bank N]"
                 " [--from-ms X] [--to-ms X] [--top N] [--histogram]"
                 " [--records N]\n";
    return 2;
}

/** Record filters shared by the audit and ledger views. */
struct Filters
{
    bool hasOutcome = false;
    AuditOutcome outcome = AuditOutcome::Issued;
    long channel = -1;  ///< -1 = any
    long rank = -1;     ///< -1 = any
    long bank = -1;     ///< -1 = any
    double fromMs = -1; ///< <0 = open
    double toMs = -1;   ///< <0 = open

    bool
    any() const
    {
        return hasOutcome || channel >= 0 || rank >= 0 || bank >= 0 ||
               fromMs >= 0 || toMs >= 0;
    }

    bool
    inWindow(double ms) const
    {
        if (fromMs >= 0 && ms < fromMs)
            return false;
        if (toMs >= 0 && ms >= toMs)
            return false;
        return true;
    }

    bool
    matches(const AuditRecord &r) const
    {
        if (hasOutcome && r.outcome != static_cast<std::uint8_t>(outcome))
            return false;
        if (channel >= 0 && r.channel != channel)
            return false;
        if (rank >= 0 && r.rank != rank)
            return false;
        if (bank >= 0 && r.bank != bank)
            return false;
        return inWindow(static_cast<double>(r.tick) /
                        static_cast<double>(kMillisecond));
    }
};

struct AuditData
{
    AuditFileHeader header{};
    std::vector<AuditRecord> records;
};

AuditData
loadAudit(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SMARTREF_FATAL("cannot read '", path, "'");
    AuditData data;
    in.read(reinterpret_cast<char *>(&data.header),
            sizeof(data.header));
    if (!in ||
        std::memcmp(data.header.magic, kAuditMagic,
                    sizeof(kAuditMagic)) != 0)
        SMARTREF_FATAL("'", path, "' is not an audit trail");
    if (data.header.version != kAuditVersion) {
        SMARTREF_FATAL("'", path, "': unsupported audit version ",
                       data.header.version, " (this build reads version ",
                       kAuditVersion,
                       "; re-run the simulator to regenerate the trail)");
    }
    if (data.header.recordBytes != sizeof(AuditRecord))
        SMARTREF_FATAL("'", path, "': record size mismatch");
    in.seekg(0, std::ios::end);
    const std::streamoff bytes =
        in.tellg() - std::streamoff(sizeof(data.header));
    if (bytes < 0 ||
        bytes % std::streamoff(sizeof(AuditRecord)) != 0)
        SMARTREF_FATAL("'", path, "': truncated audit trail");
    data.records.resize(static_cast<std::size_t>(bytes) /
                        sizeof(AuditRecord));
    in.seekg(sizeof(data.header));
    in.read(reinterpret_cast<char *>(data.records.data()), bytes);
    if (!in)
        SMARTREF_FATAL("'", path, "': short read");
    return data;
}

bool
isAuditFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SMARTREF_FATAL("cannot read '", path, "'");
    char magic[sizeof(kAuditMagic)] = {};
    in.read(magic, sizeof(magic));
    return in && std::memcmp(magic, kAuditMagic, sizeof(magic)) == 0;
}

std::string
fmtJoules(double j)
{
    return fmtDouble(j * 1e3, 6) + " mJ";
}

minijson::Value
loadJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SMARTREF_FATAL("cannot read '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    return minijson::parse(text.str());
}

bool
isCacheEntry(const minijson::Value &root)
{
    return root.has("schema") &&
           root.at("schema").str == "smartref-result-cache-v1";
}

bool
isMetricsSnapshot(const minijson::Value &root)
{
    return root.has("schema") &&
           root.at("schema").str == "smartref-metrics-v1";
}

bool
isHealthFile(const minijson::Value &root)
{
    return root.has("schema") &&
           root.at("schema").str == "smartref-sweepd-health-v1";
}

/**
 * The metrics snapshot of a metrics-or-health file: health.json embeds
 * one under "metrics", a --metrics-out file *is* one.
 */
const minijson::Value &
metricsOf(const minijson::Value &root)
{
    return isHealthFile(root) ? root.at("metrics") : root;
}

/** Validates that @p root is a ledger, with a pointed error if not. */
const minijson::Value &
asLedger(const minijson::Value &root, const std::string &path)
{
    if (isCacheEntry(root))
        SMARTREF_FATAL("'", path,
                       "' is a sweep result-cache entry; diff entries "
                       "with smartref_statdiff instead");
    if (!root.has("schema") ||
        root.at("schema").str != "smartref-ledger-v1") {
        SMARTREF_FATAL("'", path,
                       "' is neither an audit trail nor a ledger "
                       "(expected schema smartref-ledger-v1)");
    }
    return root;
}

/**
 * Summary of one content-addressed sweep result-cache entry: the key,
 * the grid point it memoizes, and the headline baseline-vs-policy
 * metrics (the full-precision payload is for smartref_statdiff).
 */
void
inspectCacheEntry(const minijson::Value &root)
{
    const minijson::Value &p = root.at("point");
    std::cout << "result-cache entry: key " << root.at("key").str << "\n"
              << "point: config=" << p.at("config").str
              << " benchmark=" << p.at("benchmark").str
              << " policy=" << p.at("policy").str << " counterBits="
              << static_cast<long>(p.at("counterBits").number)
              << " retentionMs="
              << static_cast<long>(p.at("retentionMs").number)
              << " parallelism=" << p.at("parallelism").str << "\n"
              << "seed: " << root.at("seed").str << "\n"
              << "canonical: " << root.at("canonical").str << "\n";

    const minijson::Value &cmp = root.at("comparison");
    ReportTable table({"run", "policy", "refreshes/s", "refreshEnergy",
                       "totalEnergy", "avgLatencyNs"});
    for (const char *side : {"baseline", "smart"}) {
        const minijson::Value &r = cmp.at(side);
        table.addRow({side, r.at("policy").str,
                      fmtDouble(r.at("refreshesPerSec").number, 0),
                      fmtJoules(r.at("refreshEnergyJ").number),
                      fmtJoules(r.at("totalEnergyJ").number),
                      fmtDouble(r.at("avgLatencyNs").number, 2)});
    }
    std::cout << "\n=== memoized comparison ===\n";
    table.print(std::cout);

    const double baseRate =
        cmp.at("baseline").at("refreshesPerSec").number;
    const double smartRate = cmp.at("smart").at("refreshesPerSec").number;
    if (baseRate > 0.0)
        std::cout << "refresh reduction: "
                  << fmtPercent(1.0 - smartRate / baseRate) << "\n";
}

/** Outcome (and source) histogram of the matching records. */
void
printAuditHistogram(const AuditData &a, const Filters &f)
{
    // Multi-channel trails (header v2 with channels > 1) get one
    // histogram bucket per (channel, outcome), labelled "chN/Outcome";
    // single-channel trails keep the historical unlabelled buckets.
    const bool multi = a.header.channels > 1 && f.channel < 0;
    std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint64_t>
        byOutcome; // (channel, outcome code) -> count
    std::array<std::uint64_t, kAuditSourceCount> bySource{};
    // Trails written by a newer binary can carry codes this build does
    // not know; surface them as unknown(N) rows rather than dropping
    // them silently (the shares must still sum to 100%).
    std::map<std::uint8_t, std::uint64_t> unknownSources;
    std::uint64_t total = 0;
    for (const AuditRecord &r : a.records) {
        if (!f.matches(r))
            continue;
        ++total;
        ++byOutcome[{multi ? r.channel : std::uint8_t(0), r.outcome}];
        if (r.source < kAuditSourceCount)
            ++bySource[r.source];
        else
            ++unknownSources[r.source];
    }
    if (!multi) {
        // Keep the zero rows of known outcomes visible.
        for (std::size_t i = 0; i < kAuditOutcomeCount; ++i)
            byOutcome.insert({{0, static_cast<std::uint8_t>(i)}, 0});
    }
    ReportTable outcomes({"outcome", "count", "share"});
    const auto share = [total](std::uint64_t n) {
        return fmtPercent(total ? static_cast<double>(n) /
                                      static_cast<double>(total)
                                : 0.0);
    };
    for (const auto &[key, count] : byOutcome) {
        const auto [ch, code] = key;
        std::string name =
            code < kAuditOutcomeCount
                ? toString(static_cast<AuditOutcome>(code))
                : "unknown(" + std::to_string(code) + ")";
        if (multi)
            name = "ch" + std::to_string(ch) + "/" + name;
        outcomes.addRow({name, std::to_string(count), share(count)});
    }
    std::cout << "\n=== decision histogram (" << total
              << " records) ===\n";
    outcomes.print(std::cout);

    ReportTable sources({"source", "count"});
    for (std::size_t i = 0; i < kAuditSourceCount; ++i) {
        sources.addRow({toString(static_cast<AuditSource>(i)),
                        std::to_string(bySource[i])});
    }
    for (const auto &[code, count] : unknownSources) {
        sources.addRow({"unknown(" + std::to_string(code) + ")",
                        std::to_string(count)});
    }
    std::cout << "\n=== by source ===\n";
    sources.print(std::cout);
}

/** The rows with the most matching records. */
void
printTopRows(const AuditData &a, const Filters &f, std::size_t top)
{
    const bool multi = a.header.channels > 1;
    std::map<std::uint64_t, std::uint64_t> counts; // packed coord -> n
    for (const AuditRecord &r : a.records) {
        if (!f.matches(r))
            continue;
        const std::uint64_t key = (std::uint64_t(r.channel) << 48) |
                                  (std::uint64_t(r.rank) << 40) |
                                  (std::uint64_t(r.bank) << 32) | r.row;
        ++counts[key];
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> rows(
        counts.begin(), counts.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &x, const auto &y) {
                         return x.second > y.second;
                     });
    if (rows.size() > top)
        rows.resize(top);
    std::vector<std::string> headers = {"rank", "bank", "row",
                                        "records"};
    if (multi)
        headers.insert(headers.begin(), "channel");
    ReportTable table(headers);
    for (const auto &[key, n] : rows) {
        std::vector<std::string> row = {
            std::to_string((key >> 40) & 0xff),
            std::to_string((key >> 32) & 0xff),
            std::to_string(key & 0xffffffffu), std::to_string(n)};
        if (multi)
            row.insert(row.begin(), std::to_string((key >> 48) & 0xff));
        table.addRow(row);
    }
    std::cout << "\n=== top " << rows.size() << " rows ===\n";
    table.print(std::cout);
}

/** Dump up to @p limit matching records as NDJSON (writeNdjson shape). */
void
printRecords(const AuditData &a, const Filters &f, std::uint64_t limit)
{
    const bool multi = a.header.channels > 1;
    std::uint64_t emitted = 0;
    for (const AuditRecord &r : a.records) {
        if (emitted >= limit)
            break;
        if (!f.matches(r))
            continue;
        std::cout << "{\"t\":" << r.tick;
        if (multi)
            std::cout << ",\"channel\":" << unsigned(r.channel);
        std::cout << ",\"rank\":" << unsigned(r.rank)
                  << ",\"bank\":" << unsigned(r.bank)
                  << ",\"row\":" << r.row << ",\"outcome\":\""
                  << toString(static_cast<AuditOutcome>(r.outcome))
                  << "\",\"source\":\""
                  << toString(static_cast<AuditSource>(r.source))
                  << "\"}\n";
        ++emitted;
    }
}

void
inspectAudit(const AuditData &a, const Filters &f, std::size_t top,
             std::uint64_t records, bool histogramOnly)
{
    if (!histogramOnly) {
        const auto &h = a.header;
        std::cout << "audit trail: " << a.records.size() << " records, ";
        if (h.channels > 1)
            std::cout << h.channels << " channel(s) x ";
        std::cout << h.ranks << " rank(s) x " << h.banks << " bank(s) x "
                  << h.rows << " row(s)\n";
        if (!a.records.empty()) {
            std::cout << "time span: "
                      << static_cast<double>(a.records.front().tick) /
                             static_cast<double>(kMillisecond)
                      << " .. "
                      << static_cast<double>(a.records.back().tick) /
                             static_cast<double>(kMillisecond)
                      << " ms\n";
        }
    }
    printAuditHistogram(a, f);
    if (!histogramOnly && top > 0)
        printTopRows(a, f, top);
    if (records > 0)
        printRecords(a, f, records);
}

int
diffAudits(const AuditData &a, const AuditData &b, const Filters &f)
{
    // Keyed rather than fixed-size so codes beyond this build's
    // kAuditOutcomeCount still participate in the diff (as unknown(N))
    // instead of being silently equal-by-omission.
    std::map<std::uint8_t, std::uint64_t> ca, cb;
    for (const AuditRecord &r : a.records)
        if (f.matches(r))
            ++ca[r.outcome];
    for (const AuditRecord &r : b.records)
        if (f.matches(r))
            ++cb[r.outcome];
    std::map<std::uint8_t, std::uint64_t> merged = ca;
    for (const auto &[code, count] : cb)
        merged.emplace(code, 0);
    for (std::size_t i = 0; i < kAuditOutcomeCount; ++i)
        merged.emplace(static_cast<std::uint8_t>(i), 0);
    bool differ = false;
    ReportTable table({"outcome", "A", "B", "delta"});
    for (const auto &[code, unused] : merged) {
        (void)unused;
        const std::uint64_t na = ca.count(code) ? ca[code] : 0;
        const std::uint64_t nb = cb.count(code) ? cb[code] : 0;
        const auto d = static_cast<std::int64_t>(nb) -
                       static_cast<std::int64_t>(na);
        differ = differ || d != 0;
        const std::string name =
            code < kAuditOutcomeCount
                ? toString(static_cast<AuditOutcome>(code))
                : "unknown(" + std::to_string(code) + ")";
        table.addRow({name, std::to_string(na), std::to_string(nb),
                      std::to_string(d)});
    }
    std::cout << "\n=== audit diff (per-outcome counts) ===\n";
    table.print(std::cout);
    std::cout << (differ ? "trails differ\n" : "trails agree\n");
    return differ ? 1 : 0;
}

/** Component energies of one rollup bucket. */
struct Rollup
{
    double act = 0, read = 0, write = 0, refresh = 0, background = 0;

    double
    total() const
    {
        return act + read + write + refresh + background;
    }
};

/**
 * Per-rank and top-cell rollups of one ledger, honouring the rank/bank/
 * time-window filters. Background energy is rank-level (there is no
 * per-bank attribution for standby power), so it only joins the rank
 * rollup.
 */
void
inspectLedger(const minijson::Value &root, const Filters &f,
              std::size_t top)
{
    // Multi-channel ledgers label cells with (channel, per-channel
    // rank); single-channel ledgers keep the bare global rank. A
    // channel of -1 below means "the file has no channel labels".
    std::map<std::pair<long, long>, Rollup> perRank; // (ch, rank)
    std::map<std::tuple<long, long, long>, Rollup> perCell;
    const auto channelOf = [](const minijson::Value &v) {
        return v.has("channel")
                   ? static_cast<long>(v.at("channel").number)
                   : -1;
    };
    for (const minijson::Value &iv : root.at("intervals").array) {
        const double t0 = iv.at("t0_ps").number /
                          static_cast<double>(kMillisecond);
        if (!f.inWindow(t0))
            continue;
        for (const minijson::Value &cell : iv.at("cells").array) {
            const long ch = channelOf(cell);
            const long rank = static_cast<long>(cell.at("rank").number);
            const long bank = static_cast<long>(cell.at("bank").number);
            if ((f.channel >= 0 && ch != f.channel) ||
                (f.rank >= 0 && rank != f.rank) ||
                (f.bank >= 0 && bank != f.bank))
                continue;
            const minijson::Value &e = cell.at("energy");
            Rollup &r = perRank[{ch, rank}];
            Rollup &c = perCell[{ch, rank, bank}];
            for (Rollup *dst : {&r, &c}) {
                dst->act += e.at("act").number;
                dst->read += e.at("read").number;
                dst->write += e.at("write").number;
                dst->refresh += e.at("refresh").number;
            }
        }
        for (const minijson::Value &bg : iv.at("background").array) {
            const long ch = channelOf(bg);
            const long rank = static_cast<long>(bg.at("rank").number);
            if ((f.channel >= 0 && ch != f.channel) ||
                (f.rank >= 0 && rank != f.rank))
                continue;
            perRank[{ch, rank}].background += bg.at("energy").number;
        }
    }
    const auto rankLabel = [](long ch, long rank) {
        return ch >= 0 ? "ch" + std::to_string(ch) + "/" +
                             std::to_string(rank)
                       : std::to_string(rank);
    };

    if (root.has("totals") && !f.any()) {
        const minijson::Value &t = root.at("totals");
        ReportTable totals({"component", "energy"});
        for (const auto &[name, v] : t.object)
            totals.addRow({name, fmtJoules(v.number)});
        std::cout << "\n=== ledger totals ===\n";
        totals.print(std::cout);
    }

    ReportTable ranks(
        {"rank", "act", "read", "write", "refresh", "background",
         "total"});
    for (const auto &[coord, r] : perRank) {
        ranks.addRow({rankLabel(coord.first, coord.second),
                      fmtJoules(r.act), fmtJoules(r.read),
                      fmtJoules(r.write), fmtJoules(r.refresh),
                      fmtJoules(r.background), fmtJoules(r.total())});
    }
    std::cout << "\n=== per-rank rollup ===\n";
    ranks.print(std::cout);

    if (top > 0) {
        std::vector<std::pair<std::tuple<long, long, long>, Rollup>>
            cells(perCell.begin(), perCell.end());
        std::stable_sort(cells.begin(), cells.end(),
                         [](const auto &x, const auto &y) {
                             return x.second.total() > y.second.total();
                         });
        if (cells.size() > top)
            cells.resize(top);
        ReportTable table(
            {"rank", "bank", "act", "read", "write", "refresh",
             "total"});
        for (const auto &[coord, r] : cells) {
            const auto [ch, rank, bank] = coord;
            table.addRow({rankLabel(ch, rank), std::to_string(bank),
                          fmtJoules(r.act), fmtJoules(r.read),
                          fmtJoules(r.write), fmtJoules(r.refresh),
                          fmtJoules(r.total())});
        }
        std::cout << "\n=== top " << cells.size()
                  << " cells by energy ===\n";
        table.print(std::cout);
    }
}

int
diffLedgers(const minijson::Value &a, const minijson::Value &b)
{
    const minijson::Value &ta = a.at("totals");
    const minijson::Value &tb = b.at("totals");
    bool differ = false;
    ReportTable table({"component", "A", "B", "abs diff"});
    for (const auto &[name, va] : ta.object) {
        const double x = va.number;
        const double y = tb.has(name) ? tb.at(name).number : 0.0;
        differ = differ || x != y;
        table.addRow({name, fmtJoules(x), fmtJoules(y),
                      fmtJoules(y - x)});
    }
    for (const auto &[name, vb] : tb.object) {
        if (!ta.has(name)) {
            differ = true;
            table.addRow({name, "(absent)", fmtJoules(vb.number), "-"});
        }
    }
    std::cout << "\n=== ledger diff (component totals) ===\n";
    table.print(std::cout);
    std::cout << (differ ? "ledgers differ\n" : "ledgers agree\n");
    return differ ? 1 : 0;
}

/** Counters, gauges, and histogram stats of one metrics snapshot. */
void
inspectMetrics(const minijson::Value &m)
{
    std::cout << "metrics snapshot: uptime "
              << fmtDouble(m.at("uptimeSeconds").number, 2) << " s\n";

    const minijson::Value &counters = m.at("counters");
    if (!counters.object.empty()) {
        ReportTable table({"counter", "value"});
        for (const auto &[name, v] : counters.object) {
            table.addRow({name,
                          std::to_string(static_cast<std::uint64_t>(
                              v.number))});
        }
        std::cout << "\n=== counters ===\n";
        table.print(std::cout);
    }

    const minijson::Value &gauges = m.at("gauges");
    if (!gauges.object.empty()) {
        ReportTable table({"gauge", "value"});
        for (const auto &[name, v] : gauges.object)
            table.addRow({name, fmtDouble(v.number, 3)});
        std::cout << "\n=== gauges ===\n";
        table.print(std::cout);
    }

    const minijson::Value &hists = m.at("histograms");
    if (!hists.object.empty()) {
        ReportTable table({"histogram", "count", "sum", "min", "max",
                           "p50", "p95", "p99"});
        for (const auto &[name, h] : hists.object) {
            table.addRow(
                {name,
                 std::to_string(
                     static_cast<std::uint64_t>(h.at("count").number)),
                 fmtDouble(h.at("sum").number, 0),
                 fmtDouble(h.at("min").number, 0),
                 fmtDouble(h.at("max").number, 0),
                 fmtDouble(h.at("p50").number, 0),
                 fmtDouble(h.at("p95").number, 0),
                 fmtDouble(h.at("p99").number, 0)});
        }
        std::cout << "\n=== histograms ===\n";
        table.print(std::cout);
    }
}

/** Queue depths and liveness of one sweepd health.json. */
void
inspectHealth(const minijson::Value &root)
{
    const minijson::Value &q = root.at("queue");
    std::cout << "sweepd health: pid "
              << static_cast<long>(root.at("pid").number) << ", uptime "
              << fmtDouble(root.at("uptimeSeconds").number, 2) << " s\n"
              << "processed: "
              << static_cast<std::uint64_t>(root.at("processed").number)
              << " request(s), "
              << static_cast<std::uint64_t>(root.at("failures").number)
              << " failure(s), "
              << static_cast<std::uint64_t>(
                     root.at("requestsInFlight").number)
              << " in flight\n"
              << "last poll: unix ms "
              << static_cast<std::uint64_t>(
                     root.at("lastPollUnixMs").number)
              << "\n";
    ReportTable table({"state", "requests"});
    for (const char *state : {"incoming", "work", "done", "failed"}) {
        table.addRow({state,
                      std::to_string(static_cast<std::uint64_t>(
                          q.at(state).number))});
    }
    std::cout << "\n=== queue ===\n";
    table.print(std::cout);
    std::cout << "\n";
    inspectMetrics(root.at("metrics"));
}

/**
 * Counter deltas between two snapshots, with per-second rates when the
 * uptimes let us infer the elapsed wall (same process, B after A).
 */
int
diffMetrics(const minijson::Value &a, const minijson::Value &b)
{
    const double dt =
        b.at("uptimeSeconds").number - a.at("uptimeSeconds").number;
    const minijson::Value &ca = a.at("counters");
    const minijson::Value &cb = b.at("counters");
    std::map<std::string, bool> names;
    for (const auto &[name, v] : ca.object) {
        (void)v;
        names.emplace(name, true);
    }
    for (const auto &[name, v] : cb.object) {
        (void)v;
        names.emplace(name, true);
    }
    bool differ = false;
    ReportTable table({"counter", "A", "B", "delta", "rate/s"});
    for (const auto &[name, unused] : names) {
        (void)unused;
        const auto va = static_cast<std::int64_t>(
            ca.has(name) ? ca.at(name).number : 0.0);
        const auto vb = static_cast<std::int64_t>(
            cb.has(name) ? cb.at(name).number : 0.0);
        const std::int64_t d = vb - va;
        differ = differ || d != 0;
        table.addRow({name, std::to_string(va), std::to_string(vb),
                      std::to_string(d),
                      dt > 0.0 ? fmtDouble(static_cast<double>(d) / dt,
                                           2)
                               : "-"});
    }
    std::cout << "\n=== metrics diff (counter deltas";
    if (dt > 0.0)
        std::cout << ", " << fmtDouble(dt, 2) << " s apart";
    std::cout << ") ===\n";
    table.print(std::cout);
    std::cout << (differ ? "snapshots differ\n" : "snapshots agree\n");
    return differ ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    Filters filters;
    std::size_t top = 10;
    std::uint64_t records = 0;
    bool histogramOnly = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        if (arg == "--version") {
            std::cout << versionText("smartref_inspect");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--outcome") {
            const std::string name = value();
            filters.hasOutcome = true;
            if (!parseAuditOutcome(name, filters.outcome)) {
                std::cerr << "unknown outcome '" << name << "'"
                          << didYouMean(name, auditOutcomeNames())
                          << "\n";
                return 2;
            }
        } else if (arg == "--channel") {
            filters.channel = std::stol(value());
        } else if (arg == "--rank") {
            filters.rank = std::stol(value());
        } else if (arg == "--bank") {
            filters.bank = std::stol(value());
        } else if (arg == "--from-ms") {
            filters.fromMs = std::stod(value());
        } else if (arg == "--to-ms") {
            filters.toMs = std::stod(value());
        } else if (arg == "--top") {
            top = std::stoul(value());
        } else if (arg == "--records") {
            records = std::stoull(value());
        } else if (arg == "--histogram") {
            histogramOnly = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown flag '" << arg << "'\n";
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty() || files.size() > 2)
        return usage(argv[0]);

    try {
        const bool auditA = isAuditFile(files[0]);
        if (files.size() == 2) {
            if (auditA != isAuditFile(files[1]))
                SMARTREF_FATAL("cannot diff an audit trail against a "
                               "ledger");
            if (auditA)
                return diffAudits(loadAudit(files[0]),
                                  loadAudit(files[1]), filters);
            const minijson::Value ja = loadJsonFile(files[0]);
            const minijson::Value jb = loadJsonFile(files[1]);
            const bool metricsA =
                isMetricsSnapshot(ja) || isHealthFile(ja);
            const bool metricsB =
                isMetricsSnapshot(jb) || isHealthFile(jb);
            if (metricsA != metricsB)
                SMARTREF_FATAL("cannot diff a metrics snapshot against "
                               "a ledger");
            if (metricsA)
                return diffMetrics(metricsOf(ja), metricsOf(jb));
            return diffLedgers(asLedger(ja, files[0]),
                               asLedger(jb, files[1]));
        }
        if (auditA) {
            inspectAudit(loadAudit(files[0]), filters, top, records,
                         histogramOnly);
            return 0;
        }
        const minijson::Value root = loadJsonFile(files[0]);
        if (isCacheEntry(root)) {
            inspectCacheEntry(root);
            return 0;
        }
        if (isHealthFile(root)) {
            inspectHealth(root);
            return 0;
        }
        if (isMetricsSnapshot(root)) {
            inspectMetrics(root);
            return 0;
        }
        if (!root.has("schema") ||
            root.at("schema").str != "smartref-ledger-v1")
            SMARTREF_FATAL("'", files[0],
                           "' is neither an audit trail, a ledger, a "
                           "result-cache entry, nor a metrics/health "
                           "snapshot");
        inspectLedger(root, filters, top);
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "smartref_inspect: " << e.what() << "\n";
        return 2;
    }
}

/**
 * @file
 * smartref_sweepd — the sweep-as-a-service daemon.
 *
 * Watches a file-queue directory for grid-request JSONs, runs each
 * request through the shared sweep engine backed by the
 * content-addressed result cache, and leaves the deterministic
 * aggregates (plus a live NDJSON telemetry stream and a status
 * verdict) in a per-request output directory. Because every finished
 * grid point is memoized, a request that overlaps earlier ones — the
 * same grid re-submitted, a superset, a different grid sharing points
 * — only simulates its delta.
 *
 * Queue protocol (see docs/sweepd.md):
 *   <queue>/incoming/NAME.json   submitted requests (atomic rename in)
 *   <queue>/work/NAME.json       the request being processed
 *   <queue>/done/NAME/           request.json + sweep.json + sweep.csv
 *                                + telemetry.ndjson + status.json
 *   <queue>/failed/NAME/         request.json + status.json (error)
 *
 * A request names a predefined grid or embeds one inline, plus
 * optional run options:
 *   {"gridName": "smoke", "warmupMs": 16, "measureMs": 32}
 *   {"grid": {"name": "mine", "configs": ["2gb"], ...}, "seed": "7"}
 * Optional members: warmupMs, measureMs, segments, seed (string or
 * number), seedMode ("derived"|"fixed"), autoReconfigure (bool),
 * sparseCounters (bool). Unknown members are fatal for that request
 * (it lands in failed/ with the message) with a did-you-mean.
 *
 * Usage:
 *   smartref_sweepd --queue-dir DIR
 *                   [--cache-dir DIR]   result cache (default: the
 *                                       SMARTREF_CACHE_DIR /
 *                                       XDG_CACHE_HOME / ~/.cache
 *                                       chain)
 *                   [--cache-max-mb N]  LRU-prune after every request
 *                   [-j N]              worker threads per request
 *                   [--poll-ms N]       queue poll interval (500)
 *                   [--once]            drain the queue, then exit
 *                   [--max-requests N]  exit after N requests
 *                   [--version]
 */

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/cli.hh"
#include "harness/result_cache.hh"
#include "harness/sweep.hh"
#include "harness/sweep_telemetry.hh"
#include "sim/logging.hh"
#include "sim/mini_json.hh"
#include "sim/provenance.hh"
#include "sim/suggest.hh"

namespace fs = std::filesystem;
using namespace smartref;

namespace {

/** One parsed queue request: the grid plus its run-option overrides. */
struct Request
{
    SweepGrid grid;
    SweepRunOptions opts;
};

std::uint64_t
seedValue(const minijson::Value &v)
{
    // Seeds are 64-bit; JSON numbers are doubles, so large seeds must
    // be strings ("17388960893229350514"). Accept both spellings.
    if (v.isString())
        return std::stoull(v.str);
    return static_cast<std::uint64_t>(v.number);
}

Request
parseRequest(const std::string &text, const SweepRunOptions &defaults)
{
    const minijson::Value root = minijson::parse(text);
    if (!root.isObject())
        SMARTREF_FATAL("request must be a JSON object");

    Request req;
    req.opts = defaults;
    bool haveGrid = false;
    for (const auto &[key, value] : root.object) {
        if (key == "grid") {
            req.grid = sweepGridFromJson(value);
            haveGrid = true;
        } else if (key == "gridName") {
            req.grid = predefinedGridByName(value.str);
            haveGrid = true;
        } else if (key == "warmupMs") {
            req.opts.warmup =
                static_cast<Tick>(value.number) * kMillisecond;
        } else if (key == "measureMs") {
            req.opts.measure =
                static_cast<Tick>(value.number) * kMillisecond;
        } else if (key == "segments") {
            req.opts.segments = static_cast<std::uint32_t>(value.number);
        } else if (key == "seed") {
            req.opts.baseSeed = seedValue(value);
        } else if (key == "seedMode") {
            if (value.str == "fixed")
                req.opts.seedMode = SeedMode::Fixed;
            else if (value.str == "derived")
                req.opts.seedMode = SeedMode::Derived;
            else
                SMARTREF_FATAL("unknown seedMode '", value.str,
                               "' (derived, fixed)");
        } else if (key == "autoReconfigure") {
            req.opts.autoReconfigure = value.boolean;
        } else if (key == "sparseCounters") {
            req.opts.sparseCounters = value.boolean;
        } else {
            SMARTREF_FATAL(
                "unknown request member '", key, "'",
                didYouMean(key,
                           {"grid", "gridName", "warmupMs", "measureMs",
                            "segments", "seed", "seedMode",
                            "autoReconfigure", "sparseCounters"}));
        }
    }
    if (!haveGrid)
        SMARTREF_FATAL("request needs a 'grid' or 'gridName' member");
    return req;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SMARTREF_FATAL("cannot read '", path.string(), "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

void
writeStatus(const fs::path &dir, const std::string &status,
            const std::string &error, double wallSeconds,
            std::size_t jobCount, std::uint64_t violations,
            const ResultCacheStats *cache)
{
    std::ofstream out(dir / "status.json");
    RunMeta meta;
    meta.schema = "smartref-sweepd-status-v1";
    out << "{\"schema\":\"smartref-sweepd-status-v1\""
        << ",\"meta\":" << metaJson(meta) << ",\"status\":\"" << status
        << "\"";
    if (!error.empty())
        out << ",\"error\":\"" << jsonEscape(error) << "\"";
    out << ",\"wallSeconds\":" << wallSeconds
        << ",\"jobCount\":" << jobCount
        << ",\"violations\":" << violations;
    if (cache) {
        out << ",\"cache\":{\"hits\":" << cache->hits
            << ",\"misses\":" << cache->misses
            << ",\"corrupt\":" << cache->corrupt
            << ",\"stores\":" << cache->stores
            << ",\"evictions\":" << cache->evictions
            << ",\"verified\":" << cache->verified << "}";
    }
    out << "}\n";
}

/** Cache counters attributable to one request: after minus before. */
ResultCacheStats
statsDelta(const ResultCacheStats &after, const ResultCacheStats &before)
{
    ResultCacheStats d;
    d.hits = after.hits - before.hits;
    d.misses = after.misses - before.misses;
    d.corrupt = after.corrupt - before.corrupt;
    d.stores = after.stores - before.stores;
    d.evictions = after.evictions - before.evictions;
    d.verified = after.verified - before.verified;
    return d;
}

/**
 * Process one claimed request file end to end. Returns true on
 * success; failures land in failed/ with the error in status.json.
 */
bool
processRequest(const fs::path &workFile, const fs::path &doneDir,
               const fs::path &failedDir, ResultCache &cache,
               const SweepRunOptions &defaults)
{
    const std::string stem = workFile.stem().string();
    const ResultCacheStats before = cache.stats();
    const auto start = std::chrono::steady_clock::now();
    const auto wall = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    try {
        Request req = parseRequest(readFile(workFile), defaults);
        req.opts.cache = &cache;

        const fs::path outDir = doneDir / stem;
        fs::create_directories(outDir);

        SweepTelemetry telemetry((outDir / "telemetry.ndjson").string());
        req.opts.telemetry = &telemetry;
        const std::size_t jobCount =
            expandGrid(req.grid, req.opts.baseSeed, req.opts.seedMode)
                .size();
        RunMeta meta;
        meta.schema = "smartref-sweep-telemetry-v1";
        meta.configHash = sweepConfigHash(req.grid, req.opts);
        meta.seedMode = seedModeName(req.opts.seedMode);
        telemetry.sweepStart(req.grid.name, jobCount, req.opts.jobs,
                             metaJson(meta));

        std::cerr << "sweepd: request '" << stem << "' grid '"
                  << req.grid.name << "': " << jobCount << " job(s)"
                  << std::endl;
        const std::vector<SweepJobResult> results =
            runSweep(req.grid, req.opts);

        writeSweepJson(req.grid, req.opts, results,
                       (outDir / "sweep.json").string());
        writeSweepCsv(results, (outDir / "sweep.csv").string());

        const ResultCacheStats delta = statsDelta(cache.stats(), before);
        const std::uint64_t violations = totalViolations(results);
        writeStatus(outDir,
                    violations ? "retention-violations" : "ok",
                    "", wall(), results.size(), violations, &delta);
        fs::rename(workFile, outDir / "request.json");
        std::cerr << "sweepd: request '" << stem << "' done in "
                  << wall() << "s (" << delta.hits << " hit(s), "
                  << delta.misses << " miss(es))" << std::endl;
        return violations == 0;
    } catch (const std::exception &e) {
        const fs::path outDir = failedDir / stem;
        std::error_code ec;
        fs::create_directories(outDir, ec);
        const ResultCacheStats delta = statsDelta(cache.stats(), before);
        writeStatus(outDir, "failed", e.what(), wall(), 0, 0, &delta);
        fs::rename(workFile, outDir / "request.json", ec);
        std::cerr << "sweepd: request '" << stem
                  << "' failed: " << e.what() << std::endl;
        return false;
    }
}

/**
 * Claim the alphabetically first request in incoming/ by renaming it
 * into work/. The rename is atomic, so several daemons can share one
 * queue; losing a race just means trying the next file.
 */
bool
claimNext(const fs::path &incoming, const fs::path &work,
          fs::path &claimed)
{
    std::vector<fs::path> candidates;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(incoming, ec)) {
        if (entry.path().extension() == ".json")
            candidates.push_back(entry.path());
    }
    std::sort(candidates.begin(), candidates.end());
    for (const fs::path &c : candidates) {
        const fs::path target = work / c.filename();
        fs::rename(c, target, ec);
        if (!ec) {
            claimed = target;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("version")) {
        std::cout << versionText("smartref_sweepd");
        return 0;
    }
    const std::string queueDir = args.getString("queue-dir");
    if (queueDir.empty())
        SMARTREF_FATAL("smartref_sweepd needs --queue-dir DIR");

    const fs::path incoming = fs::path(queueDir) / "incoming";
    const fs::path work = fs::path(queueDir) / "work";
    const fs::path done = fs::path(queueDir) / "done";
    const fs::path failed = fs::path(queueDir) / "failed";
    for (const fs::path &d : {incoming, work, done, failed})
        fs::create_directories(d);

    ResultCache cache(args.getString("cache-dir",
                                     ResultCache::defaultDir()));
    const std::uint64_t cacheMaxMb = args.getU64("cache-max-mb", 0);
    const std::uint64_t pollMs = args.getU64("poll-ms", 500);
    const std::uint64_t maxRequests = args.getU64("max-requests", 0);
    const bool once = args.has("once");

    SweepRunOptions defaults;
    defaults.jobs = args.jobs();
    const ExperimentOptions eo = args.experimentOptions();
    setLogLevel(eo.logLevel);
    defaults.logLevel = eo.logLevel;
    defaults.shardJobs = eo.shardJobs;

    std::cerr << "sweepd: queue '" << queueDir << "', cache '"
              << cache.dir() << "', " << defaults.jobs
              << " worker(s)" << (once ? ", single pass" : "")
              << std::endl;

    std::uint64_t processed = 0;
    std::uint64_t failures = 0;
    while (true) {
        fs::path claimed;
        if (!claimNext(incoming, work, claimed)) {
            if (once)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(pollMs));
            continue;
        }
        if (!processRequest(claimed, done, failed, cache, defaults))
            ++failures;
        if (cacheMaxMb)
            cache.pruneToBytes(cacheMaxMb * 1024 * 1024);
        ++processed;
        if (maxRequests && processed >= maxRequests)
            break;
    }

    const ResultCacheStats cs = cache.stats();
    std::cerr << "sweepd: " << processed << " request(s), " << failures
              << " failure(s); cache " << cs.hits << " hit(s), "
              << cs.misses << " miss(es), " << cs.stores << " store(s)"
              << std::endl;
    return failures ? 1 : 0;
}

/**
 * @file
 * smartref_sweepd — the sweep-as-a-service daemon.
 *
 * Watches a file-queue directory for grid-request JSONs, runs each
 * request through the shared sweep engine backed by the
 * content-addressed result cache, and leaves the deterministic
 * aggregates (plus a live NDJSON telemetry stream and a status
 * verdict) in a per-request output directory. Because every finished
 * grid point is memoized, a request that overlaps earlier ones — the
 * same grid re-submitted, a superset, a different grid sharing points
 * — only simulates its delta.
 *
 * The engine lives in src/harness/sweepd_service.{hh,cc} (unit-tested
 * there); this file is only flag parsing and the poll loop.
 *
 * Queue protocol (see docs/sweepd.md):
 *   <queue>/incoming/NAME.json   submitted requests (atomic rename in)
 *   <queue>/work/NAME.json       the request being processed
 *   <queue>/done/NAME/           request.json + sweep.json + sweep.csv
 *                                + telemetry.ndjson + status.json
 *   <queue>/failed/NAME/         request.json + status.json (error)
 *   <queue>/daemon/              health.json (rewritten every poll),
 *                                access.ndjson (request lifecycle),
 *                                metrics.prom (Prometheus exposition)
 *
 * A request names a predefined grid or embeds one inline, plus
 * optional run options:
 *   {"gridName": "smoke", "warmupMs": 16, "measureMs": 32}
 *   {"grid": {"name": "mine", "configs": ["2gb"], ...}, "seed": "7"}
 * Optional members: warmupMs, measureMs, segments, seed (string or
 * number), seedMode ("derived"|"fixed"), autoReconfigure (bool),
 * sparseCounters (bool), traceId (string; derived when absent).
 * Unknown members are fatal for that request (it lands in failed/
 * with the message) with a did-you-mean.
 *
 * Usage:
 *   smartref_sweepd --queue-dir DIR
 *                   [--cache-dir DIR]   result cache (default: the
 *                                       SMARTREF_CACHE_DIR /
 *                                       XDG_CACHE_HOME / ~/.cache
 *                                       chain)
 *                   [--cache-max-mb N]  LRU-prune after every request
 *                   [-j N]              worker threads per request
 *                   [--poll-ms N]       queue poll interval (500)
 *                   [--once]            drain the queue, then exit
 *                   [--max-requests N]  exit after N requests
 *                   [--version]
 */

#include <chrono>
#include <filesystem>
#include <iostream>
#include <thread>

#include "harness/cli.hh"
#include "harness/sweepd_service.hh"
#include "sim/logging.hh"
#include "sim/provenance.hh"

namespace fs = std::filesystem;
using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("version")) {
        std::cout << versionText("smartref_sweepd");
        return 0;
    }
    const std::string queueDir = args.getString("queue-dir");
    if (queueDir.empty())
        SMARTREF_FATAL("smartref_sweepd needs --queue-dir DIR");

    SweepdConfig cfg;
    cfg.queueDir = queueDir;
    cfg.cacheDir = args.getString("cache-dir");
    cfg.cacheMaxMb = args.getU64("cache-max-mb", 0);
    cfg.defaults.jobs = args.jobs();
    const ExperimentOptions eo = args.experimentOptions();
    setLogLevel(eo.logLevel);
    cfg.defaults.logLevel = eo.logLevel;
    cfg.defaults.shardJobs = eo.shardJobs;

    const std::uint64_t pollMs = args.getU64("poll-ms", 500);
    const std::uint64_t maxRequests = args.getU64("max-requests", 0);
    const bool once = args.has("once");

    SweepdService service(cfg);
    std::cerr << "sweepd: queue '" << queueDir << "', cache '"
              << service.cache().dir() << "', " << cfg.defaults.jobs
              << " worker(s)" << (once ? ", single pass" : "")
              << std::endl;

    while (true) {
        fs::path claimed;
        if (!service.claimNext(claimed)) {
            if (once)
                break;
            service.notePoll();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(pollMs));
            continue;
        }
        service.processOne(claimed);
        service.pruneCache();
        if (maxRequests && service.processed() >= maxRequests)
            break;
    }
    service.notePoll();

    const ResultCacheStats cs = service.cache().stats();
    std::cerr << "sweepd: " << service.processed() << " request(s), "
              << service.failures() << " failure(s); cache " << cs.hits
              << " hit(s), " << cs.misses << " miss(es), " << cs.stores
              << " store(s)" << std::endl;
    return service.failures() ? 1 : 0;
}

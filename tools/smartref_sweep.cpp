/**
 * @file
 * smartref_sweep — parallel experiment-sweep frontend.
 *
 * Expands a declarative grid over (config, retention, counter bits,
 * policy, benchmark) into independent baseline-vs-policy jobs, fans
 * them out over a work-stealing thread pool, and reduces the results
 * in grid order. The aggregate JSON/CSV outputs are byte-identical for
 * any -j N (see docs/sweep.md for the determinism contract).
 *
 * Usage:
 *   smartref_sweep [--grid NAME | --grid-file FILE] [-j N]
 *                  [--shard-jobs N]      worker threads inside each
 *                                        multi-channel job (sharded
 *                                        engine; execution-only)
 *                  [--sparse-counters]   hierarchical sparse counter
 *                                        array in every job
 *                  [--out-dir DIR]       output directory (default ".")
 *                  [--json FILE]         aggregate JSON path override
 *                  [--csv FILE]          per-job CSV path override
 *                  [--figures]           print paper-figure tables and
 *                                        write one CSV per figure
 *                  [--timing FILE]       wall-clock timing JSON (not
 *                                        deterministic; CI artifact)
 *                  [--heatmap-out FILE]  merged spatial refresh heatmap
 *                                        JSON (+ .csv sibling); still
 *                                        byte-identical for any -j N
 *                  [--telemetry-out FILE] live NDJSON execution
 *                                        telemetry (not deterministic)
 *                  [--check-conservation] verify the energy-ledger
 *                                        invariant inside every job
 *                  [--profile]           collect per-job phase profiles
 *                                        (telemetry NDJSON only)
 *                  [--parallelism A,B,..] override the grid's refresh
 *                                        parallelism axis (none, refpb,
 *                                        darp, sarp, all)
 *                  [--seed S] [--seed-mode derived|fixed]
 *                  [--warmup-ms N] [--measure-ms N] [--segments N]
 *                  [--no-auto] [--progress]
 *                  [--log-level silent|warn|info|debug]
 *                  [--list-grids]        list predefined grids and exit
 *                  [--version]           print the provenance build block
 *
 * Predefined grids (--grid): smoke, 2gb, 4gb, 3d64, 3d64-32ms, 3d32,
 * figures, bits, policies, policy-grid, server.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

#include <memory>

#include "harness/cli.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "harness/sweep_telemetry.hh"
#include "sim/provenance.hh"
#include "sim/thread_pool.hh"

using namespace smartref;

namespace {

struct NamedGrid
{
    const char *name;
    const char *description;
    SweepGrid grid;
};

/**
 * The predefined grids. "figures" reproduces every paper figure in one
 * run; "smoke" is the reduced grid CI's determinism gate uses.
 */
std::vector<NamedGrid>
predefinedGrids()
{
    std::vector<NamedGrid> grids;
    grids.push_back({"smoke",
                     "reduced CI grid: 2 configs x 3 benchmarks",
                     {"smoke",
                      {"2gb", "3d64"},
                      {"mummer", "gcc", "radix"},
                      {"smart"},
                      {3},
                      {0}}});
    grids.push_back({"2gb", "full suite on the 2 GB module (Figs. 6-8)",
                     {"2gb", {"2gb"}, {"all"}, {"smart"}, {3}, {0}}});
    grids.push_back({"4gb", "full suite on the 4 GB module (Figs. 9-11)",
                     {"4gb", {"4gb"}, {"all"}, {"smart"}, {3}, {0}}});
    grids.push_back(
        {"3d64", "full suite, 3D 64 MB cache at 64 ms (Figs. 12-14)",
         {"3d64", {"3d64"}, {"all"}, {"smart"}, {3}, {0}}});
    grids.push_back(
        {"3d64-32ms", "full suite, 3D 64 MB at 32 ms (Figs. 15-18)",
         {"3d64-32ms", {"3d64-32ms"}, {"all"}, {"smart"}, {3}, {0}}});
    grids.push_back({"3d32", "full suite on the 3D 32 MB cache",
                     {"3d32", {"3d32"}, {"all"}, {"smart"}, {3}, {0}}});
    grids.push_back(
        {"figures", "every paper-figure config in one run (Figs. 6-18)",
         {"figures",
          {"2gb", "4gb", "3d64", "3d64-32ms"},
          {"all"},
          {"smart"},
          {3},
          {0}}});
    grids.push_back({"bits",
                     "counter-width ablation on the 2 GB module",
                     {"bits",
                      {"2gb"},
                      {"all"},
                      {"smart"},
                      {1, 2, 3, 4, 8},
                      {0}}});
    grids.push_back({"policies",
                     "policy comparison on the 2 GB module",
                     {"policies",
                      {"2gb"},
                      {"all"},
                      {"burst", "ras-only", "per-bank", "smart",
                       "retention-aware"},
                      {3},
                      {0}}});
    grids.push_back({"policy-grid",
                     "refresh-parallelism x policy smoke grid (CI gate)",
                     {"policy-grid",
                      {"2gb"},
                      {"mummer", "radix"},
                      {"cbr", "smart"},
                      {3},
                      {0},
                      {"none", "refpb", "darp", "sarp", "all"}}});
    grids.push_back({"server",
                     "multi-channel server modules, 128-512 GB",
                     {"server",
                      {"128gb", "256gb", "512gb"},
                      {"mummer", "radix"},
                      {"smart"},
                      {3},
                      {0}}});
    return grids;
}

void
listGrids()
{
    ReportTable table({"grid", "jobs", "description"});
    for (const auto &g : predefinedGrids()) {
        table.addRow({g.name,
                      std::to_string(expandGrid(g.grid, 42).size()),
                      g.description});
    }
    table.print(std::cout);
}

std::vector<std::string>
splitCommas(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

SweepGrid
resolveGrid(const CliArgs &args)
{
    SweepGrid grid;
    if (args.has("grid-file")) {
        grid = loadSweepGrid(args.getString("grid-file"));
    } else {
        const std::string name = args.getString("grid", "smoke");
        bool found = false;
        for (const auto &g : predefinedGrids()) {
            if (name == g.name) {
                grid = g.grid;
                found = true;
                break;
            }
        }
        if (!found)
            SMARTREF_FATAL("unknown grid '", name,
                           "' (see --list-grids, or use --grid-file)");
    }
    if (args.has("parallelism")) {
        grid.parallelism = splitCommas(args.getString("parallelism"));
        if (grid.parallelism.empty())
            SMARTREF_FATAL("--parallelism needs at least one mode");
    }
    return grid;
}

/**
 * Wall-clock timing sidecar for CI benchmarking. Deliberately a
 * separate file: the aggregate JSON must stay byte-identical across
 * runs, and timing never is.
 */
void
writeTiming(const std::string &path, const SweepGrid &grid,
            const SweepRunOptions &opts, double wallSeconds,
            const std::vector<SweepJobResult> &results)
{
    double jobSeconds = 0.0;
    for (const auto &r : results)
        jobSeconds += r.wallSeconds;
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write timing JSON '", path, "'");
    RunMeta meta;
    meta.schema = "smartref-sweep-timing-v1";
    meta.configHash = sweepConfigHash(grid, opts);
    // The timing sidecar is already host-dependent, so it is the one
    // sweep artifact allowed to carry the process peak RSS.
    meta.peakRssBytes = currentPeakRssBytes();
    out << "{\"meta\":" << metaJson(meta) << ",\"grid\":\"" << grid.name
        << "\",\"jobs\":" << opts.jobs
        << ",\"jobCount\":" << results.size()
        << ",\"wallSeconds\":" << wallSeconds
        << ",\"cpuJobSeconds\":" << jobSeconds
        << ",\"parallelEfficiency\":"
        << (wallSeconds > 0.0 && opts.jobs > 0
                ? jobSeconds / (wallSeconds * opts.jobs)
                : 0.0)
        << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("version")) {
        std::cout << versionText("smartref_sweep");
        return 0;
    }
    if (args.has("list-grids")) {
        listGrids();
        return 0;
    }

    const SweepGrid grid = resolveGrid(args);
    const ExperimentOptions eo = args.experimentOptions();
    setLogLevel(eo.logLevel);

    SweepRunOptions opts;
    opts.jobs = args.jobs();
    opts.warmup = eo.warmup;
    opts.measure = eo.measure;
    opts.segments = eo.segments;
    opts.autoReconfigure = eo.autoReconfigure;
    opts.baseSeed = eo.seed;
    opts.logLevel = eo.logLevel;
    opts.progress = args.has("progress") || eo.verbose;
    opts.checkConservation = args.has("check-conservation");
    opts.profile = args.has("profile");
    opts.shardJobs = static_cast<unsigned>(args.getU64("shard-jobs", 1));
    opts.sparseCounters = args.has("sparse-counters");
    const std::string seedMode = args.getString("seed-mode", "derived");
    if (seedMode == "fixed")
        opts.seedMode = SeedMode::Fixed;
    else if (seedMode != "derived")
        SMARTREF_FATAL("unknown --seed-mode '", seedMode,
                       "' (derived, fixed)");

    const std::string outDir = args.getString("out-dir", ".");
    std::filesystem::create_directories(outDir);
    const std::string jsonPath =
        args.getString("json", outDir + "/" + grid.name + "_sweep.json");
    const std::string csvPath =
        args.getString("csv", outDir + "/" + grid.name + "_sweep.csv");
    const std::string heatmapPath = args.heatmapOutPath();
    opts.collectHeatmaps = !heatmapPath.empty();

    std::unique_ptr<SweepTelemetry> telemetry;
    const std::size_t jobCount =
        expandGrid(grid, opts.baseSeed, opts.seedMode).size();
    if (args.has("telemetry-out")) {
        telemetry =
            std::make_unique<SweepTelemetry>(args.telemetryOutPath());
        RunMeta meta;
        meta.schema = "smartref-sweep-telemetry-v1";
        meta.configHash = sweepConfigHash(grid, opts);
        meta.seedMode = seedMode;
        telemetry->sweepStart(grid.name, jobCount, opts.jobs,
                              metaJson(meta));
        opts.telemetry = telemetry.get();
    }

    std::cerr << "sweep '" << grid.name << "': " << jobCount
              << " jobs on " << opts.jobs << " worker(s)" << std::endl;

    const auto start = std::chrono::steady_clock::now();
    const std::vector<SweepJobResult> results = runSweep(grid, opts);
    const double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    writeSweepJson(grid, opts, results, jsonPath);
    writeSweepCsv(results, csvPath);
    std::cout << "aggregate JSON written to " << jsonPath << "\n"
              << "per-job CSV written to " << csvPath << "\n";

    if (!heatmapPath.empty()) {
        writeSweepHeatmapJson(grid, opts, results, heatmapPath);
        // Sibling CSV: foo.json -> foo.csv (or foo + ".csv").
        std::filesystem::path heatmapCsv(heatmapPath);
        heatmapCsv.replace_extension(".csv");
        writeSweepHeatmapCsv(results, heatmapCsv.string());
        std::cout << "heatmap JSON written to " << heatmapPath << "\n"
                  << "heatmap CSV written to " << heatmapCsv.string()
                  << "\n";
    }

    if (args.has("figures")) {
        // One figure set per config that has one; comparisons for a
        // config are contiguous (grid order) and in profile order when
        // the grid says benchmarks=["all"].
        for (const auto &config : grid.configs) {
            std::vector<ComparisonResult> comparisons;
            for (const auto &r : results) {
                if (r.job.point.config == config)
                    comparisons.push_back(r.comparison);
            }
            writeFigures(std::cout, config, comparisons, outDir);
        }
    }

    if (args.has("timing"))
        writeTiming(args.getString("timing"), grid, opts, wallSeconds,
                    results);

    const std::uint64_t violations = totalViolations(results);
    if (violations > 0) {
        std::cerr << "ERROR: " << violations
                  << " retention violation(s) across the sweep\n";
        return 1;
    }
    std::cerr << "sweep complete in " << fmtDouble(wallSeconds, 1)
              << "s, no retention violations" << std::endl;
    return 0;
}

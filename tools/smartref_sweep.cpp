/**
 * @file
 * smartref_sweep — parallel experiment-sweep frontend.
 *
 * Expands a declarative grid over (config, retention, counter bits,
 * policy, benchmark) into independent baseline-vs-policy jobs, fans
 * them out over a work-stealing thread pool, and reduces the results
 * in grid order. The aggregate JSON/CSV outputs are byte-identical for
 * any -j N (see docs/sweep.md for the determinism contract).
 *
 * Usage:
 *   smartref_sweep [--grid NAME | --grid-file FILE] [-j N]
 *                  [--shard-jobs N]      worker threads inside each
 *                                        multi-channel job (sharded
 *                                        engine; execution-only)
 *                  [--sparse-counters]   hierarchical sparse counter
 *                                        array in every job
 *                  [--out-dir DIR]       output directory (default ".")
 *                  [--json FILE]         aggregate JSON path override
 *                  [--csv FILE]          per-job CSV path override
 *                  [--figures]           print paper-figure tables and
 *                                        write one CSV per figure
 *                  [--timing FILE]       wall-clock timing JSON (not
 *                                        deterministic; CI artifact)
 *                  [--heatmap-out FILE]  merged spatial refresh heatmap
 *                                        JSON (+ .csv sibling); still
 *                                        byte-identical for any -j N
 *                  [--telemetry-out FILE] live NDJSON execution
 *                                        telemetry (not deterministic)
 *                  [--check-conservation] verify the energy-ledger
 *                                        invariant inside every job
 *                  [--profile]           collect per-job phase profiles
 *                                        (telemetry NDJSON only)
 *                  [--parallelism A,B,..] override the grid's refresh
 *                                        parallelism axis (none, refpb,
 *                                        darp, sarp, all)
 *                  [--cache-dir DIR]     content-addressed result cache:
 *                                        only cache misses are simulated,
 *                                        aggregates stay byte-identical
 *                  [--incremental]       shorthand: cache at the default
 *                                        directory (SMARTREF_CACHE_DIR /
 *                                        XDG_CACHE_HOME/smartref /
 *                                        ~/.cache/smartref)
 *                  [--cache-verify]      recompute every hit and fail
 *                                        unless the stored result is
 *                                        bit-identical
 *                  [--cache-max-mb N]    LRU-prune the cache to N MB
 *                                        after the sweep
 *                  [--metrics-out FILE]  service-layer metrics snapshot
 *                                        JSON (not deterministic)
 *                  [--no-metrics]        disable metrics updates (the
 *                                        overhead-measurement baseline)
 *                  [--seed S] [--seed-mode derived|fixed]
 *                  [--warmup-ms N] [--measure-ms N] [--segments N]
 *                  [--no-auto] [--progress]
 *                  [--log-level silent|warn|info|debug]
 *                  [--list-grids]        list predefined grids and exit
 *                  [--version]           print the provenance build block
 *
 * Predefined grids (--grid): smoke, 2gb, 4gb, 3d64, 3d64-32ms, 3d32,
 * figures, bits, policies, policy-grid, server.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

#include <memory>

#include "harness/cli.hh"
#include "harness/report.hh"
#include "harness/result_cache.hh"
#include "harness/sweep.hh"
#include "harness/sweep_telemetry.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/provenance.hh"
#include "sim/thread_pool.hh"

using namespace smartref;

namespace {

void
listGrids()
{
    ReportTable table({"grid", "jobs", "description"});
    for (const auto &g : predefinedGrids()) {
        table.addRow({g.name,
                      std::to_string(expandGrid(g.grid, 42).size()),
                      g.description});
    }
    table.print(std::cout);
}

std::vector<std::string>
splitCommas(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

SweepGrid
resolveGrid(const CliArgs &args)
{
    SweepGrid grid;
    if (args.has("grid-file")) {
        grid = loadSweepGrid(args.getString("grid-file"));
    } else {
        grid = predefinedGridByName(args.getString("grid", "smoke"));
    }
    if (args.has("parallelism")) {
        grid.parallelism = splitCommas(args.getString("parallelism"));
        if (grid.parallelism.empty())
            SMARTREF_FATAL("--parallelism needs at least one mode");
    }
    return grid;
}

/**
 * Wall-clock timing sidecar for CI benchmarking. Deliberately a
 * separate file: the aggregate JSON must stay byte-identical across
 * runs, and timing never is.
 */
void
writeTiming(const std::string &path, const SweepGrid &grid,
            const SweepRunOptions &opts, double wallSeconds,
            const std::vector<SweepJobResult> &results,
            const ResultCache *cache)
{
    double jobSeconds = 0.0;
    for (const auto &r : results)
        jobSeconds += r.wallSeconds;
    std::ofstream out(path);
    if (!out)
        SMARTREF_FATAL("cannot write timing JSON '", path, "'");
    RunMeta meta;
    meta.schema = "smartref-sweep-timing-v1";
    meta.configHash = sweepConfigHash(grid, opts);
    // The timing sidecar is already host-dependent, so it is the one
    // sweep artifact allowed to carry the process peak RSS.
    meta.peakRssBytes = currentPeakRssBytes();
    out << "{\"meta\":" << metaJson(meta) << ",\"grid\":\"" << grid.name
        << "\",\"jobs\":" << opts.jobs
        << ",\"jobCount\":" << results.size()
        << ",\"wallSeconds\":" << wallSeconds
        << ",\"cpuJobSeconds\":" << jobSeconds
        << ",\"parallelEfficiency\":"
        << (wallSeconds > 0.0 && opts.jobs > 0
                ? jobSeconds / (wallSeconds * opts.jobs)
                : 0.0);
    if (cache) {
        const ResultCacheStats cs = cache->stats();
        out << ",\"cache\":{\"hits\":" << cs.hits
            << ",\"misses\":" << cs.misses
            << ",\"corrupt\":" << cs.corrupt
            << ",\"stores\":" << cs.stores
            << ",\"evictions\":" << cs.evictions
            << ",\"verified\":" << cs.verified << "}";
    }
    out << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.has("version")) {
        std::cout << versionText("smartref_sweep");
        return 0;
    }
    if (args.has("list-grids")) {
        listGrids();
        return 0;
    }

    const SweepGrid grid = resolveGrid(args);
    const ExperimentOptions eo = args.experimentOptions();
    setLogLevel(eo.logLevel);

    // Mirror the audit frontend: a metrics flag against a metrics-less
    // build is a configuration error, not a silently empty snapshot.
    if (args.has("metrics-out") && !kMetricsCompiledIn)
        SMARTREF_FATAL("--metrics-out requires a build with "
                       "-DSMARTREF_METRICS=ON");
    if (args.has("no-metrics"))
        setMetricsEnabled(false);

    SweepRunOptions opts;
    opts.jobs = args.jobs();
    opts.warmup = eo.warmup;
    opts.measure = eo.measure;
    opts.segments = eo.segments;
    opts.autoReconfigure = eo.autoReconfigure;
    opts.baseSeed = eo.seed;
    opts.logLevel = eo.logLevel;
    opts.progress = args.has("progress") || eo.verbose;
    opts.checkConservation = args.has("check-conservation");
    opts.profile = args.has("profile");
    opts.shardJobs = static_cast<unsigned>(args.getU64("shard-jobs", 1));
    opts.sparseCounters = args.has("sparse-counters");
    const std::string seedMode = args.getString("seed-mode", "derived");
    if (seedMode == "fixed")
        opts.seedMode = SeedMode::Fixed;
    else if (seedMode != "derived")
        SMARTREF_FATAL("unknown --seed-mode '", seedMode,
                       "' (derived, fixed)");

    // The cache is opt-in: --cache-dir names it explicitly,
    // --incremental and --cache-verify imply the default location.
    std::unique_ptr<ResultCache> cache;
    if (args.has("cache-dir") || args.has("incremental") ||
        args.has("cache-verify")) {
        cache = std::make_unique<ResultCache>(
            args.getString("cache-dir", ResultCache::defaultDir()));
        opts.cache = cache.get();
        opts.cacheVerify = args.has("cache-verify");
    } else if (args.has("cache-max-mb")) {
        SMARTREF_FATAL("--cache-max-mb needs --cache-dir or "
                       "--incremental");
    }

    const std::string outDir = args.getString("out-dir", ".");
    std::filesystem::create_directories(outDir);
    const std::string jsonPath =
        args.getString("json", outDir + "/" + grid.name + "_sweep.json");
    const std::string csvPath =
        args.getString("csv", outDir + "/" + grid.name + "_sweep.csv");
    const std::string heatmapPath = args.heatmapOutPath();
    opts.collectHeatmaps = !heatmapPath.empty();

    std::unique_ptr<SweepTelemetry> telemetry;
    const std::size_t jobCount =
        expandGrid(grid, opts.baseSeed, opts.seedMode).size();
    if (args.has("telemetry-out")) {
        telemetry =
            std::make_unique<SweepTelemetry>(args.telemetryOutPath());
        RunMeta meta;
        meta.schema = "smartref-sweep-telemetry-v1";
        meta.configHash = sweepConfigHash(grid, opts);
        meta.seedMode = seedMode;
        telemetry->sweepStart(grid.name, jobCount, opts.jobs,
                              metaJson(meta));
        opts.telemetry = telemetry.get();
    }

    std::cerr << "sweep '" << grid.name << "': " << jobCount
              << " jobs on " << opts.jobs << " worker(s)" << std::endl;

    const auto start = std::chrono::steady_clock::now();
    const std::vector<SweepJobResult> results = runSweep(grid, opts);
    const double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    writeSweepJson(grid, opts, results, jsonPath);
    writeSweepCsv(results, csvPath);
    std::cout << "aggregate JSON written to " << jsonPath << "\n"
              << "per-job CSV written to " << csvPath << "\n";

    if (!heatmapPath.empty()) {
        writeSweepHeatmapJson(grid, opts, results, heatmapPath);
        // Sibling CSV: foo.json -> foo.csv (or foo + ".csv").
        std::filesystem::path heatmapCsv(heatmapPath);
        heatmapCsv.replace_extension(".csv");
        writeSweepHeatmapCsv(results, heatmapCsv.string());
        std::cout << "heatmap JSON written to " << heatmapPath << "\n"
                  << "heatmap CSV written to " << heatmapCsv.string()
                  << "\n";
    }

    if (args.has("figures")) {
        // One figure set per config that has one; comparisons for a
        // config are contiguous (grid order) and in profile order when
        // the grid says benchmarks=["all"].
        for (const auto &config : grid.configs) {
            std::vector<ComparisonResult> comparisons;
            for (const auto &r : results) {
                if (r.job.point.config == config)
                    comparisons.push_back(r.comparison);
            }
            writeFigures(std::cout, config, comparisons, outDir);
        }
    }

    if (cache) {
        if (args.has("cache-max-mb"))
            cache->pruneToBytes(args.getU64("cache-max-mb", 0) * 1024 *
                                1024);
        const ResultCacheStats cs = cache->stats();
        std::cerr << "cache '" << cache->dir() << "': " << cs.hits
                  << " hit(s), " << cs.misses << " miss(es)";
        if (cs.corrupt)
            std::cerr << " (" << cs.corrupt << " corrupt)";
        std::cerr << ", " << cs.stores << " store(s)";
        if (cs.evictions)
            std::cerr << ", " << cs.evictions << " evicted";
        if (opts.cacheVerify)
            std::cerr << ", " << cs.verified << " verified";
        std::cerr << std::endl;
    }

    if (args.has("timing"))
        writeTiming(args.getString("timing"), grid, opts, wallSeconds,
                    results, cache.get());

    if (args.has("metrics-out")) {
        // Like --timing, a non-deterministic sidecar: never part of
        // the aggregate byte-identity contract.
        const std::string path = args.getString("metrics-out");
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out)
            SMARTREF_FATAL("cannot write metrics JSON '", path, "'");
        globalMetrics().writeJson(out);
        out << "\n";
        std::cout << "metrics snapshot written to " << path << "\n";
    }

    const std::uint64_t violations = totalViolations(results);
    if (violations > 0) {
        std::cerr << "ERROR: " << violations
                  << " retention violation(s) across the sweep\n";
        return 1;
    }
    std::cerr << "sweep complete in " << fmtDouble(wallSeconds, 1)
              << "s, no retention violations" << std::endl;
    return 0;
}

/**
 * @file
 * Self-configuration demo (paper Section 4.6): watch Smart Refresh fall
 * back to CBR when the DRAM goes idle and re-enable itself when a
 * working set returns. Prints a per-interval mode/refresh log.
 *
 * Usage: idle_autoconfig [--intervals N]
 */

#include <iomanip>
#include <iostream>

#include "harness/cli.hh"
#include "harness/report.hh"
#include "harness/system.hh"
#include "trace/benchmark_profiles.hh"

using namespace smartref;

namespace {

const char *
modeName(SmartRefreshPolicy::Mode mode)
{
    switch (mode) {
      case SmartRefreshPolicy::Mode::Smart: return "SMART";
      case SmartRefreshPolicy::Mode::Cbr: return "CBR";
      case SmartRefreshPolicy::Mode::EnableOverlap: return "ENABLE-OVL";
      case SmartRefreshPolicy::Mode::DisableOverlap: return "DISABLE-OVL";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t intervals = args.getU64("intervals", 18);

    SystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = PolicyKind::Smart;
    System sys(cfg);
    auto *smart = sys.smartPolicy();
    const Tick retention = cfg.dram.timing.retention;

    // Phase 1 (intervals 0-4): a busy working set.
    // Phase 2 (intervals 5-10): idle OS (activity < 1 % threshold).
    // Phase 3 (intervals 11+):  the working set returns (> 2 %).
    WorkloadParams busy1 =
        conventionalParams(findProfile("mummer"), cfg.dram)[0];
    busy1.stopAfter = 5 * retention;
    WorkloadParams quiet = idleParams(cfg.dram);
    WorkloadParams busy2 = busy1;
    busy2.name = "mummer.phase3";
    busy2.startAfter = 11 * retention;
    busy2.stopAfter = kTickMax;
    busy2.seed = 1234;

    sys.addWorkload(busy1);
    sys.addWorkload(quiet);
    sys.addWorkload(busy2);

    std::cout
        << "Section 4.6 self-configuration demo (2 GB module, 64 ms "
           "intervals)\n"
        << "phase 1: busy | phase 2 (t=5..10): idle | phase 3 (t>=11): "
           "busy again\n\n"
        << std::left << std::setw(10) << "interval" << std::setw(14)
        << "mode" << std::setw(18) << "refreshes/s (M)"
        << "row activations\n"
        << std::string(60, '-') << "\n";

    std::uint64_t lastRefreshes = 0;
    std::uint64_t lastActs = 0;
    for (std::uint64_t i = 0; i < intervals; ++i) {
        sys.run(retention);
        const std::uint64_t refreshes =
            sys.dram().totalRefreshes() - lastRefreshes;
        lastRefreshes = sys.dram().totalRefreshes();
        const std::uint64_t acts = sys.dram().activates() - lastActs;
        lastActs = sys.dram().activates();
        const double perSec = static_cast<double>(refreshes) /
                              (static_cast<double>(retention) /
                               static_cast<double>(kSecond));
        std::cout << std::left << std::setw(10) << i << std::setw(14)
                  << modeName(smart->mode()) << std::setw(18)
                  << fmtMillions(perSec) << acts << "\n";
    }

    std::cout << "\nswitches to CBR: " << smart->monitor().switchesToCbr()
              << ", switches back to Smart: "
              << smart->monitor().switchesToSmart() << "\n"
              << "retention violations: "
              << sys.dram().retention().violations() << " (must be 0)\n";
    return sys.dram().retention().violations() == 0 ? 0 : 1;
}

/**
 * @file
 * Reproduces the paper's Figures 2 and 3 as ASCII timelines: why naive
 * simultaneous countdown degenerates into burst refresh, why staggered
 * *initialisation* alone is not enough, and how the segmented staggered
 * walk keeps the refresh stream uniform.
 *
 * Usage: counter_timeline [--bits 2] [--rows 16] [--segments 4]
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "core/counter_array.hh"
#include "core/stagger_scheduler.hh"
#include "harness/cli.hh"

using namespace smartref;

namespace {

void
printRow(const std::string &label, const std::vector<int> &values,
         int refreshes)
{
    std::cout << std::left << std::setw(10) << label << " |";
    for (int v : values) {
        if (v < 0)
            std::cout << " *"; // refreshed this step
        else
            std::cout << " " << v;
    }
    std::cout << " |  refreshes this step: " << refreshes << "\n";
}

/** Figure 2(a): all counters decremented together. */
void
simultaneousCountdown(std::uint32_t bits, std::uint32_t rows)
{
    std::cout << "\n--- Figure 2(a): simultaneous countdown (" << int(bits)
              << "-bit, " << rows << " rows) ---\n"
              << "every counter hits zero together: a burst of " << rows
              << " refreshes\n\n";
    const int maxVal = (1 << bits) - 1;
    std::vector<int> counters(rows, maxVal);
    for (int step = 0; step <= maxVal + 1; ++step) {
        int refreshes = 0;
        std::vector<int> display = counters;
        printRow("t=" + std::to_string(step) + "/4", display, refreshes);
        for (auto &c : counters) {
            if (c == 0) {
                c = maxVal;
                ++refreshes;
            } else {
                --c;
            }
        }
        if (refreshes > 0) {
            std::cout << "          ^ all " << refreshes
                      << " rows need refresh at once (burst!)\n";
        }
    }
}

/** Figure 3: the segmented staggered walk. */
void
segmentedWalk(std::uint32_t bits, std::uint32_t rows,
              std::uint32_t segments)
{
    std::cout << "\n--- Figure 3: segmented staggered walk (" << int(bits)
              << "-bit, " << rows << " rows, " << segments
              << " segments) ---\n"
              << "each step touches one counter per segment; at most "
              << segments << " refreshes can coincide\n\n";

    CounterArray counters(rows, bits);
    StaggerScheduler stagger(counters, segments, 64 * kMillisecond);
    stagger.initialiseStaggered();

    const std::uint64_t stepsPerPeriod = stagger.countersPerSegment();
    std::uint64_t totalRefreshes = 0;
    std::uint32_t maxPerStep = 0;

    for (std::uint64_t period = 0; period < (1u << bits); ++period) {
        for (std::uint64_t k = 0; k < stepsPerPeriod; ++k) {
            std::vector<int> display(rows);
            for (std::uint64_t i = 0; i < rows; ++i)
                display[i] = counters.peek(i);
            std::uint32_t refreshes = 0;
            std::vector<std::uint64_t> refreshed;
            stagger.step([&](std::uint64_t idx) {
                ++refreshes;
                refreshed.push_back(idx);
            });
            for (std::uint64_t idx : refreshed)
                display[idx] = -1;
            totalRefreshes += refreshes;
            maxPerStep = std::max(maxPerStep, refreshes);
            printRow("p" + std::to_string(period) + "s" +
                         std::to_string(k),
                     display, static_cast<int>(refreshes));
        }
    }
    std::cout << "\nover one retention interval: " << totalRefreshes
              << " refreshes (= " << rows
              << " rows), worst step issued " << maxPerStep
              << " <= " << segments << " (the pending-queue bound)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto bits = static_cast<std::uint32_t>(args.getU64("bits", 2));
    const auto rows = static_cast<std::uint32_t>(args.getU64("rows", 16));
    const auto segments =
        static_cast<std::uint32_t>(args.getU64("segments", 4));

    if (rows % segments != 0) {
        std::cerr << "rows must divide evenly into segments\n";
        return 1;
    }

    std::cout << "Smart Refresh countdown staggering (paper Section 4.2)\n"
              << "counter access period = retention / 2^bits; a counter\n"
              << "showing '*' was reset to max and its row refreshed.\n";

    simultaneousCountdown(bits, rows);
    segmentedWalk(bits, rows, segments);
    return 0;
}

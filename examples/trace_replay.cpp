/**
 * @file
 * Standalone trace-driven mode, mirroring DRAMsim's trace frontend:
 * record a workload's DRAM access stream to a file, then replay the
 * identical stream under the CBR baseline and under Smart Refresh.
 *
 * Usage:
 *   trace_replay record --out trace.bin [--seconds-ms 64]
 *                       [--benchmark mummer] [--binary]
 *   trace_replay replay --in trace.bin
 *   trace_replay            (record to a temp file, then replay it)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "harness/cli.hh"
#include "harness/report.hh"
#include "harness/system.hh"
#include "trace/benchmark_profiles.hh"
#include "trace/trace.hh"

using namespace smartref;

namespace {

/** Capture a workload's access stream into a trace file. */
std::uint64_t
record(const std::string &path, const std::string &benchmark, Tick length,
       TraceFormat format)
{
    EventQueue eq;
    StatGroup root("recorder");
    TraceWriter writer(path, format);
    const DramConfig dram = ddr2_2GB();
    auto sink = [&](Addr addr, bool write) {
        writer.append({eq.now(), addr, write});
    };
    const auto params = conventionalParams(findProfile(benchmark), dram);
    std::vector<std::unique_ptr<WorkloadModel>> models;
    for (const auto &wp : params) {
        models.push_back(std::make_unique<WorkloadModel>(
            wp, dram.org.rowBytes(), sink, eq, &root));
        models.back()->start();
    }
    eq.runUntil(length);
    writer.close();
    return writer.recordsWritten();
}

/** Replay a trace through a system with the given refresh policy. */
EnergySnapshot
replay(const std::string &path, PolicyKind policy)
{
    SystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = policy;
    System sys(cfg);

    TraceReader reader(path);
    TraceRecord rec;
    Tick last = 0;
    std::uint64_t replayed = 0;
    while (reader.next(rec)) {
        // Drive the event queue up to each record's timestamp, then
        // inject the access — an open-loop replay like DRAMsim's.
        if (rec.tick > last) {
            sys.run(rec.tick - last);
            last = rec.tick;
        }
        sys.controller().access(rec.addr, rec.write);
        ++replayed;
    }
    // Drain the tail plus one full interval of refresh activity.
    sys.run(cfg.dram.timing.retention);
    EnergySnapshot snap = captureSnapshot(sys);
    snap.violations += sys.dram().retention().finalCheck(
        sys.eventQueue().now());
    std::cerr << "  replayed " << replayed << " accesses under "
              << toString(policy) << "\n";
    return snap;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::string benchmark = args.getString("benchmark", "mummer");
    const Tick length = args.getU64("seconds-ms", 64) * kMillisecond;
    const TraceFormat format =
        args.has("binary") ? TraceFormat::Binary : TraceFormat::Text;

    std::string path = args.getString("in");
    const bool haveInput = !path.empty();
    if (!haveInput) {
        path = args.getString("out");
        if (path.empty())
            path = "/tmp/smartref_demo_trace.trc";
        std::cout << "recording " << benchmark << " to " << path << " ("
                  << length / kMillisecond << " ms)...\n";
        const std::uint64_t n = record(path, benchmark, length, format);
        std::cout << "  " << n << " records written\n";
        if (args.has("out"))
            return 0; // record-only mode
    }

    std::cout << "replaying " << path << " under both policies...\n";
    const EnergySnapshot cbr = replay(path, PolicyKind::Cbr);
    const EnergySnapshot smart = replay(path, PolicyKind::Smart);

    ReportTable table({"metric", "CBR", "Smart", "delta"});
    table.addRow({"refreshes", std::to_string(cbr.refreshes),
                  std::to_string(smart.refreshes),
                  fmtPercent(1.0 - static_cast<double>(smart.refreshes) /
                                       static_cast<double>(cbr.refreshes)) +
                      " fewer"});
    table.addRow({"refresh+overhead energy (mJ)",
                  fmtDouble((cbr.refreshEnergy + cbr.overheadEnergy) * 1e3),
                  fmtDouble((smart.refreshEnergy + smart.overheadEnergy) *
                            1e3),
                  ""});
    table.addRow({"total energy (mJ)", fmtDouble(cbr.totalEnergy() * 1e3),
                  fmtDouble(smart.totalEnergy() * 1e3),
                  fmtPercent(1.0 - smart.totalEnergy() /
                                       cbr.totalEnergy()) +
                      " saved"});
    table.addRow({"violations", std::to_string(cbr.violations),
                  std::to_string(smart.violations), "(must be 0)"});
    std::cout << '\n';
    table.print(std::cout);

    if (!haveInput && !args.has("out"))
        std::remove(path.c_str());
    return (cbr.violations || smart.violations) ? 1 : 0;
}

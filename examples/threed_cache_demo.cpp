/**
 * @file
 * 3D die-stacked DRAM cache demo (paper Section 7.2): a 64 MB stacked
 * module used as an L3 cache in front of a 2 GB main memory, with Smart
 * Refresh on the hot stacked die. Prints the cache behaviour, both
 * refresh domains, and the stacked module's energy breakdown.
 *
 * Usage: threed_cache_demo [--benchmark mummer] [--rate-32ms]
 *                          [--measure-ms N]
 */

#include <iostream>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace smartref;

namespace {

void
runOne(const std::string &benchName, const DramConfig &threeD,
       PolicyKind policy, const ExperimentOptions &opts, ReportTable &out)
{
    ThreeDSystemConfig cfg;
    cfg.threeD = threeD;
    cfg.threeDPolicy = policy;
    cfg.smart.counterBits = opts.counterBits;
    ThreeDSystem sys(cfg);
    for (const auto &wp : threeDParams(findProfile(benchName), threeD))
        sys.addWorkload(wp);

    sys.run(opts.warmup);
    const EnergySnapshot warm = captureSnapshot(sys);
    sys.run(opts.measure);
    const EnergySnapshot end = captureSnapshot(sys);
    const EnergySnapshot d = end - warm;
    const double seconds =
        static_cast<double>(d.tick) / static_cast<double>(kSecond);

    out.addRow({std::string(toString(policy)),
                fmtMillions(static_cast<double>(d.refreshes) / seconds),
                fmtPercent(sys.cache().hitRate()),
                fmtDouble(d.refreshEnergy * 1e3),
                fmtDouble(d.backgroundEnergy * 1e3),
                fmtDouble((d.actEnergy + d.readEnergy + d.writeEnergy) *
                          1e3),
                fmtDouble(d.overheadEnergy * 1e3),
                fmtDouble(d.totalEnergy() * 1e3),
                std::to_string(d.violations)});
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ExperimentOptions opts = args.experimentOptions();
    const std::string bench = args.getString("benchmark", "mummer");
    const DramConfig threeD =
        args.has("rate-32ms") ? dram3d_64MB_32ms() : dram3d_64MB();

    std::cout << "3D die-stacked DRAM cache demo\n"
              << "stacked module: " << threeD.name << " ("
              << threeD.org.capacityBytes() / kMiB << " MiB, "
              << threeD.timing.retention / kMillisecond
              << " ms retention)\nbenchmark profile: " << bench << "\n\n";

    ReportTable table({"policy", "refr/s (M)", "cache hit rate",
                       "refresh (mJ)", "background (mJ)", "access (mJ)",
                       "overhead (mJ)", "total (mJ)", "violations"});
    runOne(bench, threeD, PolicyKind::Cbr, opts, table);
    runOne(bench, threeD, PolicyKind::Smart, opts, table);
    table.print(std::cout);

    std::cout << "\nThe stacked die cannot power down (it sits on the "
                 "processor's access\npath), so refresh is a large share "
                 "of its energy — exactly the regime\nthe paper's "
                 "Section 4.5 motivates.\n";
    return 0;
}

/**
 * @file
 * Quickstart: build a 2 GB DDR2 system, run the same workload under the
 * CBR baseline and under Smart Refresh, and print the headline metrics.
 *
 * Usage: quickstart [--measure-ms N] [--bits B] [--verbose]
 */

#include <iostream>

#include "harness/cli.hh"
#include "harness/report.hh"
#include "harness/system.hh"
#include "trace/benchmark_profiles.hh"

using namespace smartref;

namespace {

struct QuickResult
{
    double refreshesPerSec;
    double refreshEnergy;
    double totalEnergy;
    double avgLatencyNs;
    std::uint64_t violations;
};

QuickResult
runOnce(PolicyKind policy, const ExperimentOptions &opts)
{
    SystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = policy;
    cfg.smart.counterBits = opts.counterBits;

    System sys(cfg);

    // A mid-range workload: ~60 % of the module's rows kept alive.
    for (const auto &wp :
         conventionalParams(findProfile("mummer"), cfg.dram, 1.0,
                            opts.seed)) {
        sys.addWorkload(wp);
    }

    sys.run(opts.warmup);
    EnergySnapshot warm = captureSnapshot(sys);
    sys.run(opts.measure);
    EnergySnapshot end = captureSnapshot(sys);
    const std::uint64_t stale =
        sys.dram().retention().finalCheck(sys.eventQueue().now());

    const EnergySnapshot d = end - warm;
    const double seconds = static_cast<double>(d.tick) /
                           static_cast<double>(kSecond);

    QuickResult r;
    r.refreshesPerSec = static_cast<double>(d.refreshes) / seconds;
    r.refreshEnergy = d.refreshEnergy + d.overheadEnergy;
    r.totalEnergy = d.totalEnergy();
    r.avgLatencyNs = d.demandAccesses
                         ? d.latencySumTicks /
                               static_cast<double>(d.demandAccesses) /
                               static_cast<double>(kNanosecond)
                         : 0.0;
    r.violations = d.violations + stale;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ExperimentOptions opts = args.experimentOptions();

    std::cout << "Smart Refresh quickstart: 2 GB DDR2-667, benchmark "
                 "profile 'mummer'\n"
              << "warmup " << opts.warmup / kMillisecond
              << " ms, measure " << opts.measure / kMillisecond
              << " ms, " << opts.counterBits << "-bit counters\n";

    const QuickResult base = runOnce(PolicyKind::Cbr, opts);
    const QuickResult smart = runOnce(PolicyKind::Smart, opts);

    ReportTable table({"metric", "CBR baseline", "Smart Refresh",
                       "change"});
    table.addRow({"refreshes/s", fmtMillions(base.refreshesPerSec) + " M",
                  fmtMillions(smart.refreshesPerSec) + " M",
                  fmtPercent(1.0 - smart.refreshesPerSec /
                                       base.refreshesPerSec) +
                      " fewer"});
    table.addRow({"refresh energy (mJ)",
                  fmtDouble(base.refreshEnergy * 1e3),
                  fmtDouble(smart.refreshEnergy * 1e3),
                  fmtPercent(1.0 - smart.refreshEnergy /
                                       base.refreshEnergy) +
                      " saved"});
    table.addRow({"total DRAM energy (mJ)",
                  fmtDouble(base.totalEnergy * 1e3),
                  fmtDouble(smart.totalEnergy * 1e3),
                  fmtPercent(1.0 - smart.totalEnergy / base.totalEnergy) +
                      " saved"});
    table.addRow({"avg demand latency (ns)",
                  fmtDouble(base.avgLatencyNs, 1),
                  fmtDouble(smart.avgLatencyNs, 1), ""});
    table.addRow({"retention violations",
                  std::to_string(base.violations),
                  std::to_string(smart.violations), "(must be 0)"});
    std::cout << '\n';
    table.print(std::cout);

    if (base.violations || smart.violations) {
        std::cerr << "ERROR: retention violations detected\n";
        return 1;
    }
    return 0;
}

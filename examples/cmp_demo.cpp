/**
 * @file
 * The paper's SPLASH-2 setup in miniature: a 2-processor CMP with
 * private L1s and a shared 1 MB 8-way L2 (Table 1), executing in closed
 * loop against the 2 GB module. Compares CBR and Smart Refresh by what
 * actually matters to software — retired instructions — alongside the
 * energy picture.
 *
 * Usage: cmp_demo [--seconds-ms N] [--policy cbr|smart]
 */

#include <iostream>

#include "harness/cli.hh"
#include "harness/cpu_system.hh"
#include "harness/report.hh"
#include "trace/benchmark_profiles.hh"

using namespace smartref;

namespace {

struct CmpResult
{
    std::uint64_t instructions;
    double ipc0, ipc1;
    double l1HitRate, l2HitRate;
    double dramEnergy;
    std::uint64_t refreshes;
    std::uint64_t violations;
};

CmpResult
runCmp(PolicyKind policy, Tick duration)
{
    CpuSystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = policy;
    cfg.numCores = 2;

    CpuSystem sys(cfg);

    CoreParams core;
    core.frequencyGHz = 2.0;
    core.baseIpc = 1.0;
    core.accessesPerKiloInstr = 300.0; // memory-hungry kernel

    // Two threads of a grid sweep, interleaved across the module like
    // the paper's water-spatial: big footprints, strong spatial runs.
    WorkloadParams thread0;
    thread0.footprintRows = 40000;
    thread0.accessesPerVisit = 8;
    thread0.randomJumpProb = 0.05;
    thread0.readFraction = 0.75;
    thread0.rowStride = 2;
    thread0.rowOffset = 0;
    thread0.seed = 21;
    WorkloadParams thread1 = thread0;
    thread1.rowOffset = 1;
    thread1.seed = 22;

    core.name = "core0";
    sys.addCore(core, thread0);
    core.name = "core1";
    sys.addCore(core, thread1);

    sys.run(duration);

    CmpResult r;
    r.instructions = sys.totalInstructions();
    r.ipc0 = sys.core(0).effectiveIpc(sys.eventQueue().now());
    r.ipc1 = sys.core(1).effectiveIpc(sys.eventQueue().now());
    r.l1HitRate = sys.hierarchy().l1(0).hitRate();
    r.l2HitRate = sys.hierarchy().sharedL2().hitRate();
    r.dramEnergy = sys.dram().power().totalEnergy();
    r.refreshes = sys.dram().totalRefreshes();
    r.violations =
        sys.dram().retention().violations() +
        sys.dram().retention().finalCheck(sys.eventQueue().now());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const Tick duration = args.getU64("seconds-ms", 192) * kMillisecond;

    std::cout << "2-processor CMP demo (private 32 KiB L1s, shared 1 MiB "
                 "8-way L2, 2 GB DDR2)\n"
              << "two interleaved grid-sweep threads, "
              << duration / kMillisecond << " ms of execution\n\n";

    const CmpResult cbr = runCmp(PolicyKind::Cbr, duration);
    const CmpResult smart = runCmp(PolicyKind::Smart, duration);

    ReportTable table({"metric", "CBR", "Smart Refresh"});
    table.addRow({"instructions retired", std::to_string(cbr.instructions),
                  std::to_string(smart.instructions)});
    table.addRow({"IPC core0 / core1",
                  fmtDouble(cbr.ipc0, 3) + " / " + fmtDouble(cbr.ipc1, 3),
                  fmtDouble(smart.ipc0, 3) + " / " +
                      fmtDouble(smart.ipc1, 3)});
    table.addRow({"L1 / shared-L2 hit rate",
                  fmtPercent(cbr.l1HitRate) + " / " +
                      fmtPercent(cbr.l2HitRate),
                  fmtPercent(smart.l1HitRate) + " / " +
                      fmtPercent(smart.l2HitRate)});
    table.addRow({"DRAM refreshes", std::to_string(cbr.refreshes),
                  std::to_string(smart.refreshes)});
    table.addRow({"DRAM energy (mJ)", fmtDouble(cbr.dramEnergy * 1e3),
                  fmtDouble(smart.dramEnergy * 1e3)});
    table.addRow({"retention violations", std::to_string(cbr.violations),
                  std::to_string(smart.violations)});
    table.print(std::cout);

    const double speedup =
        static_cast<double>(smart.instructions) /
            static_cast<double>(cbr.instructions) -
        1.0;
    std::cout << "\nspeedup from eliminated refreshes: "
              << fmtPercent(speedup, 3)
              << " (the paper's Fig. 18: slight but never negative)\n";
    return (cbr.violations || smart.violations) ? 1 : 0;
}

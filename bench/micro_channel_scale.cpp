/**
 * @file
 * Server-scale microbenchmark: per-channel event-engine sharding and
 * the hierarchical sparse counter array.
 *
 * Three measurements, one JSON artifact (BENCH_channel_scale.json):
 *
 *  - events/s vs channel count: the same per-channel workload run at
 *    1/2/4/8 channels through ShardedSystem, with as many shard
 *    workers as the host offers. The headline number is events/s at
 *    8 channels over the 1-channel serial run. The >= 3x gate is only
 *    enforced when the host has >= 4 hardware threads — sharding
 *    cannot beat physics on a 1-core container — but the numbers are
 *    always reported (CI runs on multi-core hosts).
 *
 *  - walk steps saved on an idle-heavy profile: a dense and a sparse
 *    smart-refresh run over the same near-idle workload; the sparse
 *    walk skips pristine segments in O(1), so its per-counter SRAM
 *    reads collapse. Deterministic, gated at >= 10x everywhere.
 *
 *  - peak RSS per simulated GB: a 512 GB / 16-channel system with
 *    sparse counters constructs and runs a short window; the artifact
 *    records the process peak RSS, the modeled resident counter
 *    bytes, and bytes per simulated row (the CI server-smoke job
 *    applies the absolute ceiling).
 *
 * Usage: micro_channel_scale [BENCH_channel_scale.json]
 * Exit code 1 when an enforced gate fails.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/smart_refresh.hh"
#include "harness/sharded.hh"
#include "sim/thread_pool.hh"

using namespace smartref;

namespace {

/** One channel-count sample of the scaling curve. */
struct ScalePoint
{
    std::uint32_t channels;
    unsigned shardJobs;
    std::uint64_t events;
    double wallSeconds;

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(events) / wallSeconds
                   : 0.0;
    }
};

/** Run `channels` channels of the 128 GB preset's per-channel module. */
ScalePoint
runScalePoint(std::uint32_t channels, unsigned shardJobs, Tick warmup,
              Tick measure)
{
    DramConfig dram = dramConfigByName("128gb");
    dram.channels = channels;

    SystemConfig cfg;
    cfg.dram = dram;
    cfg.policy = PolicyKind::Smart;
    cfg.smart.counterBits = 3;
    cfg.smart.segments = 8;
    cfg.smart.queueCapacity = 8;

    ShardedSystem sys(cfg, shardJobs);
    DramConfig chDram = dram;
    chDram.channels = 1;
    const BenchmarkProfile &profile = findProfile("mummer");
    for (std::uint32_t c = 0; c < channels; ++c) {
        for (const auto &wp : conventionalParams(
                 profile, chDram, 1.0, shardChannelSeed(42, c)))
            sys.channel(c).addWorkload(wp);
    }

    sys.run(warmup);
    const std::uint64_t before = sys.eventsExecuted();
    const auto t0 = std::chrono::steady_clock::now();
    sys.run(measure);
    const auto t1 = std::chrono::steady_clock::now();

    ScalePoint p;
    p.channels = channels;
    p.shardJobs = shardJobs;
    p.events = sys.eventsExecuted() - before;
    p.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    return p;
}

/** Walk/SRAM counters of one idle-heavy smart-refresh run. */
struct WalkCost
{
    std::uint64_t sramReads;
    std::uint64_t summaryReads;
    std::uint64_t touchesSkipped;
};

WalkCost
runIdleWalk(bool sparse)
{
    SystemConfig cfg;
    // One channel of the 128 GB preset: 1 M counters = 32 sparse
    // chunks, so a near-idle footprint leaves most chunks pristine.
    // (The 2 GB module has only 4 chunks — its best case is 4x, below
    // the gate by construction, not by behaviour.)
    DramConfig dram = dramConfigByName("128gb");
    dram.channels = 1;
    cfg.dram = dram;
    cfg.policy = PolicyKind::Smart;
    cfg.smart.counterBits = 3;
    cfg.smart.segments = 8;
    cfg.smart.queueCapacity = 8;
    // Keep the self-configuration circuit out of the measurement: it
    // would disable refresh on this near-idle profile and the walks
    // being compared would stop.
    cfg.smart.autoReconfigure = false;
    cfg.smart.sparseCounters = sparse;

    System sys(cfg);
    sys.addWorkload(idleParams(cfg.dram, 42));
    // Two full 64 ms walk periods: ample pristine-segment skipping.
    sys.run(128 * kMillisecond);

    const CounterArray &counters = sys.smartPolicy()->counters();
    return {counters.sramReads(), counters.summaryReads(),
            counters.touchesSkipped()};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out =
        argc > 1 ? argv[1] : "BENCH_channel_scale.json";
    const unsigned hostThreads = ThreadPool::hardwareThreads();

    // --- events/s vs channel count -------------------------------
    const Tick warmup = 2 * kMillisecond;
    const Tick measure = 12 * kMillisecond;
    std::vector<ScalePoint> points;
    for (std::uint32_t channels : {1u, 2u, 4u, 8u}) {
        const unsigned jobs =
            std::min<unsigned>(channels, hostThreads);
        // Best of two, so one scheduler hiccup can't skew the gate.
        ScalePoint best = runScalePoint(channels, jobs, warmup, measure);
        ScalePoint again = runScalePoint(channels, jobs, warmup, measure);
        if (again.eventsPerSec() > best.eventsPerSec())
            best = again;
        points.push_back(best);
        std::cout << best.channels << " channel(s), -j"
                  << best.shardJobs << ": " << best.eventsPerSec()
                  << " events/s (" << best.events << " events in "
                  << best.wallSeconds << " s)\n";
    }
    const double speedup8 =
        points.back().eventsPerSec() / points.front().eventsPerSec();
    const bool gateEnforced = hostThreads >= 4;
    std::cout << "events/s at 8 channels vs 1-channel serial: "
              << speedup8 << "x (gate 3x "
              << (gateEnforced ? "enforced" : "informational on ")
              << (gateEnforced ? "" : std::to_string(hostThreads) +
                                          "-thread host")
              << ")\n";

    // --- idle-heavy walk reduction -------------------------------
    const WalkCost dense = runIdleWalk(false);
    const WalkCost sparse = runIdleWalk(true);
    const double walkReduction =
        static_cast<double>(dense.sramReads) /
        static_cast<double>(std::max<std::uint64_t>(1,
                                                    sparse.sramReads));
    std::cout << "idle walk SRAM reads: dense " << dense.sramReads
              << ", sparse " << sparse.sramReads << " (+ "
              << sparse.summaryReads << " summary reads, "
              << sparse.touchesSkipped << " touches skipped) -> "
              << walkReduction << "x fewer\n";

    // --- 512 GB construction + peak RSS --------------------------
    DramConfig server = dramConfigByName("512gb");
    std::uint64_t residentCounterBytes = 0;
    {
        SystemConfig cfg;
        cfg.dram = server;
        cfg.policy = PolicyKind::Smart;
        cfg.smart.counterBits = 3;
        cfg.smart.segments = 8;
        cfg.smart.queueCapacity = 8;
        cfg.smart.sparseCounters = true;

        ShardedSystem sys(cfg, std::min<unsigned>(server.channels,
                                                  hostThreads));
        DramConfig chDram = server;
        chDram.channels = 1;
        for (std::uint32_t c = 0; c < server.channels; ++c) {
            sys.channel(c).addWorkload(
                idleParams(chDram, shardChannelSeed(42, c)));
        }
        sys.run(1 * kMillisecond);
        residentCounterBytes = sys.residentCounterBytes();
    }
    const double simGB =
        static_cast<double>(server.totalCapacityBytes()) /
        (1024.0 * 1024.0 * 1024.0);
    const std::uint64_t peakRss = currentPeakRssBytes();
    const double rssPerSimGB =
        static_cast<double>(peakRss) / simGB;
    const double bytesPerRow =
        static_cast<double>(residentCounterBytes) /
        static_cast<double>(server.totalRowsAllChannels());
    std::cout << "512gb: " << simGB << " simulated GB, peak RSS "
              << peakRss << " B (" << rssPerSimGB
              << " B/GB), resident counter bytes "
              << residentCounterBytes << " (" << bytesPerRow
              << " B/row)\n";

    RunMeta meta;
    meta.schema = "smartref-bench-channel_scale-v1";
    // BENCH artifacts are outside the byte-identity contract, so the
    // host-dependent peak RSS may ride in the meta block here.
    meta.peakRssBytes = peakRss;
    meta.bytesPerSimulatedRow = bytesPerRow;

    std::ofstream os(out);
    os.precision(6);
    os << "{\n"
       << "  \"bench\": \"channel_scale\",\n"
       << "  \"meta\": " << metaJson(meta) << ",\n"
       << "  \"hostThreads\": " << hostThreads << ",\n"
       << "  \"events\": {\n"
       << "    \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ScalePoint &p = points[i];
        os << "      {\"channels\": " << p.channels
           << ", \"shardJobs\": " << p.shardJobs
           << ", \"events\": " << p.events
           << ", \"wallSeconds\": " << p.wallSeconds
           << ", \"eventsPerSec\": " << p.eventsPerSec() << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "    ],\n"
       << "    \"speedup8\": " << speedup8 << ",\n"
       << "    \"gate\": 3.0,\n"
       << "    \"gateEnforced\": " << (gateEnforced ? "true" : "false")
       << "\n"
       << "  },\n"
       << "  \"walk\": {\n"
       << "    \"denseSramReads\": " << dense.sramReads << ",\n"
       << "    \"sparseSramReads\": " << sparse.sramReads << ",\n"
       << "    \"sparseSummaryReads\": " << sparse.summaryReads << ",\n"
       << "    \"touchesSkipped\": " << sparse.touchesSkipped << ",\n"
       << "    \"walkStepReduction\": " << walkReduction << ",\n"
       << "    \"gate\": 10.0\n"
       << "  },\n"
       << "  \"memory\": {\n"
       << "    \"config\": \"512gb\",\n"
       << "    \"channels\": " << server.channels << ",\n"
       << "    \"simulatedBytes\": " << server.totalCapacityBytes()
       << ",\n"
       << "    \"peakRssBytes\": " << peakRss << ",\n"
       << "    \"residentCounterBytes\": " << residentCounterBytes
       << ",\n"
       << "    \"bytesPerSimulatedRow\": " << bytesPerRow << ",\n"
       << "    \"rssPerSimulatedGB\": " << rssPerSimGB << "\n"
       << "  }\n"
       << "}\n";
    std::cout << "wrote " << out << "\n";

    bool failed = false;
    if (gateEnforced && speedup8 < 3.0) {
        std::cerr << "GATE FAIL: events/s speedup at 8 channels "
                  << speedup8 << " < 3.0\n";
        failed = true;
    }
    if (walkReduction < 10.0) {
        std::cerr << "GATE FAIL: idle walk reduction " << walkReduction
                  << " < 10.0\n";
        failed = true;
    }
    return failed ? 1 : 0;
}

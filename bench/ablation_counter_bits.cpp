/**
 * @file
 * Ablation: counter width (paper Section 4.4). Wider counters track row
 * liveness at finer granularity — higher worst-case optimality and more
 * refreshes skipped — at the cost of a larger counter array. The paper
 * quotes 75 % optimality for 2 bits and 87.5 % for 3 bits and simulates
 * with 3; this bench sweeps 1-4 bits on one mid-range benchmark.
 *
 * Usage: ablation_counter_bits [--benchmark mummer] [--measure-ms N]
 */

#include <iostream>

#include "bench_common.hh"
#include "core/counter_array.hh"
#include "core/optimality.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ExperimentOptions opts = args.experimentOptions();
    const std::string benchName = args.getString("benchmark", "mummer");
    const DramConfig dram = ddr2_2GB();
    const BenchmarkProfile &profile = findProfile(benchName);

    std::cout << "=== Ablation: counter width (benchmark " << benchName
              << ", 2 GB module) ===\n"
              << "paper Section 4.4: optimality = 1 - 1/2^bits "
                 "(75% @ 2 bits, 87.5% @ 3 bits)\n\n";

    ReportTable table({"bits", "area (KB)", "analytic optimality",
                       "refresh reduction", "refresh energy saving",
                       "total energy saving"});

    const RunResult baseline =
        runConventional(profile, dram, PolicyKind::Cbr, opts);

    for (std::uint32_t bits = 1; bits <= 4; ++bits) {
        ExperimentOptions o = opts;
        o.counterBits = bits;
        const RunResult smart =
            runConventional(profile, dram, PolicyKind::Smart, o);
        ComparisonResult c;
        c.benchmark = benchName;
        c.baseline = baseline;
        c.smart = smart;
        if (smart.violations || baseline.violations) {
            std::cerr << "retention violation at " << bits << " bits!\n";
            return 1;
        }
        table.addRow({std::to_string(bits),
                      fmtDouble(counterAreaKB(dram.org.banks,
                                              dram.org.ranks,
                                              dram.org.rows, bits),
                                0),
                      fmtPercent(smartRefreshOptimality(bits)),
                      fmtPercent(c.refreshReduction()),
                      fmtPercent(c.refreshEnergySaving()),
                      fmtPercent(c.totalEnergySaving())});
    }
    table.print(std::cout);
    if (!args.csvPath().empty())
        table.writeCsv(args.csvPath());

    std::cout << "\nbaseline (CBR): "
              << fmtMillions(baseline.refreshesPerSec)
              << " M refreshes/s, "
              << fmtDouble(baseline.totalEnergyJ * 1e3)
              << " mJ total over the measurement window\n";
    return 0;
}

/**
 * @file
 * Ablation: the Section 4.6 self-configuration circuit. Under a
 * near-idle workload Smart Refresh skips (almost) nothing, so the
 * counter walk and RAS-only bus energy are pure overhead; auto-disable
 * falls back to CBR and pays none of it. The paper notes that even an
 * idle OS still showed ~10 % refresh-energy savings — reproduced here
 * as a second-order effect: the segmented walk clusters refreshes per
 * rank, improving power-down residency between them.
 *
 * Usage: ablation_idle_disable [--measure-ms N]
 */

#include <iostream>

#include "bench_common.hh"

using namespace smartref;

namespace {

struct IdleResult
{
    double refreshesPerSec;
    double totalEnergy;
    double overhead;
    std::uint64_t violations;
    std::string finalMode;
};

IdleResult
runIdle(PolicyKind policy, bool autoReconfigure, bool lightTraffic,
        const ExperimentOptions &opts)
{
    SystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = policy;
    cfg.smart.counterBits = opts.counterBits;
    cfg.smart.autoReconfigure = autoReconfigure;
    System sys(cfg);
    sys.addWorkload(lightTraffic ? lightParams(cfg.dram)
                                 : idleParams(cfg.dram));

    sys.run(opts.warmup + 2 * cfg.dram.timing.retention);
    const EnergySnapshot warm = captureSnapshot(sys);
    sys.run(opts.measure);
    const EnergySnapshot end = captureSnapshot(sys);
    const EnergySnapshot d = end - warm;
    const double seconds =
        static_cast<double>(d.tick) / static_cast<double>(kSecond);

    IdleResult r;
    r.refreshesPerSec = static_cast<double>(d.refreshes) / seconds;
    r.totalEnergy = d.totalEnergy();
    r.overhead = d.overheadEnergy;
    r.violations =
        d.violations +
        sys.dram().retention().finalCheck(sys.eventQueue().now());
    if (auto *smart = sys.smartPolicy()) {
        switch (smart->mode()) {
          case SmartRefreshPolicy::Mode::Smart: r.finalMode = "smart";
            break;
          case SmartRefreshPolicy::Mode::Cbr: r.finalMode = "cbr";
            break;
          default: r.finalMode = "overlap"; break;
        }
    } else {
        r.finalMode = toString(policy);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const ExperimentOptions opts = args.experimentOptions();

    std::cout << "=== Ablation: Section 4.6 auto-disable on an idle "
                 "system (2 GB) ===\n\n";

    struct Config
    {
        const char *label;
        PolicyKind policy;
        bool autoCfg;
        bool light;
    };
    const Config configs[] = {
        {"CBR baseline (idle)", PolicyKind::Cbr, false, false},
        {"Smart, auto-disable ON (idle)", PolicyKind::Smart, true, false},
        {"Smart, auto-disable OFF (idle)", PolicyKind::Smart, false,
         false},
        {"CBR baseline (light)", PolicyKind::Cbr, false, true},
        {"Smart, auto-disable ON (light)", PolicyKind::Smart, true, true},
    };

    ReportTable table({"configuration", "final mode", "refreshes/s (M)",
                       "total energy (mJ)", "overhead (mJ)",
                       "violations"});
    double cbrIdleEnergy = 0.0;
    for (const Config &c : configs) {
        const IdleResult r = runIdle(c.policy, c.autoCfg, c.light, opts);
        if (std::string(c.label) == "CBR baseline (idle)")
            cbrIdleEnergy = r.totalEnergy;
        table.addRow({c.label, r.finalMode,
                      fmtMillions(r.refreshesPerSec),
                      fmtDouble(r.totalEnergy * 1e3),
                      fmtDouble(r.overhead * 1e3),
                      std::to_string(r.violations)});
        if (r.violations) {
            std::cerr << "retention violation in '" << c.label << "'\n";
            return 1;
        }
    }
    table.print(std::cout);
    if (!args.csvPath().empty())
        table.writeCsv(args.csvPath());

    std::cout
        << "\nWith auto-disable the idle system converges to CBR ("
        << fmtDouble(cbrIdleEnergy * 1e3)
        << " mJ) and pays zero\ncounter/bus overhead. With it forced "
           "off, the overhead column is pure\nloss — though the "
           "segmented walk's per-rank refresh clustering recovers\n"
           "some standby energy (the paper's ~10% idle-OS observation), "
           "the paper's\npoint stands: there is nothing to *skip* at "
           "idle, so the counters may as\nwell be off.\n";
    return 0;
}

/**
 * @file
 * Figure 12: refresh operations per second, 64 MB 3D DRAM cache, 64 ms.
 * Paper: baseline 1,024,000/s, Smart GMEAN 795,411/s; reductions range
 * from 4 % (fasta) to 42 % (mummer).
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const DramConfig threeD = dram3d_64MB();
    const auto results = bench::threeDSuite(args, threeD);
    printRefreshRateFigure(
        std::cout,
        "Figure 12: refreshes per second (64 MB 3D DRAM cache, 64 ms)",
        "baseline 1,024,000/s, GMEAN 795,411/s, reductions 4%..42%",
        threeD.baselineRefreshesPerSecond(), results, args.csvPath());
    return 0;
}

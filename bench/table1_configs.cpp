/**
 * @file
 * Tables 1 and 2: the DRAM module and 3D DRAM cache configurations, plus
 * the Section 4.7 counter area overhead for each (48 KB for the 2 GB
 * module with 3-bit counters; 768 KB for a 32 GB-capable controller).
 */

#include <iostream>

#include "core/counter_array.hh"
#include "harness/report.hh"
#include "harness/system.hh"

using namespace smartref;

namespace {

void
printConfig(const DramConfig &cfg, std::uint32_t counterBits)
{
    const auto &o = cfg.org;
    ReportTable t({"parameter", "value"});
    t.addRow({"name", cfg.name});
    t.addRow({"capacity",
              fmtDouble(static_cast<double>(o.capacityBytes()) /
                            static_cast<double>(kMiB),
                        0) +
                  " MiB"});
    t.addRow({"ranks", std::to_string(o.ranks)});
    t.addRow({"banks/rank", std::to_string(o.banks)});
    t.addRow({"rows/bank", std::to_string(o.rows)});
    t.addRow({"columns/row", std::to_string(o.columns)});
    t.addRow({"data width (bits)", std::to_string(o.dataWidthBits)});
    t.addRow({"refresh interval (ms)",
              std::to_string(cfg.timing.retention / kMillisecond)});
    t.addRow({"refresh targets (rank x bank x row)",
              std::to_string(o.totalRows())});
    t.addRow({"baseline refreshes/s",
              fmtMillions(cfg.baselineRefreshesPerSecond()) + " M"});
    t.addRow({"counter area (Section 4.7)",
              fmtDouble(counterAreaKB(o.banks, o.ranks, o.rows,
                                      counterBits),
                        1) +
                  " KB (" + std::to_string(counterBits) + "-bit)"});
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== Table 1: conventional DRAM module configurations "
                 "===\n\n";
    printConfig(ddr2_2GB(), 3);
    printConfig(ddr2_4GB(), 3);

    std::cout << "=== Table 2: 3D DRAM cache configurations ===\n\n";
    printConfig(dram3d_64MB(), 3);
    printConfig(dram3d_64MB_32ms(), 3);
    printConfig(dram3d_32MB(), 3);

    // Section 4.7 checks quoted in the text.
    std::cout << "Section 4.7 anchors:\n"
              << "  2 GB module, 3-bit counters: "
              << counterAreaKB(4, 2, 16384, 3)
              << " KB (paper: 48 KB)\n"
              << "  32 GB-capable controller:    "
              << counterAreaKB(4, 2, 16384, 3) * 16
              << " KB (paper: 768 KB)\n";
    return 0;
}

/**
 * @file
 * Figure 14: relative total energy savings, 64 MB 3D cache, 64 ms.
 * Paper: up to 21.5 % (gcc_twolf), GMEAN 9.37 %; two-process runs save
 * more because interleaved footprints touch more distinct rows.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results = bench::threeDSuite(args, dram3d_64MB());
    printFigure(std::cout,
                "Figure 14: relative total energy savings (3D 64 MB, 64 ms)",
                "up to 21.5% (gcc_twolf), GMEAN 9.37%", results,
                "total energy saving", bench::totalEnergySaving, true,
                args.csvPath());
    return 0;
}

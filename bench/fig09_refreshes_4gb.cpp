/**
 * @file
 * Figure 9: refresh operations per second, 4 GB DDR2 (8 banks).
 * Paper: baseline 4,096,000/s (double the 2 GB module's bank count),
 * Smart GMEAN 2,343,691/s (~43 % reduction in GMEAN terms).
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const DramConfig dram = ddr2_4GB();
    const auto results =
        bench::conventionalSuite(args, dram, kFourGBRowScale);
    printRefreshRateFigure(
        std::cout, "Figure 9: refreshes per second (4 GB DRAM)",
        "baseline 4,096,000/s, GMEAN 2,343,691/s",
        dram.baselineRefreshesPerSecond(), results, args.csvPath());
    return 0;
}

/**
 * @file
 * Figure 16: relative refresh energy savings, 64 MB 3D cache, 32 ms.
 * Paper: GMEAN 15.79 % — trends mirror the 64 ms case at lower levels.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results = bench::threeDSuite(args, dram3d_64MB_32ms());
    printFigure(
        std::cout,
        "Figure 16: relative refresh energy savings (3D 64 MB, 32 ms)",
        "GMEAN 15.79%", results, "refresh energy saving",
        bench::refreshEnergySaving, true, args.csvPath());
    return 0;
}

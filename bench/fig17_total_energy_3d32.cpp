/**
 * @file
 * Figure 17: relative total energy savings, 64 MB 3D cache, 32 ms.
 * Paper: GMEAN 6.87 % — refresh savings shrink relatively, but refresh
 * is a larger share of total energy at 32 ms, so net savings hold up.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results = bench::threeDSuite(args, dram3d_64MB_32ms());
    printFigure(std::cout,
                "Figure 17: relative total energy savings (3D 64 MB, 32 ms)",
                "GMEAN 6.87%", results, "total energy saving",
                bench::totalEnergySaving, true, args.csvPath());
    return 0;
}

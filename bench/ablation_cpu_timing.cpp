/**
 * @file
 * Ablation: Figure 18's claim measured in closed loop. The figure
 * experiments drive the DRAM open-loop and report latency deltas; this
 * bench puts in-order cores in front (the paper's execution-driven
 * methodology) so refresh interference costs *retired instructions*.
 * Expectation per the paper: Smart Refresh gives a slight (<1 %)
 * speedup and never a slowdown.
 *
 * Usage: ablation_cpu_timing [--seconds-ms N]
 */

#include <iostream>

#include "bench_common.hh"
#include "harness/cpu_system.hh"

using namespace smartref;

namespace {

struct TimingPoint
{
    const char *label;
    double accessesPerKiloInstr;
};

std::uint64_t
runOnce(PolicyKind policy, double apki, Tick duration,
        std::uint64_t *violations)
{
    CpuSystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = policy;
    cfg.numCores = 2;
    CpuSystem sys(cfg);

    CoreParams core;
    core.frequencyGHz = 2.0;
    core.baseIpc = 1.0;
    core.accessesPerKiloInstr = apki;

    for (std::uint32_t c = 0; c < 2; ++c) {
        WorkloadParams wp;
        wp.footprintRows = 40000;
        wp.accessesPerVisit = 4;
        wp.randomJumpProb = 0.1;
        wp.readFraction = 0.8;
        wp.rowStride = 2;
        wp.rowOffset = c;
        wp.seed = 31 + c;
        core.name = "core" + std::to_string(c);
        sys.addCore(core, wp);
    }

    sys.run(duration);
    *violations =
        sys.dram().retention().violations() +
        sys.dram().retention().finalCheck(sys.eventQueue().now());
    return sys.totalInstructions();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const Tick duration = args.getU64("seconds-ms", 96) * kMillisecond;

    std::cout << "=== Ablation: closed-loop execution timing (Fig. 18 "
                 "methodology) ===\n"
              << "2-core CMP, 2 GB DDR2; speedup = instructions retired "
                 "under Smart / CBR - 1\n\n";

    const TimingPoint points[] = {
        {"light memory pressure (50 APKI)", 50.0},
        {"moderate (150 APKI)", 150.0},
        {"heavy (400 APKI)", 400.0},
    };

    ReportTable table({"workload intensity", "CBR instrs", "Smart instrs",
                       "speedup", "violations"});
    for (const TimingPoint &p : points) {
        std::uint64_t vCbr = 0, vSmart = 0;
        const std::uint64_t cbr =
            runOnce(PolicyKind::Cbr, p.accessesPerKiloInstr, duration,
                    &vCbr);
        const std::uint64_t smart =
            runOnce(PolicyKind::Smart, p.accessesPerKiloInstr, duration,
                    &vSmart);
        const double speedup = static_cast<double>(smart) /
                                   static_cast<double>(cbr) -
                               1.0;
        table.addRow({p.label, std::to_string(cbr),
                      std::to_string(smart), fmtPercent(speedup, 3),
                      std::to_string(vCbr + vSmart)});
        if (vCbr + vSmart) {
            std::cerr << "retention violation!\n";
            return 1;
        }
        if (speedup < -0.002) {
            std::cerr << "Smart Refresh slowed execution down — "
                         "violates the paper's Fig. 18 claim\n";
            return 1;
        }
    }
    table.print(std::cout);
    if (!args.csvPath().empty())
        table.writeCsv(args.csvPath());

    std::cout << "\nEliminated refreshes stop stealing bank time from "
                 "demand loads; the\neffect is small because refreshes "
                 "are short and banks are parallel —\nexactly the "
                 "paper's observation.\n";
    return 0;
}

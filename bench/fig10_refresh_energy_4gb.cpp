/**
 * @file
 * Figure 10: relative refresh energy savings, 4 GB DDR2.
 * Paper: GMEAN 23.76 % — lower than the 2 GB module because the same
 * footprints cover a smaller fraction of twice as many rows.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results =
        bench::conventionalSuite(args, ddr2_4GB(), kFourGBRowScale);
    printFigure(std::cout,
                "Figure 10: relative refresh energy savings (4 GB DRAM)",
                "GMEAN 23.76%", results, "refresh energy saving",
                bench::refreshEnergySaving, true, args.csvPath());
    return 0;
}

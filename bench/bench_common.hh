/**
 * @file
 * Shared plumbing for the per-figure bench binaries: standard flags,
 * suite runners with progress output, and the metric extractors the
 * paper's figures report.
 */

#pragma once

#include <iostream>

#include "harness/cli.hh"
#include "harness/report.hh"
#include "sim/provenance.hh"

namespace smartref::bench {

/**
 * Provenance "meta" block for a BENCH_*.json artifact: build identity
 * (git SHA, compiler, flags) plus the bench's own schema tag, so CI can
 * attribute an archived number to the exact build that produced it.
 */
inline std::string
benchMetaJson(const std::string &benchName)
{
    RunMeta meta;
    meta.schema = "smartref-bench-" + benchName + "-v1";
    return metaJson(meta);
}

namespace detail {

inline void
announceSuite(const std::string &dramName, const ExperimentOptions &opts,
              unsigned jobs)
{
    std::cerr << "running " << allProfiles().size() << " benchmarks on "
              << dramName << " (warmup " << opts.warmup / kMillisecond
              << " ms, measure " << opts.measure / kMillisecond
              << " ms, " << jobs << " worker thread(s))..." << std::endl;
}

/** Completion-order progress line (results stay in profile order). */
inline SuiteProgress
progressLine()
{
    return [](const ComparisonResult &r) {
        std::cerr << "  " << r.benchmark << " ["
                  << fmtPercent(r.refreshReduction()) << "]" << std::endl;
    };
}

} // namespace detail

/**
 * Run the benchmark suite on a conventional module, fanned out over
 * "-j N" worker threads (serial without the flag; results are
 * identical either way — see docs/sweep.md).
 */
inline std::vector<ComparisonResult>
conventionalSuite(const CliArgs &args, const DramConfig &dram,
                  double absRowScale = 1.0)
{
    const ExperimentOptions opts = args.experimentOptions();
    const unsigned jobs = args.jobs();
    detail::announceSuite(dram.name, opts, jobs);
    auto results = runConventionalSuite(dram, opts, absRowScale, jobs,
                                        detail::progressLine());
    checkNoViolations(results);
    return results;
}

/** Run the benchmark suite through the 3D DRAM cache (jobs as above). */
inline std::vector<ComparisonResult>
threeDSuite(const CliArgs &args, const DramConfig &threeD)
{
    const ExperimentOptions opts = args.experimentOptions();
    const unsigned jobs = args.jobs();
    detail::announceSuite(threeD.name, opts, jobs);
    auto results =
        runThreeDSuite(threeD, opts, jobs, detail::progressLine());
    checkNoViolations(results);
    return results;
}

/** @name Figure metric extractors. */
///@{
inline double
refreshEnergySaving(const ComparisonResult &r)
{
    return r.refreshEnergySaving();
}

inline double
totalEnergySaving(const ComparisonResult &r)
{
    return r.totalEnergySaving();
}

inline double
perfImprovement(const ComparisonResult &r)
{
    return r.perfImprovement();
}
///@}

} // namespace smartref::bench

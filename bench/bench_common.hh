/**
 * @file
 * Shared plumbing for the per-figure bench binaries: standard flags,
 * suite runners with progress output, and the metric extractors the
 * paper's figures report.
 */

#pragma once

#include <iostream>

#include "harness/cli.hh"
#include "harness/report.hh"

namespace smartref::bench {

/** Run the 32-benchmark suite on a conventional module. */
inline std::vector<ComparisonResult>
conventionalSuite(const CliArgs &args, const DramConfig &dram,
                  double absRowScale = 1.0)
{
    ExperimentOptions opts = args.experimentOptions();
    std::cerr << "running 32 benchmarks on " << dram.name << " (warmup "
              << opts.warmup / kMillisecond << " ms, measure "
              << opts.measure / kMillisecond << " ms)..." << std::endl;
    std::vector<ComparisonResult> results;
    for (const auto &profile : allProfiles()) {
        std::cerr << "  " << profile.name << std::flush;
        results.push_back(
            compareConventional(profile, dram, opts, absRowScale));
        std::cerr << " [" << fmtPercent(results.back().refreshReduction())
                  << "]" << std::endl;
    }
    checkNoViolations(results);
    return results;
}

/** Run the 32-benchmark suite through the 3D DRAM cache. */
inline std::vector<ComparisonResult>
threeDSuite(const CliArgs &args, const DramConfig &threeD)
{
    ExperimentOptions opts = args.experimentOptions();
    std::cerr << "running 32 benchmarks on " << threeD.name << " (warmup "
              << opts.warmup / kMillisecond << " ms, measure "
              << opts.measure / kMillisecond << " ms)..." << std::endl;
    std::vector<ComparisonResult> results;
    for (const auto &profile : allProfiles()) {
        std::cerr << "  " << profile.name << std::flush;
        results.push_back(compareThreeD(profile, threeD, opts));
        std::cerr << " [" << fmtPercent(results.back().refreshReduction())
                  << "]" << std::endl;
    }
    checkNoViolations(results);
    return results;
}

/** @name Figure metric extractors. */
///@{
inline double
refreshEnergySaving(const ComparisonResult &r)
{
    return r.refreshEnergySaving();
}

inline double
totalEnergySaving(const ComparisonResult &r)
{
    return r.totalEnergySaving();
}

inline double
perfImprovement(const ComparisonResult &r)
{
    return r.perfImprovement();
}
///@}

} // namespace smartref::bench

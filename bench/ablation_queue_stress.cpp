/**
 * @file
 * Ablation: pending-refresh-queue sizing (paper Section 5). The paper
 * argues a queue of 8 entries (= segments) can never overflow because
 * at most N refreshes are generated per counter-access step and a step
 * interval covers N row-refresh times. This bench stresses the queue
 * with adversarial traffic across segment counts and also contrasts the
 * burst-refresh policy's backlog explosion.
 *
 * Usage: ablation_queue_stress [--measure-ms N]
 */

#include <iostream>

#include "bench_common.hh"
#include "sim/random.hh"

using namespace smartref;

namespace {

struct StressResult
{
    std::size_t pendingMaxDepth;
    std::uint64_t pendingOverflows;
    std::size_t controllerBacklog;
    Tick maxDispatchDelay;
    std::uint64_t violations;
};

/**
 * Adversarial pattern: synchronise all counters by sweeping every row,
 * then go quiet so their expiries cluster, repeatedly, while heavy
 * random traffic competes for the banks.
 */
StressResult
stress(std::uint32_t segments, const ExperimentOptions &opts)
{
    SystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = PolicyKind::Smart;
    cfg.smart.counterBits = opts.counterBits;
    cfg.smart.segments = segments;
    cfg.smart.queueCapacity = segments;
    cfg.smart.autoReconfigure = false;
    System sys(cfg);

    // Sweep phase each interval: touch 60 % of all rows in a burst at
    // the start of the interval, aligning their counters.
    WorkloadParams sweep;
    sweep.name = "sweep";
    sweep.footprintRows = cfg.dram.org.totalRows() * 6 / 10;
    sweep.rowVisitsPerSecond =
        static_cast<double>(sweep.footprintRows) / 0.020; // 20 ms sweep
    sweep.accessesPerVisit = 1;
    sweep.randomJumpProb = 0.0;
    sweep.interArrivalJitter = 0.0; // clockwork: maximal alignment
    sweep.seed = 2;
    sys.addWorkload(sweep);

    // Competing random traffic keeps banks busy.
    WorkloadParams noise;
    noise.name = "noise";
    noise.footprintRows = cfg.dram.org.totalRows();
    noise.rowVisitsPerSecond = 2e6;
    noise.accessesPerVisit = 2;
    noise.randomJumpProb = 1.0;
    noise.zipfAlpha = 0.0;
    noise.seed = 3;
    sys.addWorkload(noise);

    sys.run(opts.warmup + opts.measure);

    StressResult r;
    r.pendingMaxDepth = sys.smartPolicy()->pendingQueue().maxDepth();
    r.pendingOverflows = sys.smartPolicy()->pendingQueue().overflows();
    r.controllerBacklog = sys.controller().maxRefreshBacklog();
    r.maxDispatchDelay = sys.controller().maxRefreshDispatchDelay();
    r.violations =
        sys.dram().retention().violations() +
        sys.dram().retention().finalCheck(sys.eventQueue().now());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ExperimentOptions opts = args.experimentOptions();
    // The stress pattern is heavy; a shorter default window suffices.
    if (!args.has("measure-ms"))
        opts.measure = 64 * kMillisecond;

    std::cout << "=== Ablation: pending refresh queue under adversarial "
                 "traffic (2 GB) ===\n"
              << "paper Section 5: a queue of N = segments entries never "
                 "overflows\n\n";

    ReportTable table({"segments (= capacity)", "max queue depth",
                       "overflows", "controller backlog max",
                       "max dispatch delay (us)", "violations"});
    for (std::uint32_t segments : {4u, 8u, 16u}) {
        const StressResult r = stress(segments, opts);
        table.addRow({std::to_string(segments),
                      std::to_string(r.pendingMaxDepth),
                      std::to_string(r.pendingOverflows),
                      std::to_string(r.controllerBacklog),
                      fmtDouble(static_cast<double>(r.maxDispatchDelay) /
                                    1e6,
                                2),
                      std::to_string(r.violations)});
        if (r.violations) {
            std::cerr << "retention violation at " << segments
                      << " segments\n";
            return 1;
        }
    }
    table.print(std::cout);

    // Contrast: the burst policy's backlog explodes to the row count.
    SystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = PolicyKind::Burst;
    System burst(cfg);
    burst.run(cfg.dram.timing.retention + cfg.dram.timing.retention / 4);
    std::cout << "\nburst-refresh contrast: backlog peaked at "
              << burst.controller().maxRefreshBacklog() << " of "
              << cfg.dram.org.totalRows()
              << " rows — the behaviour Section 3 calls undesirable.\n";
    if (!args.csvPath().empty())
        table.writeCsv(args.csvPath());
    return 0;
}

/**
 * @file
 * Figure 11: relative total DRAM energy savings, 4 GB DDR2.
 * Paper: GMEAN 9.10 % — the larger module both burns more base energy
 * and doubles the counter array, shrinking the relative saving (e.g.
 * phylip drops from ~13.3 % at 2 GB to ~7.3 % at 4 GB).
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results =
        bench::conventionalSuite(args, ddr2_4GB(), kFourGBRowScale);
    printFigure(std::cout,
                "Figure 11: relative total DRAM energy savings (4 GB DRAM)",
                "GMEAN 9.10%", results, "total energy saving",
                bench::totalEnergySaving, true, args.csvPath());
    return 0;
}

/**
 * @file
 * Google-benchmark micro-benchmarks for the hot components: counter
 * array operations, the stagger walk, address mapping, cache lookups,
 * event-queue throughput and device command issue. These bound the
 * simulator's own performance (simulated-seconds-per-wall-second) and
 * catch regressions in the inner loops.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "cache/cache.hh"
#include "core/counter_array.hh"
#include "core/stagger_scheduler.hh"
#include "ctrl/address_mapper.hh"
#include "dram/dram_module.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/tracer.hh"

using namespace smartref;

namespace {

void
BM_CounterArrayTouch(benchmark::State &state)
{
    CounterArray counters(131072, 3);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(counters.touch(i));
        i = (i + 1) & 131071;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterArrayTouch);

void
BM_CounterArrayReset(benchmark::State &state)
{
    CounterArray counters(131072, 3);
    std::uint64_t i = 0;
    for (auto _ : state) {
        counters.reset(i);
        i = (i + 7919) & 131071;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterArrayReset);

void
BM_StaggerStep(benchmark::State &state)
{
    CounterArray counters(131072, 3);
    StaggerScheduler stagger(counters, 8, 64 * kMillisecond);
    stagger.initialiseStaggered();
    std::uint64_t expired = 0;
    for (auto _ : state)
        stagger.step([&](std::uint64_t) { ++expired; });
    benchmark::DoNotOptimize(expired);
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_StaggerStep);

void
BM_AddressDecode(benchmark::State &state)
{
    AddressMapper mapper(ddr2_2GB().org);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.decode(addr));
        addr += 4093;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressDecode);

void
BM_AddressRoundTrip(benchmark::State &state)
{
    AddressMapper mapper(ddr2_2GB().org);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.encode(mapper.decode(addr)));
        addr += 8191;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressRoundTrip);

void
BM_CacheAccess(benchmark::State &state)
{
    StatGroup root("root");
    CacheConfig cfg;
    cfg.sizeBytes = 1 * kMiB;
    cfg.assoc = 8;
    Cache cache(cfg, &root);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBelow(4 * kMiB), false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [&sum, i] { sum += i; });
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(9);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void
BM_ZipfSample(benchmark::State &state)
{
    Rng rng(9);
    ZipfSampler zipf(131072, 0.9);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_TraceMacroDisabled(benchmark::State &state)
{
    // The cost instrumented hot paths pay when no sink is attached:
    // one branch on the category mask per SMARTREF_TRACE site.
    globalTracer().reset();
    globalTracer().setCategories(TraceCategory::None);
    Tick t = 0;
    for (auto _ : state) {
        SMARTREF_TRACE(TraceCategory::Dram, t, "ACT", 0, 1, 2);
        benchmark::DoNotOptimize(t);
        ++t;
    }
    globalTracer().reset();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceMacroDisabled);

void
BM_TraceEmitChromeSink(benchmark::State &state)
{
    // Full emission cost with an in-memory Chrome JSON sink attached.
    globalTracer().reset();
    auto sinkStream = std::make_unique<std::ostringstream>();
    globalTracer().addSink(
        std::make_unique<ChromeTraceSink>(*sinkStream));
    Tick t = 0;
    for (auto _ : state) {
        SMARTREF_TRACE(TraceCategory::Dram, t, "ACT", 0, 1, 2);
        ++t;
        if (sinkStream->tellp() > 64 * 1024 * 1024) {
            state.PauseTiming();
            sinkStream->str("");
            state.ResumeTiming();
        }
    }
    globalTracer().reset();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitChromeSink);

void
BM_DramRowCycle(benchmark::State &state)
{
    // One full ACT -> RD -> PRE row cycle on the device model.
    EventQueue eq;
    DramConfig cfg = ddr2_2GB();
    DramModule dram(cfg, eq);
    std::uint32_t row = 0;
    for (auto _ : state) {
        DramCommand act{DramCommandType::Activate, 0, 0, row, 0};
        eq.runUntil(std::max(eq.now(), dram.earliestIssue(act)));
        dram.issue(act);
        DramCommand rd{DramCommandType::Read, 0, 0, row, 0};
        eq.runUntil(std::max(eq.now(), dram.earliestIssue(rd)));
        dram.issue(rd);
        DramCommand pre{DramCommandType::Precharge, 0, 0, 0, 0};
        eq.runUntil(std::max(eq.now(), dram.earliestIssue(pre)));
        dram.issue(pre);
        row = (row + 1) % cfg.org.rows;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRowCycle);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Table 3: the bus-energy model parameters and the per-access energy
 * they produce (paper Section 6). This is the RAS-only refresh overhead
 * that Smart Refresh pays per refresh it still issues.
 */

#include <iostream>

#include "ctrl/bus_energy_model.hh"
#include "harness/report.hh"
#include "harness/system.hh"

using namespace smartref;

int
main()
{
    std::cout << "=== Table 3: bus energy model parameters ===\n\n";

    const BusEnergyParams base{};
    ReportTable t({"parameter", "value"});
    t.addRow({"on-chip length", fmtDouble(base.onChipLengthMm, 0) + " mm"});
    t.addRow(
        {"off-chip length", fmtDouble(base.offChipLengthMm, 0) + " mm"});
    t.addRow({"on-chip wire capacitance",
              fmtDouble(base.onChipCapPfPerMm, 2) + " pF/mm"});
    t.addRow({"off-chip wire capacitance",
              fmtDouble(base.offChipCapPfPerMm, 2) + " pF/mm"});
    t.addRow({"module input capacitance",
              fmtDouble(base.moduleInputCapPf, 1) + " pF"});
    t.addRow({"VDD", fmtDouble(base.vdd, 1) + " V"});
    t.print(std::cout);

    std::cout << "\nderived per-access energies (C = 1.3 x Cload):\n";
    StatGroup root("table3");
    for (const DramConfig &cfg : {ddr2_2GB(), ddr2_4GB()}) {
        BusEnergyModel bus(deriveBusParams(base, cfg.org), &root);
        std::cout << "  " << cfg.name << ": wire C = "
                  << fmtDouble(bus.wireCapacitance() * 1e12, 2)
                  << " pF, address width = "
                  << deriveBusParams(base, cfg.org).busWidthBits
                  << " bits, energy = "
                  << fmtDouble(bus.energyPerAccess() * 1e9, 3)
                  << " nJ per posted refresh address\n";
    }
    return 0;
}

/**
 * @file
 * Microbenchmark for the observability layer: quantifies what the audit
 * trail, energy ledger, and phase profiler cost when attached, and —
 * the number the SMARTREF_AUDIT=OFF gate cares about — what the
 * compiled-in-but-unattached record sites cost on the hot path.
 *
 * Measured shapes:
 *
 *  - audit_append: RefreshAudit::record throughput across multiple slab
 *    boundaries (the attached-sink steady state; pointer-bump appends),
 *  - audit_null_site: SMARTREF_AUDIT_RECORD through a null pointer (the
 *    default: one branch per refresh opportunity),
 *  - ledger_hooks: EnergyLedger onActivate/onRead/onRefresh mix at the
 *    ratio a memory-bound run produces,
 *  - profiler_scope: PhaseScope enter/leave pairs, attached and null,
 *  - end_to_end: a short conventional mummer/smart experiment with and
 *    without audit+ledger attached; the overhead ratio is the headline.
 *
 * Plain chrono timing, one machine-readable JSON file:
 *
 *     micro_observability [BENCH_observability.json]
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "ctrl/refresh_audit.hh"
#include "dram/energy_ledger.hh"
#include "harness/experiment.hh"
#include "sim/phase_profiler.hh"

using namespace smartref;

namespace {

volatile std::uint64_t g_sink = 0;

double
auditAppendPerSec(std::uint64_t records)
{
    RefreshAudit audit(RefreshAudit::Shape{2, 8, 32768});
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < records; ++i) {
        audit.record(Tick(i), static_cast<std::uint32_t>(i & 1),
                     static_cast<std::uint32_t>(i & 7),
                     static_cast<std::uint32_t>(i & 32767),
                     static_cast<AuditOutcome>(i % kAuditOutcomeCount),
                     AuditSource::SmartWalk);
    }
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + audit.total();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(records) / secs;
}

double
auditNullSitePerSec(std::uint64_t ops)
{
    // Unused when the record macro compiles out (-DSMARTREF_AUDIT=OFF).
    [[maybe_unused]] RefreshAudit *audit = nullptr;
    std::uint64_t acc = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        SMARTREF_AUDIT_RECORD(audit, Tick(i), 0u, 0u,
                              static_cast<std::uint32_t>(i),
                              AuditOutcome::SkippedCounterReset,
                              AuditSource::SmartWalk);
        // Keep the loop body observable so the null branch can't fold
        // into nothing alongside an empty loop.
        acc += i & 1;
    }
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + acc;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(ops) / secs;
}

double
ledgerHooksPerSec(std::uint64_t ops)
{
    EnergyLedger ledger(EnergyLedger::Shape{2, 8});
    const auto t0 = std::chrono::steady_clock::now();
    // Roughly the hook mix of a memory-bound run: reads dominate, one
    // activate per few column accesses, refreshes rare.
    for (std::uint64_t i = 0; i < ops; ++i) {
        const std::uint32_t rank = i & 1;
        const std::uint32_t bank = (i >> 1) & 7;
        const Tick t = Tick(i) * 45 * kNanosecond;
        if ((i & 7) == 0)
            ledger.onActivate(t, rank, bank, 2.5e-9);
        if ((i & 1023) == 0)
            ledger.onRefresh(t, rank, bank, /*bankWasOpen=*/false,
                             7.1e-9, 0.0);
        ledger.onRead(t, rank, bank, 1.6e-9);
    }
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + ledger.cellTotals().reads;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(ops) / secs;
}

double
profilerScopesPerSec(PhaseProfiler *prof, std::uint64_t pairs)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < pairs; ++i) {
        PhaseScope outer(prof, "issue");
        PhaseScope inner(prof, "drain");
        g_sink = g_sink + 1;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(pairs) / secs;
}

/** Wall seconds for one short conventional experiment. */
double
experimentWallSecs(bool observed)
{
    const DramConfig dram = dramConfigByName("2gb");
    ExperimentOptions opts;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 8 * kMillisecond;

    RefreshAudit audit(
        RefreshAudit::Shape{dram.org.ranks, dram.org.banks, dram.org.rows});
    EnergyLedger ledger(
        EnergyLedger::Shape{dram.org.ranks, dram.org.banks});
    if (observed) {
        opts.audit = &audit;
        opts.ledger = &ledger;
        opts.checkConservation = true;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = runConventional(findProfile("mummer"), dram,
                                        policyFromString("smart"), opts);
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + static_cast<std::uint64_t>(observed ? audit.total()
                                                          : 1);
    (void)result;
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Best of three, so one scheduler hiccup can't skew a CI gate. */
double
bestOf3(const std::function<double()> &f)
{
    double best = 0.0;
    for (int i = 0; i < 3; ++i)
        best = std::max(best, f());
    return best;
}

/** Best (lowest) of three for wall times. */
double
minOf3(const std::function<double()> &f)
{
    double best = 1e300;
    for (int i = 0; i < 3; ++i)
        best = std::min(best, f());
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out =
        argc > 1 ? argv[1] : "BENCH_observability.json";

    constexpr std::uint64_t kAuditRecords = 4000000; // ~61 slabs
    constexpr std::uint64_t kNullOps = 50000000;
    constexpr std::uint64_t kLedgerOps = 8000000;
    constexpr std::uint64_t kScopePairs = 2000000;

    const double auditAppend =
        bestOf3([] { return auditAppendPerSec(kAuditRecords); });
    const double nullSite =
        bestOf3([] { return auditNullSitePerSec(kNullOps); });
    const double ledgerHooks =
        bestOf3([] { return ledgerHooksPerSec(kLedgerOps); });

    PhaseProfiler prof;
    const double scopesAttached =
        bestOf3([&prof] { return profilerScopesPerSec(&prof, kScopePairs); });
    const double scopesNull =
        bestOf3([] { return profilerScopesPerSec(nullptr, kScopePairs); });

    const double plainWall =
        minOf3([] { return experimentWallSecs(false); });
    const double observedWall =
        minOf3([] { return experimentWallSecs(true); });
    const double overheadRatio = observedWall / plainWall;

    std::ofstream os(out);
    os.precision(6);
    os << "{\n"
       << "  \"bench\": \"observability\",\n"
       << "  \"meta\": " << bench::benchMetaJson("observability") << ",\n"
       << "  \"audit\": {\n"
       << "    \"append_per_sec\": " << auditAppend << ",\n"
       << "    \"null_site_per_sec\": " << nullSite << "\n"
       << "  },\n"
       << "  \"ledger\": {\n"
       << "    \"hooks_per_sec\": " << ledgerHooks << "\n"
       << "  },\n"
       << "  \"profiler\": {\n"
       << "    \"scope_pairs_per_sec\": " << scopesAttached << ",\n"
       << "    \"null_scope_pairs_per_sec\": " << scopesNull << "\n"
       << "  },\n"
       << "  \"end_to_end\": {\n"
       << "    \"plain_wall_s\": " << plainWall << ",\n"
       << "    \"observed_wall_s\": " << observedWall << ",\n"
       << "    \"overhead_ratio\": " << overheadRatio << "\n"
       << "  }\n"
       << "}\n";

    std::cout << "audit append/sec " << auditAppend << "\n"
              << "audit null-site ops/sec " << nullSite << "\n"
              << "ledger hooks/sec " << ledgerHooks << "\n"
              << "profiler scope pairs/sec attached " << scopesAttached
              << "  null " << scopesNull << "\n"
              << "end-to-end wall plain " << plainWall << " s  observed "
              << observedWall << " s  ratio " << overheadRatio << "\n"
              << "wrote " << out << "\n";
    return 0;
}

/**
 * @file
 * Figure 8: relative total DRAM energy savings, 2 GB DDR2.
 * Paper: up to 25 % (perl_twolf), GMEAN 12.13 %. Counter and bus
 * overheads are included in the Smart side's total.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results = bench::conventionalSuite(args, ddr2_2GB());
    printFigure(std::cout,
                "Figure 8: relative total DRAM energy savings (2 GB DRAM)",
                "up to 25% (perl_twolf), GMEAN 12.13%", results,
                "total energy saving", bench::totalEnergySaving, true,
                args.csvPath());
    return 0;
}

/**
 * @file
 * Ablation: the controller's adaptive page policy. Closing idle pages
 * (and letting ranks power down) is what makes refresh a significant
 * share of DRAM energy — the low-power baseline the paper's ITSY
 * motivation describes. With pages held open forever, active-standby
 * power swamps everything and Smart Refresh's *relative* total-energy
 * savings shrink, even though the refresh-operation reduction is
 * unchanged.
 *
 * Usage: ablation_page_policy [--benchmark mummer] [--measure-ms N]
 */

#include <iostream>

#include "bench_common.hh"

using namespace smartref;

namespace {

ComparisonResult
runWithTimeout(const BenchmarkProfile &profile, Tick idleTimeout,
               const ExperimentOptions &opts)
{
    auto once = [&](PolicyKind policy) {
        SystemConfig cfg;
        cfg.dram = ddr2_2GB();
        cfg.policy = policy;
        cfg.smart.counterBits = opts.counterBits;
        cfg.smart.autoReconfigure = false;
        cfg.ctrl.idlePrechargeAfter = idleTimeout;
        System sys(cfg);
        for (const auto &wp :
             conventionalParams(profile, cfg.dram, 1.0, opts.seed))
            sys.addWorkload(wp);
        sys.run(opts.warmup);
        const EnergySnapshot warm = captureSnapshot(sys);
        sys.run(opts.measure);
        const EnergySnapshot end = captureSnapshot(sys);
        const EnergySnapshot d = end - warm;

        RunResult r;
        r.simSeconds = static_cast<double>(d.tick) /
                       static_cast<double>(kSecond);
        r.refreshesPerSec =
            static_cast<double>(d.refreshes) / r.simSeconds;
        r.refreshEnergyJ = d.refreshEnergy;
        r.overheadJ = d.overheadEnergy;
        r.totalEnergyJ = d.totalEnergy();
        r.violations =
            d.violations +
            sys.dram().retention().finalCheck(sys.eventQueue().now());
        return r;
    };
    ComparisonResult c;
    c.benchmark = profile.name;
    c.baseline = once(PolicyKind::Cbr);
    c.smart = once(PolicyKind::Smart);
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const ExperimentOptions opts = args.experimentOptions();
    const BenchmarkProfile &profile =
        findProfile(args.getString("benchmark", "mummer"));

    std::cout << "=== Ablation: idle-page precharge timeout (benchmark "
              << profile.name << ", 2 GB) ===\n\n";

    ReportTable table({"idle precharge", "baseline total (mJ)",
                       "refresh share", "refresh reduction",
                       "total energy saving", "violations"});
    struct Option
    {
        const char *label;
        Tick timeout;
    };
    for (const Option &o :
         {Option{"disabled (pages stay open)", 0},
          Option{"200 ns (default)", 200 * kNanosecond},
          Option{"1 us (lazy)", kMicrosecond}}) {
        const ComparisonResult c = runWithTimeout(profile, o.timeout, opts);
        const double share =
            c.baseline.refreshEnergyJ / c.baseline.totalEnergyJ;
        table.addRow({o.label,
                      fmtDouble(c.baseline.totalEnergyJ * 1e3),
                      fmtPercent(share), fmtPercent(c.refreshReduction()),
                      fmtPercent(c.totalEnergySaving()),
                      std::to_string(c.baseline.violations +
                                     c.smart.violations)});
        if (c.baseline.violations || c.smart.violations) {
            std::cerr << "retention violation!\n";
            return 1;
        }
    }
    table.print(std::cout);
    if (!args.csvPath().empty())
        table.writeCsv(args.csvPath());

    std::cout << "\nRefresh-operation reduction is a property of the "
                 "access pattern alone;\nthe page policy only changes "
                 "how much of the *total* energy refresh is.\n";
    return 0;
}

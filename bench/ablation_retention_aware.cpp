/**
 * @file
 * Ablation: Section 8's orthogonality claim, quantified. The paper says
 * Smart Refresh "is orthogonal to [RAPID] and can be applied on top of
 * the retention-aware DRAM technique". This bench runs one benchmark on
 * the 2 GB module under four refresh schemes:
 *
 *   1. CBR baseline           (worst-case deadline for every row)
 *   2. RAPID-only             (per-row retention classes, no access info)
 *   3. Smart Refresh only     (access recency, worst-case deadline)
 *   4. Smart + RAPID          (multi-rate counters: both at once)
 *
 * Usage: ablation_retention_aware [--benchmark mummer] [--measure-ms N]
 */

#include <iostream>
#include <memory>

#include "bench_common.hh"

using namespace smartref;

namespace {

RunResult
runScheme(const BenchmarkProfile &profile, PolicyKind policy,
          std::shared_ptr<const RetentionClassMap> classes,
          const ExperimentOptions &opts)
{
    SystemConfig cfg;
    cfg.dram = ddr2_2GB();
    cfg.policy = policy;
    cfg.smart.counterBits = opts.counterBits;
    cfg.smart.autoReconfigure = false;
    cfg.retentionClasses = std::move(classes);
    System sys(cfg);
    for (const auto &wp :
         conventionalParams(profile, cfg.dram, 1.0, opts.seed))
        sys.addWorkload(wp);

    // Classes stretch some deadlines to 4x64 ms; warm long enough for
    // the slowest class to reach steady state.
    sys.run(std::max<Tick>(opts.warmup, 4 * cfg.dram.timing.retention));
    const EnergySnapshot warm = captureSnapshot(sys);
    sys.run(opts.measure);
    const EnergySnapshot end = captureSnapshot(sys);
    const EnergySnapshot d = end - warm;

    RunResult r;
    r.benchmark = profile.name;
    r.policy = toString(policy);
    r.simSeconds =
        static_cast<double>(d.tick) / static_cast<double>(kSecond);
    r.refreshesPerSec = static_cast<double>(d.refreshes) / r.simSeconds;
    r.refreshEnergyJ = d.refreshEnergy;
    r.overheadJ = d.overheadEnergy;
    r.totalEnergyJ = d.totalEnergy();
    r.violations =
        d.violations +
        sys.dram().retention().finalCheck(sys.eventQueue().now());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const ExperimentOptions opts = args.experimentOptions();
    const BenchmarkProfile &profile =
        findProfile(args.getString("benchmark", "mummer"));
    const DramConfig dram = ddr2_2GB();

    RetentionClassParams classParams;
    classParams.seed = opts.seed;
    auto classes = std::make_shared<RetentionClassMap>(
        dram.org.totalRows(), classParams);

    std::cout << "=== Ablation: Smart Refresh composed with RAPID-style "
                 "retention classes ===\n"
              << "benchmark " << profile.name
              << ", 2 GB module; classes: 2% weak (1x), 28% 2x, 70% 4x "
                 "(RAPID [32])\n"
              << "ideal class-limited rate: "
              << fmtMillions(
                     classes->idealRefreshRate(dram.timing.retention))
              << " M refreshes/s vs 2.048 M baseline\n\n";

    struct Scheme
    {
        const char *label;
        PolicyKind policy;
        bool useClasses;
    };
    const Scheme schemes[] = {
        {"CBR baseline", PolicyKind::Cbr, false},
        {"RAPID-only (classes)", PolicyKind::RetentionAware, true},
        {"Smart Refresh only", PolicyKind::Smart, false},
        {"Smart + RAPID (composed)", PolicyKind::Smart, true},
    };

    ReportTable table({"scheme", "refreshes/s (M)", "vs baseline",
                       "refresh+ovh energy (mJ)", "total (mJ)",
                       "violations"});
    double baselineRate = 0.0;
    for (const Scheme &s : schemes) {
        const RunResult r = runScheme(
            profile, s.policy, s.useClasses ? classes : nullptr, opts);
        if (s.policy == PolicyKind::Cbr)
            baselineRate = r.refreshesPerSec;
        table.addRow(
            {s.label, fmtMillions(r.refreshesPerSec),
             fmtPercent(1.0 - r.refreshesPerSec / baselineRate) +
                 " fewer",
             fmtDouble((r.refreshEnergyJ + r.overheadJ) * 1e3),
             fmtDouble(r.totalEnergyJ * 1e3),
             std::to_string(r.violations)});
        if (r.violations) {
            std::cerr << "retention violation under '" << s.label
                      << "'\n";
            return 1;
        }
    }
    table.print(std::cout);
    if (!args.csvPath().empty())
        table.writeCsv(args.csvPath());

    std::cout << "\nThe composed scheme skips refreshes for rows that "
                 "are either recently\naccessed (Smart) or strong "
                 "(RAPID) — more than either alone, with the\nretention "
                 "shadow model still reporting zero violations.\n";
    return 0;
}

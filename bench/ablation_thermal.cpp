/**
 * @file
 * Ablation: the Section 4.5 thermal feedback loop, closed. Measure the
 * 64 MB stacked die's power under load, feed it to the thermal model,
 * confirm it exceeds the Micron 85 C threshold (the paper's 90.27 C
 * anchor), and run the retention interval the rule mandates. Smart
 * Refresh's energy saving also *reduces* the die temperature slightly —
 * a virtuous feedback the paper hints at but does not quantify.
 *
 * Usage: ablation_thermal [--benchmark gcc_twolf] [--measure-ms N]
 */

#include <iostream>

#include "bench_common.hh"
#include "dram/thermal_model.hh"

using namespace smartref;

namespace {

struct ThermalRun
{
    double powerW;
    double temperatureC;
    Tick mandatedRetention;
    double refreshesPerSec;
};

ThermalRun
measure(const BenchmarkProfile &profile, const DramConfig &threeD,
        PolicyKind policy, const ExperimentOptions &opts)
{
    const RunResult r = runThreeD(profile, threeD, policy, opts);
    ThermalRun t;
    t.powerW = r.totalEnergyJ / r.simSeconds;
    ThermalModel model;
    t.temperatureC = model.temperatureC(t.powerW);
    t.mandatedRetention =
        model.requiredRetention(t.powerW, 64 * kMillisecond);
    t.refreshesPerSec = r.refreshesPerSec;
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const ExperimentOptions opts = args.experimentOptions();
    const BenchmarkProfile &profile =
        findProfile(args.getString("benchmark", "gcc_twolf"));

    std::cout << "=== Ablation: thermal feedback on the 64 MB stacked "
                 "die (benchmark "
              << profile.name << ") ===\n"
              << "paper anchors: 90.27 C operating temperature [14]; "
                 "refresh doubles above 85 C [23]\n\n";

    // Step 1: at the nominal 64 ms rate, is the die too hot?
    ReportTable table({"step", "policy", "die power (W)",
                       "temperature (C)", "mandated retention",
                       "refreshes/s (M)"});
    const ThermalRun at64 =
        measure(profile, dram3d_64MB(), PolicyKind::Cbr, opts);
    table.addRow({"64 ms assumed", "cbr", fmtDouble(at64.powerW, 3),
                  fmtDouble(at64.temperatureC, 1),
                  std::to_string(at64.mandatedRetention / kMillisecond) +
                      " ms",
                  fmtMillions(at64.refreshesPerSec)});

    // Step 2: run at the mandated rate under both policies.
    const DramConfig mandated = at64.mandatedRetention == 32 * kMillisecond
                                    ? dram3d_64MB_32ms()
                                    : dram3d_64MB();
    const ThermalRun cbrHot =
        measure(profile, mandated, PolicyKind::Cbr, opts);
    table.addRow({"mandated rate", "cbr", fmtDouble(cbrHot.powerW, 3),
                  fmtDouble(cbrHot.temperatureC, 1),
                  std::to_string(cbrHot.mandatedRetention / kMillisecond) +
                      " ms",
                  fmtMillions(cbrHot.refreshesPerSec)});
    const ThermalRun smartHot =
        measure(profile, mandated, PolicyKind::Smart, opts);
    table.addRow({"mandated rate", "smart",
                  fmtDouble(smartHot.powerW, 3),
                  fmtDouble(smartHot.temperatureC, 1),
                  std::to_string(smartHot.mandatedRetention /
                                 kMillisecond) +
                      " ms",
                  fmtMillions(smartHot.refreshesPerSec)});
    table.print(std::cout);
    if (!args.csvPath().empty())
        table.writeCsv(args.csvPath());

    std::cout << "\nSmart Refresh lowers the die power by "
              << fmtDouble((cbrHot.powerW - smartHot.powerW) * 1e3, 1)
              << " mW, cooling it by "
              << fmtDouble(cbrHot.temperatureC - smartHot.temperatureC, 2)
              << " C — the energy saving feeds back into the thermal "
                 "budget that\nforced the faster refresh in the first "
                 "place.\n";
    return 0;
}

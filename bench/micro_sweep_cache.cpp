/**
 * @file
 * Microbenchmark for the content-addressed sweep result cache: the
 * cold / warm / mixed-delta wall times of the same grid, the numbers
 * the CI sweep-cache gate cares about.
 *
 * Measured shapes:
 *
 *  - cold: a fresh cache directory, every job simulates and stores;
 *  - warm: the identical grid again, every job is a hit — this must be
 *    at least 10x faster than cold and byte-identical, and the binary
 *    itself enforces both (exit 1 otherwise), so running it IS the
 *    gate;
 *  - mixed: a superset grid (one extra benchmark); only the delta
 *    simulates while the shared points hit.
 *
 * Plain chrono timing, one machine-readable JSON file:
 *
 *     micro_sweep_cache [BENCH_sweep_cache.json]
 */

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "harness/result_cache.hh"
#include "harness/sweep.hh"

using namespace smartref;

namespace {

SweepGrid
benchGrid()
{
    SweepGrid grid;
    grid.name = "cache-bench";
    grid.configs = {"2gb", "3d64"};
    grid.benchmarks = {"mummer", "gcc", "radix"};
    grid.policies = {"smart"};
    grid.counterBits = {3};
    grid.retentionMs = {0};
    return grid;
}

SweepRunOptions
benchOptions(ResultCache *cache)
{
    SweepRunOptions opts;
    // Short but not trivial windows: cold work is measurable (hundreds
    // of ms), warm lookups stay in the low-millisecond range.
    opts.warmup = 2 * kMillisecond;
    opts.measure = 8 * kMillisecond;
    opts.cache = cache;
    return opts;
}

/** Run the grid once; returns wall seconds and the aggregate bytes. */
double
timedSweep(const SweepGrid &grid, const SweepRunOptions &opts,
           std::string &aggregate)
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runSweep(grid, opts);
    const auto t1 = std::chrono::steady_clock::now();
    std::ostringstream oss;
    writeSweepJson(grid, opts, results, oss);
    aggregate = oss.str();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out = argc > 1 ? argv[1] : "BENCH_sweep_cache.json";
    constexpr double kMinWarmSpeedup = 10.0;

    const std::string cacheDir =
        (std::filesystem::temp_directory_path() / "smartref-bench-cache")
            .string();
    std::filesystem::remove_all(cacheDir);
    ResultCache cache(cacheDir);

    const SweepGrid grid = benchGrid();
    const SweepRunOptions opts = benchOptions(&cache);

    std::string coldJson, warmJson, mixedJson;
    const double coldWall = timedSweep(grid, opts, coldJson);
    const ResultCacheStats coldStats = cache.stats();

    const double warmWall = timedSweep(grid, opts, warmJson);
    const ResultCacheStats warmStats = cache.stats();
    const std::uint64_t warmHits = warmStats.hits - coldStats.hits;
    const std::uint64_t warmMisses = warmStats.misses - coldStats.misses;
    const double speedup = coldWall / warmWall;

    // The delta grid: one extra benchmark on both configs.
    SweepGrid superset = grid;
    superset.name = "cache-bench-delta";
    superset.benchmarks.push_back("fasta");
    const double mixedWall = timedSweep(superset, opts, mixedJson);
    const ResultCacheStats mixedStats = cache.stats();
    const std::uint64_t mixedHits = mixedStats.hits - warmStats.hits;
    const std::uint64_t mixedMisses =
        mixedStats.misses - warmStats.misses;

    std::ofstream os(out);
    os.precision(6);
    os << "{\n"
       << "  \"bench\": \"sweep_cache\",\n"
       << "  \"meta\": " << bench::benchMetaJson("sweep_cache") << ",\n"
       << "  \"jobs\": " << (coldStats.misses) << ",\n"
       << "  \"cold\": {\n"
       << "    \"wall_s\": " << coldWall << ",\n"
       << "    \"misses\": " << coldStats.misses << ",\n"
       << "    \"stores\": " << coldStats.stores << "\n"
       << "  },\n"
       << "  \"warm\": {\n"
       << "    \"wall_s\": " << warmWall << ",\n"
       << "    \"hits\": " << warmHits << ",\n"
       << "    \"misses\": " << warmMisses << ",\n"
       << "    \"speedup\": " << speedup << ",\n"
       << "    \"byte_identical\": "
       << (coldJson == warmJson ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"mixed\": {\n"
       << "    \"wall_s\": " << mixedWall << ",\n"
       << "    \"hits\": " << mixedHits << ",\n"
       << "    \"misses\": " << mixedMisses << "\n"
       << "  },\n"
       << "  \"min_warm_speedup\": " << kMinWarmSpeedup << "\n"
       << "}\n";

    std::cout << "cold  " << coldWall << " s  (" << coldStats.misses
              << " misses, " << coldStats.stores << " stores)\n"
              << "warm  " << warmWall << " s  (" << warmHits
              << " hits, " << warmMisses << " misses)  speedup "
              << speedup << "x\n"
              << "mixed " << mixedWall << " s  (" << mixedHits
              << " hits, " << mixedMisses << " misses)\n"
              << "wrote " << out << "\n";

    // The binary is its own gate: a warm replay must be all hits,
    // byte-identical, and at least 10x faster; the mixed run must
    // simulate exactly the delta.
    bool ok = true;
    if (warmMisses != 0 || warmHits != coldStats.misses) {
        std::cerr << "FAIL: warm run was not 100% hits\n";
        ok = false;
    }
    if (coldJson != warmJson) {
        std::cerr << "FAIL: warm aggregate differs from cold\n";
        ok = false;
    }
    if (speedup < kMinWarmSpeedup) {
        std::cerr << "FAIL: warm speedup " << speedup << "x < "
                  << kMinWarmSpeedup << "x\n";
        ok = false;
    }
    if (mixedMisses != 2 || mixedHits != coldStats.misses) {
        std::cerr << "FAIL: mixed run did not simulate exactly the "
                     "delta\n";
        ok = false;
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * Figure 18: performance improvement of Smart Refresh over CBR on the
 * 64 MB 3D cache at 32 ms. Paper: under 1 % for every benchmark,
 * GMEAN 0.11 % — eliminated refreshes stop blocking demand accesses.
 *
 * Metric: demand-stall time saved (sum of demand latencies, baseline
 * minus Smart) as a fraction of execution time.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results = bench::threeDSuite(args, dram3d_64MB_32ms());
    printFigure(std::cout,
                "Figure 18: performance improvement (3D 64 MB, 32 ms)",
                "all under 1%, GMEAN 0.11%", results,
                "performance improvement", bench::perfImprovement, true,
                args.csvPath(), 3);
    return 0;
}

/**
 * @file
 * Microbenchmark for the service-layer metrics registry: quantifies
 * what counter adds, histogram observes and the SMARTREF_METRIC_*
 * macro sites cost, and — the number the CI gate cares about — how
 * much instrumenting the serving stack slows a real smoke sweep.
 *
 * Measured shapes:
 *
 *  - counter_add: MetricCounter::add through a cached handle (the
 *    steady state every macro site reaches after its first hit),
 *  - histogram_observe: MetricHistogram::observe (two relaxed RMWs
 *    plus the min/max CAS loops),
 *  - macro_site_enabled: SMARTREF_METRIC_INC with metrics enabled,
 *  - macro_site_disabled: the same site behind the runtime kill
 *    switch (or compiled out entirely under -DSMARTREF_METRICS=OFF),
 *  - end_to_end: a tiny in-process sweep with metrics enabled vs
 *    disabled; overhead_ratio is the headline the 3% CI gate reads.
 *
 * Plain chrono timing, one machine-readable JSON file:
 *
 *     micro_metrics [BENCH_metrics.json]
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "harness/sweep.hh"
#include "sim/metrics.hh"

using namespace smartref;

namespace {

volatile std::uint64_t g_sink = 0;

double
counterAddPerSec(std::uint64_t ops)
{
    MetricsRegistry reg;
    MetricCounter &c = reg.counter("bench.adds");
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
        c.add();
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + c.value();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(ops) / secs;
}

double
histogramObservePerSec(std::uint64_t ops)
{
    MetricsRegistry reg;
    MetricHistogram &h = reg.histogram("bench.obs");
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
        h.observe(i);
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + h.count();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(ops) / secs;
}

double
macroSitePerSec(std::uint64_t ops)
{
    std::uint64_t acc = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        SMARTREF_METRIC_INC("bench.macro_site");
        // Keep the loop body observable so a disabled site can't fold
        // into nothing alongside an empty loop.
        acc += i & 1;
    }
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + acc;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(ops) / secs;
}

/** Wall seconds for one tiny in-process sweep. */
double
sweepWallSecs(bool metricsOn)
{
    SweepGrid grid;
    grid.name = "bench";
    grid.configs = {"2gb"};
    grid.benchmarks = {"mummer", "gcc"};
    grid.policies = {"smart"};
    grid.counterBits = {3};
    grid.retentionMs = {0};
    SweepRunOptions opts;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 8 * kMillisecond;
    opts.jobs = 2;

    setMetricsEnabled(metricsOn);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runSweep(grid, opts);
    const auto t1 = std::chrono::steady_clock::now();
    setMetricsEnabled(true);
    g_sink = g_sink + results.size();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Best of three, so one scheduler hiccup can't skew a CI gate. */
double
bestOf3(const std::function<double()> &f)
{
    double best = 0.0;
    for (int i = 0; i < 3; ++i)
        best = std::max(best, f());
    return best;
}

/** Best (lowest) of five for the gated wall times. */
double
minOf5(const std::function<double()> &f)
{
    double best = 1e300;
    for (int i = 0; i < 5; ++i)
        best = std::min(best, f());
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out = argc > 1 ? argv[1] : "BENCH_metrics.json";

    constexpr std::uint64_t kCounterOps = 50000000;
    constexpr std::uint64_t kObserveOps = 20000000;
    constexpr std::uint64_t kSiteOps = 50000000;

    const double counterAdd =
        bestOf3([] { return counterAddPerSec(kCounterOps); });
    const double histObserve =
        bestOf3([] { return histogramObservePerSec(kObserveOps); });
    const double siteEnabled =
        bestOf3([] { return macroSitePerSec(kSiteOps); });
    setMetricsEnabled(false);
    const double siteDisabled =
        bestOf3([] { return macroSitePerSec(kSiteOps); });
    setMetricsEnabled(true);

    const double offWall = minOf5([] { return sweepWallSecs(false); });
    const double onWall = minOf5([] { return sweepWallSecs(true); });
    const double overheadRatio = onWall / offWall;

    std::ofstream os(out);
    os.precision(6);
    os << "{\n"
       << "  \"bench\": \"metrics\",\n"
       << "  \"meta\": " << bench::benchMetaJson("metrics") << ",\n"
       << "  \"compiled_in\": " << (kMetricsCompiledIn ? "true" : "false")
       << ",\n"
       << "  \"registry\": {\n"
       << "    \"counter_add_per_sec\": " << counterAdd << ",\n"
       << "    \"histogram_observe_per_sec\": " << histObserve << "\n"
       << "  },\n"
       << "  \"macro_site\": {\n"
       << "    \"enabled_per_sec\": " << siteEnabled << ",\n"
       << "    \"disabled_per_sec\": " << siteDisabled << "\n"
       << "  },\n"
       << "  \"end_to_end\": {\n"
       << "    \"metrics_off_wall_s\": " << offWall << ",\n"
       << "    \"metrics_on_wall_s\": " << onWall << ",\n"
       << "    \"overhead_ratio\": " << overheadRatio << "\n"
       << "  }\n"
       << "}\n";

    std::cout << "counter add/sec " << counterAdd << "\n"
              << "histogram observe/sec " << histObserve << "\n"
              << "macro site ops/sec enabled " << siteEnabled
              << "  disabled " << siteDisabled << "\n"
              << "end-to-end sweep wall off " << offWall << " s  on "
              << onWall << " s  ratio " << overheadRatio << "\n"
              << "wrote " << out << "\n";
    return 0;
}

/**
 * @file
 * Figure 13: relative refresh energy savings, 64 MB 3D cache, 64 ms.
 * Paper: 7 % (fasta) to 42 % (clustalw/mummer), GMEAN 21.91 %.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results = bench::threeDSuite(args, dram3d_64MB());
    printFigure(
        std::cout,
        "Figure 13: relative refresh energy savings (3D 64 MB, 64 ms)",
        "savings 7%..42%, GMEAN 21.91%", results, "refresh energy saving",
        bench::refreshEnergySaving, true, args.csvPath());
    return 0;
}

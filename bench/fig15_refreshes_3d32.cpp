/**
 * @file
 * Figure 15: refresh operations per second, 64 MB 3D cache at the
 * hot-die 32 ms rate. Paper: baseline 2,048,000/s (doubled), Smart
 * GMEAN 1,724,640/s — the same access stream eliminates a smaller
 * fraction of twice as many refreshes.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const DramConfig threeD = dram3d_64MB_32ms();
    const auto results = bench::threeDSuite(args, threeD);
    printRefreshRateFigure(
        std::cout,
        "Figure 15: refreshes per second (64 MB 3D DRAM cache, 32 ms)",
        "baseline 2,048,000/s, GMEAN 1,724,640/s",
        threeD.baselineRefreshesPerSecond(), results, args.csvPath());
    return 0;
}

/**
 * @file
 * Before/after microbenchmark for the event-engine rework.
 *
 * Embeds a replica of the previous engine -- std::function callbacks in
 * a std::priority_queue with the const_cast top-move idiom, one event
 * scheduled per burst occurrence -- and races it against the current
 * EventQueue (inline callbacks, owned 4-ary heap, min buffer,
 * scheduleBurst) on the three event shapes that dominate real runs:
 *
 *  - self_resched: a lone self-rescheduling stepper over a near-empty
 *    queue (the StaggerScheduler counter walk; exercises the O(1) min
 *    buffer fast path),
 *  - burst_train: 45 ns-spaced access trains (the WorkloadModel::visit
 *    open-page run; one node and zero allocations per train vs. one
 *    std::function heap allocation and heap churn per access),
 *  - mixed_churn: many staggered independent actors (controller
 *    command/completion traffic; everything through the heap -- the
 *    adversarial case for both engines).
 *
 * Also races the strided counter walk (interleave 1) against the
 * segment-interleaved contiguous walk.
 *
 * Plain chrono timing, no google-benchmark, so the run emits a single
 * machine-readable JSON file CI can archive and gate on:
 *
 *     micro_event_engine [BENCH_event_engine.json]
 *
 * The headline events speedup is the geometric mean over the three
 * patterns; per-pattern numbers are reported alongside it. The
 * "smoke_sweep" object is left null here; the CI sweep job merges the
 * measured end-to-end wall times into it.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/counter_array.hh"
#include "core/stagger_scheduler.hh"
#include "sim/event_queue.hh"

using namespace smartref;

namespace {

/**
 * Replica of the pre-rework engine: binary std::priority_queue of
 * entries owning std::function callbacks, popped with the const_cast
 * move idiom, ordered by (tick, priority, seq). Kept verbatim-in-spirit
 * so the comparison measures the engine, not the workload.
 */
class LegacyQueue
{
  public:
    using Callback = std::function<void()>;

    void
    schedule(Tick when, Callback cb, int prio = 10)
    {
        heap_.push(Entry{when, seq_++, prio, std::move(cb)});
    }

    /**
     * The pre-rework WorkloadModel scheduled every occurrence of an
     * access train as its own event; replicate that here so burst
     * workloads compare engine-for-engine against scheduleBurst.
     */
    void
    scheduleBurst(Tick first, Tick interval, std::uint64_t count,
                  Callback cb, int prio = 10)
    {
        for (std::uint64_t i = 1; i < count; ++i)
            schedule(first + i * interval, cb, prio);
        schedule(first, std::move(cb), prio);
    }

    void
    run()
    {
        while (!heap_.empty()) {
            Entry e = std::move(const_cast<Entry &>(heap_.top()));
            heap_.pop();
            now_ = e.when;
            ++executed_;
            e.cb();
        }
    }

    Tick now() const { return now_; }
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        int prio;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

/** Adapter so the pattern templates treat both engines uniformly. */
struct NewQueue
{
    EventQueue eq;

    template <typename F>
    void
    schedule(Tick when, F &&f, int prio = 10)
    {
        eq.schedule(when, std::forward<F>(f),
                    static_cast<EventPriority>(prio));
    }

    template <typename F>
    void
    scheduleBurst(Tick first, Tick interval, std::uint64_t count, F &&f,
                  int prio = 10)
    {
        eq.scheduleBurst(first, interval, count, std::forward<F>(f),
                         static_cast<EventPriority>(prio));
    }

    void run() { eq.run(); }
    Tick now() const { return eq.now(); }
    std::uint64_t executed() const { return eq.executed(); }
};

/** Mimics a typical scheduler capture (request + context), 40 bytes. */
struct Payload
{
    std::uint64_t w[5];
};

volatile std::uint64_t g_sink = 0;

/**
 * Pattern A -- counter-walk stepper: one event re-arming itself
 * stepInterval ahead over an otherwise empty queue. The rework's min
 * buffer runs this without touching the heap at all.
 */
template <typename Q>
double
selfResched(std::uint64_t steps)
{
    Q q;
    struct Step
    {
        Q *q;
        std::uint64_t remaining;
        Payload p;
        void
        operator()()
        {
            g_sink = g_sink + p.w[0];
            if (remaining > 1)
                q->schedule(q->now() + 488 * kNanosecond,
                            Step{q, remaining - 1, p}, 0);
        }
    };
    Payload p{};
    p.w[0] = 7;
    q.schedule(0, Step{&q, steps, p}, 0);
    const auto t0 = std::chrono::steady_clock::now();
    q.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(q.executed()) / secs;
}

/**
 * Pattern B -- workload access trains: 45 ns-spaced open-page runs, the
 * WorkloadModel::visit shape. One scheduleBurst node per train for the
 * new engine vs. one std::function heap allocation per access before.
 */
template <typename Q>
double
burstTrains(std::uint64_t trains, std::uint64_t length)
{
    Q q;
    Payload p{};
    p.w[0] = 3;
    for (std::uint64_t t = 0; t < trains; ++t)
        q.scheduleBurst(t * kMicrosecond + 1, 45 * kNanosecond, length,
                        [&q, p] { g_sink = g_sink + p.w[0]; });
    const auto t0 = std::chrono::steady_clock::now();
    q.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(q.executed()) / secs;
}

/**
 * Pattern C -- mixed controller churn: many staggered self-rescheduling
 * actors with coprime-ish intervals, so nearly every operation goes
 * through the heap. Worst case for both engines.
 */
template <typename Q>
double
mixedChurn(std::uint64_t actors, std::uint64_t occurrences)
{
    Q q;
    struct Actor
    {
        Q *q;
        std::uint64_t remaining;
        Tick interval;
        Payload p;
        void
        operator()()
        {
            g_sink = g_sink + p.w[0];
            if (remaining > 1)
                q->schedule(q->now() + interval,
                            Actor{q, remaining - 1, interval, p});
        }
    };
    for (std::uint64_t a = 0; a < actors; ++a) {
        Payload p{};
        p.w[0] = a;
        q.schedule(Tick(a), Actor{&q, occurrences, Tick(97 + (a % 13)), p});
    }
    const auto t0 = std::chrono::steady_clock::now();
    q.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(q.executed()) / secs;
}

double
walkStepsPerSec(std::uint32_t interleave, std::uint64_t steps)
{
    CounterArray counters(131072, 3, interleave);
    StaggerScheduler stagger(counters, 8, 64 * kMillisecond);
    stagger.initialiseStaggered();
    std::uint64_t expired = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t s = 0; s < steps; ++s)
        stagger.step([&](std::uint64_t idx) { expired += idx; });
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + expired;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(steps) / secs;
}

/** Best of three, so one scheduler hiccup can't skew a CI gate. */
double
bestOf3(const std::function<double()> &f)
{
    double best = 0.0;
    for (int i = 0; i < 3; ++i)
        best = std::max(best, f());
    return best;
}

struct Pattern
{
    const char *name;
    double legacy;
    double current;

    double speedup() const { return current / legacy; }
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string out =
        argc > 1 ? argv[1] : "BENCH_event_engine.json";

    constexpr std::uint64_t kSteps = 2000000;
    constexpr std::uint64_t kTrains = 2000;
    constexpr std::uint64_t kTrainLength = 600;
    constexpr std::uint64_t kActors = 64;
    constexpr std::uint64_t kOccurrences = 20000;

    Pattern patterns[] = {
        {"self_resched",
         bestOf3([] { return selfResched<LegacyQueue>(kSteps); }),
         bestOf3([] { return selfResched<NewQueue>(kSteps); })},
        {"burst_train",
         bestOf3([] { return burstTrains<LegacyQueue>(kTrains,
                                                      kTrainLength); }),
         bestOf3([] { return burstTrains<NewQueue>(kTrains,
                                                   kTrainLength); })},
        {"mixed_churn",
         bestOf3([] { return mixedChurn<LegacyQueue>(kActors,
                                                     kOccurrences); }),
         bestOf3([] { return mixedChurn<NewQueue>(kActors,
                                                  kOccurrences); })},
    };

    double logSum = 0.0;
    for (const Pattern &p : patterns)
        logSum += std::log(p.speedup());
    const double geomean = std::exp(logSum / std::size(patterns));

    const double strided =
        bestOf3([] { return walkStepsPerSec(1, 400000); });
    const double interleaved =
        bestOf3([] { return walkStepsPerSec(8, 400000); });

    std::ofstream os(out);
    os.precision(6);
    os << "{\n"
       << "  \"bench\": \"event_engine\",\n"
       << "  \"meta\": " << bench::benchMetaJson("event_engine") << ",\n"
       << "  \"events\": {\n"
       << "    \"patterns\": {\n";
    bool first = true;
    for (const Pattern &p : patterns) {
        if (!first)
            os << ",\n";
        first = false;
        os << "      \"" << p.name << "\": {\n"
           << "        \"legacy_per_sec\": " << p.legacy << ",\n"
           << "        \"new_per_sec\": " << p.current << ",\n"
           << "        \"speedup\": " << p.speedup() << "\n"
           << "      }";
    }
    os << "\n    },\n"
       << "    \"speedup_geomean\": " << geomean << "\n"
       << "  },\n"
       << "  \"walk\": {\n"
       << "    \"strided_steps_per_sec\": " << strided << ",\n"
       << "    \"interleaved_steps_per_sec\": " << interleaved << ",\n"
       << "    \"speedup\": " << interleaved / strided << "\n"
       << "  },\n"
       << "  \"smoke_sweep\": {\n"
       << "    \"baseline_wall_s\": null,\n"
       << "    \"wall_s\": null,\n"
       << "    \"speedup\": null\n"
       << "  }\n"
       << "}\n";

    for (const Pattern &p : patterns)
        std::cout << p.name << " events/sec  legacy " << p.legacy
                  << "  new " << p.current << "  speedup " << p.speedup()
                  << "\n";
    std::cout << "events speedup (geomean) " << geomean << "\n"
              << "walk steps/s strided " << strided << "  interleaved "
              << interleaved << "  speedup " << interleaved / strided
              << "\n"
              << "wrote " << out << "\n";
    return 0;
}

/**
 * @file
 * Figure 6: refresh operations per second, 2 GB DDR2, 64 ms retention.
 * Paper: baseline 2,048,000/s; Smart GMEAN 691,435/s; reductions range
 * from 26 % (fasta) to 85.7 % (water-spatial), average 59.3 %.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const DramConfig dram = ddr2_2GB();
    const auto results = bench::conventionalSuite(args, dram);
    printRefreshRateFigure(
        std::cout, "Figure 6: refreshes per second (2 GB DRAM)",
        "baseline 2,048,000/s, GMEAN 691,435/s, reductions 26%..85.7%",
        dram.baselineRefreshesPerSecond(), results, args.csvPath());
    return 0;
}

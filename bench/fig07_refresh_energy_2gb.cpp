/**
 * @file
 * Figure 7: relative refresh energy savings, 2 GB DDR2.
 * Paper: savings 25 % (gcc) to 79 % (radix), GMEAN 52.57 %. The Smart
 * side is charged its RAS-only bus energy and counter SRAM energy.
 */

#include "bench_common.hh"

using namespace smartref;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto results = bench::conventionalSuite(args, ddr2_2GB());
    printFigure(std::cout,
                "Figure 7: relative refresh energy savings (2 GB DRAM)",
                "savings 25% (gcc) .. 79% (radix), GMEAN 52.57%", results,
                "refresh energy saving", bench::refreshEnergySaving, true,
                args.csvPath());
    return 0;
}

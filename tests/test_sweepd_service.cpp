/**
 * @file
 * Sweepd service tests: the queue protocol and the operational surface.
 * The pinned contracts:
 *
 *  - request parsing: gridName/inline grid, option overrides, string
 *    seeds, the optional traceId member, did-you-mean on unknown keys;
 *
 *  - failure-path completeness: BOTH the parse-failure and the
 *    mid-run-failure paths land the request in failed/ with a complete
 *    status.json (status, error, wallSeconds, jobCount, cache delta,
 *    trace ID), and neither done/ nor failed/ ever holds partial
 *    artifacts — everything is staged in work/<stem>.out/ and renamed
 *    in one shot;
 *
 *  - trace IDs: the request's ID (or a derived one) appears in
 *    status.json (meta + top level), every telemetry line, and every
 *    access-log event of that request's lifecycle chain — and never in
 *    sweep.json/sweep.csv;
 *
 *  - health surface: daemon/health.json carries the documented schema
 *    with queue depths that match the directory state, plus an
 *    embedded metrics snapshot; daemon/metrics.prom exists.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweepd_service.hh"
#include "sim/mini_json.hh"

using namespace smartref;
namespace fs = std::filesystem;

namespace {

/** Fresh queue + cache directories per test. */
struct QueueFixture
{
    fs::path root;

    explicit QueueFixture(const std::string &name)
        : root(fs::path(testing::TempDir()) / ("smartref_" + name))
    {
        fs::remove_all(root);
        fs::create_directories(root);
    }

    SweepdConfig
    config() const
    {
        SweepdConfig cfg;
        cfg.queueDir = (root / "queue").string();
        cfg.cacheDir = (root / "cache").string();
        cfg.defaults.warmup = 1 * kMillisecond;
        cfg.defaults.measure = 2 * kMillisecond;
        cfg.defaults.jobs = 2;
        return cfg;
    }

    /** Drop a request into incoming/ the way a client would. */
    fs::path
    submit(const std::string &stem, const std::string &json) const
    {
        const fs::path path =
            root / "queue" / "incoming" / (stem + ".json");
        std::ofstream(path) << json;
        return path;
    }
};

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);)
        if (!line.empty())
            out.push_back(line);
    return out;
}

/** A one-config one-benchmark grid the request can embed inline. */
const char *kTinyRequest =
    "{\"grid\":{\"name\":\"svc\",\"configs\":[\"2gb\"],"
    "\"benchmarks\":[\"mummer\"],\"policies\":[\"smart\"],"
    "\"counterBits\":[3],\"retentionMs\":[0]},"
    "\"warmupMs\":1,\"measureMs\":2}";

} // namespace

// ------------------------------------------------------------- parsing

TEST(SweepdParse, GridNameOptionsAndTraceId)
{
    SweepRunOptions defaults;
    const SweepdRequest req = parseSweepdRequest(
        "{\"gridName\":\"smoke\",\"warmupMs\":3,\"measureMs\":5,"
        "\"seed\":\"17388960893229350514\",\"seedMode\":\"fixed\","
        "\"traceId\":\"trace-abc-123\"}",
        defaults);
    EXPECT_EQ(req.grid.name, "smoke");
    EXPECT_EQ(req.opts.warmup, 3 * kMillisecond);
    EXPECT_EQ(req.opts.measure, 5 * kMillisecond);
    EXPECT_EQ(req.opts.baseSeed, 17388960893229350514ull);
    EXPECT_EQ(req.opts.seedMode, SeedMode::Fixed);
    EXPECT_EQ(req.traceId, "trace-abc-123");
}

TEST(SweepdParse, UnknownMemberIsFatalWithDidYouMean)
{
    SweepRunOptions defaults;
    try {
        parseSweepdRequest("{\"gridName\":\"smoke\",\"traceid\":\"x\"}",
                           defaults);
        FAIL() << "expected a fatal on the misspelled member";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("traceid"), std::string::npos);
        EXPECT_NE(what.find("traceId"), std::string::npos)
            << "should suggest the correct spelling: " << what;
    }
}

TEST(SweepdParse, RequestWithoutGridIsFatal)
{
    SweepRunOptions defaults;
    EXPECT_THROW(parseSweepdRequest("{\"warmupMs\":1}", defaults),
                 std::runtime_error);
}

// ------------------------------------------------------------ claiming

TEST(SweepdService, ClaimsAlphabeticallyAndAtomically)
{
    QueueFixture fx("claim");
    SweepdService service(fx.config());
    EXPECT_TRUE(fs::exists(service.daemonDir() / "health.json"));

    fs::path claimed;
    EXPECT_FALSE(service.claimNext(claimed));

    fx.submit("b-second", kTinyRequest);
    fx.submit("a-first", kTinyRequest);
    ASSERT_TRUE(service.claimNext(claimed));
    EXPECT_EQ(claimed.filename().string(), "a-first.json");
    EXPECT_EQ(claimed.parent_path(), service.workDir());
    EXPECT_TRUE(fs::exists(claimed));
    EXPECT_FALSE(fs::exists(fx.root / "queue" / "incoming" /
                            "a-first.json"));
}

// ------------------------------------------------------- success path

TEST(SweepdService, SuccessPublishesCompleteResultWithTraceId)
{
    QueueFixture fx("ok");
    SweepdService service(fx.config());
    fx.submit("req1",
              std::string(kTinyRequest).insert(1,
                  "\"traceId\":\"tid-req1-xyz\","));

    fs::path claimed;
    ASSERT_TRUE(service.claimNext(claimed));
    EXPECT_TRUE(service.processOne(claimed));
    EXPECT_EQ(service.processed(), 1u);
    EXPECT_EQ(service.failures(), 0u);

    const fs::path out = service.doneDir() / "req1";
    for (const char *f : {"request.json", "sweep.json", "sweep.csv",
                          "telemetry.ndjson", "status.json"})
        EXPECT_TRUE(fs::exists(out / f)) << f;
    EXPECT_TRUE(fs::is_empty(service.workDir()));

    const minijson::Value status =
        minijson::parse(slurp(out / "status.json"));
    EXPECT_EQ(status.at("schema").str, "smartref-sweepd-status-v1");
    EXPECT_EQ(status.at("status").str, "ok");
    EXPECT_EQ(status.at("traceId").str, "tid-req1-xyz");
    EXPECT_EQ(status.at("meta").at("traceId").str, "tid-req1-xyz");
    EXPECT_GT(status.at("wallSeconds").number, 0.0);
    EXPECT_EQ(status.at("jobCount").number, 1.0);
    EXPECT_TRUE(status.at("cache").has("hits"));

    // Every telemetry line of the request carries the trace ID; the
    // deterministic aggregates never do.
    const auto telemetry = lines(slurp(out / "telemetry.ndjson"));
    ASSERT_FALSE(telemetry.empty());
    for (const std::string &line : telemetry)
        EXPECT_NE(line.find("\"traceId\":\"tid-req1-xyz\""),
                  std::string::npos)
            << line;
    EXPECT_EQ(slurp(out / "sweep.json").find("traceId"),
              std::string::npos);
    EXPECT_EQ(slurp(out / "sweep.csv").find("traceId"),
              std::string::npos);

    // The access log holds one full lifecycle chain under that ID.
    const auto access =
        lines(slurp(service.daemonDir() / "access.ndjson"));
    std::vector<std::string> events;
    for (const std::string &line : access) {
        if (line.find("\"traceId\":\"tid-req1-xyz\"") ==
            std::string::npos)
            continue;
        const minijson::Value ev = minijson::parse(line);
        EXPECT_EQ(ev.at("request").str, "req1");
        EXPECT_GT(ev.at("unixMs").number, 0.0);
        events.push_back(ev.at("event").str);
    }
    EXPECT_EQ(events, (std::vector<std::string>{
                          "received", "claimed", "started", "finished"}));
}

// ------------------------------------------------------ failure paths

TEST(SweepdService, ParseFailureLandsCompleteStatusInFailed)
{
    QueueFixture fx("badparse");
    SweepdService service(fx.config());
    fx.submit("bad", "{\"gridName\":\"smoke\",\"bogusKnob\":1}");

    fs::path claimed;
    ASSERT_TRUE(service.claimNext(claimed));
    EXPECT_FALSE(service.processOne(claimed));
    EXPECT_EQ(service.failures(), 1u);

    const fs::path out = service.failedDir() / "bad";
    EXPECT_TRUE(fs::exists(out / "request.json"));
    EXPECT_TRUE(fs::exists(out / "status.json"));
    EXPECT_FALSE(fs::exists(service.doneDir() / "bad"));
    EXPECT_TRUE(fs::is_empty(service.workDir()));

    const minijson::Value status =
        minijson::parse(slurp(out / "status.json"));
    EXPECT_EQ(status.at("status").str, "failed");
    EXPECT_NE(status.at("error").str.find("bogusKnob"),
              std::string::npos);
    EXPECT_GE(status.at("wallSeconds").number, 0.0);
    EXPECT_EQ(status.at("jobCount").number, 0.0);
    EXPECT_TRUE(status.at("cache").has("hits"));
    EXPECT_FALSE(status.at("traceId").str.empty());

    // Even a parse failure gets a received/claimed/failed access chain.
    const std::string access =
        slurp(service.daemonDir() / "access.ndjson");
    EXPECT_NE(access.find("\"event\":\"failed\""), std::string::npos);
    EXPECT_NE(access.find(status.at("traceId").str),
              std::string::npos);
}

TEST(SweepdService, MidRunFailureLandsCompleteStatusInFailed)
{
    QueueFixture fx("midrun");
    SweepdService service(fx.config());
    // Parses fine; expandGrid rejects the unknown config inside the
    // run, exercising the second failure path.
    fx.submit("boom",
              "{\"grid\":{\"name\":\"boom\",\"configs\":[\"5gb\"],"
              "\"benchmarks\":[\"mummer\"],\"policies\":[\"smart\"],"
              "\"counterBits\":[3],\"retentionMs\":[0]}}");

    fs::path claimed;
    ASSERT_TRUE(service.claimNext(claimed));
    EXPECT_FALSE(service.processOne(claimed));

    const fs::path out = service.failedDir() / "boom";
    EXPECT_TRUE(fs::exists(out / "request.json"));
    EXPECT_TRUE(fs::exists(out / "status.json"));
    // The run never produced aggregates, and the staged directory was
    // renamed whole: failed/ holds no partial sweep.json.
    EXPECT_FALSE(fs::exists(out / "sweep.json"));
    EXPECT_TRUE(fs::is_empty(service.workDir()));

    const minijson::Value status =
        minijson::parse(slurp(out / "status.json"));
    EXPECT_EQ(status.at("status").str, "failed");
    EXPECT_FALSE(status.at("error").str.empty());
    EXPECT_GT(status.at("wallSeconds").number, 0.0);
    EXPECT_FALSE(status.at("traceId").str.empty());
    EXPECT_TRUE(status.at("cache").has("hits"));
}

// ------------------------------------------------------ health surface

TEST(SweepdService, HealthJsonTracksQueueAndEmbedsMetrics)
{
    QueueFixture fx("health");
    SweepdService service(fx.config());
    fx.submit("h1", kTinyRequest);
    fx.submit("h2", kTinyRequest);

    service.notePoll();
    minijson::Value health = minijson::parse(
        slurp(service.daemonDir() / "health.json"));
    EXPECT_EQ(health.at("schema").str, "smartref-sweepd-health-v1");
    EXPECT_GT(health.at("pid").number, 0.0);
    EXPECT_GE(health.at("uptimeSeconds").number, 0.0);
    EXPECT_GT(health.at("lastPollUnixMs").number, 0.0);
    EXPECT_EQ(health.at("queue").at("incoming").number, 2.0);
    EXPECT_EQ(health.at("queue").at("done").number, 0.0);
    EXPECT_EQ(health.at("requestsInFlight").number, 0.0);
    EXPECT_EQ(health.at("metrics").at("schema").str,
              "smartref-metrics-v1");

    fs::path claimed;
    ASSERT_TRUE(service.claimNext(claimed));
    EXPECT_TRUE(service.processOne(claimed));

    health = minijson::parse(
        slurp(service.daemonDir() / "health.json"));
    EXPECT_EQ(health.at("queue").at("incoming").number, 1.0);
    EXPECT_EQ(health.at("queue").at("done").number, 1.0);
    EXPECT_EQ(health.at("processed").number, 1.0);
    EXPECT_EQ(health.at("failures").number, 0.0);
    EXPECT_TRUE(fs::exists(service.daemonDir() / "metrics.prom"));
}

// ---------------------------------------------------- warm replay path

TEST(SweepdService, RepeatedRequestIsServedFromCache)
{
    QueueFixture fx("warm");
    SweepdService service(fx.config());
    fx.submit("cold", kTinyRequest);
    fx.submit("warm", kTinyRequest);

    fs::path claimed;
    ASSERT_TRUE(service.claimNext(claimed));
    EXPECT_TRUE(service.processOne(claimed));
    ASSERT_TRUE(service.claimNext(claimed));
    EXPECT_TRUE(service.processOne(claimed));

    const minijson::Value warmStatus = minijson::parse(
        slurp(service.doneDir() / "warm" / "status.json"));
    EXPECT_EQ(warmStatus.at("cache").at("hits").number, 1.0);
    EXPECT_EQ(warmStatus.at("cache").at("misses").number, 0.0);

    // Byte-identity across the cold and warm replays: the aggregates
    // never depend on the hit/miss mix (or on anything traced).
    EXPECT_EQ(slurp(service.doneDir() / "cold" / "sweep.json"),
              slurp(service.doneDir() / "warm" / "sweep.json"));
    EXPECT_EQ(slurp(service.doneDir() / "cold" / "sweep.csv"),
              slurp(service.doneDir() / "warm" / "sweep.csv"));
}

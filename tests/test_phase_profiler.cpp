/**
 * @file
 * PhaseProfiler tests: scope nesting, re-entry accumulation, JSON
 * shape, the null-profiler no-op contract, and the sweep integration —
 * per-job profiles appear only when requested, carry the
 * baseline/policy stage split, and never perturb the deterministic
 * aggregates or the sweep config hash.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/sweep.hh"
#include "sim/mini_json.hh"
#include "sim/phase_profiler.hh"

using namespace smartref;

namespace {

const minijson::Value *
findPhase(const minijson::Value &array, const std::string &name)
{
    for (const minijson::Value &node : array.array) {
        if (node.at("phase").str == name)
            return &node;
    }
    return nullptr;
}

SweepGrid
tinyGrid()
{
    SweepGrid g;
    g.name = "profile";
    g.configs = {"2gb"};
    g.benchmarks = {"mummer"};
    g.policies = {"smart"};
    g.counterBits = {3};
    g.retentionMs = {0};
    return g;
}

SweepRunOptions
tinyOptions()
{
    SweepRunOptions opts;
    opts.jobs = 1;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 2 * kMillisecond;
    return opts;
}

} // namespace

TEST(PhaseProfiler, ScopesNestUnderTheOpenPhase)
{
    PhaseProfiler prof;
    EXPECT_TRUE(prof.empty());
    {
        PhaseScope outer(&prof, "job");
        {
            PhaseScope inner(&prof, "walk");
        }
        {
            PhaseScope inner(&prof, "issue");
        }
    }
    const auto &nodes = prof.nodes();
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_STREQ(nodes[0].label, "job");
    EXPECT_EQ(nodes[0].parent, PhaseProfiler::kNoParent);
    EXPECT_STREQ(nodes[1].label, "walk");
    EXPECT_EQ(nodes[1].parent, 0u);
    EXPECT_STREQ(nodes[2].label, "issue");
    EXPECT_EQ(nodes[2].parent, 0u);
}

TEST(PhaseProfiler, ReentryAccumulatesIntoOneNode)
{
    PhaseProfiler prof;
    for (int i = 0; i < 5; ++i) {
        PhaseScope s(&prof, "walk");
    }
    ASSERT_EQ(prof.nodes().size(), 1u);
    EXPECT_EQ(prof.nodes()[0].count, 5u);
}

TEST(PhaseProfiler, SameLabelUnderDifferentParentsIsTwoNodes)
{
    PhaseProfiler prof;
    {
        PhaseScope a(&prof, "baseline");
        PhaseScope i(&prof, "issue");
    }
    {
        PhaseScope b(&prof, "policy");
        PhaseScope i(&prof, "issue");
    }
    EXPECT_EQ(prof.nodes().size(), 4u);
}

TEST(PhaseProfiler, JsonIsANestedArrayOfPhases)
{
    PhaseProfiler prof;
    {
        PhaseScope outer(&prof, "policy");
        PhaseScope inner(&prof, "walk");
    }
    const minijson::Value v = minijson::parse(prof.toJson());
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.array.size(), 1u);
    EXPECT_EQ(v.at(0).at("phase").str, "policy");
    EXPECT_EQ(v.at(0).at("count").number, 1.0);
    EXPECT_GE(v.at(0).at("wall_ns").number, 0.0);
    ASSERT_EQ(v.at(0).at("children").array.size(), 1u);
    EXPECT_EQ(v.at(0).at("children").at(0).at("phase").str, "walk");
}

TEST(PhaseProfiler, NullProfilerScopeIsANoop)
{
    PhaseScope s(nullptr, "nothing");
    SUCCEED();
}

TEST(PhaseProfiler, SweepJobsProfileOnlyWhenAsked)
{
    const SweepGrid grid = tinyGrid();
    const auto plain = runSweep(grid, tinyOptions());
    ASSERT_EQ(plain.size(), 1u);
    EXPECT_TRUE(plain[0].profileJson.empty());

    SweepRunOptions profiled = tinyOptions();
    profiled.profile = true;
    const auto observed = runSweep(grid, profiled);
    ASSERT_EQ(observed.size(), 1u);
    ASSERT_FALSE(observed[0].profileJson.empty());
    const minijson::Value v = minijson::parse(observed[0].profileJson);
    ASSERT_TRUE(v.isArray());
    const minijson::Value *baseline = findPhase(v, "baseline");
    const minijson::Value *policy = findPhase(v, "policy");
    ASSERT_NE(baseline, nullptr);
    ASSERT_NE(policy, nullptr);
    // The policy stage runs Smart Refresh, so its counter walk must
    // appear as a nested child; the CBR baseline never walks.
    EXPECT_NE(findPhase(policy->at("children"), "walk"), nullptr);
    EXPECT_EQ(findPhase(baseline->at("children"), "walk"), nullptr);
}

TEST(PhaseProfiler, ProfilingNeverPerturbsDeterministicOutputs)
{
    const SweepGrid grid = tinyGrid();
    SweepRunOptions plain = tinyOptions();
    SweepRunOptions profiled = tinyOptions();
    profiled.profile = true;
    profiled.checkConservation = true;

    // Execution-only knobs stay out of the config hash…
    EXPECT_EQ(sweepConfigHash(grid, plain), sweepConfigHash(grid, profiled));

    // …and out of every deterministic byte.
    const auto a = runSweep(grid, plain);
    const auto b = runSweep(grid, profiled);
    std::ostringstream ja, jb;
    writeSweepJson(grid, plain, a, ja);
    writeSweepJson(grid, profiled, b, jb);
    EXPECT_EQ(ja.str(), jb.str());
}

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/counter_array.hh"

using namespace smartref;

TEST(CounterArray, StartsAtZero)
{
    CounterArray c(16, 3);
    for (std::uint64_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c.peek(i), 0);
}

TEST(CounterArray, MaxValueMatchesWidth)
{
    EXPECT_EQ(CounterArray(4, 2).maxValue(), 3);
    EXPECT_EQ(CounterArray(4, 3).maxValue(), 7);
    EXPECT_EQ(CounterArray(4, 4).maxValue(), 15);
}

TEST(CounterArray, ResetSetsMax)
{
    CounterArray c(8, 3);
    c.reset(5);
    EXPECT_EQ(c.peek(5), 7);
    EXPECT_EQ(c.sramWrites(), 1u);
    EXPECT_EQ(c.sramReads(), 0u);
}

TEST(CounterArray, TouchDecrementsUntilZero)
{
    CounterArray c(4, 2);
    c.reset(0); // value 3
    EXPECT_FALSE(c.touch(0)); // 2
    EXPECT_FALSE(c.touch(0)); // 1
    EXPECT_FALSE(c.touch(0)); // 0
    EXPECT_TRUE(c.touch(0));  // expired: reset to max
    EXPECT_EQ(c.peek(0), 3);
}

TEST(CounterArray, TouchOfFreshZeroExpiresImmediately)
{
    CounterArray c(4, 3);
    EXPECT_TRUE(c.touch(2));
    EXPECT_EQ(c.peek(2), 7);
}

TEST(CounterArray, SramTrafficAccounting)
{
    // The paper counts one read and one write per walked counter, plus
    // one write per demand reset.
    CounterArray c(8, 3);
    c.touch(0);
    c.touch(1);
    c.reset(2);
    EXPECT_EQ(c.sramReads(), 2u);
    EXPECT_EQ(c.sramWrites(), 3u);
}

TEST(CounterArray, InitDoesNotCountTraffic)
{
    CounterArray c(8, 2);
    c.init(0, 3);
    EXPECT_EQ(c.peek(0), 3);
    EXPECT_EQ(c.sramReads(), 0u);
    EXPECT_EQ(c.sramWrites(), 0u);
}

TEST(CounterArray, InitRejectsOverflow)
{
    CounterArray c(8, 2);
    EXPECT_THROW(c.init(0, 4), std::logic_error);
}

TEST(CounterArray, RejectsBadWidths)
{
    EXPECT_THROW(CounterArray(8, 0), std::logic_error);
    EXPECT_THROW(CounterArray(8, 9), std::logic_error);
    EXPECT_THROW(CounterArray(0, 3), std::logic_error);
}

TEST(CounterArray, StorageBits)
{
    EXPECT_EQ(CounterArray(131072, 3).storageBits(), 131072u * 3u);
}

TEST(CounterAreaFormula, PaperAnchors)
{
    // Section 4.7: 4 banks x 2 ranks x 16384 rows x 3 bits = 48 KB.
    EXPECT_DOUBLE_EQ(counterAreaKB(4, 2, 16384, 3), 48.0);
    // A 32 GB-capable controller needs 16x that: 768 KB.
    EXPECT_DOUBLE_EQ(counterAreaKB(4, 2, 16384, 3) * 16, 768.0);
    // 2-bit variant of the same module: 32 KB.
    EXPECT_DOUBLE_EQ(counterAreaKB(4, 2, 16384, 2), 32.0);
}

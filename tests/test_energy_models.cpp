#include <gtest/gtest.h>

#include "core/sram_energy_model.hh"
#include "ctrl/bus_energy_model.hh"
#include "harness/system.hh"

using namespace smartref;

TEST(BusEnergy, Table3Anchor)
{
    // With the paper's Table 3 constants and 2 modules:
    // Cload = 36*0.21 + 102*0.1 + 2*3 = 23.76 pF; C = 1.3*Cload.
    StatGroup root("root");
    BusEnergyModel bus(BusEnergyParams{}, &root);
    EXPECT_NEAR(bus.wireCapacitance(), 30.888e-12, 1e-15);
    // E = C * VDD^2 * width = 30.888pF * 3.24 * 15.
    EXPECT_NEAR(bus.energyPerAccess(), 30.888e-12 * 1.8 * 1.8 * 15.0,
                1e-13);
}

TEST(BusEnergy, AccumulatesPerAccess)
{
    StatGroup root("root");
    BusEnergyModel bus(BusEnergyParams{}, &root);
    bus.recordAccesses(10);
    bus.recordAccesses(1);
    EXPECT_EQ(bus.accesses(), 11u);
    EXPECT_NEAR(bus.totalEnergy(), 11 * bus.energyPerAccess(), 1e-18);
}

TEST(BusEnergy, MoreModulesMoreCapacitance)
{
    StatGroup root("root");
    BusEnergyParams one{};
    one.numModules = 1;
    BusEnergyParams four{};
    four.numModules = 4;
    BusEnergyModel busOne(one, &root);
    StatGroup root2("root2");
    BusEnergyModel busFour(four, &root2);
    EXPECT_GT(busFour.wireCapacitance(), busOne.wireCapacitance());
}

TEST(BusEnergy, DerivedParamsFollowOrganization)
{
    const auto p2 = deriveBusParams(BusEnergyParams{}, ddr2_2GB().org);
    EXPECT_EQ(p2.numModules, 2u);
    EXPECT_EQ(p2.busWidthBits, 16u); // 14 row + 2 bank bits
    const auto p4 = deriveBusParams(BusEnergyParams{}, ddr2_4GB().org);
    EXPECT_EQ(p4.busWidthBits, 17u); // 14 row + 3 bank bits
}

TEST(SramEnergy, ScalesWithArraySize)
{
    StatGroup root("root");
    SramEnergyModel small(8.0, SramEnergyParams{}, &root);
    StatGroup root2("root2");
    SramEnergyModel large(48.0, SramEnergyParams{}, &root2);
    EXPECT_GT(large.readEnergy(), small.readEnergy());
    EXPECT_GT(large.writeEnergy(), large.readEnergy());
}

TEST(SramEnergy, EnergyForMatchesRecordTraffic)
{
    StatGroup root("root");
    SramEnergyModel sram(48.0, SramEnergyParams{}, &root);
    const double expected = sram.energyFor(100, 50);
    sram.recordTraffic(100, 50);
    EXPECT_NEAR(sram.totalEnergy(), expected, expected * 1e-12);
    EXPECT_DOUBLE_EQ(expected, 100 * sram.readEnergy() +
                                   50 * sram.writeEnergy());
}

TEST(SramEnergy, PaperScaleMagnitude)
{
    // The 48 KB counter array of the 2 GB module: a per-access energy
    // in the tens of pJ, so the walk overhead stays far below the
    // refresh savings (Section 6's conclusion).
    StatGroup root("root");
    SramEnergyModel sram(48.0, SramEnergyParams{}, &root);
    EXPECT_GT(sram.readEnergy(), 1e-12);
    EXPECT_LT(sram.readEnergy(), 1e-10);
}

TEST(SramEnergy, RejectsEmptyArray)
{
    StatGroup root("root");
    EXPECT_THROW(SramEnergyModel(0.0, SramEnergyParams{}, &root),
                 std::logic_error);
}

#include <gtest/gtest.h>

#include "dram/power_model.hh"
#include "test_config.hh"

using namespace smartref;

class PowerModelTest : public ::testing::Test
{
  protected:
    DramConfig cfg = ddr2_2GB();
    StatGroup root{"root"};
    DramPowerModel power{cfg, &root};
};

TEST_F(PowerModelTest, PerCommandEnergiesMatchMicronFormulas)
{
    const auto &p = cfg.power;
    const auto &t = cfg.timing;
    const double dev = cfg.org.devicesPerRank();
    const double sec = 1e-12;

    const double eAct =
        (p.idd0 * t.tRC * sec - p.idd3n * t.tRAS * sec -
         p.idd2n * (t.tRC - t.tRAS) * sec) *
        p.vdd * dev;
    EXPECT_NEAR(power.energyPerActivatePair(), eAct, eAct * 1e-9);

    const double eRef =
        (p.idd5r - p.idd2n) * p.vdd * t.tRFCrow * sec * dev;
    EXPECT_NEAR(power.energyPerRowRefresh(), eRef, eRef * 1e-9);

    EXPECT_GT(power.energyPerRead(), 0.0);
    EXPECT_GT(power.energyPerWrite(), power.energyPerRead());
    EXPECT_GT(power.energyOpenPagePenalty(), 0.0);
}

TEST_F(PowerModelTest, EventAccountingAccumulates)
{
    power.onActivatePair();
    power.onActivatePair();
    power.onRead();
    power.onWrite();
    power.onRowRefresh(false);
    EXPECT_DOUBLE_EQ(power.activateEnergy(),
                     2 * power.energyPerActivatePair());
    EXPECT_DOUBLE_EQ(power.readEnergy(), power.energyPerRead());
    EXPECT_DOUBLE_EQ(power.writeEnergy(), power.energyPerWrite());
    EXPECT_DOUBLE_EQ(power.refreshEnergy(), power.energyPerRowRefresh());
}

TEST_F(PowerModelTest, OpenPageRefreshCostsMore)
{
    power.onRowRefresh(true);
    EXPECT_DOUBLE_EQ(power.refreshEnergy(),
                     power.energyPerRowRefresh() +
                         power.energyOpenPagePenalty());
}

TEST_F(PowerModelTest, BackgroundPowerOrdering)
{
    EXPECT_LT(power.backgroundPower(RankPowerState::PowerDown),
              power.backgroundPower(RankPowerState::PrechargeStandby));
    EXPECT_LT(power.backgroundPower(RankPowerState::PrechargeStandby),
              power.backgroundPower(RankPowerState::ActiveStandby));
}

TEST_F(PowerModelTest, BackgroundIntegration)
{
    power.accountBackground(RankPowerState::PrechargeStandby, kSecond);
    const double expected =
        power.backgroundPower(RankPowerState::PrechargeStandby);
    EXPECT_NEAR(power.backgroundEnergy(), expected, expected * 1e-9);
}

TEST_F(PowerModelTest, TotalsSumComponents)
{
    power.onActivatePair();
    power.onRead();
    power.onRowRefresh(false);
    power.accountBackground(RankPowerState::PowerDown, kMillisecond);
    power.addOverhead(1e-6);
    const double expected = power.activateEnergy() + power.readEnergy() +
                            power.writeEnergy() + power.refreshEnergy() +
                            power.backgroundEnergy() +
                            power.overheadEnergy();
    EXPECT_DOUBLE_EQ(power.totalEnergy(), expected);
    EXPECT_DOUBLE_EQ(power.overheadEnergy(), 1e-6);
}

TEST_F(PowerModelTest, RefreshShareIsSignificantForLowPowerBaseline)
{
    // The ITSY observation: in a low-power (power-down) baseline, row
    // refresh at the baseline rate must be a significant share of
    // total power. Refresh power at 2.048 M rows/s vs power-down
    // standby of both ranks:
    const double refreshPower =
        2048000.0 * power.energyPerRowRefresh();
    const double pdPower =
        2.0 * power.backgroundPower(RankPowerState::PowerDown);
    const double share = refreshPower / (refreshPower + pdPower);
    EXPECT_GT(share, 0.20);
    EXPECT_LT(share, 0.60);
}

TEST(PowerModel3D, RefreshDominatesStackedDie)
{
    // Section 4.5: refresh is a major overhead for the hot stacked die.
    StatGroup root("root");
    const DramConfig cfg = dram3d_64MB();
    DramPowerModel power(cfg, &root);
    const double refreshPower =
        cfg.baselineRefreshesPerSecond() * power.energyPerRowRefresh();
    const double standby =
        power.backgroundPower(RankPowerState::PrechargeStandby);
    EXPECT_GT(refreshPower / (refreshPower + standby), 0.35);
}

TEST(PowerModelValidation, TinyConfigHasPositiveEnergies)
{
    StatGroup root("root");
    DramPowerModel power(smartref::tcfg::tinyConfig(), &root);
    EXPECT_GT(power.energyPerActivatePair(), 0.0);
    EXPECT_GT(power.energyPerRowRefresh(), 0.0);
}

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/report.hh"

using namespace smartref;

namespace {

ComparisonResult
fakeResult(const std::string &name, const std::string &suite,
           double baseRate, double smartRate)
{
    ComparisonResult c;
    c.benchmark = name;
    c.suite = suite;
    c.baseline.benchmark = name;
    c.baseline.refreshesPerSec = baseRate;
    c.baseline.refreshEnergyJ = 1.0;
    c.baseline.totalEnergyJ = 4.0;
    c.baseline.simSeconds = 0.1;
    c.baseline.latencySumSec = 0.01;
    c.smart = c.baseline;
    c.smart.refreshesPerSec = smartRate;
    c.smart.refreshEnergyJ = 0.5;
    c.smart.overheadJ = 0.1;
    c.smart.totalEnergyJ = 3.5;
    c.smart.latencySumSec = 0.009;
    return c;
}

} // namespace

TEST(ReportTable, AlignsAndPrints)
{
    ReportTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"a-much-longer-name", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTable, RowWidthMismatchPanics)
{
    ReportTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(ReportTable, CsvRoundTrip)
{
    const std::string path = ::testing::TempDir() + "smartref_report.csv";
    ReportTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addSeparator();
    t.addRow({"y", "2"});
    t.writeCsv(path);
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    std::remove(path.c_str());
    ASSERT_EQ(lines.size(), 3u); // header + 2 rows, separator skipped
    EXPECT_EQ(lines[0], "name,value");
    EXPECT_EQ(lines[1], "x,1");
    EXPECT_EQ(lines[2], "y,2");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape(""), "");
    EXPECT_EQ(csvEscape("3.14"), "3.14");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csvEscape("cr\rhere"), "\"cr\rhere\"");
}

TEST(ReportTable, CsvEscapesSpecialCells)
{
    ReportTable t({"name", "note"});
    t.addRow({"with,comma", "a \"quoted\" word"});
    std::ostringstream oss;
    t.writeCsv(oss);
    std::istringstream lines(oss.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "name,note");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "\"with,comma\",\"a \"\"quoted\"\" word\"");
}

TEST(Formatting, Percent)
{
    EXPECT_EQ(fmtPercent(0.525), "52.5%");
    EXPECT_EQ(fmtPercent(0.5257, 2), "52.57%");
    EXPECT_EQ(fmtPercent(0.0), "0.0%");
}

TEST(Formatting, Millions)
{
    EXPECT_EQ(fmtMillions(2048000.0), "2.048");
    EXPECT_EQ(fmtMillions(691435.0), "0.691");
}

TEST(Formatting, Double)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(42.0, 0), "42");
}

TEST(ComparisonMetrics, Formulas)
{
    const ComparisonResult c =
        fakeResult("x", "S", 2048000.0, 1024000.0);
    EXPECT_DOUBLE_EQ(c.refreshReduction(), 0.5);
    // (0.5 + 0.1 overhead) / 1.0 baseline -> 40 % saving.
    EXPECT_DOUBLE_EQ(c.refreshEnergySaving(), 0.4);
    EXPECT_DOUBLE_EQ(c.totalEnergySaving(), 0.125);
    EXPECT_NEAR(c.perfImprovement(), 0.01, 1e-12);
}

TEST(PrintFigure, ProducesGmeanAndGroups)
{
    std::vector<ComparisonResult> results = {
        fakeResult("a", "S1", 100.0, 50.0),
        fakeResult("b", "S1", 100.0, 25.0),
        fakeResult("c", "S2", 100.0, 10.0),
    };
    std::ostringstream oss;
    const double gmean = printFigure(
        oss, "Test figure", "note", results, "reduction",
        [](const ComparisonResult &r) { return r.refreshReduction(); },
        true);
    EXPECT_NEAR(gmean, geometricMean({0.5, 0.75, 0.9}), 1e-12);
    EXPECT_NE(oss.str().find("GMEAN"), std::string::npos);
    EXPECT_NE(oss.str().find("Test figure"), std::string::npos);
}

TEST(PrintRefreshRateFigure, ShowsBaselineAnchor)
{
    std::vector<ComparisonResult> results = {
        fakeResult("a", "S1", 2048000.0, 512000.0),
    };
    std::ostringstream oss;
    const double gmean = printRefreshRateFigure(
        oss, "Rates", "", 2048000.0, results);
    EXPECT_NEAR(gmean, 512000.0, 1e-3);
    EXPECT_NE(oss.str().find("2.048"), std::string::npos);
    EXPECT_NE(oss.str().find("75.0%"), std::string::npos);
}

TEST(CheckNoViolations, PassesOnClean)
{
    std::vector<ComparisonResult> results = {
        fakeResult("a", "S", 1.0, 1.0)};
    EXPECT_NO_THROW(checkNoViolations(results));
}

TEST(CheckNoViolations, PanicsOnViolation)
{
    std::vector<ComparisonResult> results = {
        fakeResult("a", "S", 1.0, 1.0)};
    results[0].smart.violations = 1;
    EXPECT_THROW(checkNoViolations(results), std::logic_error);
}

TEST(PrintFigure, DecimalsParameterControlsPrecision)
{
    std::vector<ComparisonResult> results = {
        fakeResult("a", "S", 10000.0, 9987.0)};
    std::ostringstream oss;
    printFigure(
        oss, "fine", "", results, "m",
        [](const ComparisonResult &r) { return r.refreshReduction(); },
        true, "", 3);
    EXPECT_NE(oss.str().find("0.130%"), std::string::npos);
}

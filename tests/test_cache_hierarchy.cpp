#include <gtest/gtest.h>

#include "cache/cache_hierarchy.hh"

using namespace smartref;

namespace {

CacheHierarchy
makeHierarchy(StatGroup *root)
{
    CacheConfig l1;
    l1.name = "L1";
    l1.sizeBytes = 1024;
    l1.assoc = 2;
    l1.hitLatency = 1 * kNanosecond;
    CacheConfig l2;
    l2.name = "L2";
    l2.sizeBytes = 8192;
    l2.assoc = 4;
    l2.hitLatency = 5 * kNanosecond;
    return CacheHierarchy(l1, l2, root);
}

} // namespace

TEST(Hierarchy, ColdMissGoesToMemory)
{
    StatGroup root("root");
    auto h = makeHierarchy(&root);
    const auto r = h.access(0x1000, false);
    EXPECT_EQ(r.hitLevel, 0);
    ASSERT_EQ(r.memOps.size(), 1u);
    EXPECT_EQ(r.memOps[0].addr, 0x1000u);
    EXPECT_FALSE(r.memOps[0].write);
    EXPECT_EQ(r.cacheLatency, 6 * kNanosecond); // L1 + L2 lookups
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    StatGroup root("root");
    auto h = makeHierarchy(&root);
    h.access(0x1000, false);
    const auto r = h.access(0x1000, false);
    EXPECT_EQ(r.hitLevel, 1);
    EXPECT_TRUE(r.memOps.empty());
    EXPECT_EQ(r.cacheLatency, 1 * kNanosecond);
}

TEST(Hierarchy, L1EvictionStillHitsL2)
{
    StatGroup root("root");
    auto h = makeHierarchy(&root);
    // Fill L1 set 0 (2 ways, 8 sets -> stride 512) past capacity.
    h.access(0 * 512, false);
    h.access(1 * 512, false);
    h.access(2 * 512, false); // evicts line 0 from L1; L2 still has it
    const auto r = h.access(0, false);
    EXPECT_EQ(r.hitLevel, 2);
    EXPECT_TRUE(r.memOps.empty());
}

TEST(Hierarchy, DirtyL2VictimGeneratesWriteback)
{
    StatGroup root("root");
    auto h = makeHierarchy(&root);
    // L2: 8192/64/4 = 32 sets -> same-L2-set stride 2048.
    h.access(0, true); // dirty in L1 and L2 (write-allocate both)
    // Push line 0 out of L1 first (L1 set-0 stride is 512; these lines
    // land in different L2 sets, so L2 set 0 is untouched). The dirty
    // L1 victim writes through into L2.
    h.access(512, false);
    h.access(1024, false);
    // Now overflow L2 set 0; line 0 is the oldest there and is dirty.
    bool sawWriteback = false;
    for (int i = 1; i <= 4; ++i) {
        const auto r = h.access(Addr(i) * 2048, false);
        for (const auto &op : r.memOps)
            sawWriteback |= (op.write && op.addr == 0u);
    }
    EXPECT_TRUE(sawWriteback);
}

TEST(Hierarchy, MemoryAccessFraction)
{
    StatGroup root("root");
    auto h = makeHierarchy(&root);
    h.access(0, false); // miss
    h.access(0, false); // L1 hit
    h.access(0, false); // L1 hit
    h.access(64, false); // miss (different line)
    EXPECT_DOUBLE_EQ(h.memoryAccessFraction(), 0.5);
}

TEST(Hierarchy, WriteMissAllocates)
{
    StatGroup root("root");
    auto h = makeHierarchy(&root);
    const auto r = h.access(0x2000, true);
    EXPECT_EQ(r.hitLevel, 0);
    // The fill itself is a read; the dirty data stays cached.
    ASSERT_GE(r.memOps.size(), 1u);
    EXPECT_FALSE(r.memOps[0].write);
    EXPECT_EQ(h.access(0x2000, false).hitLevel, 1);
}

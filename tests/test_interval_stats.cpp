#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/interval_stats.hh"
#include "sim/tracer.hh"

using namespace smartref;

TEST(IntervalStats, DeltaColumnsSnapshotAndReset)
{
    EventQueue eq;
    double counter = 0.0;
    IntervalStats sampler(eq, 10 * kMillisecond);
    sampler.addDelta("count", [&counter] { return counter; });

    counter = 5.0; // accumulated before start(); must not be reported
    sampler.start();
    eq.scheduleAfter(4 * kMillisecond, [&counter] { counter = 12.0; });
    eq.scheduleAfter(14 * kMillisecond, [&counter] { counter = 13.0; });
    eq.runUntil(30 * kMillisecond);
    sampler.stop();

    ASSERT_EQ(sampler.samples().size(), 3u);
    // Interval 1: 12 - 5; interval 2: 13 - 12; interval 3: nothing new.
    EXPECT_DOUBLE_EQ(sampler.samples()[0].values[0], 7.0);
    EXPECT_DOUBLE_EQ(sampler.samples()[1].values[0], 1.0);
    EXPECT_DOUBLE_EQ(sampler.samples()[2].values[0], 0.0);
    // The source itself was never reset.
    EXPECT_DOUBLE_EQ(counter, 13.0);
}

TEST(IntervalStats, GaugeColumnsReportInstantaneousValues)
{
    EventQueue eq;
    double depth = 3.0;
    IntervalStats sampler(eq, 1 * kMillisecond);
    sampler.addGauge("depth", [&depth] { return depth; });
    sampler.start();
    eq.scheduleAfter(kMillisecond + kMillisecond / 2,
                     [&depth] { depth = 9.0; });
    eq.runUntil(3 * kMillisecond);
    sampler.stop();

    ASSERT_EQ(sampler.samples().size(), 3u);
    EXPECT_DOUBLE_EQ(sampler.samples()[0].values[0], 3.0);
    EXPECT_DOUBLE_EQ(sampler.samples()[1].values[0], 9.0);
    EXPECT_DOUBLE_EQ(sampler.samples()[2].values[0], 9.0);
}

TEST(IntervalStats, IntervalsTileTheTimeline)
{
    EventQueue eq;
    IntervalStats sampler(eq, 2 * kMillisecond);
    sampler.addGauge("x", [] { return 0.0; });
    sampler.start();
    eq.runUntil(6 * kMillisecond);
    sampler.stop();

    ASSERT_EQ(sampler.samples().size(), 3u);
    for (std::size_t i = 0; i < sampler.samples().size(); ++i) {
        const auto &s = sampler.samples()[i];
        EXPECT_EQ(s.end - s.begin, 2 * kMillisecond);
        if (i > 0) {
            EXPECT_EQ(s.begin, sampler.samples()[i - 1].end);
        }
    }
}

TEST(IntervalStats, FinishClosesPartialInterval)
{
    EventQueue eq;
    double counter = 0.0;
    IntervalStats sampler(eq, 10 * kMillisecond);
    sampler.addDelta("count", [&counter] { return counter; });
    sampler.start();
    eq.scheduleAfter(12 * kMillisecond, [&counter] { counter = 4.0; });
    eq.runUntil(15 * kMillisecond); // one full interval + half of another
    sampler.finish();

    ASSERT_EQ(sampler.samples().size(), 2u);
    const auto &partial = sampler.samples()[1];
    EXPECT_EQ(partial.begin, 10 * kMillisecond);
    EXPECT_EQ(partial.end, 15 * kMillisecond);
    EXPECT_DOUBLE_EQ(partial.values[0], 4.0);
    // finish() is a no-op once stopped.
    sampler.finish();
    EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(IntervalStats, FinishAtExactBoundaryEmitsNoEmptyInterval)
{
    EventQueue eq;
    IntervalStats sampler(eq, 5 * kMillisecond);
    sampler.addGauge("x", [] { return 1.0; });
    sampler.start();
    eq.runUntil(10 * kMillisecond); // two whole intervals, no remainder
    sampler.finish();

    // The boundary sample at t=10 already closed the second interval;
    // finish() must not append a zero-length [10, 10] row after it.
    ASSERT_EQ(sampler.samples().size(), 2u);
    EXPECT_EQ(sampler.samples()[1].end, 10 * kMillisecond);
}

TEST(IntervalStats, FinishBeforeAnyTimeElapsesEmitsNothing)
{
    EventQueue eq;
    IntervalStats sampler(eq, kMillisecond);
    sampler.addGauge("x", [] { return 1.0; });
    sampler.start();
    sampler.finish(); // now() == start tick: no interval to close
    EXPECT_TRUE(sampler.samples().empty());
    // finish() also stopped the sampler: future ticks stay silent.
    eq.runUntil(5 * kMillisecond);
    EXPECT_TRUE(sampler.samples().empty());
}

TEST(IntervalStats, PartialTailDeltaSurvivesIntoCsv)
{
    EventQueue eq;
    double counter = 0.0;
    IntervalStats sampler(eq, 4 * kMillisecond);
    sampler.addDelta("count", [&counter] { return counter; });
    sampler.start();
    eq.scheduleAfter(1 * kMillisecond, [&counter] { counter = 3.0; });
    eq.scheduleAfter(5 * kMillisecond, [&counter] { counter = 10.0; });
    eq.runUntil(6 * kMillisecond);
    sampler.finish();

    // Full interval [0,4) saw 3; the flushed tail [4,6] saw the rest.
    // Dropping the tail would silently lose 7 units of activity.
    ASSERT_EQ(sampler.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(sampler.samples()[0].values[0], 3.0);
    EXPECT_DOUBLE_EQ(sampler.samples()[1].values[0], 7.0);

    std::ostringstream oss;
    sampler.writeCsv(oss);
    EXPECT_NE(oss.str().find("4,6,7"), std::string::npos);
}

TEST(IntervalStats, StopCancelsFutureSamples)
{
    EventQueue eq;
    IntervalStats sampler(eq, kMillisecond);
    sampler.addGauge("x", [] { return 1.0; });
    sampler.start();
    eq.runUntil(2 * kMillisecond);
    sampler.stop();
    eq.runUntil(10 * kMillisecond); // stale scheduled event must no-op
    EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(IntervalStats, WriteCsvEmitsHeaderAndMillisecondTimes)
{
    EventQueue eq;
    double counter = 0.0;
    IntervalStats sampler(eq, 2 * kMillisecond);
    sampler.addDelta("refreshes", [&counter] { return counter; });
    sampler.addGauge("backlog", [] { return 5.0; });
    sampler.start();
    eq.scheduleAfter(kMillisecond, [&counter] { counter = 8.0; });
    eq.runUntil(4 * kMillisecond);
    sampler.stop();

    std::ostringstream oss;
    sampler.writeCsv(oss);
    std::istringstream lines(oss.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "begin_ms,end_ms,refreshes,backlog");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "0,2,8,5");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "2,4,0,5");
}

#ifndef SMARTREF_TRACING_DISABLED
TEST(IntervalStats, SamplesFeedTracerAsCounterEvents)
{
    struct RecordingSink : TraceSink
    {
        explicit RecordingSink(std::vector<TraceEvent> &sink) : out(sink) {}
        void write(const TraceEvent &ev) override { out.push_back(ev); }
        std::vector<TraceEvent> &out;
    };
    std::vector<TraceEvent> events;
    globalTracer().addSink(std::make_unique<RecordingSink>(events));
    globalTracer().setCategories(TraceCategory::Interval);

    EventQueue eq;
    IntervalStats sampler(eq, kMillisecond);
    sampler.addGauge("depth", [] { return 7.0; });
    sampler.start();
    eq.runUntil(2 * kMillisecond);
    sampler.stop();
    globalTracer().reset();

    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, TracePhase::Counter);
    EXPECT_EQ(events[0].cat, TraceCategory::Interval);
    EXPECT_DOUBLE_EQ(events[0].value, 7.0);
    EXPECT_EQ(events[1].tick, 2 * kMillisecond);
}
#endif // SMARTREF_TRACING_DISABLED

TEST(IntervalStats, MisuseIsRejected)
{
    EventQueue eq;
    EXPECT_THROW(IntervalStats(eq, 0), std::logic_error);
    IntervalStats sampler(eq, kMillisecond);
    sampler.addGauge("x", [] { return 0.0; });
    sampler.start();
    EXPECT_THROW(sampler.addGauge("y", [] { return 0.0; }),
                 std::logic_error);
    EXPECT_THROW(sampler.start(), std::logic_error);
    sampler.stop();
}

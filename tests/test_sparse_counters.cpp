/**
 * @file
 * Hierarchical sparse CounterArray: dense-vs-sparse bit-exactness and
 * the non-power-of-two physIndex divide path.
 *
 * The sparse array's contract (core/counter_array.hh) is that every
 * observable behaviour — expiry sequence, peek values — is identical
 * to the dense array, and that the billed SRAM traffic differs by
 * exactly the explicitly-accounted pristine skips:
 *
 *     sparse.sramReads()  + sparse.touchesSkipped() == dense.sramReads()
 *     sparse.sramWrites() + sparse.touchesSkipped() == dense.sramWrites()
 *
 * The fuzz below drives random demand resets interleaved with the
 * cyclic stagger walk over both arrays and checks all of it, across
 * power-of-two and divide-path geometries and chunk sizes that do and
 * do not divide the segment evenly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/counter_array.hh"

using namespace smartref;

TEST(PhysIndex, NonPowerOfTwoSegmentUsesDividePath)
{
    // 36 counters / interleave 3 = 12 positions per segment: not a
    // power of two, so physIndex must take the divide path. The layout
    // contract: logical s * 12 + p lands at byte p * 3 + s.
    CounterArray c(36, 3, 3);
    std::vector<bool> seen(36, false);
    for (std::uint64_t i = 0; i < 36; ++i) {
        const std::uint64_t seg = i / 12;
        const std::uint64_t pos = i % 12;
        const std::uint64_t phys = c.physIndex(i);
        EXPECT_EQ(phys, pos * 3 + seg) << "logical " << i;
        EXPECT_FALSE(seen[phys]) << "collision at byte " << phys;
        seen[phys] = true;
    }
}

TEST(PhysIndex, PowerOfTwoShiftPathMatchesDivideFormula)
{
    // 64 / 4 = 16 positions per segment: the shift-and-mask fast path
    // must agree with the plain divide formula everywhere.
    CounterArray c(64, 3, 4);
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(c.physIndex(i), (i % 16) * 4 + i / 16);
}

TEST(PhysIndex, DemandResetRoundTripsThroughDividePath)
{
    // A reset through the non-power-of-two layout must land on exactly
    // the logical counter it was aimed at.
    for (std::uint64_t target = 0; target < 36; ++target) {
        CounterArray c(36, 3, 3);
        c.reset(target);
        for (std::uint64_t i = 0; i < 36; ++i)
            EXPECT_EQ(c.peek(i), i == target ? 7 : 0)
                << "target " << target << " index " << i;
    }
}

namespace {

/**
 * Drive identical random traffic through a dense and a sparse array
 * and require bit-exact behaviour plus the exact-skip SRAM invariant.
 */
void
fuzzDenseVsSparse(std::uint64_t size, std::uint32_t bits,
                  std::uint32_t interleave, std::uint64_t chunkPositions,
                  bool staggered, std::uint64_t seed)
{
    SCOPED_TRACE(::testing::Message()
                 << "size=" << size << " bits=" << bits << " interleave="
                 << interleave << " chunk=" << chunkPositions
                 << " staggered=" << staggered << " seed=" << seed);

    CounterArray dense(size, bits, interleave);
    CounterArray sparse(size, bits, interleave, true, chunkPositions);
    if (staggered) {
        dense.resetToStaggeredPattern(interleave);
        sparse.resetToStaggeredPattern(interleave);
        EXPECT_EQ(sparse.chunksResident(), 0u)
            << "staggered init must stay pristine";
    }

    std::mt19937_64 rng(seed);
    const std::uint64_t perSegment = size / interleave;
    std::uint64_t pos = 0;
    for (int step = 0; step < 2000; ++step) {
        // A burst of demand resets (possibly none), then one walk step
        // at the cyclic position the sparse walk requires.
        const std::uint64_t bursts = rng() % 3;
        for (std::uint64_t b = 0; b < bursts; ++b) {
            const std::uint64_t idx = rng() % size;
            dense.reset(idx);
            sparse.reset(idx);
        }
        std::vector<std::uint32_t> denseExpired, sparseExpired;
        dense.walkStep(pos, [&](std::uint32_t s) {
            denseExpired.push_back(s);
        });
        sparse.walkStep(pos, [&](std::uint32_t s) {
            sparseExpired.push_back(s);
        });
        ASSERT_EQ(denseExpired, sparseExpired) << "step " << step;
        pos = (pos + 1) % perSegment;
    }

    for (std::uint64_t i = 0; i < size; ++i)
        ASSERT_EQ(dense.peek(i), sparse.peek(i)) << "index " << i;

    EXPECT_EQ(sparse.sramReads() + sparse.touchesSkipped(),
              dense.sramReads());
    EXPECT_EQ(sparse.sramWrites() + sparse.touchesSkipped(),
              dense.sramWrites());
    EXPECT_EQ(sparse.touchesSkipped() % interleave, 0u);
    EXPECT_EQ(sparse.summaryReads() * interleave,
              sparse.touchesSkipped());
    EXPECT_LE(sparse.chunksResident(), sparse.chunksTotal());
}

} // namespace

TEST(SparseCounters, FuzzStaggeredPowerOfTwo)
{
    fuzzDenseVsSparse(256, 3, 8, 8, true, 1);
    fuzzDenseVsSparse(256, 2, 8, 8, true, 2);
}

TEST(SparseCounters, FuzzUnstaggeredStartsAtZero)
{
    // Never-initialised counters expire on first touch; the pristine
    // closed form must reproduce that wrap exactly.
    fuzzDenseVsSparse(256, 3, 8, 8, false, 3);
}

TEST(SparseCounters, FuzzChunkDoesNotDivideSegment)
{
    // perSegment 40, chunks of 16 positions: the last chunk is short.
    fuzzDenseVsSparse(320, 3, 8, 16, true, 4);
}

TEST(SparseCounters, FuzzNonPowerOfTwoSegment)
{
    // perSegment 12: the walk and demand resets both take the divide
    // path, with a chunk size that does not divide the segment.
    fuzzDenseVsSparse(96, 3, 8, 5, true, 5);
    fuzzDenseVsSparse(96, 3, 8, 5, false, 6);
}

TEST(SparseCounters, PristineWalkBillsOnlySummaryReads)
{
    CounterArray sparse(256, 3, 8, true, 8);
    sparse.resetToStaggeredPattern(8);
    std::uint64_t expiries = 0;
    for (std::uint64_t pos = 0; pos < 32; ++pos)
        sparse.walkStep(pos, [&](std::uint32_t) { ++expiries; });
    // One full pass over an untouched array: every step is answered
    // from the summary, no per-counter SRAM traffic at all.
    EXPECT_EQ(sparse.sramReads(), 0u);
    EXPECT_EQ(sparse.sramWrites(), 0u);
    EXPECT_EQ(sparse.summaryReads(), 32u);
    EXPECT_EQ(sparse.touchesSkipped(), 32u * 8u);
    EXPECT_EQ(sparse.chunksResident(), 0u);
    // The staggered pattern puts a zero at every 2^bits-th position of
    // each segment: 32 / 8 = 4 positions x 8 segments expire.
    EXPECT_EQ(expiries, 4u * 8u);
}

TEST(SparseCounters, DemandResetMaterialisesOneChunk)
{
    CounterArray sparse(256, 3, 8, true, 8);
    sparse.resetToStaggeredPattern(8);
    EXPECT_EQ(sparse.chunksResident(), 0u);
    sparse.reset(0);
    EXPECT_EQ(sparse.chunksResident(), 1u);
    EXPECT_EQ(sparse.residentCounterBytes(), 8u * 8u);
    // A second reset into the same chunk allocates nothing new.
    sparse.reset(1);
    EXPECT_EQ(sparse.chunksResident(), 1u);
}

TEST(SparseCounters, StaggeredResetFreesMaterialisedChunks)
{
    CounterArray sparse(256, 3, 8, true, 8);
    sparse.resetToStaggeredPattern(8);
    sparse.reset(7);
    EXPECT_EQ(sparse.chunksResident(), 1u);
    // Re-staggering is the pristine closed form at pass 0, so the
    // chunk is dropped instead of rewritten.
    sparse.resetToStaggeredPattern(8);
    EXPECT_EQ(sparse.chunksResident(), 0u);
    CounterArray dense(256, 3, 8);
    dense.resetToStaggeredPattern(8);
    for (std::uint64_t i = 0; i < 256; ++i)
        ASSERT_EQ(sparse.peek(i), dense.peek(i)) << "index " << i;
}

TEST(SparseCounters, SetResetValueMaterialisesEverything)
{
    // Retention classes and sparse storage do not compose usefully:
    // the pristine closed form assumes the maximum reset value, so the
    // first per-counter reset value materialises the whole array.
    CounterArray sparse(256, 3, 8, true, 8);
    sparse.resetToStaggeredPattern(8);
    sparse.setResetValue(3, 5);
    EXPECT_EQ(sparse.chunksResident(), sparse.chunksTotal());
}

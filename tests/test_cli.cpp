#include <gtest/gtest.h>

#include <vector>

#include "harness/cli.hh"

using namespace smartref;

namespace {

CliArgs
parse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::string progname = "prog";
    argv.push_back(progname.data());
    for (auto &a : args)
        argv.push_back(a.data());
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Cli, KeyValuePairs)
{
    auto args = parse({"--measure-ms", "32", "--csv", "/tmp/x.csv"});
    EXPECT_EQ(args.getU64("measure-ms", 0), 32u);
    EXPECT_EQ(args.getString("csv"), "/tmp/x.csv");
    EXPECT_EQ(args.csvPath(), "/tmp/x.csv");
}

TEST(Cli, BareFlags)
{
    auto args = parse({"--verbose", "--no-auto"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_TRUE(args.has("no-auto"));
    EXPECT_FALSE(args.has("csv"));
}

TEST(Cli, Fallbacks)
{
    auto args = parse({});
    EXPECT_EQ(args.getU64("bits", 3), 3u);
    EXPECT_DOUBLE_EQ(args.getDouble("scale", 1.5), 1.5);
    EXPECT_EQ(args.getString("csv", "none"), "none");
}

TEST(Cli, ExperimentOptionsDefaults)
{
    auto opts = parse({}).experimentOptions();
    EXPECT_EQ(opts.warmup, 64 * kMillisecond);
    EXPECT_EQ(opts.measure, 128 * kMillisecond);
    EXPECT_EQ(opts.counterBits, 3u);
    EXPECT_EQ(opts.segments, 8u);
    EXPECT_TRUE(opts.autoReconfigure);
    EXPECT_FALSE(opts.verbose);
}

TEST(Cli, ExperimentOptionsOverrides)
{
    auto opts = parse({"--warmup-ms", "8", "--measure-ms", "16", "--bits",
                       "2", "--segments", "4", "--seed", "7", "--no-auto",
                       "--verbose"})
                    .experimentOptions();
    EXPECT_EQ(opts.warmup, 8 * kMillisecond);
    EXPECT_EQ(opts.measure, 16 * kMillisecond);
    EXPECT_EQ(opts.counterBits, 2u);
    EXPECT_EQ(opts.segments, 4u);
    EXPECT_EQ(opts.seed, 7u);
    EXPECT_FALSE(opts.autoReconfigure);
    EXPECT_TRUE(opts.verbose);
}

TEST(Cli, LogLevelDefaultsToWarn)
{
    auto opts = parse({}).experimentOptions();
    EXPECT_EQ(opts.logLevel, LogLevel::Warn);
}

TEST(Cli, LogLevelParsesEveryName)
{
    EXPECT_EQ(parse({"--log-level", "silent"}).experimentOptions().logLevel,
              LogLevel::Silent);
    EXPECT_EQ(parse({"--log-level", "warn"}).experimentOptions().logLevel,
              LogLevel::Warn);
    EXPECT_EQ(parse({"--log-level", "info"}).experimentOptions().logLevel,
              LogLevel::Info);
    EXPECT_EQ(parse({"--log-level", "debug"}).experimentOptions().logLevel,
              LogLevel::Debug);
}

TEST(Cli, VerboseIsAnAliasForDebug)
{
    auto opts = parse({"--verbose"}).experimentOptions();
    EXPECT_EQ(opts.logLevel, LogLevel::Debug);
    // An explicit --log-level wins over the alias.
    opts = parse({"--verbose", "--log-level", "info"}).experimentOptions();
    EXPECT_EQ(opts.logLevel, LogLevel::Info);
    EXPECT_TRUE(opts.verbose);
}

TEST(Cli, UnknownLogLevelIsFatal)
{
    EXPECT_THROW(parse({"--log-level", "chatty"}).experimentOptions(),
                 std::runtime_error);
}

TEST(Cli, ObservabilityFlagAccessors)
{
    auto args = parse({"--trace-out", "t.json", "--trace-csv", "t.csv",
                       "--trace-categories", "refresh,counter",
                       "--stats-json", "s.json", "--stats-interval-ms",
                       "5", "--stats-interval-out", "iv.csv"});
    EXPECT_EQ(args.traceOutPath(), "t.json");
    EXPECT_EQ(args.traceCsvPath(), "t.csv");
    EXPECT_EQ(args.traceCategories(), "refresh,counter");
    EXPECT_EQ(args.statsJsonPath(), "s.json");
    EXPECT_EQ(args.statsIntervalMs(), 5u);
    EXPECT_EQ(args.statsIntervalPath(), "iv.csv");

    auto none = parse({});
    EXPECT_EQ(none.traceOutPath(), "");
    EXPECT_EQ(none.traceCategories(), "all");
    EXPECT_EQ(none.statsIntervalMs(), 0u);
}

TEST(Cli, RejectsPositionalArguments)
{
    EXPECT_THROW(parse({"positional"}), std::runtime_error);
}

TEST(Cli, DoubleParsing)
{
    auto args = parse({"--scale", "2.5"});
    EXPECT_DOUBLE_EQ(args.getDouble("scale", 0.0), 2.5);
}

/**
 * @file
 * End-to-end integration tests on a conventional system: baseline
 * anchors, Smart-vs-CBR comparisons, energy conservation, determinism
 * and the snapshot-delta measurement machinery.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

SystemConfig
tinySystem(PolicyKind policy)
{
    SystemConfig cfg;
    cfg.dram = tcfg::tinyConfig();
    cfg.policy = policy;
    cfg.smart.autoReconfigure = false;
    return cfg;
}

WorkloadParams
halfCoverageWorkload(const DramConfig &dram)
{
    WorkloadParams wp;
    wp.name = "half";
    wp.footprintRows = dram.org.totalRows() / 2;
    wp.rowVisitsPerSecond =
        static_cast<double>(wp.footprintRows) /
        (static_cast<double>(dram.timing.retention) /
         static_cast<double>(kSecond)) *
        2.0;
    wp.accessesPerVisit = 2;
    wp.randomJumpProb = 0.0;
    wp.readFraction = 0.7;
    wp.interArrivalJitter = 0.3;
    wp.seed = 9;
    return wp;
}

} // namespace

TEST(SystemIntegration, CbrBaselineAnchorsToGeometry)
{
    System sys(tinySystem(PolicyKind::Cbr));
    const Tick retention = sys.config().dram.timing.retention;
    sys.run(retention);
    EnergySnapshot warm = captureSnapshot(sys);
    sys.run(2 * retention);
    EnergySnapshot end = captureSnapshot(sys);
    const EnergySnapshot d = end - warm;
    EXPECT_EQ(d.refreshes, 2 * sys.config().dram.org.totalRows());
    EXPECT_EQ(d.violations, 0u);
}

TEST(SystemIntegration, SmartReducesRefreshesUnderLoad)
{
    auto runPolicy = [](PolicyKind kind) {
        System sys(tinySystem(kind));
        sys.addWorkload(halfCoverageWorkload(sys.config().dram));
        const Tick retention = sys.config().dram.timing.retention;
        sys.run(retention);
        EnergySnapshot warm = captureSnapshot(sys);
        sys.run(3 * retention);
        EnergySnapshot end = captureSnapshot(sys);
        EXPECT_EQ(sys.dram().retention().violations(), 0u);
        return end - warm;
    };

    const EnergySnapshot cbr = runPolicy(PolicyKind::Cbr);
    const EnergySnapshot smart = runPolicy(PolicyKind::Smart);

    // Roughly half the rows are kept alive: expect a 35-60 % reduction.
    const double reduction = 1.0 - static_cast<double>(smart.refreshes) /
                                       static_cast<double>(cbr.refreshes);
    EXPECT_GT(reduction, 0.35);
    EXPECT_LT(reduction, 0.65);
    // And refresh energy (with overheads) must drop too.
    EXPECT_LT(smart.refreshEnergy + smart.overheadEnergy,
              cbr.refreshEnergy);
    EXPECT_LT(smart.totalEnergy(), cbr.totalEnergy());
}

TEST(SystemIntegration, SnapshotDeltaArithmetic)
{
    EnergySnapshot a, b;
    a.tick = 100;
    a.refreshes = 5;
    a.refreshEnergy = 1.0;
    a.backgroundEnergy = 2.0;
    b.tick = 300;
    b.refreshes = 12;
    b.refreshEnergy = 3.5;
    b.backgroundEnergy = 6.0;
    const EnergySnapshot d = b - a;
    EXPECT_EQ(d.tick, 200u);
    EXPECT_EQ(d.refreshes, 7u);
    EXPECT_DOUBLE_EQ(d.refreshEnergy, 2.5);
    EXPECT_DOUBLE_EQ(d.totalEnergy(), 2.5 + 4.0);
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    auto run = [] {
        System sys(tinySystem(PolicyKind::Smart));
        sys.addWorkload(halfCoverageWorkload(sys.config().dram));
        sys.run(3 * sys.config().dram.timing.retention);
        EnergySnapshot s = captureSnapshot(sys);
        return s;
    };
    const EnergySnapshot a = run();
    const EnergySnapshot b = run();
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.demandAccesses, b.demandAccesses);
    EXPECT_DOUBLE_EQ(a.refreshEnergy, b.refreshEnergy);
    EXPECT_DOUBLE_EQ(a.latencySumTicks, b.latencySumTicks);
}

TEST(SystemIntegration, BurstPolicyWorksEndToEnd)
{
    System sys(tinySystem(PolicyKind::Burst));
    sys.run(3 * sys.config().dram.timing.retention +
            sys.config().dram.timing.retention / 4);
    EXPECT_EQ(sys.dram().retention().violations(), 0u);
    EXPECT_GE(sys.dram().totalRefreshes(),
              3 * sys.config().dram.org.totalRows());
}

TEST(SystemIntegration, RasOnlyPaysBusEnergy)
{
    System cbrSys(tinySystem(PolicyKind::Cbr));
    System rasSys(tinySystem(PolicyKind::RasOnly));
    const Tick retention = cbrSys.config().dram.timing.retention;
    cbrSys.run(2 * retention);
    rasSys.run(2 * retention);
    const EnergySnapshot cbr = captureSnapshot(cbrSys);
    const EnergySnapshot ras = captureSnapshot(rasSys);
    EXPECT_EQ(cbr.refreshes, ras.refreshes);
    EXPECT_DOUBLE_EQ(cbr.overheadEnergy, 0.0);
    EXPECT_GT(ras.overheadEnergy, 0.0);
    EXPECT_GT(ras.totalEnergy(), cbr.totalEnergy());
}

TEST(SystemIntegration, PolicyKindNames)
{
    EXPECT_STREQ(toString(PolicyKind::Cbr), "cbr");
    EXPECT_STREQ(toString(PolicyKind::Burst), "burst");
    EXPECT_STREQ(toString(PolicyKind::RasOnly), "ras-only");
    EXPECT_STREQ(toString(PolicyKind::Smart), "smart");
}

TEST(SystemIntegration, SmartPolicyAccessorNullForBaselines)
{
    System cbr(tinySystem(PolicyKind::Cbr));
    EXPECT_EQ(cbr.smartPolicy(), nullptr);
    System smart(tinySystem(PolicyKind::Smart));
    EXPECT_NE(smart.smartPolicy(), nullptr);
}

TEST(SystemIntegration, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 4.0, 4.0}), 4.0);
    EXPECT_NEAR(geometricMean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(SystemIntegration, MultipleWorkloadsCompose)
{
    System sys(tinySystem(PolicyKind::Smart));
    WorkloadParams a = halfCoverageWorkload(sys.config().dram);
    a.name = "a";
    a.rowStride = 2;
    a.rowOffset = 0;
    a.footprintRows /= 2;
    WorkloadParams b = a;
    b.name = "b";
    b.rowOffset = 1;
    b.seed = 17;
    sys.addWorkload(a);
    sys.addWorkload(b);
    sys.run(3 * sys.config().dram.timing.retention);
    EXPECT_EQ(sys.dram().retention().violations(), 0u);
    EXPECT_GT(sys.controller().demandReads() +
                  sys.controller().demandWrites(),
              0u);
}

class SchemeSweep : public ::testing::TestWithParam<AddressScheme>
{
};

TEST_P(SchemeSweep, SmartRefreshSafeUnderEveryMapping)
{
    SystemConfig cfg = tinySystem(PolicyKind::Smart);
    cfg.ctrl.scheme = GetParam();
    System sys(cfg);
    sys.addWorkload(halfCoverageWorkload(cfg.dram));
    sys.run(4 * cfg.dram.timing.retention);
    EXPECT_EQ(sys.dram().retention().violations(), 0u);
    EXPECT_EQ(sys.dram().retention().finalCheck(sys.eventQueue().now()),
              0u);
    // The workload still causes refresh skipping under any scheme.
    EXPECT_LT(sys.dram().totalRefreshes(),
              4 * cfg.dram.org.totalRows());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeSweep,
    ::testing::Values(AddressScheme::RowRankBankColumn,
                      AddressScheme::RowBankRankColumn,
                      AddressScheme::RankBankRowColumn));

TEST(SystemIntegration, EnergyComponentsAllPositiveUnderLoad)
{
    System sys(tinySystem(PolicyKind::Smart));
    sys.addWorkload(halfCoverageWorkload(sys.config().dram));
    sys.run(2 * sys.config().dram.timing.retention);
    const EnergySnapshot s = captureSnapshot(sys);
    EXPECT_GT(s.refreshEnergy, 0.0);
    EXPECT_GT(s.actEnergy, 0.0);
    EXPECT_GT(s.readEnergy, 0.0);
    EXPECT_GT(s.writeEnergy, 0.0);
    EXPECT_GT(s.backgroundEnergy, 0.0);
    EXPECT_GT(s.overheadEnergy, 0.0);
    // Background cannot exceed full active-standby power for the span.
    const double activePower =
        sys.dram().power().backgroundPower(RankPowerState::ActiveStandby);
    const double spanSec =
        static_cast<double>(s.tick) / static_cast<double>(kSecond);
    EXPECT_LE(s.backgroundEnergy,
              activePower * spanSec *
                  sys.config().dram.org.ranks * 1.0001);
}

TEST(SystemIntegration, IdlePrechargeTimeoutAffectsEnergyNotSafety)
{
    auto run = [](Tick timeout) {
        SystemConfig cfg = tinySystem(PolicyKind::Cbr);
        cfg.ctrl.idlePrechargeAfter = timeout;
        System sys(cfg);
        sys.addWorkload(halfCoverageWorkload(cfg.dram));
        sys.run(3 * cfg.dram.timing.retention);
        EXPECT_EQ(sys.dram().retention().violations(), 0u);
        return captureSnapshot(sys).totalEnergy();
    };
    // Pages held open forever burn more background energy.
    EXPECT_GT(run(0), run(200 * kNanosecond));
}

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/clocked.hh"

using namespace smartref;

TEST(ClockDomain, Conversions)
{
    ClockDomain clk(1500); // DDR2-667: 1.5 ns
    EXPECT_EQ(clk.period(), 1500u);
    EXPECT_EQ(clk.toTicks(10), 15000u);
    EXPECT_EQ(clk.toCycles(15000), 10u);
    EXPECT_EQ(clk.toCycles(15001), 10u); // rounds down
}

TEST(ClockDomain, NextEdge)
{
    ClockDomain clk(1000);
    EXPECT_EQ(clk.nextEdge(0), 0u);
    EXPECT_EQ(clk.nextEdge(1), 1000u);
    EXPECT_EQ(clk.nextEdge(999), 1000u);
    EXPECT_EQ(clk.nextEdge(1000), 1000u);
    EXPECT_EQ(clk.nextEdge(1001), 2000u);
}

TEST(ClockDomain, Mhz)
{
    EXPECT_EQ(ClockDomain(1000).mhz(), 1000u);
    EXPECT_EQ(ClockDomain(2000).mhz(), 500u);
}

TEST(ClockDomain, ZeroPeriodPanics)
{
    EXPECT_THROW(ClockDomain(0), std::logic_error);
}

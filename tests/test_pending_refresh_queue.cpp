#include <gtest/gtest.h>

#include "core/pending_refresh_queue.hh"

using namespace smartref;

namespace {
RefreshRequest
req(std::uint32_t rank, std::uint32_t bank, std::uint32_t row)
{
    RefreshRequest r;
    r.rank = rank;
    r.bank = bank;
    r.row = row;
    return r;
}
} // namespace

TEST(PendingQueue, StartsEmpty)
{
    StatGroup root("root");
    PendingRefreshQueue q(8, &root);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.depth(), 0u);
    EXPECT_EQ(q.capacity(), 8u);
}

TEST(PendingQueue, PushPopTracksDepth)
{
    StatGroup root("root");
    PendingRefreshQueue q(8, &root);
    q.push(req(0, 0, 1));
    q.push(req(0, 1, 2));
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_TRUE(q.markIssued(req(0, 0, 1)));
    EXPECT_EQ(q.depth(), 1u);
    EXPECT_EQ(q.maxDepth(), 2u);
}

TEST(PendingQueue, MarkIssuedOutOfOrder)
{
    StatGroup root("root");
    PendingRefreshQueue q(8, &root);
    q.push(req(0, 0, 1));
    q.push(req(0, 1, 2));
    q.push(req(1, 0, 3));
    // Bank engines drain independently: the middle entry issues first.
    EXPECT_TRUE(q.markIssued(req(0, 1, 2)));
    EXPECT_TRUE(q.markIssued(req(1, 0, 3)));
    EXPECT_TRUE(q.markIssued(req(0, 0, 1)));
    EXPECT_TRUE(q.empty());
}

TEST(PendingQueue, MarkIssuedUnknownReturnsFalse)
{
    StatGroup root("root");
    PendingRefreshQueue q(8, &root);
    q.push(req(0, 0, 1));
    EXPECT_FALSE(q.markIssued(req(0, 0, 99)));
    EXPECT_EQ(q.depth(), 1u);
}

TEST(PendingQueue, OverflowIsRecordedNotDropped)
{
    StatGroup root("root");
    PendingRefreshQueue q(2, &root);
    q.push(req(0, 0, 0));
    q.push(req(0, 0, 1));
    EXPECT_EQ(q.overflows(), 0u);
    q.push(req(0, 0, 2)); // arrives at a full queue
    EXPECT_EQ(q.overflows(), 1u);
    EXPECT_EQ(q.depth(), 3u); // still accepted (observability choice)
    EXPECT_EQ(q.maxDepth(), 3u);
}

TEST(PendingQueue, DuplicateCoordinatesRemoveOneAtATime)
{
    StatGroup root("root");
    PendingRefreshQueue q(8, &root);
    q.push(req(0, 0, 5));
    q.push(req(0, 0, 5));
    EXPECT_TRUE(q.markIssued(req(0, 0, 5)));
    EXPECT_EQ(q.depth(), 1u);
    EXPECT_TRUE(q.markIssued(req(0, 0, 5)));
    EXPECT_TRUE(q.empty());
}

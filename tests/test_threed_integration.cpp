/**
 * @file
 * End-to-end 3D die-stacked system tests: cache behaviour in front of
 * two DRAM domains, refresh policies on the stacked die, and the
 * retention-vs-reduction relationship between 64 ms and 32 ms.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

ThreeDSystemConfig
tinyThreeD(PolicyKind policy, Tick retention = 4 * kMillisecond)
{
    ThreeDSystemConfig cfg;
    cfg.threeD = tcfg::tinyConfig();
    cfg.threeD.name = "tiny3d";
    cfg.threeD.allowPowerDown = false;
    cfg.threeD.timing.retention = retention;
    cfg.mainMem = tcfg::smallConfig();
    cfg.threeDPolicy = policy;
    cfg.smart.autoReconfigure = false;
    return cfg;
}

WorkloadParams
cacheWorkload(const DramConfig &threeD, double coverage,
              double revisitFraction = 0.5)
{
    WorkloadParams wp;
    wp.name = "cachews";
    wp.footprintRows = static_cast<std::uint64_t>(
        coverage * static_cast<double>(threeD.org.totalRows()));
    const double retentionSec =
        static_cast<double>(threeD.timing.retention) /
        static_cast<double>(kSecond);
    wp.rowVisitsPerSecond = static_cast<double>(wp.footprintRows) /
                            (retentionSec * revisitFraction);
    wp.accessesPerVisit = 1;
    wp.randomJumpProb = 0.0;
    wp.readFraction = 0.8;
    wp.interArrivalJitter = 0.3;
    wp.seed = 4;
    return wp;
}

} // namespace

TEST(ThreeDIntegration, WarmWorkingSetHitsInCache)
{
    ThreeDSystem sys(tinyThreeD(PolicyKind::Cbr));
    // High re-visit rate: every resident line is touched many times.
    sys.addWorkload(cacheWorkload(sys.config().threeD, 0.5, 0.05));
    sys.run(4 * sys.config().threeD.timing.retention);
    // After the first sweep the resident set always hits.
    EXPECT_GT(sys.cache().hitRate(), 0.8);
    // Main memory saw only the cold misses.
    EXPECT_LT(sys.mainDram().reads() + sys.mainDram().writes(),
              sys.threeDDram().reads() + sys.threeDDram().writes());
}

TEST(ThreeDIntegration, BothRetentionDomainsAreSafe)
{
    ThreeDSystem sys(tinyThreeD(PolicyKind::Smart));
    sys.addWorkload(cacheWorkload(sys.config().threeD, 0.5));
    sys.run(5 * sys.config().threeD.timing.retention);
    EXPECT_EQ(sys.threeDDram().retention().violations(), 0u);
    EXPECT_EQ(sys.mainDram().retention().violations(), 0u);
    EXPECT_EQ(sys.threeDDram().retention().finalCheck(
                  sys.eventQueue().now()),
              0u);
    EXPECT_EQ(sys.mainDram().retention().finalCheck(
                  sys.eventQueue().now()),
              0u);
}

TEST(ThreeDIntegration, SmartReducesStackedRefreshes)
{
    auto run = [](PolicyKind kind) {
        ThreeDSystem sys(tinyThreeD(kind));
        sys.addWorkload(cacheWorkload(sys.config().threeD, 0.5));
        const Tick retention = sys.config().threeD.timing.retention;
        sys.run(retention);
        const EnergySnapshot warm = captureSnapshot(sys);
        sys.run(3 * retention);
        const EnergySnapshot end = captureSnapshot(sys);
        return end - warm;
    };
    const EnergySnapshot cbr = run(PolicyKind::Cbr);
    const EnergySnapshot smart = run(PolicyKind::Smart);
    EXPECT_LT(smart.refreshes, cbr.refreshes);
    EXPECT_LT(smart.totalEnergy(), cbr.totalEnergy());
}

TEST(ThreeDIntegration, HalvedRetentionDoublesBaselineRefreshes)
{
    auto run = [](Tick retention) {
        ThreeDSystem sys(tinyThreeD(PolicyKind::Cbr, retention));
        sys.run(8 * kMillisecond);
        return sys.threeDDram().totalRefreshes();
    };
    const auto at4ms = run(4 * kMillisecond);
    const auto at2ms = run(2 * kMillisecond);
    EXPECT_NEAR(static_cast<double>(at2ms),
                2.0 * static_cast<double>(at4ms),
                0.05 * static_cast<double>(at2ms));
}

TEST(ThreeDIntegration, FasterRefreshShrinksRelativeReduction)
{
    // The Fig. 12 vs Fig. 15 effect: an identical access stream
    // eliminates a smaller fraction of refreshes at the doubled rate.
    auto reduction = [](Tick retention) {
        auto run = [&](PolicyKind kind) {
            ThreeDSystem sys(tinyThreeD(kind, retention));
            // Calibrate the stream against 4 ms regardless of config
            // (revisit ~2 ms: inside the 3-bit deadline at 4 ms, only
            // just inside at 2 ms).
            DramConfig ref = tinyThreeD(kind, 4 * kMillisecond).threeD;
            sys.addWorkload(cacheWorkload(ref, 0.5, 0.6));
            sys.run(4 * kMillisecond);
            const EnergySnapshot warm = captureSnapshot(sys);
            sys.run(12 * kMillisecond);
            const EnergySnapshot end = captureSnapshot(sys);
            return (end - warm).refreshes;
        };
        const auto cbr = run(PolicyKind::Cbr);
        const auto smart = run(PolicyKind::Smart);
        return 1.0 -
               static_cast<double>(smart) / static_cast<double>(cbr);
    };
    const double at4ms = reduction(4 * kMillisecond);
    const double at2ms = reduction(2 * kMillisecond);
    EXPECT_GT(at4ms, 0.0);
    EXPECT_GT(at2ms, 0.0);
    EXPECT_LT(at2ms, at4ms);
}

TEST(ThreeDIntegration, MainMemoryRunsCbr)
{
    ThreeDSystem sys(tinyThreeD(PolicyKind::Smart));
    sys.run(2 * sys.config().mainMem.timing.retention);
    // Main memory refreshes at its geometric baseline under CBR.
    EXPECT_GE(sys.mainDram().totalRefreshes(),
              sys.config().mainMem.org.totalRows());
}

TEST(ThreeDIntegration, DirtyWorkingSetWritesBack)
{
    ThreeDSystem sys(tinyThreeD(PolicyKind::Cbr));
    WorkloadParams wp = cacheWorkload(sys.config().threeD, 0.5);
    wp.readFraction = 0.0; // all writes
    // Make the footprint twice the cache capacity so aliasing lines
    // continually evict dirty victims.
    wp.footprintRows = 2 * sys.config().threeD.org.totalRows();
    sys.addWorkload(wp);
    sys.run(3 * sys.config().threeD.timing.retention);
    EXPECT_GT(sys.cache().writebacks(), 0u);
    EXPECT_GT(sys.mainDram().writes(), 0u);
}

TEST(ThreeDIntegration, RetentionAwarePolicyOnStackedDie)
{
    // Section 8 composition also applies to the 3D module: RAPID-style
    // classes on the stacked die's rows.
    ThreeDSystemConfig cfg = tinyThreeD(PolicyKind::RetentionAware);
    RetentionClassParams cp;
    cp.seed = 12;
    cfg.retentionClasses = std::make_shared<RetentionClassMap>(
        cfg.threeD.org.totalRows(), cp);
    ThreeDSystem sys(cfg);
    sys.addWorkload(cacheWorkload(sys.config().threeD, 0.3));
    sys.run(6 * cfg.threeD.timing.retention);
    EXPECT_EQ(sys.threeDDram().retention().violations(), 0u);
    EXPECT_EQ(sys.threeDDram().retention().finalCheck(
                  sys.eventQueue().now()),
              0u);
    // Classes skip refreshes even without Smart Refresh.
    EXPECT_LT(sys.threeDDram().totalRefreshes(),
              6 * cfg.threeD.org.totalRows());
}

TEST(ThreeDIntegration, SmartWithClassesOnStackedDie)
{
    ThreeDSystemConfig cfg = tinyThreeD(PolicyKind::Smart);
    RetentionClassParams cp;
    cp.seed = 13;
    cfg.retentionClasses = std::make_shared<RetentionClassMap>(
        cfg.threeD.org.totalRows(), cp);
    ThreeDSystem sys(cfg);
    sys.addWorkload(cacheWorkload(sys.config().threeD, 0.4));
    sys.run(8 * cfg.threeD.timing.retention);
    EXPECT_EQ(sys.smartPolicy()->counters().bits(), 5u); // widened
    EXPECT_EQ(sys.threeDDram().retention().violations(), 0u);
    EXPECT_EQ(sys.threeDDram().retention().finalCheck(
                  sys.eventQueue().now()),
              0u);
}

#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace smartref;

namespace {

CacheConfig
smallCache(std::uint32_t assoc = 2, ReplacementKind repl =
                                        ReplacementKind::Lru)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 4096;
    cfg.assoc = assoc;
    cfg.lineSize = 64;
    cfg.replacement = repl;
    return cfg;
}

} // namespace

TEST(Cache, MissThenHit)
{
    StatGroup root("root");
    Cache cache(smallCache(), &root);
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1020, false).hit); // same line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, GeometryDerived)
{
    StatGroup root("root");
    Cache cache(smallCache(), &root);
    EXPECT_EQ(cache.config().numSets(), 32u); // 4096 / 64 / 2
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    StatGroup root("root");
    Cache cache(smallCache(2), &root);
    const std::uint32_t sets = cache.config().numSets();
    const Addr setStride = 64ull * sets;
    // Fill both ways of set 0.
    cache.access(0 * setStride, false);
    cache.access(1 * setStride, false);
    // Touch way 0 again so way 1 is LRU.
    cache.access(0 * setStride, false);
    // A third line evicts way 1 (the address 1*setStride line).
    cache.access(2 * setStride, false);
    EXPECT_TRUE(cache.contains(0 * setStride));
    EXPECT_FALSE(cache.contains(1 * setStride));
    EXPECT_TRUE(cache.contains(2 * setStride));
}

TEST(Cache, DirtyVictimProducesWriteback)
{
    StatGroup root("root");
    Cache cache(smallCache(1), &root); // direct mapped
    const Addr setStride = 64ull * cache.config().numSets();
    cache.access(0, true); // dirty
    const auto result = cache.access(setStride, false);
    EXPECT_FALSE(result.hit);
    EXPECT_TRUE(result.writebackVictim);
    EXPECT_EQ(result.victimAddr, 0u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    StatGroup root("root");
    Cache cache(smallCache(1), &root);
    const Addr setStride = 64ull * cache.config().numSets();
    cache.access(0, false);
    const auto result = cache.access(setStride, false);
    EXPECT_FALSE(result.writebackVictim);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(Cache, WriteHitMarksDirty)
{
    StatGroup root("root");
    Cache cache(smallCache(1), &root);
    const Addr setStride = 64ull * cache.config().numSets();
    cache.access(0, false); // clean fill
    cache.access(0, true);  // dirty it on a hit
    const auto result = cache.access(setStride, false);
    EXPECT_TRUE(result.writebackVictim);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    StatGroup root("root");
    Cache cache(smallCache(), &root);
    cache.access(0x40, true);
    cache.access(0x80, false);
    EXPECT_TRUE(cache.invalidate(0x40));
    EXPECT_FALSE(cache.invalidate(0x80));
    EXPECT_FALSE(cache.invalidate(0xc0)); // absent
    EXPECT_FALSE(cache.contains(0x40));
}

TEST(Cache, FlushDropsEverything)
{
    StatGroup root("root");
    Cache cache(smallCache(), &root);
    for (Addr a = 0; a < 2048; a += 64)
        cache.access(a, true);
    cache.flush();
    for (Addr a = 0; a < 2048; a += 64)
        EXPECT_FALSE(cache.contains(a));
}

TEST(Cache, HitRate)
{
    StatGroup root("root");
    Cache cache(smallCache(), &root);
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.75);
}

class CacheAssocTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheAssocTest, WorkingSetWithinAssocAlwaysHitsAfterFill)
{
    const std::uint32_t assoc = GetParam();
    StatGroup root("root");
    Cache cache(smallCache(assoc), &root);
    const Addr setStride = 64ull * cache.config().numSets();
    // Touch exactly `assoc` lines mapping to set 0.
    for (std::uint32_t i = 0; i < assoc; ++i)
        cache.access(i * setStride, false);
    // They all still hit (no premature eviction).
    for (std::uint32_t i = 0; i < assoc; ++i)
        EXPECT_TRUE(cache.access(i * setStride, false).hit);
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheAssocTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Replacement, FifoIgnoresAccessRecency)
{
    StatGroup root("root");
    Cache cache(smallCache(2, ReplacementKind::Fifo), &root);
    const Addr setStride = 64ull * cache.config().numSets();
    cache.access(0 * setStride, false); // filled first
    cache.access(1 * setStride, false);
    cache.access(0 * setStride, false); // recency must not matter
    cache.access(2 * setStride, false); // evicts the first fill
    EXPECT_FALSE(cache.contains(0 * setStride));
    EXPECT_TRUE(cache.contains(1 * setStride));
}

TEST(Replacement, RandomIsDeterministicPerSeed)
{
    StatGroup rootA("a"), rootB("b");
    CacheConfig cfg = smallCache(4, ReplacementKind::Random);
    cfg.seed = 77;
    Cache cacheA(cfg, &rootA);
    Cache cacheB(cfg, &rootB);
    const Addr setStride = 64ull * cacheA.config().numSets();
    for (std::uint32_t i = 0; i < 32; ++i) {
        const auto ra = cacheA.access(i * setStride, false);
        const auto rb = cacheB.access(i * setStride, false);
        EXPECT_EQ(ra.hit, rb.hit);
        EXPECT_EQ(ra.writebackVictim, rb.writebackVictim);
        EXPECT_EQ(ra.victimAddr, rb.victimAddr);
    }
}

TEST(Replacement, FactoryCreatesAllKinds)
{
    EXPECT_NE(ReplacementPolicy::create(ReplacementKind::Lru, 4, 2),
              nullptr);
    EXPECT_NE(ReplacementPolicy::create(ReplacementKind::Fifo, 4, 2),
              nullptr);
    EXPECT_NE(ReplacementPolicy::create(ReplacementKind::Random, 4, 2),
              nullptr);
}

TEST(Cache, PaperL2Configuration)
{
    // Table 1: 1 MB, 8-way L2.
    StatGroup root("root");
    CacheConfig cfg;
    cfg.name = "L2";
    cfg.sizeBytes = 1 * kMiB;
    cfg.assoc = 8;
    Cache cache(cfg, &root);
    EXPECT_EQ(cache.config().numSets(), 2048u);
}

class CacheLineSizeTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheLineSizeTest, LineGranularityRespected)
{
    const std::uint32_t lineSize = GetParam();
    StatGroup root("root");
    CacheConfig cfg = smallCache(2);
    cfg.lineSize = lineSize;
    Cache cache(cfg, &root);
    cache.access(0, false);
    // Same line: hit right up to the boundary, miss just past it.
    EXPECT_TRUE(cache.access(lineSize - 1, false).hit);
    EXPECT_FALSE(cache.access(lineSize, false).hit);
}

INSTANTIATE_TEST_SUITE_P(LineSizes, CacheLineSizeTest,
                         ::testing::Values(32u, 64u, 128u, 256u));

TEST(Cache, VictimAddressIsLineAligned)
{
    StatGroup root("root");
    Cache cache(smallCache(1), &root);
    const Addr setStride = 64ull * cache.config().numSets();
    cache.access(0x29, true); // unaligned address, dirty line 0
    const auto r = cache.access(0x29 + setStride, false);
    ASSERT_TRUE(r.writebackVictim);
    EXPECT_EQ(r.victimAddr % 64, 0u);
    EXPECT_EQ(r.victimAddr, 0u);
}
